//! Multi-session event loop: N clients, N per-session path pairs, one
//! shared server.
//!
//! [`Simulation`](crate::Simulation) is hardwired to two endpoints and
//! one path pair. `ServeSim` generalizes it for the capacity experiment:
//! each session `i` gets its own uplink (`client[i] → server`) and
//! downlink (`server → client[i]`) [`DirectedPath`], while the server is
//! a single shared [`Endpoint`] that demultiplexes by [`FlowId`].
//!
//! The loop semantics mirror `Simulation` exactly — deliveries before
//! polls within an instant, time advanced to the minimum pending event,
//! 1 µs forced progress, an idempotent final step at `end` — but the
//! per-step cost is O(due), not O(N): per-session paths and client
//! wakeups live in [`TimerWheel`]s, so a step touches only the sessions
//! with a delivery or deadline at the current instant. This requires
//! endpoints whose `next_wakeup` is accurate (they transmit only after a
//! delivery or at a declared wakeup), which all Sprout endpoints are.

use std::collections::HashMap;

use crate::cellsim::{DirectedPath, PathConfig};
use crate::endpoint::Endpoint;
use crate::packet::{FlowId, Packet};
use crate::wheel::TimerWheel;
use sprout_trace::{Duration, Timestamp};

/// N independent client/server sessions over per-session paths, driven
/// by one event loop around a shared server endpoint.
pub struct ServeSim<C: Endpoint, S: Endpoint> {
    clients: Vec<C>,
    /// Per-session flow ids; client output is re-stamped on the way up so
    /// the server can demux, and server output routes back by the same id.
    flows: Vec<FlowId>,
    server: S,
    up: Vec<DirectedPath>,
    down: Vec<DirectedPath>,
    /// FlowId.0 → dense session index, for routing server output.
    route: HashMap<u32, usize>,
    up_wheel: TimerWheel,
    down_wheel: TimerWheel,
    client_wheel: TimerWheel,
    /// Clients owed a poll this instant (delivery arrived or wakeup due);
    /// `pending[i]` guards duplicate queue entries, the queue is sorted
    /// before draining for determinism.
    pending: Vec<bool>,
    pending_queue: Vec<usize>,
    server_pending: bool,
    now: Timestamp,
    /// Recycled packet buffer, as in [`Simulation`](crate::Simulation).
    scratch: Vec<Packet>,
    delivered_to_server: u64,
}

impl<C: Endpoint, S: Endpoint> ServeSim<C, S> {
    /// Empty loop around `server`; add sessions before running.
    pub fn new(server: S) -> Self {
        ServeSim::with_scratch(server, Vec::new())
    }

    /// [`ServeSim::new`], seeding the event-loop packet buffer with
    /// `scratch` (recovered via [`ServeSim::into_scratch`]) so batch
    /// executors keep one allocation across cells. Contents are cleared
    /// before first use, so recycling cannot affect results.
    pub fn with_scratch(server: S, mut scratch: Vec<Packet>) -> Self {
        scratch.clear();
        ServeSim {
            clients: Vec::new(),
            flows: Vec::new(),
            server,
            up: Vec::new(),
            down: Vec::new(),
            route: HashMap::new(),
            up_wheel: TimerWheel::new(),
            down_wheel: TimerWheel::new(),
            client_wheel: TimerWheel::new(),
            pending: Vec::new(),
            pending_queue: Vec::new(),
            server_pending: false,
            now: Timestamp::ZERO,
            scratch,
            delivered_to_server: 0,
        }
    }

    /// Tear down, recovering the packet buffer for the next cell.
    pub fn into_scratch(self) -> Vec<Packet> {
        self.scratch
    }

    /// Attach session `flow`: its client endpoint and its two directed
    /// paths. Returns the dense session index.
    pub fn add_session(
        &mut self,
        flow: FlowId,
        client: C,
        up: PathConfig,
        down: PathConfig,
    ) -> usize {
        let idx = self.clients.len();
        assert!(
            self.route.insert(flow.0, idx).is_none(),
            "duplicate session flow id {}",
            flow.0
        );
        let up = DirectedPath::new(up);
        let down = DirectedPath::new(down);
        self.up_wheel.schedule(idx, up.next_event());
        self.down_wheel.schedule(idx, down.next_event());
        self.client_wheel.schedule(idx, client.next_wakeup());
        self.clients.push(client);
        self.flows.push(flow);
        self.up.push(up);
        self.down.push(down);
        self.pending.push(false);
        idx
    }

    /// Number of attached sessions.
    pub fn sessions(&self) -> usize {
        self.clients.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// The shared server endpoint.
    pub fn server(&self) -> &S {
        &self.server
    }

    /// Session `idx`'s client endpoint.
    pub fn client(&self, idx: usize) -> &C {
        &self.clients[idx]
    }

    /// Session `idx`'s uplink path (client → server).
    pub fn up_path(&self, idx: usize) -> &DirectedPath {
        &self.up[idx]
    }

    /// Session `idx`'s downlink path (server → client).
    pub fn down_path(&self, idx: usize) -> &DirectedPath {
        &self.down[idx]
    }

    /// Total wire bytes the uplink paths have handed to the server — the
    /// link-level side of the conservation property (it must equal the
    /// sum of per-session delivered bytes).
    pub fn delivered_to_server_bytes(&self) -> u64 {
        self.delivered_to_server
    }

    /// Run the event loop until virtual time `end`.
    pub fn run_until(&mut self, end: Timestamp) {
        let mut steps = 0u32;
        while self.now < end {
            // Same cancellation checkpoint as `Simulation::run_until`.
            steps = steps.wrapping_add(1);
            if steps.is_multiple_of(1024) {
                sprout_trace::cancel::checkpoint();
            }
            self.step();
            let mut next = Timestamp::FAR_FUTURE;
            for cand in [
                self.up_wheel.next_deadline(),
                self.down_wheel.next_deadline(),
                self.client_wheel.next_deadline(),
                self.server.next_wakeup(),
            ]
            .into_iter()
            .flatten()
            {
                next = next.min(cand);
            }
            // Same forced-progress guard as `Simulation::run_until`.
            if next <= self.now {
                next = self.now + Duration::from_micros(1);
            }
            self.now = next.min(end);
        }
        // Process events falling exactly at `end`.
        self.step();
    }

    /// Process everything due at the current instant, mirroring
    /// [`Simulation`](crate::Simulation)'s phase order: uplink deliveries
    /// → downlink deliveries → client polls → server poll. Within each
    /// phase, sessions are handled in deterministic order (the wheels pop
    /// in `(deadline, index)` order; pending clients drain ascending).
    fn step(&mut self) {
        let now = self.now;
        debug_assert!(self.scratch.is_empty());

        // Uplink deliveries → the shared server.
        while let Some(idx) = self.up_wheel.pop_due(now) {
            self.up[idx].advance_into(now, &mut self.scratch);
            self.up_wheel.schedule(idx, self.up[idx].next_event());
            for p in self.scratch.drain(..) {
                self.delivered_to_server += u64::from(p.size);
                self.server.on_packet(p, now);
                self.server_pending = true;
            }
        }

        // Downlink deliveries → their clients, which then owe a poll this
        // instant (feedback follows an arrival immediately, exactly as in
        // `Simulation::step`).
        while let Some(idx) = self.down_wheel.pop_due(now) {
            self.down[idx].advance_into(now, &mut self.scratch);
            self.down_wheel.schedule(idx, self.down[idx].next_event());
            for p in self.scratch.drain(..) {
                self.clients[idx].on_packet(p, now);
            }
            self.mark_pending(idx);
        }

        // Client polls: due wakeups plus delivery-marked sessions.
        while let Some(idx) = self.client_wheel.pop_due(now) {
            self.mark_pending(idx);
        }
        self.pending_queue.sort_unstable();
        for qi in 0..self.pending_queue.len() {
            let idx = self.pending_queue[qi];
            self.pending[idx] = false;
            self.clients[idx].poll_into(now, &mut self.scratch);
            for mut p in self.scratch.drain(..) {
                p.flow = self.flows[idx];
                self.up[idx].send(p, now);
            }
            self.up_wheel.schedule(idx, self.up[idx].next_event());
            self.client_wheel
                .schedule(idx, self.clients[idx].next_wakeup());
        }
        self.pending_queue.clear();

        // Server poll: route each output packet to its session's downlink.
        if self.server_pending || self.server.next_wakeup().is_some_and(|w| w <= now) {
            self.server_pending = false;
            self.server.poll_into(now, &mut self.scratch);
            for p in self.scratch.drain(..) {
                let Some(&idx) = self.route.get(&p.flow.0) else {
                    debug_assert!(false, "server emitted unroutable flow {}", p.flow.0);
                    continue;
                };
                self.down[idx].send(p, now);
                self.down_wheel.schedule(idx, self.down[idx].next_event());
            }
        }
    }

    fn mark_pending(&mut self, idx: usize) {
        if !self.pending[idx] {
            self.pending[idx] = true;
            self.pending_queue.push(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::direction_stats;
    use sprout_trace::Trace;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    /// Sends one 100-byte packet every `period`, starting at t=0.
    struct Ticker {
        period: Duration,
        next: Timestamp,
        sent: u64,
        received: u64,
    }

    impl Ticker {
        fn new(period_ms: u64) -> Self {
            Ticker {
                period: Duration::from_millis(period_ms),
                next: Timestamp::ZERO,
                sent: 0,
                received: 0,
            }
        }
    }

    impl Endpoint for Ticker {
        fn on_packet(&mut self, _packet: Packet, _now: Timestamp) {
            self.received += 1;
        }

        fn poll_into(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
            while self.next <= now {
                out.push(Packet::opaque(FlowId::PRIMARY, self.sent, 100));
                self.sent += 1;
                self.next += self.period;
            }
        }

        fn next_wakeup(&self) -> Option<Timestamp> {
            Some(self.next)
        }
    }

    /// Echoes every arrival back on its own flow, once per packet.
    #[derive(Default)]
    struct EchoServer {
        queued: Vec<Packet>,
        per_flow: HashMap<u32, u64>,
    }

    impl Endpoint for EchoServer {
        fn on_packet(&mut self, packet: Packet, _now: Timestamp) {
            *self.per_flow.entry(packet.flow.0).or_insert(0) += u64::from(packet.size);
            self.queued.push(packet);
        }

        fn poll_into(&mut self, _now: Timestamp, out: &mut Vec<Packet>) {
            out.append(&mut self.queued);
        }

        fn next_wakeup(&self) -> Option<Timestamp> {
            None
        }
    }

    fn dense_trace(secs: u64) -> Trace {
        Trace::from_millis((0..secs * 1000).step_by(2))
    }

    #[test]
    fn per_session_bytes_are_conserved_and_routed() {
        let mut sim: ServeSim<Ticker, EchoServer> = ServeSim::new(EchoServer::default());
        for sid in 0..3u32 {
            sim.add_session(
                FlowId(sid + 10),
                Ticker::new(10 + u64::from(sid)),
                PathConfig::standard(dense_trace(2)),
                PathConfig::standard(dense_trace(2)),
            );
        }
        sim.run_until(t(1000));

        // Conservation: wire bytes handed to the server equal the sum of
        // per-session uplink deliveries, and the server saw each session
        // under its own flow id.
        let mut sum = 0;
        for idx in 0..sim.sessions() {
            let stats = direction_stats(sim.up_path(idx), Timestamp::ZERO, Timestamp::FAR_FUTURE);
            assert!(stats.delivered_bytes > 0, "session {idx} idle");
            sum += stats.delivered_bytes;
            let flow = 10 + idx as u32;
            assert_eq!(
                sim.server().per_flow.get(&flow).copied(),
                Some(stats.delivered_bytes),
                "session {idx} bytes must arrive under flow {flow}"
            );
        }
        assert_eq!(sim.delivered_to_server_bytes(), sum);

        // Sessions tick at different periods, so their counts differ.
        assert!(sim.client(0).sent > sim.client(2).sent);
        // Echoes actually came back down the per-session paths.
        for idx in 0..sim.sessions() {
            assert!(sim.client(idx).received > 0, "session {idx} got no echo");
        }
    }

    #[test]
    fn duplicate_flow_is_rejected() {
        let mut sim: ServeSim<Ticker, EchoServer> = ServeSim::new(EchoServer::default());
        sim.add_session(
            FlowId(1),
            Ticker::new(10),
            PathConfig::standard(dense_trace(1)),
            PathConfig::standard(dense_trace(1)),
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.add_session(
                FlowId(1),
                Ticker::new(10),
                PathConfig::standard(dense_trace(1)),
                PathConfig::standard(dense_trace(1)),
            );
        }));
        assert!(result.is_err(), "duplicate flow id must panic");
    }
}
