//! CoDel active queue management, from the pseudocode in Nichols &
//! Jacobson, "Controlling Queue Delay", ACM Queue 10(5), May 2012 — the
//! same reference (the paper's \[17\]) and pseudocode the paper's Cellsim used (§4.2,
//! §5.4).
//!
//! CoDel watches the *sojourn time* each packet spent in the queue. When
//! sojourn stays above `target` for at least `interval`, CoDel enters a
//! dropping state and drops packets at increasing frequency
//! (`interval / √count`) until sojourn falls below target.

use std::collections::VecDeque;

use crate::packet::Packet;
use crate::queue::Queue;
use sprout_trace::{Duration, Timestamp, MTU_BYTES};

/// CoDel parameters. Defaults are the reference values used by the paper's
/// era of CoDel: 5 ms target, 100 ms interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoDelConfig {
    /// Acceptable standing-queue delay.
    pub target: Duration,
    /// Sliding-minimum window width.
    pub interval: Duration,
}

impl Default for CoDelConfig {
    fn default() -> Self {
        CoDelConfig {
            target: Duration::from_millis(5),
            interval: Duration::from_millis(100),
        }
    }
}

/// CoDel-managed FIFO queue.
#[derive(Debug)]
pub struct CoDelQueue {
    cfg: CoDelConfig,
    queue: VecDeque<(Packet, Timestamp)>,
    bytes: u64,
    drops: u64,
    /// Time at which the sojourn time first exceeded target continuously
    /// (plus one interval); `None` when below target.
    first_above_time: Option<Timestamp>,
    /// Whether we are in the dropping state.
    dropping: bool,
    /// Scheduled time of the next drop while in the dropping state.
    drop_next: Timestamp,
    /// Number of drops since entering the current dropping state.
    count: u32,
}

struct DodequeResult {
    packet: Option<Packet>,
    ok_to_drop: bool,
}

impl CoDelQueue {
    /// A CoDel queue with the given parameters.
    pub fn new(cfg: CoDelConfig) -> Self {
        CoDelQueue {
            cfg,
            queue: VecDeque::new(),
            bytes: 0,
            drops: 0,
            first_above_time: None,
            dropping: false,
            drop_next: Timestamp::ZERO,
            count: 0,
        }
    }

    /// Whether the queue is currently in the dropping state (diagnostic).
    pub fn in_dropping_state(&self) -> bool {
        self.dropping
    }

    fn control_law(&self, t: Timestamp) -> Timestamp {
        let step = self.cfg.interval.as_micros() as f64 / (self.count.max(1) as f64).sqrt();
        t + Duration::from_micros(step as u64)
    }

    /// The reference `dodeque`: pop one packet and judge its sojourn time.
    fn dodeque(&mut self, now: Timestamp) -> DodequeResult {
        match self.queue.pop_front() {
            None => {
                self.first_above_time = None;
                DodequeResult {
                    packet: None,
                    ok_to_drop: false,
                }
            }
            Some((p, enqueued)) => {
                self.bytes -= p.size as u64;
                let sojourn = now.saturating_since(enqueued);
                let mut ok_to_drop = false;
                if sojourn < self.cfg.target || self.bytes <= MTU_BYTES as u64 {
                    self.first_above_time = None;
                } else {
                    match self.first_above_time {
                        None => {
                            self.first_above_time = Some(now + self.cfg.interval);
                        }
                        Some(fat) => {
                            if now >= fat {
                                ok_to_drop = true;
                            }
                        }
                    }
                }
                DodequeResult {
                    packet: Some(p),
                    ok_to_drop,
                }
            }
        }
    }
}

impl Queue for CoDelQueue {
    fn enqueue(&mut self, packet: Packet, now: Timestamp) {
        self.bytes += packet.size as u64;
        self.queue.push_back((packet, now));
    }

    fn dequeue(&mut self, now: Timestamp) -> Option<Packet> {
        let mut r = self.dodeque(now);
        if self.dropping {
            if !r.ok_to_drop {
                self.dropping = false;
            } else {
                while self.dropping && now >= self.drop_next {
                    // Drop r.packet and fetch the next one.
                    self.drops += 1;
                    self.count += 1;
                    r = self.dodeque(now);
                    if !r.ok_to_drop {
                        self.dropping = false;
                    } else {
                        self.drop_next = self.control_law(self.drop_next);
                    }
                }
            }
        } else if r.ok_to_drop {
            // Enter the dropping state: drop this packet, deliver the next.
            self.drops += 1;
            r = self.dodeque(now);
            self.dropping = true;
            // Reuse drop frequency from a recent dropping state (the
            // "count decay" refinement from the reference pseudocode).
            let recently = now.saturating_since(self.drop_next) < self.cfg.interval;
            self.count = if self.count > 2 && recently {
                self.count - 2
            } else {
                1
            };
            self.drop_next = self.control_law(now);
        }
        r.packet
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }

    fn packets(&self) -> usize {
        self.queue.len()
    }

    fn drops(&self) -> u64 {
        self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;

    fn pkt(seq: u64) -> Packet {
        Packet::opaque(FlowId::PRIMARY, seq, MTU_BYTES)
    }

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn below_target_never_drops() {
        let mut q = CoDelQueue::new(CoDelConfig::default());
        // Packets sit for < 5 ms: CoDel must behave as plain FIFO.
        for i in 0..100 {
            q.enqueue(pkt(i), t(i * 10));
            let got = q.dequeue(t(i * 10 + 2)).unwrap();
            assert_eq!(got.seq, i);
        }
        assert_eq!(q.drops(), 0);
    }

    #[test]
    fn persistent_standing_queue_triggers_drops() {
        let mut q = CoDelQueue::new(CoDelConfig::default());
        // Fill a deep queue at time 0, then drain slowly: every packet has
        // a huge sojourn, so after the first interval CoDel must start
        // dropping.
        for i in 0..500 {
            q.enqueue(pkt(i), t(0));
        }
        let mut delivered = 0;
        let mut now_ms = 200; // everything already has 200 ms sojourn
        while q.packets() > 0 {
            if q.dequeue(t(now_ms)).is_some() {
                delivered += 1;
            }
            now_ms += 10;
        }
        assert!(q.drops() > 0, "expected drops from a standing queue");
        assert!(delivered > 0, "must still deliver packets");
        assert_eq!(delivered + q.drops() as usize, 500);
    }

    #[test]
    fn drop_rate_increases_while_above_target() {
        let mut q = CoDelQueue::new(CoDelConfig::default());
        for i in 0..2_000 {
            q.enqueue(pkt(i), t(0));
        }
        // Drain at a steady slow pace and record inter-drop gaps.
        let mut last_drops = 0;
        let mut drop_times = Vec::new();
        for step in 0..2_000u64 {
            let now = t(500 + step * 5);
            let _ = q.dequeue(now);
            if q.drops() > last_drops {
                last_drops = q.drops();
                drop_times.push(now);
            }
            if q.packets() == 0 {
                break;
            }
        }
        assert!(drop_times.len() >= 3);
        // The control law spaces drops by interval/sqrt(count): gaps shrink.
        let first_gap = drop_times[1].saturating_since(drop_times[0]);
        let last_gap =
            drop_times[drop_times.len() - 1].saturating_since(drop_times[drop_times.len() - 2]);
        assert!(
            last_gap <= first_gap,
            "gaps should not grow: first {first_gap}, last {last_gap}"
        );
    }

    #[test]
    fn leaves_dropping_state_when_queue_clears() {
        let mut q = CoDelQueue::new(CoDelConfig::default());
        for i in 0..300 {
            q.enqueue(pkt(i), t(0));
        }
        let mut now_ms = 300;
        while q.packets() > 3 {
            let _ = q.dequeue(t(now_ms));
            now_ms += 20;
        }
        // Queue nearly empty → sojourn check sees < MTU of backlog and
        // resets; subsequent fresh traffic must not be dropped.
        for i in 0..50 {
            let now = t(now_ms + i * 20);
            q.enqueue(pkt(1000 + i), now);
            let got = q.dequeue(now + Duration::from_millis(1));
            assert!(got.is_some());
        }
        assert!(!q.in_dropping_state());
    }

    #[test]
    fn empty_queue_returns_none_and_resets() {
        let mut q = CoDelQueue::new(CoDelConfig::default());
        assert!(q.dequeue(t(100)).is_none());
        assert_eq!(q.bytes(), 0);
        assert_eq!(q.drops(), 0);
    }
}
