//! Bottleneck queues: the abstract interface plus the DropTail policy.
//!
//! Cellular base stations keep one deep queue per user (§2.1); Cellsim
//! models that queue explicitly. The queue policy is pluggable so the
//! evaluation can compare plain DropTail (deep, "bufferbloated") against
//! CoDel (§5.4), and emulate shallow-buffered carriers via a byte cap.

use std::collections::VecDeque;

use crate::packet::Packet;
use sprout_trace::Timestamp;

/// A bottleneck queue policy.
///
/// `Send` so links (and the simulations holding them) can run on worker
/// threads.
pub trait Queue: Send {
    /// Offer a packet to the queue at time `now`. The policy may drop it.
    fn enqueue(&mut self, packet: Packet, now: Timestamp);

    /// Remove the next packet to serve. `now` is the time service begins;
    /// AQM policies use it to measure sojourn time and may drop packets
    /// instead of returning them.
    fn dequeue(&mut self, now: Timestamp) -> Option<Packet>;

    /// Bytes currently queued.
    fn bytes(&self) -> u64;

    /// Packets currently queued.
    fn packets(&self) -> usize;

    /// Cumulative count of packets dropped by the policy.
    fn drops(&self) -> u64;
}

/// The explicit capacity standing in for a "deeply buffered" carrier
/// queue (§2.1). Far beyond any backlog a closed-loop or rate-adaptive
/// scheme builds in a paper-length run — measured worst case is Cubic
/// on the Verizon LTE downlink, which peaks at ~6 MiB of backlog over a
/// full 1020 s run (43× headroom, zero drops) — so behavior is
/// indistinguishable from unbounded, but finite: the byte-cap
/// accounting path is always exercised and a runaway sender cannot
/// consume unbounded memory.
pub const DEEP_QUEUE_BYTES: u64 = 256 * 1024 * 1024;

/// First-in-first-out queue that drops arriving packets once `capacity`
/// bytes are queued. `capacity = None` gives the unbounded queue of a
/// deeply buffered cellular carrier (the paper's default: its measured
/// networks "employ a non-trivial amount of packet buffering", §2.1).
#[derive(Debug)]
pub struct DropTail {
    queue: VecDeque<Packet>,
    bytes: u64,
    capacity: Option<u64>,
    drops: u64,
}

impl DropTail {
    /// Unbounded FIFO.
    pub fn unbounded() -> Self {
        DropTail {
            queue: VecDeque::new(),
            bytes: 0,
            capacity: None,
            drops: 0,
        }
    }

    /// FIFO bounded at `capacity_bytes`.
    pub fn with_capacity_bytes(capacity_bytes: u64) -> Self {
        DropTail {
            queue: VecDeque::new(),
            bytes: 0,
            capacity: Some(capacity_bytes),
            drops: 0,
        }
    }
}

impl Queue for DropTail {
    fn enqueue(&mut self, packet: Packet, _now: Timestamp) {
        if let Some(cap) = self.capacity {
            if self.bytes + packet.size as u64 > cap {
                self.drops += 1;
                return;
            }
        }
        self.bytes += packet.size as u64;
        self.queue.push_back(packet);
    }

    fn dequeue(&mut self, _now: Timestamp) -> Option<Packet> {
        let p = self.queue.pop_front()?;
        self.bytes -= p.size as u64;
        Some(p)
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }

    fn packets(&self) -> usize {
        self.queue.len()
    }

    fn drops(&self) -> u64 {
        self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;

    fn pkt(seq: u64, size: u32) -> Packet {
        Packet::opaque(FlowId::PRIMARY, seq, size)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = DropTail::unbounded();
        q.enqueue(pkt(1, 100), Timestamp::ZERO);
        q.enqueue(pkt(2, 100), Timestamp::ZERO);
        assert_eq!(q.packets(), 2);
        assert_eq!(q.bytes(), 200);
        assert_eq!(q.dequeue(Timestamp::ZERO).unwrap().seq, 1);
        assert_eq!(q.dequeue(Timestamp::ZERO).unwrap().seq, 2);
        assert!(q.dequeue(Timestamp::ZERO).is_none());
        assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn capacity_causes_tail_drop() {
        let mut q = DropTail::with_capacity_bytes(250);
        q.enqueue(pkt(1, 100), Timestamp::ZERO);
        q.enqueue(pkt(2, 100), Timestamp::ZERO);
        q.enqueue(pkt(3, 100), Timestamp::ZERO); // would exceed 250
        assert_eq!(q.packets(), 2);
        assert_eq!(q.drops(), 1);
        // Draining frees capacity again.
        q.dequeue(Timestamp::ZERO);
        q.enqueue(pkt(4, 100), Timestamp::ZERO);
        assert_eq!(q.packets(), 2);
    }

    #[test]
    fn exactly_full_is_allowed() {
        let mut q = DropTail::with_capacity_bytes(200);
        q.enqueue(pkt(1, 100), Timestamp::ZERO);
        q.enqueue(pkt(2, 100), Timestamp::ZERO);
        assert_eq!(q.packets(), 2);
        assert_eq!(q.drops(), 0);
    }
}
