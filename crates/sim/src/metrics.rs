//! Evaluation metrics (§5.1).
//!
//! * **Throughput**: bytes delivered in the measurement window divided by
//!   its duration.
//! * **95% end-to-end delay**: the 95th percentile, over time, of the
//!   instantaneous-delay function — at any instant, the time since the
//!   most recently *sent* packet that has already *arrived* was sent. Per
//!   the paper's footnote 7, without reordering this function jumps down
//!   to each arriving packet's delay and then grows at 1 s/s until the
//!   next arrival. We compute the percentile exactly from the piecewise-
//!   linear function, never by sampling.
//! * **Self-inflicted delay**: the protocol's 95% delay minus the 95%
//!   delay of an omniscient protocol that sends packets timed to arrive
//!   exactly when the link can take them.
//! * **Utilization** (Fig. 8): delivered bytes over the link's capacity in
//!   the window.
//!
//! All quantities honor the warm-up skip: the paper discards the first
//! minute of each run (§5.1).

use crate::packet::FlowId;
use sprout_trace::{Duration, Timestamp, Trace, MTU_BYTES};

/// One delivered packet, as recorded at the receiving edge of the link.
#[derive(Clone, Copy, Debug)]
pub struct DeliveryRecord {
    /// When the sender handed the packet to the network.
    pub sent_at: Timestamp,
    /// When the packet reached the receiver.
    pub delivered_at: Timestamp,
    /// Bytes on the wire.
    pub size: u32,
    /// Flow the packet belonged to.
    pub flow: FlowId,
}

/// Accumulates the delivery log of one path direction.
#[derive(Clone, Debug, Default)]
pub struct MetricsCollector {
    records: Vec<DeliveryRecord>,
}

impl MetricsCollector {
    /// Empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a delivery. Must be called in non-decreasing `delivered_at`
    /// order (the event loop guarantees this).
    pub fn record(&mut self, rec: DeliveryRecord) {
        debug_assert!(self
            .records
            .last()
            .map(|l| l.delivered_at <= rec.delivered_at)
            .unwrap_or(true));
        self.records.push(rec);
    }

    /// All records, in delivery order.
    pub fn records(&self) -> &[DeliveryRecord] {
        &self.records
    }

    /// Bytes delivered with `delivered_at` ∈ `[from, to)`, optionally for
    /// one flow only.
    pub fn delivered_bytes(&self, from: Timestamp, to: Timestamp, flow: Option<FlowId>) -> u64 {
        self.records
            .iter()
            .filter(|r| r.delivered_at >= from && r.delivered_at < to)
            .filter(|r| flow.map(|f| r.flow == f).unwrap_or(true))
            .map(|r| r.size as u64)
            .sum()
    }

    /// Average throughput in kbps over `[from, to)`.
    pub fn throughput_kbps(&self, from: Timestamp, to: Timestamp) -> f64 {
        throughput_kbps_of(self.delivered_bytes(from, to, None), from, to)
    }

    /// Average throughput of one flow in kbps over `[from, to)`.
    pub fn flow_throughput_kbps(&self, flow: FlowId, from: Timestamp, to: Timestamp) -> f64 {
        throughput_kbps_of(self.delivered_bytes(from, to, Some(flow)), from, to)
    }

    /// The instantaneous-delay function restricted to `[from, to)`,
    /// described as linear segments `(segment_length, delay_at_start)`;
    /// within each segment delay grows at 1 s/s, and for the purpose of
    /// this metric only arrivals from `flow` (or all flows) count.
    fn delay_segments(
        &self,
        from: Timestamp,
        to: Timestamp,
        flow: Option<FlowId>,
    ) -> Vec<(Duration, Duration)> {
        let relevant = |r: &&DeliveryRecord| flow.map(|f| r.flow == f).unwrap_or(true);

        // The freshest (max sent_at) packet that arrived before the window
        // opens seeds the function; reordering is handled by tracking the
        // running max of sent_at rather than the last arrival.
        let mut max_sent: Option<Timestamp> = self
            .records
            .iter()
            .filter(relevant)
            .take_while(|r| r.delivered_at < from)
            .map(|r| r.sent_at)
            .max();

        let mut segments = Vec::new();
        let mut cursor = from;
        for r in self
            .records
            .iter()
            .filter(relevant)
            .skip_while(|r| r.delivered_at < from)
            .take_while(|r| r.delivered_at < to)
        {
            match max_sent {
                Some(ms) => {
                    let seg_len = r.delivered_at.saturating_since(cursor);
                    if seg_len > Duration::ZERO {
                        segments.push((seg_len, cursor.saturating_since(ms)));
                    }
                }
                None => {
                    // Nothing had arrived yet: the function is undefined
                    // before the first in-window arrival; start there.
                }
            }
            if max_sent.map(|ms| r.sent_at > ms).unwrap_or(true) {
                max_sent = Some(r.sent_at);
            }
            cursor = r.delivered_at;
        }
        if let Some(ms) = max_sent {
            let seg_len = to.saturating_since(cursor);
            if seg_len > Duration::ZERO {
                segments.push((seg_len, cursor.saturating_since(ms)));
            }
        }
        segments
    }

    /// Exact percentile (0 < pct < 100) over time of the instantaneous
    /// delay in `[from, to)`. `None` if no packet arrives in (or before)
    /// the window.
    pub fn delay_percentile(
        &self,
        pct: f64,
        from: Timestamp,
        to: Timestamp,
        flow: Option<FlowId>,
    ) -> Option<Duration> {
        assert!((0.0..100.0).contains(&pct) && pct > 0.0);
        let segments = self.delay_segments(from, to, flow);
        percentile_of_segments(&segments, pct)
    }

    /// The paper's headline "95% end-to-end delay".
    pub fn p95_delay(&self, from: Timestamp, to: Timestamp) -> Option<Duration> {
        self.delay_percentile(95.0, from, to, None)
    }

    /// 95% end-to-end delay of a single flow (used by the §5.7 tunnel
    /// experiment, which reports Skype's delay separately).
    pub fn flow_p95_delay(&self, flow: FlowId, from: Timestamp, to: Timestamp) -> Option<Duration> {
        self.delay_percentile(95.0, from, to, Some(flow))
    }

    /// Throughput per time bin (for Figure 1's throughput panel).
    pub fn throughput_series_kbps(
        &self,
        bin: Duration,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<(Timestamp, f64)> {
        assert!(bin > Duration::ZERO);
        let mut out = Vec::new();
        let mut start = from;
        while start < to {
            let end = (start + bin).min(to);
            let bytes = self.delivered_bytes(start, end, None);
            out.push((start, throughput_kbps_of(bytes, start, end)));
            start = end;
        }
        out
    }

    /// Per-arrival delay samples (for Figure 1's delay panel).
    pub fn delay_series(&self) -> impl Iterator<Item = (Timestamp, Duration)> + '_ {
        self.records
            .iter()
            .map(|r| (r.delivered_at, r.delivered_at.saturating_since(r.sent_at)))
    }
}

fn throughput_kbps_of(bytes: u64, from: Timestamp, to: Timestamp) -> f64 {
    let secs = to.saturating_since(from).as_secs_f64();
    if secs == 0.0 {
        return 0.0;
    }
    bytes as f64 * 8.0 / secs / 1e3
}

/// Percentile over time of a piecewise function made of segments that each
/// last `len` and ramp linearly from `start_delay` to `start_delay + len`.
fn percentile_of_segments(segments: &[(Duration, Duration)], pct: f64) -> Option<Duration> {
    let total: u64 = segments.iter().map(|(len, _)| len.as_micros()).sum();
    if total == 0 {
        return None;
    }
    let want = (total as f64 * pct / 100.0).ceil() as u64;
    // time_at_or_below(d) is monotone in d: binary-search the percentile.
    let time_at_or_below = |d: u64| -> u64 {
        segments
            .iter()
            .map(|(len, start)| {
                let lo = start.as_micros();
                (d.saturating_sub(lo)).min(len.as_micros())
            })
            .sum()
    };
    let mut lo = 0u64;
    let mut hi = segments
        .iter()
        .map(|(len, start)| start.as_micros() + len.as_micros())
        .max()
        .unwrap_or(0);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if time_at_or_below(mid) >= want {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(Duration::from_micros(lo))
}

/// 95% end-to-end delay of the omniscient protocol on `trace` (§5.1): its
/// packets arrive exactly at delivery opportunities after crossing the
/// `prop_delay` wire, so its instantaneous delay is `prop_delay` at each
/// opportunity, growing at 1 s/s until the next one.
pub fn omniscient_delay_percentile(
    trace: &Trace,
    prop_delay: Duration,
    pct: f64,
    from: Timestamp,
    to: Timestamp,
) -> Option<Duration> {
    let ops = trace.opportunities();
    let lo = ops.partition_point(|&t| t < from);
    let hi = ops.partition_point(|&t| t < to);
    if lo >= hi {
        return None;
    }
    let mut segments = Vec::with_capacity(hi - lo + 2);
    // If an opportunity gap straddles the window start, the instantaneous
    // delay is already ramping when measurement begins: continue it from
    // the last pre-window opportunity, exactly as the measured-delay
    // estimator (`delay_segments`) seeds itself from pre-window arrivals.
    // Skipping this prefix would understate the floor and turn an outage
    // at the warmup boundary into phantom self-inflicted delay.
    if lo > 0 && ops[lo] > from {
        let last_before = ops[lo - 1];
        segments.push((
            ops[lo].saturating_since(from),
            prop_delay + from.saturating_since(last_before),
        ));
    }
    let mut cursor = ops[lo];
    for &t in &ops[lo + 1..hi] {
        if t > cursor {
            segments.push((t - cursor, prop_delay));
            cursor = t;
        }
    }
    if to > cursor + Duration::ZERO {
        segments.push((to.saturating_since(cursor), prop_delay));
    }
    percentile_of_segments(&segments, pct)
}

/// The omniscient 95% end-to-end delay (the self-inflicted-delay baseline).
pub fn omniscient_p95_delay(
    trace: &Trace,
    prop_delay: Duration,
    from: Timestamp,
    to: Timestamp,
) -> Option<Duration> {
    omniscient_delay_percentile(trace, prop_delay, 95.0, from, to)
}

/// Self-inflicted delay: protocol p95 minus omniscient p95, floored at 0.
pub fn self_inflicted_delay(protocol_p95: Duration, omniscient_p95: Duration) -> Duration {
    protocol_p95.saturating_sub(omniscient_p95)
}

/// Jain's fairness index over per-flow allocations (throughputs):
/// `J = (Σxᵢ)² / (n · Σxᵢ²)`, ranging from `1/n` (one flow hogs
/// everything) to `1.0` (perfectly equal shares). Conventions:
///
/// * `None` for an empty slice — fairness of nothing is undefined;
/// * `Some(1.0)` when every allocation is zero (equal, if degenerate —
///   a cell whose flows all starved is "fair" in Jain's sense, and the
///   throughput column next to it makes the starvation obvious);
/// * non-finite or negative allocations are rejected with `None`
///   rather than silently skewing the index.
pub fn jain_fairness_index(allocations: &[f64]) -> Option<f64> {
    if allocations.is_empty() || allocations.iter().any(|x| !x.is_finite() || *x < 0.0) {
        return None;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return Some(1.0);
    }
    Some(sum * sum / (allocations.len() as f64 * sum_sq))
}

/// Link utilization over `[from, to)`: delivered bytes / capacity bytes.
pub fn utilization(delivered_bytes: u64, trace: &Trace, from: Timestamp, to: Timestamp) -> f64 {
    let cap = trace.opportunities_between(from, to) as u64 * MTU_BYTES as u64;
    if cap == 0 {
        return 0.0;
    }
    delivered_bytes as f64 / cap as f64
}

/// Graceful-degradation summary of one direction under fault injection
/// (all `None`/zero when the link had no outages in the window).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DegradationStats {
    /// Outage windows intersecting the measurement window.
    pub outage_count: u32,
    /// Worst-case post-outage recovery time: for each outage ending
    /// inside the window, the time from the link's return until
    /// end-to-end delay first re-enters the cell's 95th-percentile
    /// target; an outage whose delay never re-enters contributes the
    /// remaining window length (a lower bound), so the metric is always
    /// finite when an outage ends in-window. `None` when no outage ends
    /// inside the window.
    pub recovery: Option<Duration>,
    /// Fraction of link capacity delivered while degraded (inside an
    /// outage or its recovery tail). `None` when the degraded intervals
    /// contain no capacity.
    pub degraded_delivered_fraction: Option<f64>,
}

/// Compute [`DegradationStats`] for one direction over `[from, to)`.
///
/// `outages` is the link's injected outage schedule (non-overlapping,
/// sorted); `target` is the delay bar that defines "recovered" —
/// conventionally the direction's own p95 over the same window. With no
/// deliveries (`target == None`) every outage counts as unrecovered for
/// the remainder of the window.
pub fn degradation_stats(
    m: &MetricsCollector,
    trace: &Trace,
    outages: &[(Timestamp, Timestamp)],
    from: Timestamp,
    to: Timestamp,
    target: Option<Duration>,
) -> DegradationStats {
    let relevant: Vec<(Timestamp, Timestamp)> = outages
        .iter()
        .copied()
        .filter(|&(start, end)| start < to && end > from)
        .collect();
    if relevant.is_empty() {
        return DegradationStats::default();
    }
    let records = m.records();
    let mut worst_recovery: Option<Duration> = None;
    let mut degraded_delivered: u64 = 0;
    let mut degraded_capacity: u64 = 0;
    for (i, &(start, end)) in relevant.iter().enumerate() {
        // Degraded interval: the outage itself plus the recovery tail,
        // clamped to the measurement window and to the next outage's
        // start (whose own interval covers from there).
        let next_start = relevant.get(i + 1).map(|w| w.0).unwrap_or(to);
        let recovered_at = if end >= to {
            to // the outage never ends in-window: degraded to the end
        } else {
            let idx = records.partition_point(|r| r.delivered_at < end);
            let re_entry = target.and_then(|bar| {
                records[idx..]
                    .iter()
                    .find(|r| r.delivered_at.saturating_since(r.sent_at) <= bar)
                    .map(|r| r.delivered_at)
            });
            let recovered_at = re_entry.unwrap_or(to).min(to);
            let recovery = recovered_at.saturating_since(end);
            worst_recovery = Some(worst_recovery.map_or(recovery, |w| w.max(recovery)));
            recovered_at
        };
        let deg_from = start.max(from);
        let deg_to = recovered_at.min(to).min(next_start);
        if deg_to > deg_from {
            degraded_delivered += m.delivered_bytes(deg_from, deg_to, None);
            degraded_capacity +=
                trace.opportunities_between(deg_from, deg_to) as u64 * MTU_BYTES as u64;
        }
    }
    DegradationStats {
        outage_count: relevant.len() as u32,
        recovery: worst_recovery,
        degraded_delivered_fraction: if degraded_capacity > 0 {
            Some(degraded_delivered as f64 / degraded_capacity as f64)
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn d(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    fn rec(sent_ms: u64, delivered_ms: u64) -> DeliveryRecord {
        DeliveryRecord {
            sent_at: t(sent_ms),
            delivered_at: t(delivered_ms),
            size: MTU_BYTES,
            flow: FlowId::PRIMARY,
        }
    }

    #[test]
    fn degradation_stats_measures_recovery_and_degraded_delivery() {
        // Steady 30 ms-delay stream, an outage at [1s, 2s), a spike of
        // delayed deliveries afterwards, then delay re-enters the target.
        let mut m = MetricsCollector::new();
        for i in 0..100 {
            m.record(rec(i * 10, i * 10 + 30)); // up to 1.02 s
        }
        // Post-outage drain: packets sent during the outage arrive late.
        m.record(rec(1_100, 2_050));
        m.record(rec(1_200, 2_100));
        m.record(rec(2_170, 2_200)); // delay 30 ms: recovered at 2.2 s
        for i in 0..50 {
            m.record(rec(2_300 + i * 10, 2_330 + i * 10));
        }
        let trace = Trace::from_millis((0..300).map(|i| i * 10));
        let outages = [(t(1_000), t(2_000))];
        let stats = degradation_stats(&m, &trace, &outages, t(0), t(3_000), Some(d(100)));
        assert_eq!(stats.outage_count, 1);
        assert_eq!(stats.recovery, Some(d(200)), "recovered at 2.2 s");
        // Degraded interval [1.0 s, 2.2 s): 120 opportunities of capacity;
        // 5 packets delivered inside it (the stream's tail at 1.00–1.02 s
        // plus the two late drain packets; the 2.2 s one is excluded by
        // the half-open interval).
        let frac = stats.degraded_delivered_fraction.unwrap();
        assert!((frac - 5.0 / 120.0).abs() < 1e-9, "fraction {frac}");
        // No outage in window → all-default stats.
        assert_eq!(
            degradation_stats(&m, &trace, &[], t(0), t(3_000), Some(d(100))),
            DegradationStats::default()
        );
        // Outage that never ends in-window: clamped, not ignored.
        let open = degradation_stats(&m, &trace, &[(t(2_500), t(9_000))], t(0), t(3_000), None);
        assert_eq!(open.outage_count, 1);
        assert_eq!(open.recovery, None, "no post-outage period in window");
    }

    #[test]
    fn unrecovered_outage_counts_remaining_window() {
        // Delay never re-enters the target after the outage.
        let mut m = MetricsCollector::new();
        m.record(rec(0, 30));
        m.record(rec(500, 2_500)); // 2 s delay, way above target
        let trace = Trace::from_millis((0..300).map(|i| i * 10));
        let stats = degradation_stats(
            &m,
            &trace,
            &[(t(1_000), t(1_200))],
            t(0),
            t(3_000),
            Some(d(100)),
        );
        assert_eq!(stats.outage_count, 1);
        assert_eq!(
            stats.recovery,
            Some(t(3_000) - t(1_200)),
            "unrecovered outages are charged to the window end"
        );
    }

    #[test]
    fn throughput_counts_window_bytes() {
        let mut m = MetricsCollector::new();
        m.record(rec(0, 100));
        m.record(rec(50, 200));
        m.record(rec(100, 1_100)); // outside [0, 1000)
                                   // 2 × 1500 B × 8 / 1 s = 24 kbps.
        assert!((m.throughput_kbps(t(0), t(1_000)) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn constant_delay_stream_has_that_delay_at_p95ish() {
        // Packets sent every 10 ms, each delayed 30 ms: the delay function
        // oscillates in [30, 40] ms, so p95 ≈ 39.5 ms.
        let mut m = MetricsCollector::new();
        for i in 0..1_000 {
            m.record(rec(i * 10, i * 10 + 30));
        }
        let p95 = m.p95_delay(t(0), t(10_030)).unwrap();
        assert!(p95 >= d(38) && p95 <= d(40), "expected ~39.5 ms, got {p95}");
    }

    #[test]
    fn delay_grows_across_gaps() {
        // One packet at 100 ms (delay 20 ms) then silence until 5.1 s.
        // Just before the second arrival the delay reaches 20 + 5000 ms.
        let mut m = MetricsCollector::new();
        m.record(rec(80, 100));
        m.record(rec(5_080, 5_100));
        // p99.9 over [0, 5.2 s): dominated by the tail of the long ramp.
        let p999 = m.delay_percentile(99.9, t(0), t(5_200), None).unwrap();
        assert!(p999 > d(4_900), "got {p999}");
        // Median is near half the ramp.
        let p50 = m.delay_percentile(50.0, t(0), t(5_200), None).unwrap();
        assert!(p50 > d(2_000) && p50 < d(3_000), "got {p50}");
    }

    #[test]
    fn reordering_uses_most_recently_sent_arrived_packet() {
        // A stale packet (sent at 0) arrives *after* a fresh one (sent at
        // 90): the stale arrival must not reset the delay function upward.
        let mut m = MetricsCollector::new();
        m.record(rec(90, 100));
        m.record(rec(0, 110)); // late straggler
        m.record(rec(190, 200));
        let p95 = m.p95_delay(t(100), t(200)).unwrap();
        // Delay at 100 ms is 10 ms, grows to 110 ms just before 200 ms:
        // p95 = 10 + 0.95*100 = 105 ms. With the bug (resetting to the
        // straggler) it would exceed 110 ms immediately at t=110.
        assert!(p95 > d(100) && p95 <= d(106), "got {p95}");
    }

    #[test]
    fn window_with_no_arrivals_is_none() {
        let m = MetricsCollector::new();
        assert_eq!(m.p95_delay(t(0), t(1_000)), None);
    }

    #[test]
    fn arrivals_before_window_seed_the_function() {
        let mut m = MetricsCollector::new();
        m.record(rec(0, 20));
        // Window [1 s, 2 s): no arrivals inside, delay ramps from 1 s to 2 s.
        let p50 = m.delay_percentile(50.0, t(1_000), t(2_000), None).unwrap();
        assert!(p50 >= d(1_480) && p50 <= d(1_520), "got {p50}");
    }

    #[test]
    fn omniscient_delay_on_regular_trace_is_prop_plus_gap_tail() {
        // Opportunities every 100 ms, prop 20 ms: delay ramps 20→120 ms;
        // p95 = 20 + 95 = 115 ms.
        let trace = Trace::from_millis((0..100).map(|i| i * 100));
        let p95 = omniscient_p95_delay(&trace, d(20), t(0), t(9_900)).unwrap();
        assert!(p95 >= d(114) && p95 <= d(116), "got {p95}");
    }

    #[test]
    fn omniscient_outage_dominates_tail() {
        // Dense opportunities except a 5 s hole: the p95 is pulled up by
        // the hole (the paper's point: even omniscient protocols suffer
        // outage delay).
        let mut ms: Vec<u64> = (0..1_000).map(|i| i * 10).collect(); // 0..10 s
        ms.extend((1_500..2_500).map(|i| i * 10)); // 15 s .. 25 s
        let trace = Trace::from_millis(ms);
        let p95 = omniscient_p95_delay(&trace, d(20), t(0), t(25_000)).unwrap();
        assert!(p95 > d(1_000), "outage must lift p95, got {p95}");
    }

    #[test]
    fn self_inflicted_is_difference_floored() {
        assert_eq!(self_inflicted_delay(d(500), d(120)), d(380));
        assert_eq!(self_inflicted_delay(d(100), d(120)), Duration::ZERO);
    }

    #[test]
    fn utilization_is_fraction_of_capacity() {
        let trace = Trace::from_millis((0..100).map(|i| i * 10));
        // 100 opportunities = 150000 B capacity; deliver half.
        let u = utilization(75_000, &trace, t(0), t(1_000));
        assert!((u - 0.5).abs() < 1e-9);
    }

    #[test]
    fn jain_index_is_one_for_equal_flows() {
        for n in 1..=8 {
            let equal = vec![250.0; n];
            let j = jain_fairness_index(&equal).unwrap();
            assert!((j - 1.0).abs() < 1e-12, "n={n} equal flows, got {j}");
        }
    }

    #[test]
    fn jain_index_one_hog_hits_the_lower_bound() {
        // One flow takes everything: J = 1/n, the index's minimum.
        for n in 2..=8 {
            let mut hog = vec![0.0; n];
            hog[0] = 1000.0;
            let j = jain_fairness_index(&hog).unwrap();
            assert!((j - 1.0 / n as f64).abs() < 1e-12, "n={n}, got {j}");
        }
        // And every mix stays within [1/n, 1].
        let mixed = [900.0, 50.0, 25.0, 25.0];
        let j = jain_fairness_index(&mixed).unwrap();
        assert!(j > 0.25 && j < 1.0, "got {j}");
    }

    #[test]
    fn jain_index_edge_cases() {
        assert_eq!(jain_fairness_index(&[]), None, "empty is undefined");
        assert_eq!(
            jain_fairness_index(&[0.0, 0.0, 0.0]),
            Some(1.0),
            "all-zero flows are (degenerately) equal"
        );
        assert_eq!(jain_fairness_index(&[1.0, f64::NAN]), None);
        assert_eq!(jain_fairness_index(&[1.0, f64::INFINITY]), None);
        assert_eq!(jain_fairness_index(&[1.0, -1.0]), None);
        // The index is scale-invariant.
        let a = jain_fairness_index(&[1.0, 2.0, 3.0]).unwrap();
        let b = jain_fairness_index(&[100.0, 200.0, 300.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn flow_filtering_separates_flows() {
        let mut m = MetricsCollector::new();
        let mut r1 = rec(0, 100);
        r1.flow = FlowId(1);
        let mut r2 = rec(0, 200);
        r2.flow = FlowId(2);
        m.record(r1);
        m.record(r2);
        assert_eq!(m.delivered_bytes(t(0), t(1_000), Some(FlowId(1))), 1_500);
        assert_eq!(m.delivered_bytes(t(0), t(1_000), None), 3_000);
        assert!(m.flow_p95_delay(FlowId(1), t(0), t(1_000)).is_some());
        assert!(m.flow_p95_delay(FlowId(9), t(0), t(1_000)).is_none());
    }

    #[test]
    fn throughput_series_has_expected_bins() {
        let mut m = MetricsCollector::new();
        for i in 0..10 {
            m.record(rec(i * 100, i * 100 + 20));
        }
        let series = m.throughput_series_kbps(d(500), t(0), t(1_000));
        assert_eq!(series.len(), 2);
        assert!(series.iter().all(|(_, kbps)| *kbps > 0.0));
    }

    #[test]
    fn percentile_of_segments_handles_flat_segments() {
        // Two segments: 900 ms ramping from delay 10 ms, then 100 ms
        // ramping from delay 1000 ms. Cumulative time-below-D is piecewise
        // linear: p50 ⇒ 500 ms of time at or below D ⇒ D = 510 ms.
        let segs = vec![(d(900), d(10)), (d(100), d(1_000))];
        let p50 = percentile_of_segments(&segs, 50.0).unwrap();
        assert!(p50 >= d(509) && p50 <= d(511), "got {p50}");
        let p99 = percentile_of_segments(&segs, 99.0).unwrap();
        assert!(p99 >= d(1_089) && p99 <= d(1_091), "got {p99}");
    }
}
