//! The sans-IO endpoint abstraction.
//!
//! Every protocol in this workspace — Sprout itself, the TCP baselines, the
//! videoconference app models, the tunnel — is a state machine implementing
//! [`Endpoint`]. The state machine never touches sockets or clocks; it is
//! driven by whoever owns it: the virtual-time event loop ([`crate::run`])
//! in experiments, or a real-socket driver (`sprout-net`) in live use.
//! This is the smoltcp idiom: explicit `poll(now)`-style interfaces keep
//! the protocol logic deterministic and testable.

use crate::packet::Packet;
use sprout_trace::Timestamp;

/// A protocol endpoint driven by packet arrivals and time.
///
/// `Send` is a supertrait so whole simulations — including `Box<dyn
/// Endpoint>` trait objects — can move onto worker threads; the sweep
/// engine in `sprout-bench` executes scenario cells in parallel.
pub trait Endpoint: Send {
    /// A packet addressed to this endpoint has arrived.
    fn on_packet(&mut self, packet: Packet, now: Timestamp);

    /// Give the endpoint a chance to transmit: *append* every packet the
    /// endpoint is willing to send at `now` to `out` (which may already
    /// hold other endpoints' packets — do not clear or reorder it). The
    /// driver stamps `sent_at`. This is the required method so the event
    /// loop can recycle one buffer across all endpoints and steps instead
    /// of allocating a fresh `Vec` per poll tick.
    fn poll_into(&mut self, now: Timestamp, out: &mut Vec<Packet>);

    /// Allocating convenience form of [`Endpoint::poll_into`] (tests,
    /// examples, drivers outside the hot loop).
    fn poll(&mut self, now: Timestamp) -> Vec<Packet> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// The next time this endpoint needs to be polled even if no packet
    /// arrives (tick boundaries, retransmission timers, pacing release
    /// times). `None` means "only wake me on packet arrival".
    fn next_wakeup(&self) -> Option<Timestamp>;
}

impl<T: Endpoint + ?Sized> Endpoint for Box<T> {
    fn on_packet(&mut self, packet: Packet, now: Timestamp) {
        (**self).on_packet(packet, now)
    }
    fn poll_into(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
        (**self).poll_into(now, out)
    }
    fn poll(&mut self, now: Timestamp) -> Vec<Packet> {
        (**self).poll(now)
    }
    fn next_wakeup(&self) -> Option<Timestamp> {
        (**self).next_wakeup()
    }
}

/// An endpoint that discards everything and never transmits. Useful as the
/// quiet end of one-directional experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct SinkEndpoint {
    received: u64,
}

impl SinkEndpoint {
    /// New sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes received.
    pub fn received_bytes(&self) -> u64 {
        self.received
    }
}

impl Endpoint for SinkEndpoint {
    fn on_packet(&mut self, packet: Packet, _now: Timestamp) {
        self.received += packet.size as u64;
    }
    fn poll_into(&mut self, _now: Timestamp, _out: &mut Vec<Packet>) {}
    fn next_wakeup(&self) -> Option<Timestamp> {
        None
    }
}

/// Several independent endpoints sharing one network path, distinguished
/// by [`crate::packet::FlowId`]: the "direct" (untunneled) configuration
/// of the §5.7 experiment — a Skype call and a TCP download commingling
/// in one per-user cellular queue — and the substrate of the N-flow
/// contention cells that generalize it. Outgoing packets are re-stamped
/// with each child's flow id, so the path's delivery log attributes
/// every packet to its flow and per-flow metrics fall out of the shared
/// link's own records.
pub struct MuxEndpoint {
    children: Vec<(crate::packet::FlowId, Box<dyn Endpoint>)>,
}

impl MuxEndpoint {
    /// Empty mux.
    pub fn new() -> Self {
        MuxEndpoint {
            children: Vec::new(),
        }
    }

    /// Attach `child` under `flow`. Outgoing packets are re-stamped with
    /// the flow id; incoming packets are routed by it.
    pub fn add(&mut self, flow: crate::packet::FlowId, child: Box<dyn Endpoint>) {
        self.children.push((flow, child));
    }

    /// Borrow a child endpoint by flow.
    pub fn child(&self, flow: crate::packet::FlowId) -> Option<&dyn Endpoint> {
        self.children
            .iter()
            .find(|(f, _)| *f == flow)
            .map(|(_, c)| &**c)
    }
}

impl Default for MuxEndpoint {
    fn default() -> Self {
        Self::new()
    }
}

impl Endpoint for MuxEndpoint {
    fn on_packet(&mut self, packet: Packet, now: Timestamp) {
        if let Some((_, child)) = self.children.iter_mut().find(|(f, _)| *f == packet.flow) {
            child.on_packet(packet, now);
        }
    }

    fn poll_into(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
        for (flow, child) in &mut self.children {
            // Re-stamp only this child's packets: everything it appended
            // beyond the high-water mark it was handed.
            let start = out.len();
            child.poll_into(now, out);
            for p in &mut out[start..] {
                p.flow = *flow;
            }
        }
    }

    fn next_wakeup(&self) -> Option<Timestamp> {
        self.children
            .iter()
            .filter_map(|(_, c)| c.next_wakeup())
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;

    #[test]
    fn sink_counts_bytes_and_stays_silent() {
        let mut sink = SinkEndpoint::new();
        sink.on_packet(Packet::opaque(FlowId::PRIMARY, 0, 100), Timestamp::ZERO);
        sink.on_packet(Packet::opaque(FlowId::PRIMARY, 1, 50), Timestamp::ZERO);
        assert_eq!(sink.received_bytes(), 150);
        assert!(sink.poll(Timestamp::ZERO).is_empty());
        assert_eq!(sink.next_wakeup(), None);
    }

    #[test]
    fn boxed_endpoint_delegates() {
        let mut boxed: Box<dyn Endpoint> = Box::new(SinkEndpoint::new());
        boxed.on_packet(Packet::opaque(FlowId::PRIMARY, 0, 10), Timestamp::ZERO);
        assert!(boxed.poll(Timestamp::ZERO).is_empty());
        assert_eq!(boxed.next_wakeup(), None);
    }
}

#[cfg(test)]
mod mux_tests {
    use super::*;
    use crate::packet::FlowId;

    /// Echoes every received packet back and sends one greeting at t=0.
    struct Chatter {
        sent_greeting: bool,
        echoes: Vec<Packet>,
    }
    impl Chatter {
        fn new() -> Self {
            Chatter {
                sent_greeting: false,
                echoes: Vec::new(),
            }
        }
    }
    impl Endpoint for Chatter {
        fn on_packet(&mut self, packet: Packet, _now: Timestamp) {
            self.echoes.push(packet);
        }
        fn poll_into(&mut self, _now: Timestamp, out: &mut Vec<Packet>) {
            out.append(&mut self.echoes);
            if !self.sent_greeting {
                self.sent_greeting = true;
                out.push(Packet::opaque(FlowId(99), 0, 100)); // wrong flow id on purpose
            }
        }
        fn next_wakeup(&self) -> Option<Timestamp> {
            None
        }
    }

    #[test]
    fn mux_restamps_and_routes_flows() {
        let mut mux = MuxEndpoint::new();
        mux.add(FlowId(1), Box::new(Chatter::new()));
        mux.add(FlowId(2), Box::new(Chatter::new()));
        let out = mux.poll(Timestamp::ZERO);
        assert_eq!(out.len(), 2);
        // Children's flow ids are overwritten by the mux.
        assert!(out.iter().any(|p| p.flow == FlowId(1)));
        assert!(out.iter().any(|p| p.flow == FlowId(2)));
        // Routing: a packet for flow 2 only reaches child 2.
        mux.on_packet(Packet::opaque(FlowId(2), 7, 10), Timestamp::ZERO);
        let echoed = mux.poll(Timestamp::ZERO);
        assert_eq!(echoed.len(), 1);
        assert_eq!(echoed[0].flow, FlowId(2));
        assert_eq!(echoed[0].seq, 7);
    }

    #[test]
    fn unknown_flow_is_dropped() {
        let mut mux = MuxEndpoint::new();
        mux.add(FlowId(1), Box::new(Chatter::new()));
        let _ = mux.poll(Timestamp::ZERO);
        mux.on_packet(Packet::opaque(FlowId(5), 0, 10), Timestamp::ZERO);
        assert!(mux.poll(Timestamp::ZERO).is_empty());
    }
}
