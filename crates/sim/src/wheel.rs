//! A lazy-deletion timer wheel over dense indices.
//!
//! Event loops that drive N independent components (the multi-session
//! server, the per-session paths of [`crate::ServeSim`]) need "who is
//! due at or before `now`?" without scanning all N per event. The wheel
//! is a binary heap of `(deadline, index)` candidates plus a `scheduled`
//! column recording each index's single *valid* deadline: re-arming is a
//! push (the superseded entry goes stale and is skipped on pop), so both
//! arming and popping stay `O(log n)` amortized.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sprout_trace::Timestamp;

/// A lazy-deletion timer wheel: the heap may hold stale deadlines, but
/// `scheduled` records each index's only valid one, so stale pops are
/// skipped and re-arming never rebuilds the heap.
#[derive(Default)]
pub struct TimerWheel {
    heap: BinaryHeap<Reverse<(Timestamp, usize)>>,
    /// The currently valid deadline per index (`None` = unarmed).
    scheduled: Vec<Option<Timestamp>>,
}

impl TimerWheel {
    /// Empty wheel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm (or re-arm) index `idx` to fire at `at`. `None` disarms.
    pub fn schedule(&mut self, idx: usize, at: Option<Timestamp>) {
        if self.scheduled.len() <= idx {
            self.scheduled.resize(idx + 1, None);
        }
        // Skip the push when the valid deadline is unchanged — re-arming
        // an idle component to the same tick boundary every step would
        // otherwise grow the heap without bound.
        if self.scheduled[idx] == at {
            return;
        }
        self.scheduled[idx] = at;
        if let Some(t) = at {
            self.heap.push(Reverse((t, idx)));
        }
    }

    /// Earliest armed deadline across all indices (amortized stale-entry
    /// cleanup).
    pub fn next_deadline(&mut self) -> Option<Timestamp> {
        while let Some(Reverse((t, idx))) = self.heap.peek().copied() {
            if self.scheduled.get(idx).copied().flatten() == Some(t) {
                return Some(t);
            }
            self.heap.pop(); // stale: superseded or disarmed
        }
        None
    }

    /// Pop the next index due at or before `now` (disarming it), in
    /// deterministic `(deadline, index)` order.
    pub fn pop_due(&mut self, now: Timestamp) -> Option<usize> {
        while let Some(Reverse((t, idx))) = self.heap.peek().copied() {
            if self.scheduled.get(idx).copied().flatten() != Some(t) {
                self.heap.pop(); // stale
                continue;
            }
            if t > now {
                return None;
            }
            self.heap.pop();
            self.scheduled[idx] = None;
            return Some(idx);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn pops_in_deadline_order_and_skips_stale_entries() {
        let mut w = TimerWheel::new();
        w.schedule(0, Some(t(30)));
        w.schedule(1, Some(t(10)));
        w.schedule(2, Some(t(20)));
        w.schedule(1, Some(t(40))); // re-arm: the t(10) entry is now stale
        assert_eq!(w.next_deadline(), Some(t(20)));
        assert_eq!(w.pop_due(t(25)), Some(2));
        assert_eq!(w.pop_due(t(25)), None, "index 0 due at 30");
        assert_eq!(w.pop_due(t(50)), Some(0));
        assert_eq!(w.pop_due(t(50)), Some(1));
        assert_eq!(w.pop_due(t(50)), None);
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn disarm_and_rearm_to_same_deadline() {
        let mut w = TimerWheel::new();
        w.schedule(3, Some(t(5)));
        w.schedule(3, None);
        assert_eq!(w.pop_due(t(10)), None);
        w.schedule(3, Some(t(5)));
        w.schedule(3, Some(t(5))); // no-op: unchanged valid deadline
        assert_eq!(w.pop_due(t(10)), Some(3));
        assert_eq!(w.pop_due(t(10)), None, "popping disarms");
    }
}
