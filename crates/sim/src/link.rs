//! The trace-driven cellular link (§4.2).
//!
//! A [`TraceLink`] replays a Saturator trace: at each recorded delivery
//! opportunity it may release up to one MTU's worth of queued bytes.
//! Accounting is per byte (footnote 6): fifteen 100-byte packets leave on a
//! single opportunity, and a 1500-byte packet may need the remainder of one
//! opportunity plus part of the next if a smaller packet already consumed
//! budget. Opportunities that find nothing to send are wasted — the queue
//! cannot "bank" capacity.
//!
//! The link optionally drops arriving packets with a fixed Bernoulli
//! probability (tail drop), emulating shallow-buffered carriers for the
//! §5.6 loss-resilience experiment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::codel::{CoDelConfig, CoDelQueue};
use crate::packet::Packet;
use crate::queue::{DropTail, Queue};
use sprout_trace::{Duration, Timestamp, Trace, TraceCursor, MTU_BYTES};

/// Queue policy selection for a link.
#[derive(Clone, Debug, Default)]
pub enum QueueConfig {
    /// Unbounded DropTail (the paper's default carrier model).
    #[default]
    DropTailUnbounded,
    /// DropTail bounded to a byte capacity.
    DropTailBytes(u64),
    /// CoDel AQM (§5.4).
    CoDel(CoDelConfig),
}

impl QueueConfig {
    fn build(&self) -> Box<dyn Queue> {
        match self {
            QueueConfig::DropTailUnbounded => Box::new(DropTail::unbounded()),
            QueueConfig::DropTailBytes(cap) => Box::new(DropTail::with_capacity_bytes(*cap)),
            QueueConfig::CoDel(cfg) => Box::new(CoDelQueue::new(*cfg)),
        }
    }
}

/// Configuration of one direction of the emulated path.
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// Delivery-opportunity schedule.
    pub trace: Trace,
    /// Queue policy at the bottleneck.
    pub queue: QueueConfig,
    /// Probability an arriving packet is dropped before enqueue
    /// (§5.6 stochastic loss; 0.0 disables).
    pub loss_rate: f64,
    /// Seed for the loss process.
    pub loss_seed: u64,
    /// One-way propagation delay of the wire ahead of the bottleneck
    /// queue (the paper measures ~20 ms each way, §4.2). Consumed by
    /// `DirectedPath`, which delays packets by this much before they
    /// reach the queue.
    pub prop_delay: Duration,
}

impl LinkConfig {
    /// A loss-free, unbounded-DropTail link over `trace` with the
    /// paper's 20 ms propagation — the standard experimental condition.
    pub fn standard(trace: Trace) -> Self {
        LinkConfig {
            trace,
            queue: QueueConfig::DropTailUnbounded,
            loss_rate: 0.0,
            loss_seed: 0,
            prop_delay: Duration::from_millis(20),
        }
    }
}

/// A packet delivered by the link, with the time it crossed.
#[derive(Debug)]
pub struct LinkDelivery {
    /// The delivered packet.
    pub packet: Packet,
    /// The delivery-opportunity time at which its last byte crossed.
    pub at: Timestamp,
}

/// One direction of the cellular bottleneck.
pub struct TraceLink {
    queue: Box<dyn Queue>,
    cursor: TraceCursor,
    /// The packet currently being served and how many of its bytes have
    /// already crossed.
    in_service: Option<(Packet, u32)>,
    loss_rate: f64,
    rng: StdRng,
    random_drops: u64,
    wasted_opportunities: u64,
    used_opportunities: u64,
}

impl TraceLink {
    /// Build a link from its configuration.
    pub fn new(cfg: LinkConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.loss_rate),
            "loss rate must be a probability"
        );
        TraceLink {
            queue: cfg.queue.build(),
            cursor: TraceCursor::new(cfg.trace),
            in_service: None,
            loss_rate: cfg.loss_rate,
            rng: StdRng::seed_from_u64(cfg.loss_seed),
            random_drops: 0,
            wasted_opportunities: 0,
            used_opportunities: 0,
        }
    }

    /// A packet reaches the bottleneck queue (after propagation).
    pub fn ingress(&mut self, packet: Packet, now: Timestamp) {
        if self.loss_rate > 0.0 && self.rng.gen::<f64>() < self.loss_rate {
            self.random_drops += 1;
            return;
        }
        self.queue.enqueue(packet, now);
    }

    /// Time of the next delivery opportunity, if the trace has any left.
    pub fn next_opportunity(&self) -> Option<Timestamp> {
        self.cursor.peek()
    }

    /// Fire all delivery opportunities due at or before `now`, returning
    /// the packets whose final byte crossed the link.
    pub fn service(&mut self, now: Timestamp) -> Vec<LinkDelivery> {
        let mut out = Vec::new();
        while let Some(op_time) = self.cursor.pop_due(now) {
            let mut budget = MTU_BYTES;
            let mut used = false;
            while budget > 0 {
                let (packet, served) = match self.in_service.take() {
                    Some(s) => s,
                    None => match self.queue.dequeue(op_time) {
                        Some(p) => (p, 0),
                        None => break,
                    },
                };
                used = true;
                let need = packet.size - served;
                if need <= budget {
                    budget -= need;
                    out.push(LinkDelivery {
                        packet,
                        at: op_time,
                    });
                } else {
                    self.in_service = Some((packet, served + budget));
                    budget = 0;
                }
            }
            if used {
                self.used_opportunities += 1;
            } else {
                self.wasted_opportunities += 1;
            }
        }
        out
    }

    /// Bytes waiting at the bottleneck (including the partially-served
    /// packet's unsent remainder).
    pub fn queued_bytes(&self) -> u64 {
        let partial = self
            .in_service
            .as_ref()
            .map(|(p, served)| (p.size - served) as u64)
            .unwrap_or(0);
        self.queue.bytes() + partial
    }

    /// Packets waiting (including one partially served).
    pub fn queued_packets(&self) -> usize {
        self.queue.packets() + usize::from(self.in_service.is_some())
    }

    /// Packets dropped by the random-loss process.
    pub fn random_drops(&self) -> u64 {
        self.random_drops
    }

    /// Packets dropped by the queue policy (DropTail overflow or CoDel).
    pub fn queue_drops(&self) -> u64 {
        self.queue.drops()
    }

    /// Opportunities that found an empty queue (wasted capacity).
    pub fn wasted_opportunities(&self) -> u64 {
        self.wasted_opportunities
    }

    /// Opportunities that carried at least one byte.
    pub fn used_opportunities(&self) -> u64 {
        self.used_opportunities
    }

    /// The trace this link replays.
    pub fn trace(&self) -> &Trace {
        self.cursor.trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn mtu_pkt(seq: u64) -> Packet {
        Packet::opaque(FlowId::PRIMARY, seq, MTU_BYTES)
    }

    #[test]
    fn one_opportunity_delivers_one_mtu_packet() {
        let mut link = TraceLink::new(LinkConfig::standard(Trace::from_millis([10, 20])));
        link.ingress(mtu_pkt(1), t(0));
        link.ingress(mtu_pkt(2), t(0));
        let d = link.service(t(10));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].packet.seq, 1);
        assert_eq!(d[0].at, t(10));
        let d = link.service(t(20));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].packet.seq, 2);
    }

    #[test]
    fn footnote6_many_small_packets_share_one_opportunity() {
        // Fifteen 100-byte packets all leave on a single 1500-byte
        // opportunity (§4.2 footnote 6).
        let mut link = TraceLink::new(LinkConfig::standard(Trace::from_millis([10])));
        for i in 0..15 {
            link.ingress(Packet::opaque(FlowId::PRIMARY, i, 100), t(0));
        }
        let d = link.service(t(10));
        assert_eq!(d.len(), 15);
        assert!(d.iter().all(|x| x.at == t(10)));
    }

    #[test]
    fn partial_packet_carries_over_to_next_opportunity() {
        // A 100-byte packet then an MTU packet: the MTU packet gets 1400
        // bytes of the first opportunity and needs 100 bytes of the second.
        let mut link = TraceLink::new(LinkConfig::standard(Trace::from_millis([10, 30])));
        link.ingress(Packet::opaque(FlowId::PRIMARY, 1, 100), t(0));
        link.ingress(mtu_pkt(2), t(0));
        let d = link.service(t(10));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].packet.seq, 1);
        assert_eq!(link.queued_packets(), 1); // the partially-served MTU
        assert_eq!(link.queued_bytes(), 100); // its remainder
        let d = link.service(t(30));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].packet.seq, 2);
        assert_eq!(d[0].at, t(30));
    }

    #[test]
    fn empty_queue_wastes_opportunities() {
        let mut link = TraceLink::new(LinkConfig::standard(Trace::from_millis([10, 20, 30])));
        assert!(link.service(t(25)).is_empty());
        assert_eq!(link.wasted_opportunities(), 2);
        link.ingress(mtu_pkt(1), t(26));
        let d = link.service(t(30));
        assert_eq!(d.len(), 1);
        assert_eq!(link.used_opportunities(), 1);
    }

    #[test]
    fn wasted_capacity_does_not_accumulate() {
        // Two opportunities pass with an empty queue; a packet arriving
        // later must wait for the *next* opportunity, not use banked ones.
        let mut link = TraceLink::new(LinkConfig::standard(Trace::from_millis([10, 20, 100])));
        assert!(link.service(t(50)).is_empty());
        link.ingress(mtu_pkt(1), t(60));
        assert!(link.service(t(60)).is_empty());
        let d = link.service(t(100));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].at, t(100));
    }

    #[test]
    fn bernoulli_loss_drops_expected_fraction() {
        let trace = Trace::from_millis(0..10_000);
        let mut link = TraceLink::new(LinkConfig {
            loss_rate: 0.10,
            loss_seed: 99,
            ..LinkConfig::standard(trace)
        });
        for i in 0..10_000 {
            link.ingress(mtu_pkt(i), t(i));
        }
        let frac = link.random_drops() as f64 / 10_000.0;
        assert!((frac - 0.10).abs() < 0.02, "drop fraction {frac}");
    }

    #[test]
    fn zero_loss_rate_never_drops() {
        let mut link = TraceLink::new(LinkConfig::standard(Trace::from_millis([1])));
        for i in 0..1_000 {
            link.ingress(mtu_pkt(i), t(0));
        }
        assert_eq!(link.random_drops(), 0);
    }

    #[test]
    fn codel_policy_is_wired_through() {
        let trace = Trace::from_millis((0..2_000).map(|i| i * 20)); // 50 pps
        let mut link = TraceLink::new(LinkConfig {
            queue: QueueConfig::CoDel(CoDelConfig::default()),
            ..LinkConfig::standard(trace)
        });
        // Overload 4x: 200 MTU/s for 10 s.
        for (seq, ms) in (0..10_000u64).step_by(5).enumerate() {
            link.ingress(mtu_pkt(seq as u64), t(ms));
            link.service(t(ms));
        }
        assert!(link.queue_drops() > 0, "CoDel should shed persistent load");
    }
}
