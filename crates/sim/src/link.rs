//! The trace-driven cellular link (§4.2).
//!
//! A [`TraceLink`] replays a Saturator trace: at each recorded delivery
//! opportunity it may release up to one MTU's worth of queued bytes.
//! Accounting is per byte (footnote 6): fifteen 100-byte packets leave on a
//! single opportunity, and a 1500-byte packet may need the remainder of one
//! opportunity plus part of the next if a smaller packet already consumed
//! budget. Opportunities that find nothing to send are wasted — the queue
//! cannot "bank" capacity.
//!
//! The link optionally drops arriving packets with a fixed Bernoulli
//! probability (tail drop), emulating shallow-buffered carriers for the
//! §5.6 loss-resilience experiment.
//!
//! On top of that sits the fault-injection layer ([`LinkImpairment`]):
//! Gilbert-Elliott burst loss gates packets at ingress alongside the
//! Bernoulli process; a precomputed outage schedule suppresses delivery
//! opportunities while the link is dark (queued bytes survive the
//! outage); and a jitter/reorder perturber shifts delivery timestamps,
//! with a release buffer that re-sorts perturbed deliveries so emission
//! stays in non-decreasing time order. All processes are seeded from the
//! per-cell seed, so impaired runs are exactly as deterministic as clean
//! ones.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::codel::{CoDelConfig, CoDelQueue};
use crate::packet::Packet;
use crate::queue::{DropTail, Queue};
use sprout_trace::{
    derive_seed, DeliveryPerturber, Duration, GilbertElliott, GilbertElliottProcess, Impairment,
    JitterSpec, OutageSchedule, ReorderSpec, Timestamp, Trace, TraceCursor, MTU_BYTES,
};

/// Queue policy selection for a link.
#[derive(Clone, Debug, Default)]
pub enum QueueConfig {
    /// Unbounded DropTail (the paper's default carrier model).
    #[default]
    DropTailUnbounded,
    /// DropTail bounded to a byte capacity.
    DropTailBytes(u64),
    /// CoDel AQM (§5.4).
    CoDel(CoDelConfig),
}

impl QueueConfig {
    fn build(&self) -> Box<dyn Queue> {
        match self {
            QueueConfig::DropTailUnbounded => Box::new(DropTail::unbounded()),
            QueueConfig::DropTailBytes(cap) => Box::new(DropTail::with_capacity_bytes(*cap)),
            QueueConfig::CoDel(cfg) => Box::new(CoDelQueue::new(*cfg)),
        }
    }
}

/// Fault-injection processes applied at one link direction: the specs to
/// enable, the seeds that drive them, and the (shared, precomputed)
/// outage schedule. The default injects nothing.
#[derive(Clone, Debug, Default)]
pub struct LinkImpairment {
    /// Gilbert-Elliott burst loss at packet ingress.
    pub burst_loss: Option<GilbertElliott>,
    /// Outage windows during which delivery opportunities are suppressed.
    /// Shared by both directions of a path (the radio goes dark as one).
    pub outages: OutageSchedule,
    /// Delivery-timestamp jitter.
    pub jitter: Option<JitterSpec>,
    /// Probabilistic packet holding (reordering).
    pub reorder: Option<ReorderSpec>,
    /// Seed of this direction's impairment randomness; the burst-loss and
    /// jitter/reorder processes each derive their own stream from it.
    pub seed: u64,
}

impl LinkImpairment {
    /// Realize an [`Impairment`] spec for one direction. `seed` is this
    /// direction's impairment seed; `outages` is the path-wide schedule
    /// (generated once per cell so both directions flap together).
    pub fn from_spec(spec: &Impairment, seed: u64, outages: OutageSchedule) -> Self {
        LinkImpairment {
            burst_loss: spec.burst_loss,
            outages,
            jitter: spec.jitter,
            reorder: spec.reorder,
            seed,
        }
    }

    /// Whether nothing is injected (the fast path).
    pub fn is_none(&self) -> bool {
        self.burst_loss.is_none()
            && self.outages.is_empty()
            && self.jitter.is_none()
            && self.reorder.is_none()
    }
}

/// Configuration of one direction of the emulated path.
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// Delivery-opportunity schedule.
    pub trace: Trace,
    /// Queue policy at the bottleneck.
    pub queue: QueueConfig,
    /// Probability an arriving packet is dropped before enqueue
    /// (§5.6 stochastic loss; 0.0 disables).
    pub loss_rate: f64,
    /// Seed for the loss process.
    pub loss_seed: u64,
    /// One-way propagation delay of the wire ahead of the bottleneck
    /// queue (the paper measures ~20 ms each way, §4.2). Consumed by
    /// `DirectedPath`, which delays packets by this much before they
    /// reach the queue.
    pub prop_delay: Duration,
    /// Fault injection at this link (none by default).
    pub impair: LinkImpairment,
}

impl LinkConfig {
    /// A loss-free, unbounded-DropTail link over `trace` with the
    /// paper's 20 ms propagation — the standard experimental condition.
    pub fn standard(trace: Trace) -> Self {
        LinkConfig {
            trace,
            queue: QueueConfig::DropTailUnbounded,
            loss_rate: 0.0,
            loss_seed: 0,
            prop_delay: Duration::from_millis(20),
            impair: LinkImpairment::default(),
        }
    }
}

/// A packet delivered by the link, with the time it crossed.
#[derive(Debug)]
pub struct LinkDelivery {
    /// The delivered packet.
    pub packet: Packet,
    /// The delivery-opportunity time at which its last byte crossed.
    pub at: Timestamp,
}

/// A delivery waiting in the jitter/reorder release buffer. Ordered by
/// `(release time, insertion sequence)`, so equal-time releases keep
/// their service order and emission is globally non-decreasing.
#[derive(Debug)]
struct PendingDelivery {
    at: Timestamp,
    seq: u64,
    packet: Packet,
}

impl PartialEq for PendingDelivery {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for PendingDelivery {}
impl PartialOrd for PendingDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One direction of the cellular bottleneck.
pub struct TraceLink {
    queue: Box<dyn Queue>,
    cursor: TraceCursor,
    /// The packet currently being served and how many of its bytes have
    /// already crossed.
    in_service: Option<(Packet, u32)>,
    loss_rate: f64,
    rng: StdRng,
    /// Gilbert-Elliott burst-loss chain (fault injection).
    burst: Option<GilbertElliottProcess>,
    /// Outage windows during which opportunities are suppressed.
    outages: OutageSchedule,
    /// Jitter/reorder perturber; `None` keeps the zero-cost direct path.
    perturb: Option<DeliveryPerturber>,
    /// Perturbed deliveries waiting for their release time (min-heap).
    pending: BinaryHeap<Reverse<PendingDelivery>>,
    release_seq: u64,
    random_drops: u64,
    burst_drops: u64,
    outage_suppressed: u64,
    reorder_holds: u64,
    wasted_opportunities: u64,
    used_opportunities: u64,
}

impl TraceLink {
    /// Build a link from its configuration.
    pub fn new(cfg: LinkConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.loss_rate),
            "loss rate must be a probability"
        );
        let imp = cfg.impair;
        TraceLink {
            queue: cfg.queue.build(),
            cursor: TraceCursor::new(cfg.trace),
            in_service: None,
            loss_rate: cfg.loss_rate,
            rng: StdRng::seed_from_u64(cfg.loss_seed),
            burst: imp
                .burst_loss
                .map(|ge| GilbertElliottProcess::new(ge, derive_seed(imp.seed, 0))),
            outages: imp.outages,
            perturb: DeliveryPerturber::new(imp.jitter, imp.reorder, derive_seed(imp.seed, 1)),
            pending: BinaryHeap::new(),
            release_seq: 0,
            random_drops: 0,
            burst_drops: 0,
            outage_suppressed: 0,
            reorder_holds: 0,
            wasted_opportunities: 0,
            used_opportunities: 0,
        }
    }

    /// A packet reaches the bottleneck queue (after propagation).
    pub fn ingress(&mut self, packet: Packet, now: Timestamp) {
        if self.loss_rate > 0.0 && self.rng.gen::<f64>() < self.loss_rate {
            self.random_drops += 1;
            return;
        }
        if let Some(burst) = &mut self.burst {
            if burst.should_drop() {
                self.burst_drops += 1;
                return;
            }
        }
        self.queue.enqueue(packet, now);
    }

    /// Time of the next delivery opportunity, if the trace has any left.
    pub fn next_opportunity(&self) -> Option<Timestamp> {
        self.cursor.peek()
    }

    /// Earliest release time in the jitter/reorder buffer, if any.
    pub fn next_pending_release(&self) -> Option<Timestamp> {
        self.pending.peek().map(|Reverse(p)| p.at)
    }

    /// The next instant this link does anything on its own: a delivery
    /// opportunity or a buffered release coming due.
    pub fn next_link_event(&self) -> Option<Timestamp> {
        match (self.next_opportunity(), self.next_pending_release()) {
            (Some(o), Some(r)) => Some(o.min(r)),
            (o, r) => o.or(r),
        }
    }

    /// Fire all delivery opportunities due at or before `now` and release
    /// any buffered (jittered/held) deliveries that have come due,
    /// returning the packets whose final byte crossed the link, in
    /// non-decreasing delivery-time order.
    pub fn service(&mut self, now: Timestamp) -> Vec<LinkDelivery> {
        let mut out = Vec::new();
        while let Some(op_time) = self.cursor.pop_due(now) {
            if self.outages.is_out(op_time) {
                // The link is dark: the opportunity is lost outright.
                // Queued bytes survive and drain when the link returns.
                self.outage_suppressed += 1;
                continue;
            }
            let mut budget = MTU_BYTES;
            let mut used = false;
            while budget > 0 {
                let (packet, served) = match self.in_service.take() {
                    Some(s) => s,
                    None => match self.queue.dequeue(op_time) {
                        Some(p) => (p, 0),
                        None => break,
                    },
                };
                used = true;
                let need = packet.size - served;
                if need <= budget {
                    budget -= need;
                    self.emit(packet, op_time, &mut out);
                } else {
                    self.in_service = Some((packet, served + budget));
                    budget = 0;
                }
            }
            if used {
                self.used_opportunities += 1;
            } else {
                self.wasted_opportunities += 1;
            }
        }
        self.release_due(now, &mut out);
        out
    }

    /// Route one crossed packet to the output: directly (unimpaired), or
    /// through the release buffer with a perturbed timestamp.
    fn emit(&mut self, packet: Packet, op_time: Timestamp, out: &mut Vec<LinkDelivery>) {
        match &mut self.perturb {
            None => out.push(LinkDelivery {
                packet,
                at: op_time,
            }),
            Some(p) => {
                let (extra, held) = p.perturb();
                if held {
                    self.reorder_holds += 1;
                }
                self.release_seq += 1;
                self.pending.push(Reverse(PendingDelivery {
                    at: op_time + extra,
                    seq: self.release_seq,
                    packet,
                }));
            }
        }
    }

    /// Pop buffered deliveries whose release time has arrived. Every
    /// opportunity consumed so far precedes `now`, and fresh holds are
    /// never scheduled before their opportunity, so pops are globally
    /// non-decreasing in `at`.
    fn release_due(&mut self, now: Timestamp, out: &mut Vec<LinkDelivery>) {
        while self
            .pending
            .peek()
            .map(|Reverse(p)| p.at <= now)
            .unwrap_or(false)
        {
            let Reverse(p) = self.pending.pop().unwrap();
            out.push(LinkDelivery {
                packet: p.packet,
                at: p.at,
            });
        }
    }

    /// Bytes waiting at the bottleneck (including the partially-served
    /// packet's unsent remainder).
    pub fn queued_bytes(&self) -> u64 {
        let partial = self
            .in_service
            .as_ref()
            .map(|(p, served)| (p.size - served) as u64)
            .unwrap_or(0);
        self.queue.bytes() + partial
    }

    /// Packets waiting (including one partially served).
    pub fn queued_packets(&self) -> usize {
        self.queue.packets() + usize::from(self.in_service.is_some())
    }

    /// Packets dropped by the random-loss process.
    pub fn random_drops(&self) -> u64 {
        self.random_drops
    }

    /// Packets dropped by the queue policy (DropTail overflow or CoDel).
    pub fn queue_drops(&self) -> u64 {
        self.queue.drops()
    }

    /// Packets dropped by the Gilbert-Elliott burst-loss process.
    pub fn burst_drops(&self) -> u64 {
        self.burst_drops
    }

    /// Delivery opportunities lost to link outages.
    pub fn outage_suppressed_opportunities(&self) -> u64 {
        self.outage_suppressed
    }

    /// Packets held back by the reorder process.
    pub fn reorder_holds(&self) -> u64 {
        self.reorder_holds
    }

    /// Packets sitting in the jitter/reorder release buffer (crossed the
    /// link, not yet emitted).
    pub fn pending_release_packets(&self) -> usize {
        self.pending.len()
    }

    /// The outage windows injected at this link (empty when unimpaired).
    pub fn outage_windows(&self) -> &[(Timestamp, Timestamp)] {
        self.outages.windows()
    }

    /// Opportunities that found an empty queue (wasted capacity).
    pub fn wasted_opportunities(&self) -> u64 {
        self.wasted_opportunities
    }

    /// Opportunities that carried at least one byte.
    pub fn used_opportunities(&self) -> u64 {
        self.used_opportunities
    }

    /// The trace this link replays.
    pub fn trace(&self) -> &Trace {
        self.cursor.trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn mtu_pkt(seq: u64) -> Packet {
        Packet::opaque(FlowId::PRIMARY, seq, MTU_BYTES)
    }

    #[test]
    fn one_opportunity_delivers_one_mtu_packet() {
        let mut link = TraceLink::new(LinkConfig::standard(Trace::from_millis([10, 20])));
        link.ingress(mtu_pkt(1), t(0));
        link.ingress(mtu_pkt(2), t(0));
        let d = link.service(t(10));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].packet.seq, 1);
        assert_eq!(d[0].at, t(10));
        let d = link.service(t(20));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].packet.seq, 2);
    }

    #[test]
    fn footnote6_many_small_packets_share_one_opportunity() {
        // Fifteen 100-byte packets all leave on a single 1500-byte
        // opportunity (§4.2 footnote 6).
        let mut link = TraceLink::new(LinkConfig::standard(Trace::from_millis([10])));
        for i in 0..15 {
            link.ingress(Packet::opaque(FlowId::PRIMARY, i, 100), t(0));
        }
        let d = link.service(t(10));
        assert_eq!(d.len(), 15);
        assert!(d.iter().all(|x| x.at == t(10)));
    }

    #[test]
    fn partial_packet_carries_over_to_next_opportunity() {
        // A 100-byte packet then an MTU packet: the MTU packet gets 1400
        // bytes of the first opportunity and needs 100 bytes of the second.
        let mut link = TraceLink::new(LinkConfig::standard(Trace::from_millis([10, 30])));
        link.ingress(Packet::opaque(FlowId::PRIMARY, 1, 100), t(0));
        link.ingress(mtu_pkt(2), t(0));
        let d = link.service(t(10));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].packet.seq, 1);
        assert_eq!(link.queued_packets(), 1); // the partially-served MTU
        assert_eq!(link.queued_bytes(), 100); // its remainder
        let d = link.service(t(30));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].packet.seq, 2);
        assert_eq!(d[0].at, t(30));
    }

    #[test]
    fn empty_queue_wastes_opportunities() {
        let mut link = TraceLink::new(LinkConfig::standard(Trace::from_millis([10, 20, 30])));
        assert!(link.service(t(25)).is_empty());
        assert_eq!(link.wasted_opportunities(), 2);
        link.ingress(mtu_pkt(1), t(26));
        let d = link.service(t(30));
        assert_eq!(d.len(), 1);
        assert_eq!(link.used_opportunities(), 1);
    }

    #[test]
    fn wasted_capacity_does_not_accumulate() {
        // Two opportunities pass with an empty queue; a packet arriving
        // later must wait for the *next* opportunity, not use banked ones.
        let mut link = TraceLink::new(LinkConfig::standard(Trace::from_millis([10, 20, 100])));
        assert!(link.service(t(50)).is_empty());
        link.ingress(mtu_pkt(1), t(60));
        assert!(link.service(t(60)).is_empty());
        let d = link.service(t(100));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].at, t(100));
    }

    #[test]
    fn bernoulli_loss_drops_expected_fraction() {
        let trace = Trace::from_millis(0..10_000);
        let mut link = TraceLink::new(LinkConfig {
            loss_rate: 0.10,
            loss_seed: 99,
            ..LinkConfig::standard(trace)
        });
        for i in 0..10_000 {
            link.ingress(mtu_pkt(i), t(i));
        }
        let frac = link.random_drops() as f64 / 10_000.0;
        assert!((frac - 0.10).abs() < 0.02, "drop fraction {frac}");
    }

    #[test]
    fn zero_loss_rate_never_drops() {
        let mut link = TraceLink::new(LinkConfig::standard(Trace::from_millis([1])));
        for i in 0..1_000 {
            link.ingress(mtu_pkt(i), t(0));
        }
        assert_eq!(link.random_drops(), 0);
    }

    fn impaired(trace: Trace, impair: LinkImpairment) -> TraceLink {
        TraceLink::new(LinkConfig {
            impair,
            ..LinkConfig::standard(trace)
        })
    }

    #[test]
    fn outage_suppresses_opportunities_but_keeps_queued_bytes() {
        use sprout_trace::OutageSpec;
        let outages = OutageSchedule::generate(
            &OutageSpec {
                duration: Duration::from_millis(40),
                spacing: Duration::from_millis(100),
            },
            7,
            Duration::from_millis(400),
        );
        let windows = outages.windows().to_vec();
        assert!(!windows.is_empty());
        let mut link = impaired(
            Trace::from_millis((0..40).map(|i| i * 10)),
            LinkImpairment {
                outages,
                ..LinkImpairment::default()
            },
        );
        for i in 0..40 {
            link.ingress(mtu_pkt(i), t(0));
        }
        let d = link.service(t(400));
        // No delivery timestamp may fall inside an outage window.
        for del in &d {
            for &(start, end) in &windows {
                assert!(
                    del.at < start || del.at >= end,
                    "delivery at {} inside outage [{start}, {end})",
                    del.at
                );
            }
        }
        assert!(link.outage_suppressed_opportunities() > 0);
        // Conservation: delivered + still queued = sent.
        assert_eq!(d.len() + link.queued_packets(), 40);
    }

    #[test]
    fn burst_loss_drops_in_bursts_and_is_counted() {
        let mut link = impaired(
            Trace::from_millis(0..4_000),
            LinkImpairment {
                burst_loss: Some(GilbertElliott {
                    p_good_to_bad: 0.05,
                    p_bad_to_good: 0.3,
                    loss_good: 0.0,
                    loss_bad: 1.0,
                }),
                seed: 11,
                ..LinkImpairment::default()
            },
        );
        for i in 0..4_000 {
            link.ingress(mtu_pkt(i), t(i));
        }
        let frac = link.burst_drops() as f64 / 4_000.0;
        let expected = 0.05 / 0.35; // stationary bad-state occupancy
        assert!((frac - expected).abs() < 0.06, "burst drop fraction {frac}");
        assert_eq!(link.random_drops(), 0);
    }

    #[test]
    fn jitter_delays_but_preserves_order_and_multiset() {
        use sprout_trace::{JitterSpec, ReorderSpec};
        let mut link = impaired(
            Trace::from_millis((0..200).map(|i| i * 10)),
            LinkImpairment {
                jitter: Some(JitterSpec {
                    max: Duration::from_millis(8),
                }),
                reorder: Some(ReorderSpec {
                    probability: 0.2,
                    extra_delay: Duration::from_millis(50),
                }),
                seed: 13,
                ..LinkImpairment::default()
            },
        );
        for i in 0..200 {
            link.ingress(mtu_pkt(i), t(i * 10));
        }
        let mut all = Vec::new();
        for step in 0..=300 {
            let batch = link.service(t(step * 10));
            all.extend(batch);
        }
        // Everything eventually emits, each packet exactly once.
        let mut seqs: Vec<u64> = all.iter().map(|d| d.packet.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..200).collect::<Vec<u64>>());
        assert_eq!(link.pending_release_packets(), 0);
        // Emission timestamps are non-decreasing...
        for w in all.windows(2) {
            assert!(w[0].at <= w[1].at, "emission must stay time-ordered");
        }
        // ...but sequence order is genuinely perturbed (reordering).
        assert!(link.reorder_holds() > 0);
        let in_order: Vec<u64> = all.iter().map(|d| d.packet.seq).collect();
        assert_ne!(in_order, (0..200).collect::<Vec<u64>>(), "some reordering");
        // Jitter only ever delays: no delivery before its opportunity.
        // (Opportunity i fires at 10i ms and serves at most one MTU, so
        // packet k crosses no earlier than opportunity k.)
        for d in &all {
            assert!(d.at >= t(d.packet.seq * 10));
        }
    }

    #[test]
    fn impaired_link_is_deterministic_per_seed() {
        use sprout_trace::{JitterSpec, OutageSpec, ReorderSpec};
        let run = |seed: u64| -> Vec<(u64, u64)> {
            let outages = OutageSchedule::generate(
                &OutageSpec {
                    duration: Duration::from_millis(30),
                    spacing: Duration::from_millis(200),
                },
                seed,
                Duration::from_secs(2),
            );
            let mut link = impaired(
                Trace::from_millis(0..2_000),
                LinkImpairment {
                    burst_loss: Some(GilbertElliott {
                        p_good_to_bad: 0.02,
                        p_bad_to_good: 0.2,
                        loss_good: 0.0,
                        loss_bad: 0.8,
                    }),
                    outages,
                    jitter: Some(JitterSpec {
                        max: Duration::from_millis(5),
                    }),
                    reorder: Some(ReorderSpec {
                        probability: 0.1,
                        extra_delay: Duration::from_millis(20),
                    }),
                    seed,
                },
            );
            let mut out = Vec::new();
            for ms in 0..2_100 {
                link.ingress(mtu_pkt(ms), t(ms));
                out.extend(
                    link.service(t(ms))
                        .into_iter()
                        .map(|d| (d.packet.seq, d.at.as_micros())),
                );
            }
            out
        };
        assert_eq!(run(5), run(5), "identical seeds, identical deliveries");
        assert_ne!(run(5), run(6), "seeds matter");
    }

    #[test]
    fn codel_policy_is_wired_through() {
        let trace = Trace::from_millis((0..2_000).map(|i| i * 20)); // 50 pps
        let mut link = TraceLink::new(LinkConfig {
            queue: QueueConfig::CoDel(CoDelConfig::default()),
            ..LinkConfig::standard(trace)
        });
        // Overload 4x: 200 MTU/s for 10 s.
        for (seq, ms) in (0..10_000u64).step_by(5).enumerate() {
            link.ingress(mtu_pkt(seq as u64), t(ms));
            link.service(t(ms));
        }
        assert!(link.queue_drops() > 0, "CoDel should shed persistent load");
    }
}
