//! Cellsim (§4.2): the bidirectional trace-driven path emulator.
//!
//! Each direction is a [`DirectedPath`]: a fixed propagation delay (the
//! paper measures ~20 ms each way, §4.2) followed by the bottleneck queue
//! and the trace-driven [`TraceLink`]. The two directions are independent
//! — cellular up- and downlinks have separate, asymmetric schedules.

use std::collections::VecDeque;

use crate::link::{LinkConfig, TraceLink};
use crate::metrics::{DeliveryRecord, MetricsCollector};
use crate::packet::Packet;
use sprout_trace::{Duration, Timestamp, Trace};

/// Configuration of one direction of the emulated path. The one-way
/// propagation delay lives on [`LinkConfig::prop_delay`].
#[derive(Clone, Debug)]
pub struct PathConfig {
    /// Bottleneck link (trace, queue policy, loss, propagation delay).
    pub link: LinkConfig,
}

impl PathConfig {
    /// The paper's standard condition: 20 ms propagation, unbounded
    /// DropTail, no random loss.
    pub fn standard(trace: Trace) -> Self {
        PathConfig {
            link: LinkConfig::standard(trace),
        }
    }

    /// Override the one-way propagation delay.
    pub fn with_prop_delay(mut self, prop_delay: Duration) -> Self {
        self.link.prop_delay = prop_delay;
        self
    }
}

/// One direction of the path: wire delay, then the cellular bottleneck.
pub struct DirectedPath {
    prop_delay: Duration,
    /// Packets on the wire, with the time they reach the bottleneck queue.
    in_flight: VecDeque<(Timestamp, Packet)>,
    link: TraceLink,
    metrics: MetricsCollector,
}

impl DirectedPath {
    /// Build one direction from its configuration.
    pub fn new(cfg: PathConfig) -> Self {
        DirectedPath {
            prop_delay: cfg.link.prop_delay,
            in_flight: VecDeque::new(),
            link: TraceLink::new(cfg.link),
            metrics: MetricsCollector::new(),
        }
    }

    /// Hand a packet to this direction at `now` (stamps `sent_at`).
    pub fn send(&mut self, mut packet: Packet, now: Timestamp) {
        packet.sent_at = now;
        self.in_flight.push_back((now + self.prop_delay, packet));
    }

    /// The next time something happens inside this direction: a wire
    /// arrival reaching the queue, a trace delivery opportunity, or a
    /// jittered/held delivery coming due in the link's release buffer.
    pub fn next_event(&self) -> Option<Timestamp> {
        let arrival = self.in_flight.front().map(|(t, _)| *t);
        let link_event = self.link.next_link_event();
        match (arrival, link_event) {
            (Some(a), Some(o)) => Some(a.min(o)),
            (a, o) => a.or(o),
        }
    }

    /// Advance internal state to `now`, processing wire arrivals and
    /// delivery opportunities in strict time order, and return packets
    /// delivered to the far end. Allocating convenience form of
    /// [`DirectedPath::advance_into`].
    pub fn advance(&mut self, now: Timestamp) -> Vec<Packet> {
        let mut delivered = Vec::new();
        self.advance_into(now, &mut delivered);
        delivered
    }

    /// Advance internal state to `now`, appending packets delivered to
    /// the far end onto `delivered` (not cleared; the event loop reuses
    /// one buffer across steps).
    pub fn advance_into(&mut self, now: Timestamp, delivered: &mut Vec<Packet>) {
        loop {
            let next_arrival = self.in_flight.front().map(|(t, _)| *t);
            // Link events cover delivery opportunities and due releases
            // from the jitter/reorder buffer; `service` handles both.
            let next_op = self.link.next_link_event();
            // Pick the earliest pending event that is due.
            let arrival_due = next_arrival.map(|t| t <= now).unwrap_or(false);
            let op_due = next_op.map(|t| t <= now).unwrap_or(false);
            match (arrival_due, op_due) {
                (false, false) => break,
                (true, false) => self.ingress_one(now),
                (false, true) => self.service_due(next_op.unwrap(), delivered),
                (true, true) => {
                    // Arrivals strictly before the opportunity must be
                    // queued first; at a tie, enqueue first so the packet
                    // can use this very opportunity (it reached the queue
                    // by then).
                    if next_arrival.unwrap() <= next_op.unwrap() {
                        self.ingress_one(now);
                    } else {
                        self.service_due(next_op.unwrap(), delivered);
                    }
                }
            }
        }
    }

    fn ingress_one(&mut self, _now: Timestamp) {
        if let Some((arrive_at, packet)) = self.in_flight.pop_front() {
            self.link.ingress(packet, arrive_at);
        }
    }

    fn service_due(&mut self, op_time: Timestamp, delivered: &mut Vec<Packet>) {
        for d in self.link.service(op_time) {
            self.metrics.record(DeliveryRecord {
                sent_at: d.packet.sent_at,
                delivered_at: d.at,
                size: d.packet.size,
                flow: d.packet.flow,
            });
            delivered.push(d.packet);
        }
    }

    /// Delivery log of this direction.
    pub fn metrics(&self) -> &MetricsCollector {
        &self.metrics
    }

    /// The bottleneck link (for queue occupancy, drop counters, trace).
    pub fn link(&self) -> &TraceLink {
        &self.link
    }

    /// One-way propagation delay of this direction.
    pub fn prop_delay(&self) -> Duration {
        self.prop_delay
    }

    /// Bytes currently in flight on the wire (not yet at the queue).
    pub fn wire_bytes(&self) -> u64 {
        self.in_flight.iter().map(|(_, p)| p.size as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use sprout_trace::MTU_BYTES;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn mtu(seq: u64) -> Packet {
        Packet::opaque(FlowId::PRIMARY, seq, MTU_BYTES)
    }

    #[test]
    fn propagation_delays_queue_entry() {
        // Opportunity at 10 ms, packet sent at 0 with 20 ms propagation:
        // it misses the 10 ms opportunity and uses the one at 30 ms.
        let mut path = DirectedPath::new(PathConfig::standard(Trace::from_millis([10, 30])));
        path.send(mtu(1), t(0));
        let d = path.advance(t(10));
        assert!(d.is_empty());
        let d = path.advance(t(30));
        assert_eq!(d.len(), 1);
        assert_eq!(path.metrics().records()[0].delivered_at, t(30));
        assert_eq!(path.metrics().records()[0].sent_at, t(0));
    }

    #[test]
    fn tie_between_arrival_and_opportunity_enqueues_first() {
        // Arrival lands exactly on an opportunity: the packet crosses
        // immediately (one-way delay = propagation).
        let mut path = DirectedPath::new(PathConfig::standard(Trace::from_millis([20])));
        path.send(mtu(1), t(0));
        let d = path.advance(t(20));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].sent_at, t(0));
    }

    #[test]
    fn next_event_tracks_both_sources() {
        let mut path = DirectedPath::new(PathConfig::standard(Trace::from_millis([100])));
        assert_eq!(path.next_event(), Some(t(100)));
        path.send(mtu(1), t(0)); // arrival at 20 ms
        assert_eq!(path.next_event(), Some(t(20)));
        path.advance(t(50));
        assert_eq!(path.next_event(), Some(t(100)));
        path.advance(t(100));
        assert_eq!(path.next_event(), None);
    }

    #[test]
    fn events_process_in_time_order_within_one_advance() {
        // Opportunity at 25 ms (before the 30 ms arrival) must be wasted
        // even when advance() is called late, at 100 ms.
        let mut path = DirectedPath::new(PathConfig::standard(Trace::from_millis([25, 60])));
        path.send(mtu(1), t(10)); // arrives at queue at 30 ms
        let d = path.advance(t(100));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].sent_at, t(10));
        assert_eq!(path.metrics().records()[0].delivered_at, t(60));
        assert_eq!(path.link().wasted_opportunities(), 1);
    }

    #[test]
    fn wire_bytes_counts_unarrived_packets() {
        let mut path = DirectedPath::new(PathConfig::standard(Trace::from_millis([100])));
        path.send(mtu(1), t(0));
        path.send(mtu(2), t(5));
        assert_eq!(path.wire_bytes(), 2 * MTU_BYTES as u64);
        path.advance(t(21)); // first has arrived at queue
        assert_eq!(path.wire_bytes(), MTU_BYTES as u64);
    }
}
