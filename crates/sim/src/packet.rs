//! Network-layer packets as seen by the emulator.

use bytes::Bytes;
use sprout_trace::Timestamp;

/// Identifier for an application flow multiplexed over a path. The tunnel
/// (§4.3) uses this to keep per-flow queues; single-flow protocols use
/// [`FlowId::PRIMARY`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The default flow for single-flow endpoints.
    pub const PRIMARY: FlowId = FlowId(0);
}

/// A packet in flight. `payload` carries the protocol's serialized wire
/// format; the emulator treats it as opaque and accounts only `size`.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Emulator-level sequence number, stamped by the sending endpoint for
    /// logging/debugging; protocols carry their real sequence numbers in
    /// `payload`.
    pub seq: u64,
    /// When the packet was handed to the network (stamped by the event
    /// loop as the packet leaves the sender).
    pub sent_at: Timestamp,
    /// Total size on the wire, bytes. Must be ≥ `payload.len()`; the
    /// difference models headers the protocol did not serialize.
    pub size: u32,
    /// Serialized protocol bytes.
    pub payload: Bytes,
}

impl Packet {
    /// Convenience constructor: wire size equals payload length.
    pub fn from_payload(flow: FlowId, seq: u64, payload: Bytes) -> Self {
        let size = payload.len() as u32;
        Packet {
            flow,
            seq,
            sent_at: Timestamp::ZERO,
            size,
            payload,
        }
    }

    /// A packet of `size` opaque bytes (contents irrelevant to the
    /// experiment, e.g. bulk filler).
    pub fn opaque(flow: FlowId, seq: u64, size: u32) -> Self {
        Packet {
            flow,
            seq,
            sent_at: Timestamp::ZERO,
            size,
            payload: Bytes::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_payload_sets_size() {
        let p = Packet::from_payload(FlowId::PRIMARY, 7, Bytes::from_static(b"hello"));
        assert_eq!(p.size, 5);
        assert_eq!(p.seq, 7);
    }

    #[test]
    fn opaque_has_empty_payload() {
        let p = Packet::opaque(FlowId(3), 0, 1500);
        assert_eq!(p.size, 1500);
        assert!(p.payload.is_empty());
    }
}
