//! Cellsim: the trace-driven cellular network emulator of the Sprout paper
//! (§4.2), as a deterministic virtual-time library.
//!
//! The emulator bridges two sans-IO [`Endpoint`]s with a bidirectional
//! path. Each direction applies a fixed propagation delay, a pluggable
//! bottleneck queue (DropTail or CoDel), optional Bernoulli loss, and a
//! trace-driven link that releases queued bytes only at recorded delivery
//! opportunities, with per-byte accounting.
//!
//! ```
//! use sprout_sim::{Simulation, PathConfig, SinkEndpoint, direction_stats};
//! use sprout_trace::{NetProfile, Duration, Timestamp};
//!
//! let down = NetProfile::VerizonLteDown.generate(Duration::from_secs(10), 1);
//! let up = NetProfile::VerizonLteUp.generate(Duration::from_secs(10), 2);
//! let mut sim = Simulation::new(
//!     SinkEndpoint::new(),
//!     SinkEndpoint::new(),
//!     PathConfig::standard(down),
//!     PathConfig::standard(up),
//! );
//! sim.run_until(Timestamp::from_secs(10));
//! let stats = direction_stats(sim.ab_path(), Timestamp::ZERO, Timestamp::from_secs(10));
//! assert_eq!(stats.delivered_bytes, 0); // sinks never send
//! ```

#![warn(missing_docs)]

pub mod cellsim;
pub mod codel;
pub mod endpoint;
pub mod link;
pub mod metrics;
pub mod packet;
pub mod queue;
pub mod run;
pub mod serve;
pub mod wheel;

pub use cellsim::{DirectedPath, PathConfig};
pub use codel::{CoDelConfig, CoDelQueue};
pub use endpoint::{Endpoint, MuxEndpoint, SinkEndpoint};
pub use link::{LinkConfig, LinkDelivery, LinkImpairment, QueueConfig, TraceLink};
pub use metrics::{
    degradation_stats, jain_fairness_index, omniscient_delay_percentile, omniscient_p95_delay,
    self_inflicted_delay, utilization, DegradationStats, DeliveryRecord, MetricsCollector,
};
pub use packet::{FlowId, Packet};
pub use queue::{DropTail, Queue, DEEP_QUEUE_BYTES};
pub use run::{direction_stats, run_stats, DirectionStats, Simulation};
pub use serve::ServeSim;
pub use wheel::TimerWheel;
