//! End-to-end contracts of the control daemon, pinned with real
//! `reproduce` worker processes:
//!
//! 1. A 2-worker daemon sweep — including a worker SIGKILLed mid-shard
//!    and re-dealt — produces a merged `*_sweep.json` byte-identical to
//!    a single-process run of the same flags.
//! 2. A cancelled sweep kills its workers and leaves only cached cells
//!    behind: no partial artifacts under the sweep's output directory.
//!
//! The tests run the daemon in-process (scheduler on a thread, real
//! child workers) and talk to it over the HTTP status API, exactly as
//! the CLI does. They share the process-global cache override, so they
//! serialize on one lock.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sprout_control::{client, Daemon, DaemonConfig};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let d = std::env::temp_dir().join(format!(
        "sprout-control-smoke-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The `reproduce` binary next to this test's target dir (built by a
/// workspace-wide `cargo build`/`cargo test`; `CARGO_BIN_EXE_*` only
/// covers a crate's own bins).
fn reproduce_bin() -> PathBuf {
    let mut p = std::env::current_exe().expect("test executable path");
    p.pop(); // deps/
    p.pop(); // debug/
    let p = p.join("reproduce");
    assert!(
        p.is_file(),
        "reproduce binary missing at {p:?}; build the workspace first (cargo build)"
    );
    p
}

/// The worker flags every test sweep uses: a trimmed soak matrix —
/// small enough to finish in CI, big enough that a worker is still
/// mid-shard when the test reaches in to kill it.
const SWEEP_ARGS: &[&str] = &[
    "--secs",
    "12",
    "--warmup",
    "3",
    "--links",
    "vz-lte-down",
    "--prop-delays",
    "20",
    "--queues",
    "auto,bytes:75000",
];

fn start_daemon(tag: &str) -> (String, std::thread::JoinHandle<()>, PathBuf, PathBuf) {
    let state = temp_dir(&format!("{tag}-state"));
    let cache = temp_dir(&format!("{tag}-cache"));
    let out = temp_dir(&format!("{tag}-out"));
    let mut cfg = DaemonConfig::new(&state);
    cfg.cache_dir = cache;
    cfg.out_dir = out.clone();
    cfg.reproduce_bin = reproduce_bin();
    cfg.tick = Duration::from_millis(25);
    cfg.retry_base = Duration::from_millis(100);
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let endpoint = daemon.endpoint().to_string();
    let handle = std::thread::spawn(move || daemon.run().expect("daemon run"));
    (endpoint, handle, out, state)
}

fn get(endpoint: &str, path: &str) -> String {
    let (status, body) = client::request(endpoint, "GET", path, "").expect("GET");
    assert_eq!(status, 200, "GET {path}: {body}");
    body
}

fn submit(endpoint: &str, workers: usize) -> u64 {
    let body = SWEEP_ARGS.join("\n");
    let (status, resp) = client::request(
        endpoint,
        "POST",
        &format!("/sweeps?experiment=soak&workers={workers}"),
        &body,
    )
    .expect("submit");
    assert_eq!(status, 200, "submit: {resp}");
    resp.split("\"id\":")
        .nth(1)
        .and_then(|s| s.split('}').next())
        .and_then(|s| s.trim().parse().ok())
        .expect("submit returns an id")
}

/// First `"key":value` number after `needle` in `json`.
fn field_after<'a>(json: &'a str, needle: &str, key: &str) -> Option<&'a str> {
    json.split(needle)
        .nth(1)?
        .split(&format!("\"{key}\":"))
        .nth(1)?
        .split([',', '}', '"'])
        .find(|s| !s.is_empty())
}

fn sweep_state(endpoint: &str, id: u64) -> String {
    let body = get(endpoint, "/sweeps");
    let needle = format!("\"id\":{id},");
    body.split(&needle)
        .nth(1)
        .and_then(|row| row.split("\"state\":\"").nth(1))
        .and_then(|s| s.split('"').next())
        .unwrap_or("missing")
        .to_string()
}

fn wait_for_state(endpoint: &str, id: u64, want: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let state = sweep_state(endpoint, id);
        if state == want {
            return;
        }
        assert!(
            state != "failed" || want == "failed",
            "sweep {id} failed while waiting for {want}: {}",
            get(endpoint, "/sweeps")
        );
        assert!(
            Instant::now() < deadline,
            "sweep {id} stuck in {state:?} waiting for {want:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn shutdown(endpoint: &str, handle: std::thread::JoinHandle<()>, state_dir: &Path) {
    let (status, _) = client::request(endpoint, "POST", "/shutdown", "").expect("shutdown");
    assert_eq!(status, 200);
    handle.join().expect("daemon thread exits cleanly");
    assert!(
        !state_dir.join("endpoint").exists(),
        "shutdown must remove the endpoint file"
    );
}

fn pid_alive(pid: u32) -> bool {
    Command::new("kill")
        .args(["-0", &pid.to_string()])
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

#[test]
fn killed_worker_is_redealt_and_merge_matches_single_process_run() {
    let _g = lock();

    // Reference: the same flags in one process, own cache and out dir.
    let ref_out = temp_dir("ref-out");
    let ref_cache = temp_dir("ref-cache");
    let status = Command::new(reproduce_bin())
        .arg("soak")
        .args(SWEEP_ARGS)
        .arg("--out")
        .arg(&ref_out)
        .arg("--cache-dir")
        .arg(&ref_cache)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("reference run spawns");
    assert!(status.success(), "reference run failed");
    let reference =
        std::fs::read(ref_out.join("soak_sweep.json")).expect("reference sweep artifact");

    let (endpoint, handle, out, state_dir) = start_daemon("kill");
    let id = submit(&endpoint, 2);

    // Kill the first shard worker the moment it shows up in /status:
    // its undeposited cells must be re-dealt to a replacement.
    let deadline = Instant::now() + Duration::from_secs(30);
    let victim: u32 = loop {
        let body = get(&endpoint, "/status");
        if let Some(pid) = field_after(&body, "\"phase\":\"shard\"", "pid") {
            break pid.parse().expect("pid is a number");
        }
        assert!(Instant::now() < deadline, "no shard worker appeared");
        std::thread::sleep(Duration::from_millis(20));
    };
    let killed = Command::new("kill")
        .args(["-9", &victim.to_string()])
        .status()
        .expect("kill spawns")
        .success();
    assert!(killed, "SIGKILL of worker {victim} failed");

    wait_for_state(&endpoint, id, "done", Duration::from_secs(300));

    // The death was observed and the shard re-dealt.
    let sweeps = get(&endpoint, "/sweeps");
    let retries: u64 = field_after(&sweeps, &format!("\"id\":{id},"), "retries")
        .and_then(|s| s.parse().ok())
        .expect("retries field");
    assert!(retries >= 1, "worker death must be counted as a retry");

    // Determinism contract: daemon-merged == single-process, byte for
    // byte, despite two workers and one murder.
    let merged = std::fs::read(out.join(format!("sweep-{id}")).join("soak_sweep.json"))
        .expect("merged sweep artifact");
    assert_eq!(
        merged, reference,
        "daemon-merged soak_sweep.json differs from the single-process run"
    );

    // The live cell probe agrees that everything is cached.
    let cells = get(&endpoint, &format!("/sweeps/{id}/cells"));
    let cached: u64 = field_after(&cells, "{", "cached")
        .and_then(|s| s.parse().ok())
        .unwrap();
    let total: u64 = field_after(&cells, "{", "total")
        .and_then(|s| s.parse().ok())
        .unwrap();
    assert!(total > 0 && cached == total, "cells: {cached}/{total}");

    shutdown(&endpoint, handle, &state_dir);
}

#[test]
fn replay_submissions_are_validated_at_submit_time() {
    let _g = lock();
    let (endpoint, handle, _out, state_dir) = start_daemon("replay-validate");
    let post = |experiment: &str, body: &str| {
        client::request(
            &endpoint,
            "POST",
            &format!("/sweeps?experiment={experiment}&workers=1"),
            body,
        )
        .expect("request")
    };

    // A capture that cannot be read fails the submit with a 400 —
    // before any worker is spawned.
    let (status, resp) = post("replay", "--trace\n/nonexistent/capture.trace");
    assert_eq!(status, 400, "{resp}");

    // The replay axis flags are experiment-scoped at submit time too.
    let (status, resp) = post("fig1", "--timeseries");
    assert_eq!(status, 400, "{resp}");
    let (status, resp) = post("soak", "--schemes\nsprout");
    assert_eq!(status, 400, "{resp}");
    let (status, resp) = post("replay", "--schemes\nbogus");
    assert_eq!(status, 400, "{resp}");

    // A well-formed replay sweep (embedded default corpus, trimmed
    // roster) passes the same screen; cancel it rather than run it.
    let (status, resp) = post("replay", "--schemes\nsprout\n--quick");
    assert_eq!(status, 200, "{resp}");
    let id: u64 = resp
        .split("\"id\":")
        .nth(1)
        .and_then(|s| s.split('}').next())
        .and_then(|s| s.trim().parse().ok())
        .expect("submit returns an id");
    let (status, _) =
        client::request(&endpoint, "POST", &format!("/sweeps/{id}/cancel"), "").expect("cancel");
    assert_eq!(status, 200);
    wait_for_state(&endpoint, id, "cancelled", Duration::from_secs(60));

    shutdown(&endpoint, handle, &state_dir);
}

#[test]
fn cancelled_sweep_leaves_only_cached_cells() {
    let _g = lock();
    let (endpoint, handle, out, state_dir) = start_daemon("cancel");
    let id = submit(&endpoint, 2);

    // Wait for workers, note their pids, then cancel mid-flight.
    let deadline = Instant::now() + Duration::from_secs(30);
    let pids: Vec<u32> = loop {
        let body = get(&endpoint, "/status");
        let pids: Vec<u32> = body
            .split("\"pid\":")
            .skip(1)
            .filter_map(|s| s.split([',', '}']).next()?.parse().ok())
            .collect();
        if !pids.is_empty() {
            break pids;
        }
        assert!(Instant::now() < deadline, "no workers appeared");
        std::thread::sleep(Duration::from_millis(20));
    };
    let (status, _) =
        client::request(&endpoint, "POST", &format!("/sweeps/{id}/cancel"), "").expect("cancel");
    assert_eq!(status, 200);
    wait_for_state(&endpoint, id, "cancelled", Duration::from_secs(60));

    // Workers are dead, not leaked.
    let reaped = Instant::now() + Duration::from_secs(10);
    for pid in pids {
        while pid_alive(pid) {
            assert!(
                Instant::now() < reaped,
                "worker {pid} still alive after cancel"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // No partial artifacts: the sweep's out dir is gone entirely.
    assert!(
        !out.join(format!("sweep-{id}")).exists(),
        "cancel must remove the sweep's artifact directory"
    );

    shutdown(&endpoint, handle, &state_dir);
}
