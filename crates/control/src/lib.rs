//! `sprout-control`: the long-running sweep orchestrator.
//!
//! The reproduction harness already knows how to split a scenario
//! matrix into deterministic shards (`reproduce --shard I/N`), deposit
//! finished cells in a shared content-addressed cache, and reassemble
//! the full artifacts from that cache (`--merge`), byte-identical to a
//! single-process run. What it lacked was a *process* that owns a queue
//! of such sweeps for days at a time: dealing shards to local worker
//! processes, noticing when a worker dies or wedges, re-dealing the
//! orphaned cells, and serving live progress over HTTP. This crate is
//! that process.
//!
//! The layering is deliberate:
//!
//! - [`state`] — the persistent sweep queue. One line per sweep in
//!   `<state-dir>/queue.tsv`, rewritten atomically; sweeps that were
//!   mid-flight when the daemon died reload as `pending`, which is safe
//!   because every finished cell is already in the cell cache and a
//!   re-dealt shard `--resume`s straight past them.
//! - [`daemon`] — the scheduler: spawns `reproduce <exp> … --shard i/N
//!   --resume --controlled` workers sharing one `SPROUT_CACHE_DIR`,
//!   watches their heartbeat lines, kills and re-deals on silence or
//!   death (exponential backoff, bounded retries), and runs the final
//!   `--merge` that renders the artifacts.
//! - [`httpd`] / [`client`] — a dependency-free HTTP/1.1 sliver for the
//!   status API (`/status`, `/sweeps`, `/sweeps/<id>/cells`) and the
//!   `sprout-control` CLI that speaks to it.
//!
//! The determinism contract is inherited, not re-proven: the daemon
//! forwards a submitted sweep's axis flags *verbatim* (validated at
//! submit time by the same parser the binary uses — see
//! [`sprout_bench::cli`]) to every worker and to the merge, so the
//! merged `*_sweep.json` is byte-identical to a single-process run of
//! the same flags, regardless of worker count, deaths, or restarts.

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod httpd;
pub mod state;

pub use daemon::{Daemon, DaemonConfig};
pub use state::{Queue, SweepSpec, SweepState};
