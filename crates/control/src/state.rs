//! The persistent sweep queue.
//!
//! One sweep per line in `<state-dir>/queue.tsv`, tab-separated, with
//! the worker argument vector joined by an ASCII unit separator (no
//! argument may contain a tab, newline, or unit separator — submission
//! rejects those, so the encoding never needs escaping). The file is
//! rewritten whole through a temp-file rename, so a crash mid-persist
//! leaves the previous generation intact.
//!
//! Crash recovery is a *demotion*: a sweep recorded as `running` or
//! `merging` reloads as `pending`. That is correct, not optimistic,
//! because shard workers deposit every finished cell in the shared cell
//! cache — when the daemon restarts and re-deals the sweep, its workers
//! `--resume` straight past the cached cells and only the orphaned
//! remainder re-executes.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Joins the argument vector on disk; rejected inside arguments.
const ARG_SEP: char = '\x1f';

/// Lifecycle of one submitted sweep.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SweepState {
    /// Queued, not yet dealt to workers.
    Pending,
    /// Shard workers are executing cells.
    Running,
    /// All shards done; the merge run is rendering artifacts.
    Merging,
    /// Merge finished; artifacts are on disk.
    Done,
    /// A shard or the merge exhausted its retries (see the error field).
    Failed,
    /// Cancelled by request; workers killed, artifacts removed.
    Cancelled,
}

impl SweepState {
    /// Stable on-disk / over-the-wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            SweepState::Pending => "pending",
            SweepState::Running => "running",
            SweepState::Merging => "merging",
            SweepState::Done => "done",
            SweepState::Failed => "failed",
            SweepState::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`SweepState::as_str`].
    pub fn parse(s: &str) -> Option<SweepState> {
        Some(match s {
            "pending" => SweepState::Pending,
            "running" => SweepState::Running,
            "merging" => SweepState::Merging,
            "done" => SweepState::Done,
            "failed" => SweepState::Failed,
            "cancelled" => SweepState::Cancelled,
            _ => return None,
        })
    }

    /// True once the sweep can never change state again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SweepState::Done | SweepState::Failed | SweepState::Cancelled
        )
    }
}

/// One submitted sweep: an experiment name, the worker-safe argument
/// vector forwarded verbatim to every worker and the merge, and how
/// many shard workers to deal it across.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Queue-assigned id, unique within a state directory's lifetime.
    pub id: u64,
    /// Experiment name from [`sprout_bench::cli::EXPERIMENTS`].
    pub experiment: String,
    /// Shard worker count (`--shard i/workers` per worker).
    pub workers: usize,
    /// Worker-safe flags, validated at submit time.
    pub args: Vec<String>,
    /// Current lifecycle state.
    pub state: SweepState,
    /// Total worker restarts (death, wedge, or merge retry) so far.
    pub retries: u64,
    /// Human-readable failure reason; empty unless `Failed`.
    pub error: String,
}

/// The durable queue: an in-memory sweep list mirrored to `queue.tsv`.
pub struct Queue {
    path: PathBuf,
    sweeps: Vec<SweepSpec>,
    next_id: u64,
}

/// True when `arg` can be stored losslessly in the line format.
pub fn storable_arg(arg: &str) -> bool {
    !arg.is_empty() && !arg.contains(['\t', '\n', '\r', ARG_SEP])
}

impl Queue {
    /// Load the queue from `state_dir` (creating the directory if
    /// needed), demoting mid-flight sweeps to `pending`.
    pub fn open(state_dir: &Path) -> io::Result<Queue> {
        std::fs::create_dir_all(state_dir)?;
        let path = state_dir.join("queue.tsv");
        let mut sweeps = Vec::new();
        let mut next_id = 1;
        if let Ok(contents) = std::fs::read_to_string(&path) {
            for line in contents.lines() {
                let mut spec = Self::decode(line).ok_or_else(|| {
                    io::Error::other(format!("corrupt queue line in {path:?}: {line:?}"))
                })?;
                if matches!(spec.state, SweepState::Running | SweepState::Merging) {
                    spec.state = SweepState::Pending;
                }
                next_id = next_id.max(spec.id + 1);
                sweeps.push(spec);
            }
        }
        Ok(Queue {
            path,
            sweeps,
            next_id,
        })
    }

    /// Append a new pending sweep and persist. The caller has already
    /// validated `experiment` and `args`; this only enforces that every
    /// argument survives the line format.
    pub fn submit(
        &mut self,
        experiment: &str,
        workers: usize,
        args: Vec<String>,
    ) -> io::Result<u64> {
        if let Some(bad) = args.iter().find(|a| !storable_arg(a)) {
            return Err(io::Error::other(format!(
                "argument {bad:?} cannot be stored (empty or contains a control character)"
            )));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.sweeps.push(SweepSpec {
            id,
            experiment: experiment.to_string(),
            workers,
            args,
            state: SweepState::Pending,
            retries: 0,
            error: String::new(),
        });
        self.persist()?;
        Ok(id)
    }

    /// All sweeps, submission order.
    pub fn sweeps(&self) -> &[SweepSpec] {
        &self.sweeps
    }

    /// Look up one sweep.
    pub fn get(&self, id: u64) -> Option<&SweepSpec> {
        self.sweeps.iter().find(|s| s.id == id)
    }

    /// Mutable lookup (caller persists after mutating).
    pub fn get_mut(&mut self, id: u64) -> Option<&mut SweepSpec> {
        self.sweeps.iter_mut().find(|s| s.id == id)
    }

    /// The oldest pending sweep, if any.
    pub fn first_pending(&self) -> Option<u64> {
        self.sweeps
            .iter()
            .find(|s| s.state == SweepState::Pending)
            .map(|s| s.id)
    }

    /// Rewrite `queue.tsv` atomically (temp file + rename).
    pub fn persist(&self) -> io::Result<()> {
        let tmp = self.path.with_extension("tsv.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            for spec in &self.sweeps {
                writeln!(f, "{}", Self::encode(spec))?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)
    }

    fn encode(spec: &SweepSpec) -> String {
        // The error field is free text: squash anything that would
        // break the line format rather than escaping it.
        let error: String = spec
            .error
            .chars()
            .map(|c| {
                if c == '\t' || c == '\n' || c == '\r' {
                    ' '
                } else {
                    c
                }
            })
            .collect();
        let mut args = String::new();
        for (i, arg) in spec.args.iter().enumerate() {
            if i > 0 {
                args.push(ARG_SEP);
            }
            args.push_str(arg);
        }
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            spec.id,
            spec.experiment,
            spec.workers,
            spec.state.as_str(),
            spec.retries,
            error,
            args
        )
    }

    fn decode(line: &str) -> Option<SweepSpec> {
        let mut parts = line.splitn(7, '\t');
        let id = parts.next()?.parse().ok()?;
        let experiment = parts.next()?.to_string();
        let workers = parts.next()?.parse().ok()?;
        let state = SweepState::parse(parts.next()?)?;
        let retries = parts.next()?.parse().ok()?;
        let error = parts.next()?.to_string();
        let args_field = parts.next()?;
        let args = if args_field.is_empty() {
            Vec::new()
        } else {
            args_field.split(ARG_SEP).map(str::to_string).collect()
        };
        Some(SweepSpec {
            id,
            experiment,
            workers,
            args,
            state,
            retries,
            error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_state_dir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "sprout-control-state-test-{}-{}-{tag}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn queue_round_trips_and_demotes_midflight_sweeps() {
        let dir = temp_state_dir("roundtrip");
        let mut q = Queue::open(&dir).unwrap();
        let a = q
            .submit("soak", 2, vec!["--secs".into(), "40".into()])
            .unwrap();
        let b = q.submit("fig1", 1, vec![]).unwrap();
        assert_eq!((a, b), (1, 2));
        q.get_mut(a).unwrap().state = SweepState::Running;
        q.get_mut(a).unwrap().retries = 3;
        q.get_mut(b).unwrap().state = SweepState::Done;
        q.persist().unwrap();

        let reloaded = Queue::open(&dir).unwrap();
        // Mid-flight work demotes to pending; terminal states survive.
        let ra = reloaded.get(a).unwrap();
        assert_eq!(ra.state, SweepState::Pending);
        assert_eq!(ra.retries, 3);
        assert_eq!(ra.args, vec!["--secs".to_string(), "40".to_string()]);
        assert_eq!(reloaded.get(b).unwrap().state, SweepState::Done);
        // Ids never recycle across a restart.
        let mut reloaded = reloaded;
        assert_eq!(reloaded.submit("fig2", 1, vec![]).unwrap(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unstorable_arguments_are_rejected() {
        let dir = temp_state_dir("badargs");
        let mut q = Queue::open(&dir).unwrap();
        assert!(q.submit("soak", 1, vec!["a\tb".into()]).is_err());
        assert!(q.submit("soak", 1, vec![String::new()]).is_err());
        assert!(q.sweeps().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
