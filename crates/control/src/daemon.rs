//! The scheduler: deals sweeps to `reproduce --shard` workers, watches
//! their heartbeats, re-deals orphaned shards, and runs the final merge.
//!
//! One sweep is active at a time (submission order); its `workers`
//! count becomes the shard denominator. Every worker is spawned as
//!
//! ```text
//! reproduce <experiment> <args…> --shard i/N --resume --controlled \
//!           --out <out>/sweep-<id>  (env SPROUT_CACHE_DIR=<cache>)
//! ```
//!
//! `--resume` is what makes worker death cheap: a replacement worker
//! re-executes only the cells its predecessor had not yet deposited in
//! the shared cell cache. `--controlled` makes liveness observable — a
//! worker prints a flushed heartbeat line every 500 ms, so a wedged
//! process (as opposed to a merely busy one) is killed and re-dealt
//! after `hb_timeout` of silence. Retries back off exponentially and
//! are bounded; exhausting them fails the sweep with a named reason
//! instead of looping forever.
//!
//! When every shard reports success the daemon spawns the merge run
//! (`--merge`), which serves all cells from the cache and renders the
//! artifacts — byte-identical to a single-process run of the same
//! flags, which is the contract the integration tests pin.

use std::collections::HashSet;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sprout_bench::figures::{self, ExperimentConfig};
use sprout_bench::{cellcache, cli};

use crate::httpd::{self, json_escape, Request, Response};
use crate::state::{Queue, SweepState};

/// Everything the daemon needs to run; see `sprout-control serve`.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Listen address, e.g. `127.0.0.1:0` (the bound port is written to
    /// `<state_dir>/endpoint`).
    pub listen: String,
    /// Queue file, endpoint file, and worker logs live here.
    pub state_dir: PathBuf,
    /// The shared artifact cache every worker and merge runs against.
    pub cache_dir: PathBuf,
    /// Artifact root; sweep `<id>` renders into `<out_dir>/sweep-<id>`.
    pub out_dir: PathBuf,
    /// The `reproduce` binary workers are spawned from.
    pub reproduce_bin: PathBuf,
    /// Kill a worker whose stdout has been silent this long.
    pub hb_timeout: Duration,
    /// First retry delay; doubles per retry of the same shard.
    pub retry_base: Duration,
    /// Retries per shard (and for the merge) before the sweep fails.
    pub max_retries: u32,
    /// Scheduler tick.
    pub tick: Duration,
}

impl DaemonConfig {
    /// Defaults rooted at `state_dir`: cache in `.sprout-cache` (or
    /// `SPROUT_CACHE_DIR`), artifacts in `results/`, `reproduce`
    /// resolved as a sibling of the current executable.
    pub fn new(state_dir: impl Into<PathBuf>) -> DaemonConfig {
        let reproduce_bin = std::env::current_exe()
            .ok()
            .and_then(|exe| Some(exe.parent()?.join("reproduce")))
            .unwrap_or_else(|| PathBuf::from("reproduce"));
        let cache_dir = std::env::var_os("SPROUT_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(".sprout-cache"));
        DaemonConfig {
            listen: "127.0.0.1:0".to_string(),
            state_dir: state_dir.into(),
            cache_dir,
            out_dir: PathBuf::from("results"),
            reproduce_bin,
            hb_timeout: Duration::from_secs(10),
            retry_base: Duration::from_millis(500),
            max_retries: 4,
            tick: Duration::from_millis(100),
        }
    }
}

/// A worker's row in `/status`.
#[derive(Clone)]
struct WorkerView {
    sweep: u64,
    phase: &'static str,
    shard: usize,
    count: usize,
    pid: u32,
    retries: u32,
    abandoned: u64,
    quiet_ms: u64,
}

struct Shared {
    cfg: DaemonConfig,
    queue: Mutex<Queue>,
    cancels: Mutex<HashSet<u64>>,
    shutdown: AtomicBool,
    views: Mutex<Vec<WorkerView>>,
    started: Instant,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One spawned `reproduce` process (a shard worker or the merge).
struct WorkerProc {
    shard: usize,
    child: Child,
    pid: u32,
    last_line: Arc<Mutex<Instant>>,
    abandoned: Arc<AtomicU64>,
    reader: Option<JoinHandle<()>>,
}

impl WorkerProc {
    fn quiet_for(&self) -> Duration {
        lock(&self.last_line).elapsed()
    }

    fn kill_and_reap(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }

    fn reap(mut self) {
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ShardPhase {
    Waiting,
    Running,
    Done,
}

struct ShardRun {
    phase: ShardPhase,
    retries: u32,
    next_attempt: Instant,
}

/// The sweep currently being dealt.
struct Active {
    id: u64,
    experiment: String,
    args: Vec<String>,
    count: usize,
    shards: Vec<ShardRun>,
    workers: Vec<WorkerProc>,
    merge: Option<WorkerProc>,
    merge_retries: u32,
    merge_next_attempt: Instant,
    out_dir: PathBuf,
}

/// A running control daemon: HTTP thread + scheduler.
pub struct Daemon {
    shared: Arc<Shared>,
    endpoint: String,
    http: JoinHandle<()>,
}

impl Daemon {
    /// Bind the listener, write `<state-dir>/endpoint`, load the queue,
    /// and start serving the status API. The scheduler does not run
    /// until [`Daemon::run`].
    pub fn start(cfg: DaemonConfig) -> io::Result<Daemon> {
        std::fs::create_dir_all(&cfg.state_dir)?;
        std::fs::create_dir_all(&cfg.out_dir)?;
        // The daemon probes the shared cell cache directly (for
        // /sweeps/<id>/cells); point this process's cache at it once.
        sprout_cache::set_dir(cfg.cache_dir.clone());
        let queue = Queue::open(&cfg.state_dir)?;
        let listener = TcpListener::bind(&cfg.listen)?;
        let endpoint = listener.local_addr()?.to_string();
        std::fs::write(cfg.state_dir.join("endpoint"), format!("{endpoint}\n"))?;
        let shared = Arc::new(Shared {
            cfg,
            queue: Mutex::new(queue),
            cancels: Mutex::new(HashSet::new()),
            shutdown: AtomicBool::new(false),
            views: Mutex::new(Vec::new()),
            started: Instant::now(),
        });
        let http_shared = Arc::clone(&shared);
        let http_shutdown = Arc::clone(&shared);
        let http = std::thread::spawn(move || {
            let flag = Arc::new(AtomicBool::new(false));
            // Mirror the daemon-wide flag into the server's poll loop.
            let mirror = Arc::clone(&flag);
            let watcher = std::thread::spawn(move || {
                while !http_shutdown.shutdown.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(20));
                }
                mirror.store(true, Ordering::Release);
            });
            let _ = httpd::run(listener, flag, move |req| handle(&http_shared, req));
            let _ = watcher.join();
        });
        Ok(Daemon {
            endpoint,
            shared,
            http,
        })
    }

    /// The bound `host:port` of the status API.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Run the scheduler until `/shutdown`: deal pending sweeps, watch
    /// workers, merge, repeat. Kills every child before returning.
    pub fn run(self) -> io::Result<()> {
        let mut active: Option<Active> = None;
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                if let Some(a) = active.take() {
                    kill_all(a);
                    // The queue still records the sweep as running /
                    // merging; reload demotes it to pending, and its
                    // cached cells make the restart cheap.
                }
                break;
            }
            if let Some(a) = &active {
                if lock(&self.shared.cancels).remove(&a.id) {
                    let a = active.take().expect("checked above");
                    let id = a.id;
                    let out_dir = a.out_dir.clone();
                    kill_all(a);
                    // Leave only cached cells behind: no partial
                    // artifacts survive a cancel.
                    let _ = std::fs::remove_dir_all(&out_dir);
                    self.finish(id, SweepState::Cancelled, String::new());
                }
            }
            if active.is_none() {
                active = self.next_pending()?;
            }
            if let Some(a) = &mut active {
                if self.step(a)? {
                    active = None;
                }
            }
            self.publish(active.as_ref());
            std::thread::sleep(self.shared.cfg.tick);
        }
        lock(&self.shared.views).clear();
        let _ = std::fs::remove_file(self.shared.cfg.state_dir.join("endpoint"));
        let _ = self.http.join();
        Ok(())
    }

    /// Promote the oldest pending sweep to running and set up its
    /// shard table.
    fn next_pending(&self) -> io::Result<Option<Active>> {
        let mut q = lock(&self.shared.queue);
        let Some(id) = q.first_pending() else {
            return Ok(None);
        };
        let spec = q.get_mut(id).expect("first_pending returned a live id");
        spec.state = SweepState::Running;
        let (experiment, args, count) = (spec.experiment.clone(), spec.args.clone(), spec.workers);
        q.persist()?;
        drop(q);
        let out_dir = self.shared.cfg.out_dir.join(format!("sweep-{id}"));
        std::fs::create_dir_all(&out_dir)?;
        let now = Instant::now();
        let shards = (0..count)
            .map(|_| ShardRun {
                phase: ShardPhase::Waiting,
                retries: 0,
                next_attempt: now,
            })
            .collect();
        Ok(Some(Active {
            id,
            experiment,
            args,
            count,
            shards,
            workers: Vec::new(),
            merge: None,
            merge_retries: 0,
            merge_next_attempt: now,
            out_dir,
        }))
    }

    /// One scheduler pass over the active sweep. Returns `true` when
    /// the sweep reached a terminal state.
    fn step(&self, a: &mut Active) -> io::Result<bool> {
        let cfg = &self.shared.cfg;
        let now = Instant::now();

        // Reap shard workers: success marks the shard done; a death or
        // a silent heartbeat re-deals it after a backoff.
        enum Verdict {
            Keep,
            Done,
            Fail(String),
        }
        let mut idx = 0;
        while idx < a.workers.len() {
            let verdict = {
                let w = &mut a.workers[idx];
                match w.child.try_wait() {
                    Ok(Some(st)) if st.success() => Verdict::Done,
                    Ok(Some(st)) => Verdict::Fail(format!("worker exited with {st}")),
                    Ok(None) => {
                        let quiet = w.quiet_for();
                        if quiet > cfg.hb_timeout {
                            Verdict::Fail(format!(
                                "heartbeat silent for {:.1}s",
                                quiet.as_secs_f64()
                            ))
                        } else {
                            Verdict::Keep
                        }
                    }
                    Err(e) => Verdict::Fail(format!("wait failed: {e}")),
                }
            };
            match verdict {
                Verdict::Keep => idx += 1,
                Verdict::Done => {
                    let w = a.workers.swap_remove(idx);
                    a.shards[w.shard].phase = ShardPhase::Done;
                    w.reap();
                }
                Verdict::Fail(reason) => {
                    let w = a.workers.swap_remove(idx);
                    let shard = w.shard;
                    w.kill_and_reap();
                    self.count_retry(a.id);
                    let s = &mut a.shards[shard];
                    s.retries += 1;
                    if s.retries > cfg.max_retries {
                        let msg = format!(
                            "shard {shard}/{} failed after {} attempts: {reason}",
                            a.count, s.retries
                        );
                        return self.fail_active(a, msg);
                    }
                    s.phase = ShardPhase::Waiting;
                    s.next_attempt = now + backoff(cfg.retry_base, s.retries);
                }
            }
        }

        // Deal shards whose backoff has elapsed.
        for shard in 0..a.shards.len() {
            let due =
                a.shards[shard].phase == ShardPhase::Waiting && now >= a.shards[shard].next_attempt;
            if !due {
                continue;
            }
            match self.spawn(a, Some(shard), a.shards[shard].retries) {
                Ok(w) => {
                    a.shards[shard].phase = ShardPhase::Running;
                    a.workers.push(w);
                }
                Err(e) => {
                    self.count_retry(a.id);
                    let s = &mut a.shards[shard];
                    s.retries += 1;
                    if s.retries > cfg.max_retries {
                        let msg = format!("shard {shard}/{}: spawn failed: {e}", a.count);
                        return self.fail_active(a, msg);
                    }
                    s.next_attempt = now + backoff(cfg.retry_base, s.retries);
                }
            }
        }

        // Merge once every shard has deposited its cells.
        if !a.shards.iter().all(|s| s.phase == ShardPhase::Done) {
            return Ok(false);
        }
        match &mut a.merge {
            None if now >= a.merge_next_attempt => {
                self.set_state(a.id, SweepState::Merging);
                match self.spawn(a, None, a.merge_retries) {
                    Ok(w) => a.merge = Some(w),
                    Err(e) => return self.merge_failed(a, format!("spawn failed: {e}"), now),
                }
            }
            None => {}
            Some(m) => {
                let verdict = match m.child.try_wait() {
                    Ok(Some(st)) if st.success() => Some(Ok(())),
                    Ok(Some(st)) => Some(Err(format!("merge exited with {st}"))),
                    Ok(None) => {
                        let quiet = m.quiet_for();
                        if quiet > cfg.hb_timeout {
                            Some(Err(format!(
                                "merge heartbeat silent for {:.1}s",
                                quiet.as_secs_f64()
                            )))
                        } else {
                            None
                        }
                    }
                    Err(e) => Some(Err(format!("merge wait failed: {e}"))),
                };
                match verdict {
                    None => {}
                    Some(Ok(())) => {
                        a.merge.take().expect("matched Some").reap();
                        self.finish(a.id, SweepState::Done, String::new());
                        return Ok(true);
                    }
                    Some(Err(reason)) => {
                        a.merge.take().expect("matched Some").kill_and_reap();
                        return self.merge_failed(a, reason, now);
                    }
                }
            }
        }
        Ok(false)
    }

    /// Book a merge retry (or fail the sweep when exhausted).
    fn merge_failed(&self, a: &mut Active, reason: String, now: Instant) -> io::Result<bool> {
        self.count_retry(a.id);
        a.merge_retries += 1;
        if a.merge_retries > self.shared.cfg.max_retries {
            let msg = format!("merge failed after {} attempts: {reason}", a.merge_retries);
            return self.fail_active(a, msg);
        }
        a.merge_next_attempt = now + backoff(self.shared.cfg.retry_base, a.merge_retries);
        Ok(false)
    }

    /// Kill everything the sweep still runs and mark it failed.
    fn fail_active(&self, a: &mut Active, msg: String) -> io::Result<bool> {
        for w in a.workers.drain(..) {
            w.kill_and_reap();
        }
        if let Some(m) = a.merge.take() {
            m.kill_and_reap();
        }
        self.finish(a.id, SweepState::Failed, msg);
        Ok(true)
    }

    fn set_state(&self, id: u64, state: SweepState) {
        let mut q = lock(&self.shared.queue);
        if let Some(spec) = q.get_mut(id) {
            if spec.state != state {
                spec.state = state;
                let _ = q.persist();
            }
        }
    }

    fn finish(&self, id: u64, state: SweepState, error: String) {
        let mut q = lock(&self.shared.queue);
        if let Some(spec) = q.get_mut(id) {
            spec.state = state;
            spec.error = error;
            let _ = q.persist();
        }
    }

    fn count_retry(&self, id: u64) {
        let mut q = lock(&self.shared.queue);
        if let Some(spec) = q.get_mut(id) {
            spec.retries += 1;
            let _ = q.persist();
        }
    }

    /// Spawn one worker: `Some(shard)` for a shard run, `None` for the
    /// merge. Stdout is piped through a reader thread that timestamps
    /// every line (the liveness signal) and tees it to a log file;
    /// stderr goes straight to a log file.
    fn spawn(&self, a: &Active, shard: Option<usize>, attempt: u32) -> io::Result<WorkerProc> {
        let cfg = &self.shared.cfg;
        let logs = cfg.state_dir.join("logs");
        std::fs::create_dir_all(&logs)?;
        let tag = match shard {
            Some(i) => format!("shard{i}"),
            None => "merge".to_string(),
        };
        let log_path = logs.join(format!("sweep{}-{tag}-try{attempt}.log", a.id));
        let err_path = logs.join(format!("sweep{}-{tag}-try{attempt}.err", a.id));
        let mut cmd = Command::new(&cfg.reproduce_bin);
        cmd.arg(&a.experiment).args(&a.args);
        match shard {
            Some(i) => {
                cmd.arg("--shard").arg(format!("{i}/{}", a.count));
                cmd.arg("--resume");
            }
            None => {
                cmd.arg("--merge");
            }
        }
        cmd.arg("--controlled")
            .arg("--out")
            .arg(&a.out_dir)
            .env("SPROUT_CACHE_DIR", &cfg.cache_dir)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::from(File::create(&err_path)?));
        let mut child = cmd.spawn()?;
        let pid = child.id();
        let stdout = child.stdout.take().expect("stdout was piped");
        let last_line = Arc::new(Mutex::new(Instant::now()));
        let abandoned = Arc::new(AtomicU64::new(0));
        let (ll, ab) = (Arc::clone(&last_line), Arc::clone(&abandoned));
        let reader = std::thread::spawn(move || {
            let mut log = File::create(&log_path).ok();
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                *lock(&ll) = Instant::now();
                if let Some(rest) = line.strip_prefix("CONTROL hb ") {
                    if let Some(n) = rest
                        .split("abandoned=")
                        .nth(1)
                        .and_then(|v| v.trim().parse().ok())
                    {
                        ab.store(n, Ordering::Relaxed);
                    }
                } else if let Some(log) = log.as_mut() {
                    // Heartbeats are liveness, not output; log the rest.
                    let _ = writeln!(log, "{line}");
                }
            }
        });
        Ok(WorkerProc {
            shard: shard.unwrap_or(usize::MAX),
            child,
            pid,
            last_line,
            abandoned,
            reader: Some(reader),
        })
    }

    /// Refresh the `/status` worker table.
    fn publish(&self, active: Option<&Active>) {
        let mut views = Vec::new();
        if let Some(a) = active {
            for w in &a.workers {
                views.push(WorkerView {
                    sweep: a.id,
                    phase: "shard",
                    shard: w.shard,
                    count: a.count,
                    pid: w.pid,
                    retries: a.shards[w.shard].retries,
                    abandoned: w.abandoned.load(Ordering::Relaxed),
                    quiet_ms: w.quiet_for().as_millis() as u64,
                });
            }
            if let Some(m) = &a.merge {
                views.push(WorkerView {
                    sweep: a.id,
                    phase: "merge",
                    shard: 0,
                    count: 1,
                    pid: m.pid,
                    retries: a.merge_retries,
                    abandoned: m.abandoned.load(Ordering::Relaxed),
                    quiet_ms: m.quiet_for().as_millis() as u64,
                });
            }
        }
        *lock(&self.shared.views) = views;
    }
}

fn kill_all(mut a: Active) {
    for w in a.workers.drain(..) {
        w.kill_and_reap();
    }
    if let Some(m) = a.merge.take() {
        m.kill_and_reap();
    }
}

fn backoff(base: Duration, retries: u32) -> Duration {
    let factor = 1u32 << retries.saturating_sub(1).min(5);
    (base * factor).min(Duration::from_secs(10))
}

fn sweep_json(spec: &crate::state::SweepSpec) -> String {
    let args: Vec<String> = spec
        .args
        .iter()
        .map(|a| format!("\"{}\"", json_escape(a)))
        .collect();
    format!(
        "{{\"id\":{},\"experiment\":\"{}\",\"workers\":{},\"state\":\"{}\",\"retries\":{},\"error\":\"{}\",\"args\":[{}]}}",
        spec.id,
        json_escape(&spec.experiment),
        spec.workers,
        spec.state.as_str(),
        spec.retries,
        json_escape(&spec.error),
        args.join(",")
    )
}

/// Route one status-API request.
fn handle(shared: &Arc<Shared>, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["status"]) => status(shared),
        ("GET", ["sweeps"]) => {
            let q = lock(&shared.queue);
            let rows: Vec<String> = q.sweeps().iter().map(sweep_json).collect();
            Response::json(200, format!("{{\"sweeps\":[{}]}}", rows.join(",")))
        }
        ("POST", ["sweeps"]) => submit(shared, req),
        ("GET", ["sweeps", id, "cells"]) => match id.parse() {
            Ok(id) => cells(shared, id),
            Err(_) => Response::error(400, "sweep id must be a number"),
        },
        ("POST", ["sweeps", id, "cancel"]) => match id.parse() {
            Ok(id) => cancel(shared, id),
            Err(_) => Response::error(400, "sweep id must be a number"),
        },
        ("POST", ["shutdown"]) => {
            shared.shutdown.store(true, Ordering::Release);
            Response::json(200, "{\"shutting_down\":true}")
        }
        _ => Response::error(404, &format!("no route for {} {}", req.method, req.path)),
    }
}

fn status(shared: &Arc<Shared>) -> Response {
    let q = lock(&shared.queue);
    let count = |s: SweepState| q.sweeps().iter().filter(|x| x.state == s).count();
    let counts = format!(
        "{{\"total\":{},\"pending\":{},\"running\":{},\"merging\":{},\"done\":{},\"failed\":{},\"cancelled\":{}}}",
        q.sweeps().len(),
        count(SweepState::Pending),
        count(SweepState::Running),
        count(SweepState::Merging),
        count(SweepState::Done),
        count(SweepState::Failed),
        count(SweepState::Cancelled),
    );
    drop(q);
    let views = lock(&shared.views);
    let workers: Vec<String> = views
        .iter()
        .map(|w| {
            format!(
                "{{\"sweep\":{},\"phase\":\"{}\",\"shard\":{},\"count\":{},\"pid\":{},\"retries\":{},\"abandoned\":{},\"quiet_ms\":{}}}",
                w.sweep, w.phase, w.shard, w.count, w.pid, w.retries, w.abandoned, w.quiet_ms
            )
        })
        .collect();
    Response::json(
        200,
        format!(
            "{{\"uptime_ms\":{},\"sweeps\":{},\"workers\":[{}]}}",
            shared.started.elapsed().as_millis(),
            counts,
            workers.join(",")
        ),
    )
}

/// `POST /sweeps?experiment=E&workers=N`, body = one worker flag per
/// line. Validation happens here, before any worker exists: unknown
/// experiments, reserved control-plane flags, and anything the shared
/// parser rejects all fail the submit with a 400.
fn submit(shared: &Arc<Shared>, req: &Request) -> Response {
    let Some(experiment) = req.query("experiment") else {
        return Response::error(400, "missing experiment query parameter");
    };
    let workers = match req.query("workers").map(str::parse::<usize>) {
        None => 2,
        Some(Ok(n)) if (1..=64).contains(&n) => n,
        Some(_) => return Response::error(400, "workers must be a number in 1..=64"),
    };
    let args: Vec<String> = req
        .body
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect();
    for arg in &args {
        if cli::CONTROL_RESERVED_FLAGS.contains(&arg.as_str()) {
            return Response::error(
                400,
                &format!("{arg} is reserved for the control daemon (it owns sharding, cache placement, and artifact output)"),
            );
        }
    }
    let mut probe = ExperimentConfig::default();
    if let Err(msg) = cli::apply_worker_args(&mut probe, experiment, &args) {
        return Response::error(400, &msg);
    }
    match lock(&shared.queue).submit(experiment, workers, args) {
        Ok(id) => Response::json(200, format!("{{\"id\":{id}}}")),
        Err(e) => Response::error(400, &e.to_string()),
    }
}

/// `GET /sweeps/<id>/cells`: live per-cell progress, computed by
/// probing the shared cell cache with the exact keys the sweep's
/// matrices declare — the same keys workers deposit under, so a cell
/// flips to `cached` the moment its worker stores it.
fn cells(shared: &Arc<Shared>, id: u64) -> Response {
    let spec = match lock(&shared.queue).get(id) {
        Some(spec) => spec.clone(),
        None => return Response::error(404, &format!("no sweep {id}")),
    };
    let mut cfg = ExperimentConfig::default();
    if let Err(msg) = cli::apply_worker_args(&mut cfg, &spec.experiment, &spec.args) {
        return Response::error(400, &msg);
    }
    let mut rows = Vec::new();
    let mut cached_count = 0usize;
    for matrix in figures::matrices_for(&cfg, &spec.experiment) {
        let fingerprint = matrix.fingerprint();
        for cell in matrix.cells() {
            let cached = cellcache::load_cell(matrix.name(), fingerprint, cell, cfg.seed).is_some();
            cached_count += usize::from(cached);
            rows.push(format!(
                "{{\"matrix\":\"{}\",\"label\":\"{}\",\"cached\":{}}}",
                json_escape(matrix.name()),
                json_escape(&cell.label),
                cached
            ));
        }
    }
    Response::json(
        200,
        format!(
            "{{\"sweep\":{},\"state\":\"{}\",\"cached\":{},\"total\":{},\"cells\":[{}]}}",
            id,
            spec.state.as_str(),
            cached_count,
            rows.len(),
            rows.join(",")
        ),
    )
}

fn cancel(shared: &Arc<Shared>, id: u64) -> Response {
    let mut q = lock(&shared.queue);
    let Some(spec) = q.get_mut(id) else {
        return Response::error(404, &format!("no sweep {id}"));
    };
    if spec.state.is_terminal() {
        let state = spec.state.as_str();
        return Response::json(200, format!("{{\"id\":{id},\"state\":\"{state}\"}}"));
    }
    if spec.state == SweepState::Pending {
        spec.state = SweepState::Cancelled;
        let _ = q.persist();
        return Response::json(200, format!("{{\"id\":{id},\"state\":\"cancelled\"}}"));
    }
    drop(q);
    lock(&shared.cancels).insert(id);
    Response::json(200, format!("{{\"id\":{id},\"state\":\"cancelling\"}}"))
}
