//! The sweep-orchestrator CLI: run the daemon, or talk to one.
//!
//! ```text
//! sprout-control serve    [--listen ADDR] [--state-dir DIR] [--cache-dir DIR]
//!                         [--out DIR] [--reproduce-bin PATH]
//!                         [--hb-timeout SECS] [--max-retries N] [--tick-ms MS]
//! sprout-control submit <experiment> [--workers N] [-- <worker flags…>]
//! sprout-control status
//! sprout-control sweeps
//! sprout-control cells  <id>
//! sprout-control cancel <id>
//! sprout-control wait   <id> [--timeout-secs N]
//! sprout-control shutdown
//! ```
//!
//! Client subcommands find the daemon through `<state-dir>/endpoint`
//! (default state dir `.sprout-control`) or an explicit `--endpoint
//! host:port`, print the JSON response to stdout, and exit nonzero on
//! any non-2xx answer. `wait` polls until the sweep reaches a terminal
//! state and exits 0 only for `done`.
//!
//! `serve` runs the daemon in the foreground: a persistent sweep queue
//! in the state dir, `reproduce --shard i/N --resume --controlled`
//! workers sharing one cache dir, heartbeat supervision with bounded
//! retry-with-backoff, and a final `--merge` whose artifacts are
//! byte-identical to a single-process run of the same flags.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use sprout_control::{client, Daemon, DaemonConfig};

const USAGE: &str = "usage: sprout-control <serve|submit|status|sweeps|cells|cancel|wait|shutdown> [flags]
  serve    [--listen ADDR] [--state-dir DIR] [--cache-dir DIR] [--out DIR] [--reproduce-bin PATH] [--hb-timeout SECS] [--max-retries N] [--tick-ms MS]
  submit <experiment> [--workers N] [--state-dir DIR | --endpoint ADDR] [-- <worker flags...>]
  status|sweeps|shutdown [--state-dir DIR | --endpoint ADDR]
  cells|cancel <id> [--state-dir DIR | --endpoint ADDR]
  wait <id> [--timeout-secs N] [--state-dir DIR | --endpoint ADDR]";

fn usage_error(msg: &str) -> ! {
    eprintln!("sprout-control: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Flags shared by every client subcommand.
struct ClientOpts {
    state_dir: PathBuf,
    endpoint: Option<String>,
}

impl ClientOpts {
    fn endpoint(&self) -> String {
        match &self.endpoint {
            Some(addr) => addr.clone(),
            None => client::endpoint_of(&self.state_dir).unwrap_or_else(|e| {
                eprintln!("sprout-control: {e}");
                std::process::exit(1);
            }),
        }
    }
}

fn request_or_die(endpoint: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    client::request(endpoint, method, path, body).unwrap_or_else(|e| {
        eprintln!("sprout-control: request to {endpoint} failed: {e}");
        std::process::exit(1);
    })
}

/// Print the response body; exit nonzero unless the status was 2xx.
fn finish(status: u16, body: String) -> ! {
    println!("{body}");
    std::process::exit(if (200..300).contains(&status) { 0 } else { 1 });
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        usage_error("missing subcommand");
    };
    let rest: Vec<String> = args.collect();
    match cmd.as_str() {
        "serve" => serve(&rest),
        "submit" => submit(&rest),
        "status" => simple(&rest, "GET", "/status"),
        "sweeps" => simple(&rest, "GET", "/sweeps"),
        "shutdown" => simple(&rest, "POST", "/shutdown"),
        "cells" => by_id(&rest, "GET", "cells"),
        "cancel" => by_id(&rest, "POST", "cancel"),
        "wait" => wait(&rest),
        "--help" | "-h" => {
            println!("{USAGE}");
        }
        other => usage_error(&format!("unknown subcommand {other:?}")),
    }
}

/// Parse `--state-dir`/`--endpoint` out of `rest`; everything else is
/// returned for the subcommand to interpret.
fn split_client_opts(rest: &[String]) -> (ClientOpts, Vec<String>) {
    let mut opts = ClientOpts {
        state_dir: PathBuf::from(".sprout-control"),
        endpoint: None,
    };
    let mut remaining = Vec::new();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--state-dir" => match iter.next() {
                Some(dir) => opts.state_dir = dir.into(),
                None => usage_error("--state-dir expects a directory"),
            },
            "--endpoint" => match iter.next() {
                Some(addr) => opts.endpoint = Some(addr.clone()),
                None => usage_error("--endpoint expects host:port"),
            },
            _ => remaining.push(arg.clone()),
        }
    }
    (opts, remaining)
}

fn serve(rest: &[String]) {
    let mut cfg = DaemonConfig::new(".sprout-control");
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> String {
            match iter.next() {
                Some(v) => v.clone(),
                None => usage_error(&format!("{name} expects a value")),
            }
        };
        match arg.as_str() {
            "--listen" => cfg.listen = value("--listen"),
            "--state-dir" => cfg.state_dir = value("--state-dir").into(),
            "--cache-dir" => cfg.cache_dir = value("--cache-dir").into(),
            "--out" => cfg.out_dir = value("--out").into(),
            "--reproduce-bin" => cfg.reproduce_bin = value("--reproduce-bin").into(),
            "--hb-timeout" => match value("--hb-timeout").parse::<u64>() {
                Ok(secs) if secs >= 1 => cfg.hb_timeout = Duration::from_secs(secs),
                _ => usage_error("--hb-timeout expects a positive number of seconds"),
            },
            "--max-retries" => match value("--max-retries").parse() {
                Ok(n) => cfg.max_retries = n,
                Err(_) => usage_error("--max-retries expects a number"),
            },
            "--tick-ms" => match value("--tick-ms").parse::<u64>() {
                Ok(ms) if ms >= 1 => cfg.tick = Duration::from_millis(ms),
                _ => usage_error("--tick-ms expects a positive number of milliseconds"),
            },
            other => usage_error(&format!("unknown serve flag {other:?}")),
        }
    }
    if !cfg.reproduce_bin.is_file() {
        eprintln!(
            "sprout-control: reproduce binary not found at {:?} (build it, or pass --reproduce-bin)",
            cfg.reproduce_bin
        );
        std::process::exit(1);
    }
    let daemon = Daemon::start(cfg).unwrap_or_else(|e| {
        eprintln!("sprout-control: failed to start: {e}");
        std::process::exit(1);
    });
    println!("sprout-control: serving on {}", daemon.endpoint());
    if let Err(e) = daemon.run() {
        eprintln!("sprout-control: daemon error: {e}");
        std::process::exit(1);
    }
}

fn submit(rest: &[String]) {
    // Everything after `--` is the worker flag vector, forwarded
    // verbatim (the daemon validates it with the shared parser).
    let (own, worker_args) = match rest.iter().position(|a| a == "--") {
        Some(i) => (rest[..i].to_vec(), rest[i + 1..].to_vec()),
        None => (rest.to_vec(), Vec::new()),
    };
    let (opts, remaining) = split_client_opts(&own);
    let mut experiment: Option<String> = None;
    let mut workers: Option<String> = None;
    let mut iter = remaining.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workers" => match iter.next() {
                Some(n) => workers = Some(n.clone()),
                None => usage_error("--workers expects a number"),
            },
            other if !other.starts_with('-') && experiment.is_none() => {
                experiment = Some(other.to_string());
            }
            other => usage_error(&format!("unexpected submit argument {other:?}")),
        }
    }
    let Some(experiment) = experiment else {
        usage_error("submit expects an experiment name");
    };
    let mut path = format!("/sweeps?experiment={experiment}");
    if let Some(w) = workers {
        path.push_str(&format!("&workers={w}"));
    }
    let body = worker_args.join("\n");
    let (status, resp) = request_or_die(&opts.endpoint(), "POST", &path, &body);
    finish(status, resp);
}

fn simple(rest: &[String], method: &str, path: &str) {
    let (opts, remaining) = split_client_opts(rest);
    if let Some(extra) = remaining.first() {
        usage_error(&format!("unexpected argument {extra:?}"));
    }
    let (status, body) = request_or_die(&opts.endpoint(), method, path, "");
    finish(status, body);
}

fn by_id(rest: &[String], method: &str, action: &str) {
    let (opts, remaining) = split_client_opts(rest);
    let [id] = remaining.as_slice() else {
        usage_error(&format!("{action} expects exactly one sweep id"));
    };
    if id.parse::<u64>().is_err() {
        usage_error(&format!("sweep id must be a number, got {id:?}"));
    }
    let path = format!("/sweeps/{id}/{action}");
    let (status, body) = request_or_die(&opts.endpoint(), method, &path, "");
    finish(status, body);
}

/// Poll `/sweeps` until sweep `id` reaches a terminal state; exit 0
/// only when it is `done`.
fn wait(rest: &[String]) {
    let (opts, remaining) = split_client_opts(rest);
    let mut id: Option<String> = None;
    let mut timeout = Duration::from_secs(3600);
    let mut iter = remaining.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--timeout-secs" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(secs)) if secs >= 1 => timeout = Duration::from_secs(secs),
                _ => usage_error("--timeout-secs expects a positive number of seconds"),
            },
            other if !other.starts_with('-') && id.is_none() => id = Some(other.to_string()),
            other => usage_error(&format!("unexpected wait argument {other:?}")),
        }
    }
    let Some(id) = id else {
        usage_error("wait expects a sweep id");
    };
    if id.parse::<u64>().is_err() {
        usage_error(&format!("sweep id must be a number, got {id:?}"));
    }
    let endpoint = opts.endpoint();
    let needle = format!("\"id\":{id},");
    let deadline = Instant::now() + timeout;
    loop {
        let (status, body) = request_or_die(&endpoint, "GET", "/sweeps", "");
        if status != 200 {
            finish(status, body);
        }
        // The sweep rows are flat JSON objects in a known field order;
        // a substring probe is enough for a polling loop.
        let state = body
            .split(&needle)
            .nth(1)
            .and_then(|row| row.split("\"state\":\"").nth(1))
            .and_then(|s| s.split('"').next())
            .map(str::to_string);
        match state.as_deref() {
            None => {
                eprintln!("sprout-control: no sweep {id} at {endpoint}");
                std::process::exit(1);
            }
            Some("done") => finish(200, format!("{{\"id\":{id},\"state\":\"done\"}}")),
            Some(s) if s == "failed" || s == "cancelled" => {
                finish(500, format!("{{\"id\":{id},\"state\":\"{s}\"}}"))
            }
            Some(_) => {}
        }
        if Instant::now() >= deadline {
            eprintln!("sprout-control: timed out waiting for sweep {id}");
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}
