//! The client half of the status API: one blocking HTTP/1.1 request
//! per call over a fresh loopback connection (the server closes after
//! each response, so reading to EOF is the framing).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

/// Perform one `method path` request against `endpoint`
/// (`host:port`), returning `(status, body)`.
pub fn request(
    endpoint: &str,
    method: &str,
    path_and_query: &str,
    body: &str,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(endpoint)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "{method} {path_and_query} HTTP/1.1\r\nHost: {endpoint}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, resp_body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::other("malformed HTTP response (no header terminator)"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::other("malformed HTTP status line"))?;
    Ok((status, resp_body.to_string()))
}

/// Read the daemon's endpoint (`host:port`) from `<state_dir>/endpoint`
/// — written by `sprout-control serve` once its listener is bound.
pub fn endpoint_of(state_dir: &Path) -> io::Result<String> {
    let path = state_dir.join("endpoint");
    let addr = std::fs::read_to_string(&path).map_err(|e| {
        io::Error::other(format!(
            "no daemon endpoint at {path:?} ({e}); is `sprout-control serve` running with this --state-dir?"
        ))
    })?;
    Ok(addr.trim().to_string())
}
