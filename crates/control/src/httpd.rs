//! A dependency-free sliver of HTTP/1.1 — just enough for a loopback
//! status API. One accept loop, one connection at a time (requests are
//! a few hundred bytes and handlers answer from in-memory state), read
//! timeouts so a stalled client cannot wedge the daemon, and
//! `Connection: close` on every response so framing stays trivial.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A parsed request: method, decoded path, decoded query pairs, body.
pub struct Request {
    /// `GET` or `POST`.
    pub method: String,
    /// Path component, percent-decoded (e.g. `/sweeps/3/cells`).
    pub path: String,
    /// Query pairs in order, keys and values percent-decoded.
    pub query: Vec<(String, String)>,
    /// Raw body (present when the request carried `Content-Length`).
    pub body: String,
}

impl Request {
    /// First value of query key `k`, if present.
    pub fn query(&self, k: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    }
}

/// A response: status code plus a JSON body.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body, always served as `application/json`.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
        }
    }

    /// A `{"error": msg}` response with the given status.
    pub fn error(status: u16, msg: &str) -> Response {
        Response::json(status, format!("{{\"error\":\"{}\"}}", json_escape(msg)))
    }
}

/// Escape `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Decode `%XX` escapes and `+` (space) in a URL component.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Split `path?query` into a decoded path and decoded query pairs.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let pairs = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    (percent_decode(path), pairs)
}

/// Read one request off `stream`. Returns `None` on a malformed or
/// empty request (the connection is simply dropped).
fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?.to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).ok()?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    // Loopback status API: nobody legitimately posts more than a flag
    // vector. Cap the body so a confused client cannot balloon memory.
    if content_length > 1 << 20 {
        return None;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    let (path, query) = split_target(&target);
    Some(Request {
        method,
        path,
        query,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let reason = match resp.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        resp.status,
        reason,
        resp.body.len(),
        resp.body
    )?;
    stream.flush()
}

/// Serve `handler` on `listener` until `shutdown` flips. The listener
/// is polled non-blocking so shutdown is honored within ~20 ms even
/// when no request ever arrives.
pub fn run<H>(listener: TcpListener, shutdown: Arc<AtomicBool>, handler: H) -> io::Result<()>
where
    H: Fn(&Request) -> Response,
{
    listener.set_nonblocking(true)?;
    loop {
        if shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                if let Some(req) = read_request(&mut stream) {
                    let resp = handler(&req);
                    let _ = write_response(&mut stream, &resp);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_split_and_decode() {
        let (path, query) = split_target("/sweeps/3/cells?experiment=soak&x=a%20b+c");
        assert_eq!(path, "/sweeps/3/cells");
        assert_eq!(query[0], ("experiment".to_string(), "soak".to_string()));
        assert_eq!(query[1], ("x".to_string(), "a b c".to_string()));
        let (path, query) = split_target("/status");
        assert_eq!((path.as_str(), query.len()), ("/status", 0));
    }

    #[test]
    fn json_escape_covers_the_control_plane() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn server_answers_and_honors_shutdown() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let server = std::thread::spawn(move || {
            run(listener, flag, |req| {
                Response::json(
                    200,
                    format!(
                        "{{\"method\":\"{}\",\"path\":\"{}\",\"body\":\"{}\"}}",
                        req.method,
                        req.path,
                        json_escape(&req.body)
                    ),
                )
            })
            .unwrap();
        });
        let (status, body) =
            crate::client::request(&addr.to_string(), "POST", "/echo?k=v", "hello").unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            body,
            "{\"method\":\"POST\",\"path\":\"/echo\",\"body\":\"hello\"}"
        );
        shutdown.store(true, Ordering::Release);
        server.join().unwrap();
    }
}
