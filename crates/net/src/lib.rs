//! Run sans-IO endpoints over real UDP sockets.
//!
//! The protocol state machines in this workspace never touch sockets;
//! [`UdpDriver`] closes the loop for live use: it owns a
//! `std::net::UdpSocket`, translates datagrams to/from the emulator's
//! [`Packet`] type, and drives `poll`/`on_packet` with a monotonic clock
//! rebased so the session starts at `t = 0` (matching the virtual-time
//! semantics the endpoints were written against).
//!
//! Why blocking `std::net` and not an async runtime: the endpoints are
//! tick-driven (20 ms) state machines with single-peer sessions — a
//! socket with a short read timeout serving as both I/O wait and tick
//! timer exercises them fully, with no additional dependencies.

#![warn(missing_docs)]

use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Instant;

use bytes::Bytes;
use sprout_sim::{Endpoint, FlowId, Packet};
use sprout_trace::{Duration, Timestamp};

/// Statistics of a live session.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriverStats {
    /// Datagrams sent.
    pub sent: u64,
    /// Datagrams received.
    pub received: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_received: u64,
}

/// Drives one [`Endpoint`] over a UDP socket.
pub struct UdpDriver<E: Endpoint> {
    endpoint: E,
    socket: UdpSocket,
    peer: Option<SocketAddr>,
    epoch: Instant,
    stats: DriverStats,
    recv_buf: Vec<u8>,
}

impl<E: Endpoint> UdpDriver<E> {
    /// Bind to `local`. If `peer` is `None`, the driver locks onto the
    /// first remote address that sends to it (server mode).
    pub fn bind(
        endpoint: E,
        local: impl ToSocketAddrs,
        peer: Option<SocketAddr>,
    ) -> io::Result<Self> {
        let socket = UdpSocket::bind(local)?;
        socket.set_read_timeout(Some(std::time::Duration::from_millis(5)))?;
        Ok(UdpDriver {
            endpoint,
            socket,
            peer,
            epoch: Instant::now(),
            stats: DriverStats::default(),
            recv_buf: vec![0u8; 64 * 1024],
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Session counters.
    pub fn stats(&self) -> DriverStats {
        self.stats
    }

    /// Borrow the endpoint.
    pub fn endpoint(&self) -> &E {
        &self.endpoint
    }

    /// Mutably borrow the endpoint (e.g. to push application data).
    pub fn endpoint_mut(&mut self) -> &mut E {
        &mut self.endpoint
    }

    /// Current session time (monotonic, starting at 0).
    pub fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// One iteration of the drive loop: receive (bounded by the socket
    /// timeout), deliver, poll, transmit. Returns the number of datagrams
    /// moved in either direction.
    pub fn step(&mut self) -> io::Result<usize> {
        let mut moved = 0;
        // Drain everything currently readable (first read may block up to
        // the 5 ms timeout — that is the loop's pacing).
        loop {
            match self.socket.recv_from(&mut self.recv_buf) {
                Ok((len, from)) => {
                    if self.peer.is_none() {
                        self.peer = Some(from);
                    }
                    if Some(from) == self.peer {
                        let payload = Bytes::copy_from_slice(&self.recv_buf[..len]);
                        let packet = Packet {
                            flow: FlowId::PRIMARY,
                            seq: self.stats.received,
                            sent_at: Timestamp::ZERO,
                            size: len as u32,
                            payload,
                        };
                        self.stats.received += 1;
                        self.stats.bytes_received += len as u64;
                        self.endpoint.on_packet(packet, self.now());
                        moved += 1;
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(e) => return Err(e),
            }
            // After the first datagram, keep draining without blocking.
            self.socket.set_nonblocking(true)?;
        }
        self.socket.set_nonblocking(false)?;
        self.socket
            .set_read_timeout(Some(std::time::Duration::from_millis(5)))?;

        if let Some(peer) = self.peer {
            for packet in self.endpoint.poll(self.now()) {
                self.socket.send_to(&packet.payload, peer)?;
                self.stats.sent += 1;
                self.stats.bytes_sent += packet.payload.len() as u64;
                moved += 1;
            }
        }
        Ok(moved)
    }

    /// Drive the session for `duration` of wall-clock time.
    pub fn run_for(&mut self, duration: Duration) -> io::Result<()> {
        let deadline = self.now() + duration;
        while self.now() < deadline {
            self.step()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_core::{SproutConfig, SproutEndpoint};

    /// Two Sprout endpoints over real loopback UDP for one second: data
    /// flows, forecasts flow back, and nothing panics. This is the only
    /// wall-clock test in the workspace.
    #[test]
    fn loopback_sprout_session_moves_data() {
        let cfg = SproutConfig::test_small();
        let mut client = SproutEndpoint::new_ewma(cfg.clone());
        client.set_saturating();
        let server = SproutEndpoint::new_ewma(cfg);

        let mut server_drv = UdpDriver::bind(server, "127.0.0.1:0", None).unwrap();
        let server_addr = server_drv.local_addr().unwrap();
        let mut client_drv = UdpDriver::bind(client, "127.0.0.1:0", Some(server_addr)).unwrap();

        let server_thread = std::thread::spawn(move || {
            server_drv.run_for(Duration::from_millis(1_000)).unwrap();
            server_drv
        });
        client_drv.run_for(Duration::from_millis(1_000)).unwrap();
        let server_drv = server_thread.join().unwrap();

        let c = client_drv.stats();
        let s = server_drv.stats();
        assert!(c.sent > 10, "client sent {} datagrams", c.sent);
        assert!(s.received > 10, "server saw {}", s.received);
        assert!(s.sent > 10, "server fed back {}", s.sent);
        // The client's sender must have received at least one forecast.
        assert!(client_drv.endpoint().sender().has_forecast());
        // Data made it through: the server counted app payload bytes.
        assert!(server_drv.endpoint().stats().app_bytes_received > 0);
    }
}
