//! Property suite for the Saturator trace format (vendored-proptest, 64
//! cases per property): `write_trace ∘ read_trace` is the identity and
//! byte-stable for arbitrary monotone traces; comments, blank lines,
//! leading whitespace, and CRLF endings never change what parses; and
//! every way an input can be malformed — garbage tokens, timestamps that
//! run backwards, values that would overflow the microsecond clock — is
//! an explicit [`TraceFileError::Malformed`] naming the correct 1-based
//! line. The committed corpus under `tests/data/` is pinned here too, so
//! the `reproduce replay` experiment's offline inputs cannot drift
//! silently.

use proptest::collection::vec;
use proptest::prelude::*;
use sprout_trace::{load_trace, read_trace, write_trace, Trace, TraceFileError, MAX_TRACE_MS};

/// Monotone millisecond timestamps from a vector of gaps (gap 0 keeps
/// repeated timestamps — multiple MTUs per millisecond — in play).
fn cumsum(gaps: &[u64]) -> Vec<u64> {
    let mut t = 0u64;
    gaps.iter()
        .map(|g| {
            t += g;
            t
        })
        .collect()
}

proptest! {
    #[test]
    fn write_then_read_is_identity_and_byte_stable(gaps in vec(0u64..500, 0..200)) {
        let trace = Trace::from_millis(cumsum(&gaps));
        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).unwrap();
        let back = read_trace(bytes.as_slice()).unwrap();
        prop_assert_eq!(&back, &trace);
        // A second serialization of the parsed trace reproduces the
        // first byte for byte: the format has one canonical rendering.
        let mut again = Vec::new();
        write_trace(&back, &mut again).unwrap();
        prop_assert_eq!(again, bytes);
    }

    #[test]
    fn comments_blanks_whitespace_and_crlf_never_change_the_parse(
        gaps in vec(0u64..500, 0..100),
        decor in vec((any::<bool>(), any::<bool>(), any::<bool>()), 100..101),
    ) {
        let ms = cumsum(&gaps);
        let mut text = String::new();
        for (i, t) in ms.iter().enumerate() {
            let (comment, blank, crlf) = decor[i % decor.len()];
            let ending = if crlf { "\r\n" } else { "\n" };
            if comment {
                text.push_str("# saturator checkpoint");
                text.push_str(ending);
            }
            if blank {
                text.push_str(ending);
            }
            text.push_str(&format!("  {t}{ending}"));
        }
        let parsed = read_trace(text.as_bytes()).unwrap();
        prop_assert_eq!(parsed, Trace::from_millis(ms));
    }

    #[test]
    fn garbage_token_is_malformed_at_its_one_based_line(
        gaps in vec(0u64..500, 1..100),
        pos_raw in any::<u64>(),
    ) {
        let mut lines: Vec<String> = cumsum(&gaps).iter().map(|t| t.to_string()).collect();
        let pos = (pos_raw as usize) % (lines.len() + 1);
        lines.insert(pos, "12q34".to_string());
        let text = lines.join("\n") + "\n";
        match read_trace(text.as_bytes()) {
            Err(TraceFileError::Malformed { line, text }) => {
                prop_assert_eq!(line, pos + 1);
                prop_assert_eq!(text.as_str(), "12q34");
            }
            other => prop_assert!(false, "expected Malformed, got {:?}", other),
        }
    }

    #[test]
    fn backwards_timestamp_is_malformed_at_its_one_based_line(
        gaps in vec(0u64..500, 2..100),
        pos_raw in any::<u64>(),
    ) {
        // Shift everything up by one so the predecessor is always > 0,
        // then pull one timestamp strictly below it.
        let mut ms: Vec<u64> = cumsum(&gaps).iter().map(|t| t + 1).collect();
        let pos = 1 + (pos_raw as usize) % (ms.len() - 1);
        ms[pos] = ms[pos - 1] - 1;
        let text: String = ms.iter().map(|t| format!("{t}\n")).collect();
        match read_trace(text.as_bytes()) {
            Err(TraceFileError::Malformed { line, text }) => {
                prop_assert_eq!(line, pos + 1);
                prop_assert_eq!(text, ms[pos].to_string());
            }
            other => prop_assert!(false, "expected Malformed, got {:?}", other),
        }
    }

    #[test]
    fn overflowing_timestamp_is_malformed_at_its_one_based_line(
        gaps in vec(0u64..500, 1..50),
        pos_raw in any::<u64>(),
        excess in 1u64..1_000_000,
    ) {
        let mut lines: Vec<String> = cumsum(&gaps).iter().map(|t| t.to_string()).collect();
        let pos = (pos_raw as usize) % lines.len();
        let big = MAX_TRACE_MS + excess; // > MAX_TRACE_MS, far from u64 wrap
        lines[pos] = big.to_string();
        let text = lines.join("\n") + "\n";
        match read_trace(text.as_bytes()) {
            Err(TraceFileError::Malformed { line, text }) => {
                prop_assert_eq!(line, pos + 1);
                prop_assert_eq!(text, big.to_string());
            }
            other => prop_assert!(false, "expected Malformed, got {:?}", other),
        }
    }
}

fn data(file: &str) -> String {
    format!("{}/tests/data/{file}", env!("CARGO_MANIFEST_DIR"))
}

/// The committed corpus the `replay` experiment runs offline: shape
/// pinned so an accidental regeneration is a loud failure.
#[test]
fn committed_corpus_parses_with_pinned_shape() {
    let down = load_trace(data("downlink-excerpt.trace")).unwrap();
    assert_eq!(down.len(), 4439);
    assert_eq!(down.duration().as_millis(), 39_975);
    // The downlink excerpt carries a multi-second outage.
    assert!(down.interarrivals().any(|g| g.as_millis() >= 2_000));

    let up = load_trace(data("uplink-excerpt.trace")).unwrap();
    assert_eq!(up.len(), 4099);
    assert_eq!(up.duration().as_millis(), 39_800);
    // The uplink excerpt carries same-millisecond delivery bursts.
    assert!(up.opportunities().windows(2).any(|w| w[0] == w[1]));
}

#[test]
fn committed_adversarial_capture_is_rejected_at_line_4() {
    match load_trace(data("backwards.trace")) {
        Err(TraceFileError::Malformed { line, text }) => {
            assert_eq!(line, 4);
            assert_eq!(text, "15");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
}
