//! Fitting the §3.1 link model to an empirical trace — the §7 future-work
//! direction ("we are eager to explore different stochastic network
//! models, including ones trained on empirical variations in cellular
//! link speed").
//!
//! Given a captured (or synthetic) trace, [`fit_link_model`] estimates
//! the doubly-stochastic parameters by the method of moments:
//!
//! * the **rate path** is reconstructed from windowed delivery counts;
//! * **σ** (Brownian noise power) from the variance of rate increments
//!   over the window length (Var[λ(t+Δ) − λ(t)] = σ²·Δ for Brownian
//!   motion, measured while the link is not in an outage);
//! * **λz** (outage escape rate) as the reciprocal mean outage duration;
//! * the **outage entry rate** from the number of distinct outages per
//!   non-outage second;
//! * the **mean/max rates** directly from the rate path.
//!
//! The result plugs straight back into [`crate::LinkSimulator`] (to synthesize
//! more traffic "like" a capture) or into a custom `SproutConfig` (to
//! run Sprout with a model matched to a deployment).

use crate::synth::LinkModelParams;
use crate::time::{Duration, Timestamp};
use crate::trace::Trace;

/// Estimated model parameters plus goodness diagnostics.
#[derive(Clone, Debug)]
pub struct FittedModel {
    /// The estimated generative parameters.
    pub params: LinkModelParams,
    /// Number of outages (gaps ≥ the outage threshold) found.
    pub outages: usize,
    /// Mean outage duration.
    pub mean_outage: Duration,
    /// Fraction of the trace spent in outages.
    pub outage_fraction: f64,
    /// Number of rate-path windows used for the σ estimate.
    pub windows: usize,
}

/// Configuration of the fitting procedure.
#[derive(Clone, Debug)]
pub struct FitConfig {
    /// Window for the rate-path reconstruction (long enough for a stable
    /// count, short enough to see the variation; the paper's own caveat
    /// §3.1 — rates vary faster than the averaging interval needed for a
    /// good point estimate — is why this is a knob).
    pub rate_window: Duration,
    /// A delivery gap at least this long counts as an outage.
    pub outage_threshold: Duration,
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig {
            rate_window: Duration::from_millis(500),
            outage_threshold: Duration::from_secs(1),
        }
    }
}

/// Fit the §3.1 model to a trace. Returns `None` for traces too short to
/// estimate anything (needs ≥ 4 rate windows).
pub fn fit_link_model(trace: &Trace, cfg: &FitConfig) -> Option<FittedModel> {
    let total = trace.duration();
    let w = cfg.rate_window;
    if total.as_micros() < 4 * w.as_micros() || trace.len() < 8 {
        return None;
    }

    // --- outage statistics ---
    let mut outages = Vec::new();
    for gap in trace.interarrivals() {
        if gap >= cfg.outage_threshold {
            outages.push(gap);
        }
    }
    let outage_time: u64 = outages.iter().map(|d| d.as_micros()).sum();
    let mean_outage = if outages.is_empty() {
        Duration::ZERO
    } else {
        Duration::from_micros(outage_time / outages.len() as u64)
    };
    // λz = 1 / mean outage duration (exponential escape, §3.1).
    let outage_escape_rate = if mean_outage > Duration::ZERO {
        1.0 / mean_outage.as_secs_f64()
    } else {
        1.0
    };
    let non_outage_secs = (total.as_secs_f64() - outage_time as f64 / 1e6).max(1e-3);
    let outage_entry_rate = outages.len() as f64 / non_outage_secs;

    // --- rate path over non-outage windows ---
    let nwin = (total.as_micros() / w.as_micros()) as usize;
    let mut rates = Vec::with_capacity(nwin);
    for i in 0..nwin {
        let from = Timestamp::from_micros(i as u64 * w.as_micros());
        let to = from + w;
        let count = trace.opportunities_between(from, to);
        rates.push(count as f64 / w.as_secs_f64());
    }
    // Exclude windows inside outages from the mean/σ estimates: they
    // describe the discrete outage state, not the diffusion.
    let active: Vec<f64> = rates.iter().copied().filter(|&r| r > 0.0).collect();
    if active.len() < 4 {
        return None;
    }
    let mean_rate_pps = active.iter().sum::<f64>() / active.len() as f64;
    let max_rate_pps = active.iter().copied().fold(0.0f64, f64::max);

    // --- σ from increment variance ---
    // For Brownian λ: Var[λ(t+Δ) − λ(t)] = σ²Δ. The windowed estimate of
    // λ adds Poisson counting noise with variance ≈ 2·λ/Δ (two windows),
    // which we subtract.
    let mut increments = Vec::new();
    for pair in rates.windows(2) {
        if pair[0] > 0.0 && pair[1] > 0.0 {
            increments.push(pair[1] - pair[0]);
        }
    }
    if increments.len() < 3 {
        return None;
    }
    let m = increments.iter().sum::<f64>() / increments.len() as f64;
    let var =
        increments.iter().map(|d| (d - m) * (d - m)).sum::<f64>() / (increments.len() - 1) as f64;
    let dt = w.as_secs_f64();
    let counting_noise = 2.0 * mean_rate_pps / dt;
    let sigma = ((var - counting_noise).max(0.0) / dt).sqrt();

    Some(FittedModel {
        params: LinkModelParams {
            mean_rate_pps,
            // Headroom above the observed peak, rounded up.
            max_rate_pps: (max_rate_pps * 1.25).max(mean_rate_pps * 2.0),
            sigma: sigma.max(1.0),
            // The fit cannot separate drift from reversion on a single
            // trace; report the pure paper model (reversion off). Callers
            // synthesizing long traces may add their own pull.
            mean_reversion: 0.0,
            outage_entry_rate,
            outage_escape_rate,
        },
        outages: outages.len(),
        mean_outage,
        outage_fraction: outage_time as f64 / 1e6 / total.as_secs_f64().max(1e-9),
        windows: active.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{LinkSimulator, NetProfile};

    #[test]
    fn too_short_traces_are_rejected() {
        assert!(fit_link_model(&Trace::from_millis([0, 10, 20]), &FitConfig::default()).is_none());
    }

    #[test]
    fn recovers_mean_rate_of_a_steady_poisson_link() {
        let params = LinkModelParams {
            mean_rate_pps: 120.0,
            max_rate_pps: 1000.0,
            sigma: 2.0,
            mean_reversion: 50.0, // pinned at the mean
            outage_entry_rate: 0.0,
            outage_escape_rate: 1.0,
        };
        let trace = LinkSimulator::new(params, 5).generate(Duration::from_secs(120));
        let fit = fit_link_model(&trace, &FitConfig::default()).unwrap();
        let mean = fit.params.mean_rate_pps;
        assert!((mean - 120.0).abs() < 12.0, "mean {mean}");
        // A pinned link has (almost) no diffusion: σ estimate small.
        assert!(fit.params.sigma < 25.0, "sigma {}", fit.params.sigma);
        assert_eq!(fit.outages, 0);
    }

    #[test]
    fn detects_diffusion_on_a_wandering_link() {
        // Same mean, strong Brownian noise: σ estimate must be clearly
        // larger than for the pinned link.
        let wander = LinkModelParams {
            mean_rate_pps: 300.0,
            max_rate_pps: 1000.0,
            sigma: 150.0,
            mean_reversion: 0.5,
            outage_entry_rate: 0.0,
            outage_escape_rate: 1.0,
        };
        let trace = LinkSimulator::new(wander, 6).generate(Duration::from_secs(180));
        let fit = fit_link_model(&trace, &FitConfig::default()).unwrap();
        assert!(
            fit.params.sigma > 40.0,
            "diffusion should be visible: sigma {}",
            fit.params.sigma
        );
    }

    #[test]
    fn outage_statistics_estimate_escape_rate() {
        // Hand-built trace: dense deliveries with two 2-second holes →
        // mean outage 2 s → λz ≈ 0.5.
        let mut ms: Vec<u64> = (0..5_000).map(|i| i * 4).collect(); // 0..20 s
        ms.extend((5_500..10_500).map(|i| i * 4)); // 22 s .. 42 s
        ms.extend((11_000..16_000).map(|i| i * 4)); // 44 s .. 64 s
        let trace = Trace::from_millis(ms);
        let fit = fit_link_model(&trace, &FitConfig::default()).unwrap();
        assert_eq!(fit.outages, 2);
        assert!(
            (fit.params.outage_escape_rate - 0.5).abs() < 0.05,
            "escape {}",
            fit.params.outage_escape_rate
        );
        assert!(fit.outage_fraction > 0.05 && fit.outage_fraction < 0.10);
    }

    #[test]
    fn round_trip_profile_fit_resynthesize() {
        // Fit a synthetic LTE trace, resynthesize from the fitted
        // parameters, and check the resynthesized link has a similar mean
        // capacity — the §7 "train on empirical variations" loop.
        let original = NetProfile::VerizonLteDown.generate(Duration::from_secs(180), 9);
        let fit = fit_link_model(&original, &FitConfig::default()).unwrap();
        let resynth = LinkSimulator::new(
            LinkModelParams {
                // Re-add a mild pull so a 3-minute resynthesis cannot
                // wander off its mean (the fit reports reversion-free
                // paper parameters).
                mean_reversion: 0.5,
                ..fit.params.clone()
            },
            10,
        )
        .generate(Duration::from_secs(180));
        let a = original.average_rate_kbps();
        let b = resynth.average_rate_kbps();
        assert!(
            b > a * 0.5 && b < a * 2.0,
            "resynthesized capacity {b:.0} kbps vs original {a:.0}"
        );
    }
}
