//! Integer time primitives shared by the whole workspace.
//!
//! Everything in this reproduction runs on a virtual clock with microsecond
//! resolution. Microseconds are fine-grained enough to express sub-packet
//! serialization times at the rates the paper studies (an MTU at 11 Mbps
//! lasts ~1 ms) while keeping all arithmetic exact in `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// The paper's packet size: all delivery opportunities are for MTU-sized
/// (1500-byte) packets (§4.1), and accounting inside the emulated link is
/// done per byte against these opportunities (§4.2 footnote 6).
pub const MTU_BYTES: u32 = 1500;

/// Length of one Sprout inference tick: 20 ms (§3.1).
pub const TICK: Duration = Duration::from_millis(20);

/// A point in virtual time, in microseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Timestamp {
    /// The zero timestamp (start of the run).
    pub const ZERO: Timestamp = Timestamp(0);
    /// A timestamp later than any reachable virtual time; useful as the
    /// identity for `min` when searching for the next event.
    pub const FAR_FUTURE: Timestamp = Timestamp(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Timestamp(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Timestamp(s * 1_000_000)
    }

    /// Raw microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the start of the run (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the start of the run, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// fact later.
    pub fn saturating_since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` when `earlier > self`.
    pub fn checked_since(self, earlier: Timestamp) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration)
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest µs).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "negative or non-finite duration");
        Duration((s * 1e6).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds (for math and reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by an integer scale factor.
    pub const fn mul(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign<Duration> for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.1}ms", self.0 as f64 / 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Timestamp::from_millis(20).as_micros(), 20_000);
        assert_eq!(Timestamp::from_secs(3).as_millis(), 3_000);
        assert_eq!(Duration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(Duration::from_secs_f64(0.02).as_millis(), 20);
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_millis(100);
        let d = Duration::from_millis(40);
        assert_eq!((t + d).as_millis(), 140);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.saturating_since(t + d), Duration::ZERO);
        assert_eq!((t + d).saturating_since(t), d);
        assert_eq!(t.checked_since(t + d), None);
        assert_eq!((t + d).checked_since(t), Some(d));
    }

    #[test]
    fn tick_is_twenty_ms() {
        assert_eq!(TICK.as_millis(), 20);
    }

    #[test]
    fn duration_ordering_and_scaling() {
        assert!(Duration::from_millis(5) < Duration::from_millis(6));
        assert_eq!(Duration::from_millis(5).mul(8).as_millis(), 40);
        assert_eq!(
            Duration::from_millis(100).saturating_sub(Duration::from_secs(1)),
            Duration::ZERO
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_millis(15)), "15.0ms");
        assert_eq!(format!("{}", Duration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", Timestamp::from_secs(1)), "1.000s");
    }

    #[test]
    #[should_panic]
    fn negative_float_duration_panics() {
        let _ = Duration::from_secs_f64(-0.5);
    }
}
