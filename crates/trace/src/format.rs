//! On-disk trace format, compatible with the Saturator / Cellsim / mahimahi
//! family of tools: a plain text file with one decimal integer per line,
//! each the time (in milliseconds from the start of the trace) at which the
//! link could deliver one MTU-sized packet. Lines starting with `#` are
//! comments. Real captured traces from the paper's artifact drop in
//! unchanged.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::time::Timestamp;
use crate::trace::Trace;

/// Errors arising while reading a trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that is neither a comment, blank, nor a timestamp that fits
    /// the format's contract: a non-negative millisecond integer, no
    /// larger than [`MAX_TRACE_MS`], and no smaller than the timestamp on
    /// the previous data line.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// Contents of the offending line.
        text: String,
    },
}

/// The largest millisecond value a trace line may carry: anything bigger
/// would overflow the microsecond representation of [`Timestamp`].
pub const MAX_TRACE_MS: u64 = u64::MAX / 1_000;

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceFileError::Malformed { line, text } => {
                write!(
                    f,
                    "trace line {line} is not a millisecond timestamp: {text:?}"
                )
            }
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            TraceFileError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// Parse a trace from any reader in the Saturator text format.
///
/// The format is strict about what a capture can contain: timestamps must
/// be non-negative millisecond integers small enough for the microsecond
/// [`Timestamp`] representation ([`MAX_TRACE_MS`]) and must never
/// *decrease* from one data line to the next. Repeated timestamps are
/// legitimate — a fast link delivers several MTUs in one millisecond —
/// but a capture that runs backwards is corrupt, and silently re-sorting
/// it would mask the corruption, so both holes are explicit
/// [`TraceFileError::Malformed`] errors naming the offending line.
pub fn read_trace(reader: impl Read) -> Result<Trace, TraceFileError> {
    let mut opportunities = Vec::new();
    let mut prev_ms: Option<u64> = None;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let malformed = || TraceFileError::Malformed {
            line: idx + 1,
            text: text.to_owned(),
        };
        let ms: u64 = text.parse().map_err(|_| malformed())?;
        if ms > MAX_TRACE_MS {
            return Err(malformed());
        }
        if prev_ms.is_some_and(|prev| ms < prev) {
            return Err(malformed());
        }
        prev_ms = Some(ms);
        opportunities.push(Timestamp::from_millis(ms));
    }
    Ok(Trace::new(opportunities))
}

/// Load a trace file from disk.
pub fn load_trace(path: impl AsRef<Path>) -> Result<Trace, TraceFileError> {
    read_trace(File::open(path)?)
}

/// Serialize a trace in the Saturator text format.
pub fn write_trace(trace: &Trace, writer: impl Write) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for &t in trace.opportunities() {
        writeln!(w, "{}", t.as_millis())?;
    }
    w.flush()
}

/// Save a trace file to disk.
pub fn save_trace(trace: &Trace, path: impl AsRef<Path>) -> io::Result<()> {
    write_trace(trace, File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_commented_lines() {
        let input = "# a capture\n10\n\n20\n20\n30\n";
        let tr = read_trace(input.as_bytes()).unwrap();
        assert_eq!(tr.len(), 4);
        assert_eq!(tr.opportunities()[1].as_millis(), 20);
    }

    #[test]
    fn rejects_garbage_with_line_number() {
        let input = "10\nnot-a-number\n30\n";
        match read_trace(input.as_bytes()) {
            Err(TraceFileError::Malformed { line, text }) => {
                assert_eq!(line, 2);
                assert_eq!(text, "not-a-number");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn rejects_negative_numbers() {
        assert!(read_trace("-5\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_decreasing_timestamps_naming_the_line() {
        // Line 3 is a comment, so the backwards step lands on line 5.
        let input = "10\n20\n# checkpoint\n20\n19\n";
        match read_trace(input.as_bytes()) {
            Err(TraceFileError::Malformed { line, text }) => {
                assert_eq!(line, 5);
                assert_eq!(text, "19");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn accepts_repeated_timestamps() {
        // Several MTUs in one millisecond is normal on fast links.
        let tr = read_trace("7\n7\n7\n".as_bytes()).unwrap();
        assert_eq!(tr.len(), 3);
    }

    #[test]
    fn rejects_timestamps_that_would_overflow_microseconds() {
        assert!(read_trace(format!("{MAX_TRACE_MS}\n").as_bytes()).is_ok());
        let over = format!("0\n{}\n", MAX_TRACE_MS + 1);
        match read_trace(over.as_bytes()) {
            Err(TraceFileError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn tolerates_crlf_line_endings() {
        let tr = read_trace("# capture\r\n10\r\n20\r\n".as_bytes()).unwrap();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.opportunities()[1].as_millis(), 20);
    }

    #[test]
    fn round_trips_through_bytes() {
        let tr = Trace::from_millis([0, 5, 5, 7, 1000]);
        let mut buf = Vec::new();
        write_trace(&tr, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(tr, back);
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join("sprout-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.trace");
        let tr = Trace::from_millis([1, 2, 3, 500, 10_000]);
        save_trace(&tr, &path).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(tr, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        match load_trace("/definitely/not/here.trace") {
            Err(TraceFileError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }
}
