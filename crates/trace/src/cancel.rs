//! Cooperative cancellation for long-running simulation work.
//!
//! The sweep engine's per-cell watchdog cannot kill a thread — Rust has
//! no safe thread cancellation — so before this module, a timed-out cell
//! was merely *abandoned*: reported as failed while its thread kept
//! burning a core until the simulation ran out naturally (potentially
//! the full virtual duration at wall speed). Harmless in a one-shot
//! `reproduce` run that exits soon after; a real leak in a daemon that
//! lives for hours.
//!
//! The fix is a cooperative flag: the watchdog arms a per-cell
//! [`CancelToken`], installs it in the worker's thread-local slot for
//! the duration of the cell ([`CancelGuard`]), and the hot loops —
//! simulation event loops, trace synthesis — call [`checkpoint`] every
//! few thousand steps. When the flag is set, `checkpoint` panics with
//! the sentinel [`Cancelled`] payload; the cell's existing
//! `catch_unwind` isolation absorbs it and the thread exits promptly.
//!
//! Determinism is untouched: a cancelled cell produces no result at all
//! (it was already reported as timed out), and uncancelled runs never
//! observe the flag.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Sentinel panic payload used by [`checkpoint`]: distinguishes a
/// cooperative cancellation unwind from a genuine cell panic, so failure
/// reporting and panic hooks can stay quiet about expected aborts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

/// A shared cancellation flag: one per watchdogged cell. Cloning shares
/// the flag (it is an `Arc` internally).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, unset token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation: every [`checkpoint`] under a guard holding
    /// this token will panic with [`Cancelled`] from now on.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

thread_local! {
    /// The token governing work on this thread, if any.
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Installs a [`CancelToken`] as the current thread's cancellation
/// authority for its lifetime; dropping restores the previous one (they
/// nest, though in practice one cell owns a worker thread at a time).
#[derive(Debug)]
pub struct CancelGuard {
    prev: Option<CancelToken>,
}

impl CancelGuard {
    /// Make `token` govern [`checkpoint`] calls on this thread until the
    /// guard drops.
    pub fn install(token: CancelToken) -> Self {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(token));
        CancelGuard { prev }
    }
}

impl Drop for CancelGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Cancellation checkpoint: cheap enough for hot loops (one thread-local
/// read and one relaxed-ish atomic load when a token is installed; a
/// plain thread-local read otherwise). Panics with the [`Cancelled`]
/// sentinel if the governing token has been cancelled; the caller's
/// `catch_unwind` boundary (the sweep engine wraps every cell) turns
/// that into a prompt thread exit.
pub fn checkpoint() {
    let cancelled = CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .map(CancelToken::is_cancelled)
            .unwrap_or(false)
    });
    if cancelled {
        std::panic::panic_any(Cancelled);
    }
}

/// Whether a caught panic payload is the [`Cancelled`] sentinel (as
/// opposed to a genuine assertion failure inside a cell).
pub fn is_cancelled_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<Cancelled>()
}

/// Quiet the default panic hook for [`Cancelled`] unwinds (they are
/// expected control flow, not failures) while delegating everything else
/// to the previously installed hook. Idempotent; call before arming
/// watchdogs.
pub fn silence_cancelled_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<Cancelled>() {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_is_inert_without_a_token() {
        checkpoint(); // must not panic
    }

    #[test]
    fn checkpoint_is_inert_until_cancelled() {
        let token = CancelToken::new();
        let _guard = CancelGuard::install(token.clone());
        checkpoint();
        assert!(!token.is_cancelled());
    }

    #[test]
    fn cancelled_token_aborts_the_guarded_thread() {
        let token = CancelToken::new();
        let t2 = token.clone();
        let err = std::panic::catch_unwind(move || {
            let _guard = CancelGuard::install(t2);
            token.cancel();
            checkpoint();
        })
        .unwrap_err();
        assert!(is_cancelled_payload(&*err), "payload must be the sentinel");
    }

    #[test]
    fn guard_restores_the_previous_token_on_drop() {
        let outer = CancelToken::new();
        let _outer_guard = CancelGuard::install(outer.clone());
        {
            let inner = CancelToken::new();
            let inner_guard = CancelGuard::install(inner.clone());
            inner.cancel();
            drop(inner_guard);
        }
        // The outer token is live again and unset: checkpoint is quiet.
        checkpoint();
        assert!(!outer.is_cancelled());
    }
}
