//! Deterministic seed derivation for experiment reproducibility.
//!
//! Every stochastic component of an experiment — trace synthesis for each
//! link direction, the Bernoulli loss processes — draws its seed from a
//! single master seed through [`derive_seed`], a SplitMix64-style mixer.
//! Derived seeds are:
//!
//! * **deterministic**: the same `(master, stream)` pair always yields the
//!   same seed, independent of thread count or execution order;
//! * **decorrelated**: nearby masters or streams give unrelated seeds, so
//!   "seed 1 / scenario 3" and "seed 1 / scenario 4" produce independent
//!   sample paths;
//! * **stable**: the mixing constants are frozen — changing them would
//!   silently invalidate recorded sweep results.
//!
//! The sweep engine (`sprout-bench`) keys streams by scenario id; trace
//! synthesis keys a further sub-stream by link profile so one scenario's
//! data and feedback traces differ.

/// One round of SplitMix64's output mixing.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive the seed of stream `stream` from `master`.
///
/// ```
/// use sprout_trace::derive_seed;
/// assert_eq!(derive_seed(1, 0), derive_seed(1, 0));
/// assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
/// assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
/// ```
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    // Golden-ratio stepping as in SplitMix64's stream advance, then two
    // mixing rounds so master and stream bits diffuse fully.
    let stepped = master
        .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    mix64(mix64(stepped))
}

/// A named sub-stream: derive a seed from a master and a label, so
/// independent consumers (loss process, trace synthesis, future workload
/// generators) can't collide by picking the same small integers.
pub fn derive_labeled_seed(master: u64, label: &str, stream: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    derive_seed(master ^ mix64(h), stream)
}

/// The per-session seed sub-stream: every session of a multi-session
/// serve cell derives its randomness (per-session link loss streams,
/// any future in-session stochastic process) from
/// `(cell_seed, session_id)` under the `"session"` label. The label
/// keeps the stream disjoint from every other labeled consumer — in
/// particular the `impair-data` / `impair-feedback` fault-injection
/// streams, which index by direction rather than session.
pub fn session_seed(cell_seed: u64, session_id: u32) -> u64 {
    derive_labeled_seed(cell_seed, "session", u64::from(session_id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_stable() {
        // Frozen values: recorded sweep results depend on them.
        assert_eq!(derive_seed(0, 0), derive_seed(0, 0));
        assert_eq!(derive_seed(20130401, 0), derive_seed(20130401, 0));
    }

    #[test]
    fn streams_do_not_collide_for_small_inputs() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..32u64 {
            for stream in 0..64u64 {
                assert!(
                    seen.insert(derive_seed(master, stream)),
                    "collision at master={master} stream={stream}"
                );
            }
        }
    }

    #[test]
    fn labels_separate_consumers() {
        assert_ne!(
            derive_labeled_seed(7, "loss", 0),
            derive_labeled_seed(7, "trace", 0)
        );
        assert_eq!(
            derive_labeled_seed(7, "loss", 3),
            derive_labeled_seed(7, "loss", 3)
        );
    }

    #[test]
    fn session_streams_are_disjoint_from_impairment_streams() {
        // A serve cell fans its cell seed into per-session sub-streams
        // while the fault-injection layer fans the same cell seed into
        // impair-data / impair-feedback / impair-outage sub-streams. If
        // any (session_id, stream) pair collided, an impaired serve cell
        // would correlate one session's losses with the injected faults.
        for cell_seed in [0u64, 7, 20130401] {
            let mut seen = std::collections::HashSet::new();
            for sid in 0..256u32 {
                assert!(
                    seen.insert(session_seed(cell_seed, sid)),
                    "session sub-streams collide at seed={cell_seed} sid={sid}"
                );
            }
            for stream in 0..256u64 {
                for label in ["impair-data", "impair-feedback", "impair-outage"] {
                    assert!(
                        !seen.contains(&derive_labeled_seed(cell_seed, label, stream)),
                        "session stream collides with {label}/{stream} at seed={cell_seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn session_seed_is_stable() {
        // Frozen: serve-cell results recorded in the cell cache depend
        // on this exact derivation.
        assert_eq!(session_seed(9, 4), derive_labeled_seed(9, "session", 4));
        assert_eq!(session_seed(9, 4), session_seed(9, 4));
        assert_ne!(session_seed(9, 4), session_seed(9, 5));
        assert_ne!(session_seed(9, 4), session_seed(10, 4));
    }
}
