//! Process-global registry of *measured* traces, keyed by content
//! fingerprint.
//!
//! Measured links enter the system by path (`--trace FILE`), but a path
//! is a property of one machine, not of the experiment: cell identity —
//! the cache key and the golden-fingerprint snapshot — must depend only
//! on what the Saturator recorded. The registry is the indirection that
//! makes that true: registering a capture hashes its **raw file bytes**
//! through [`sprout_cache::fingerprint64`] (the workspace's one frozen
//! content hash) and parses it once; everything downstream — scenario
//! labels, canonical bytes, the sweep engine's trace memo — refers to
//! the capture by that fingerprint alone. Two copies of one capture
//! under different paths register to the same fingerprint and therefore
//! the same cells; editing a single byte changes the fingerprint and
//! every dependent cell is a cache miss, never a stale hit.
//!
//! The registry is process-global because fingerprints travel between
//! processes (shard workers, the control daemon's submit validation) but
//! the parsed traces do not: each process re-registers the same files
//! from its own flag vector and arrives at the same fingerprints.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

use crate::format::{read_trace, TraceFileError};
use crate::trace::Trace;

fn registry() -> &'static Mutex<HashMap<u64, Arc<Trace>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<u64, Arc<Trace>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, HashMap<u64, Arc<Trace>>> {
    // A poisoned registry only means some other thread panicked mid-
    // insert; the map itself is always in a consistent state.
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Register a measured capture from its raw file bytes. Returns the
/// content fingerprint the capture is addressable by from now on. The
/// bytes are parsed (and validated) even when the fingerprint is already
/// registered, so a malformed file is *always* reported to its submitter.
pub fn register_trace_bytes(bytes: &[u8]) -> Result<u64, TraceFileError> {
    let trace = read_trace(bytes)?;
    let fingerprint = sprout_cache::fingerprint64(bytes);
    lock().entry(fingerprint).or_insert_with(|| Arc::new(trace));
    Ok(fingerprint)
}

/// Register a measured capture from disk: read the file, fingerprint its
/// bytes, parse, and deposit in the registry.
pub fn register_trace_file(path: impl AsRef<Path>) -> Result<u64, TraceFileError> {
    let bytes = std::fs::read(path)?;
    register_trace_bytes(&bytes)
}

/// Look up a registered capture by fingerprint. `None` means no file
/// with these bytes was registered in *this* process — for sweep workers
/// that is a usage error (the `--trace` flag vector must name every
/// capture the matrix replays).
pub fn lookup_trace(fingerprint: u64) -> Option<Arc<Trace>> {
    lock().get(&fingerprint).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAPTURE: &str = "# excerpt\n0\n5\n5\n12\n30\n";

    #[test]
    fn same_bytes_under_two_paths_share_one_fingerprint() {
        let dir = std::env::temp_dir().join(format!("sprout-registry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (a, b) = (dir.join("a.trace"), dir.join("copy-of-a.trace"));
        std::fs::write(&a, CAPTURE).unwrap();
        std::fs::write(&b, CAPTURE).unwrap();
        let fp_a = register_trace_file(&a).unwrap();
        let fp_b = register_trace_file(&b).unwrap();
        assert_eq!(fp_a, fp_b, "identity keys on bytes, not paths");
        let trace = lookup_trace(fp_a).expect("registered");
        assert_eq!(trace.len(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn edited_bytes_change_the_fingerprint() {
        let fp = register_trace_bytes(CAPTURE.as_bytes()).unwrap();
        let edited = CAPTURE.replace("12", "13");
        let fp_edited = register_trace_bytes(edited.as_bytes()).unwrap();
        assert_ne!(fp, fp_edited);
        // Even a comment-only edit re-fingerprints: the safe direction
        // (a spurious miss), never a stale hit.
        let commented = CAPTURE.replace("# excerpt", "# trimmed");
        assert_ne!(fp, register_trace_bytes(commented.as_bytes()).unwrap());
    }

    #[test]
    fn malformed_bytes_never_register() {
        let err = register_trace_bytes(b"10\n9\n").unwrap_err();
        assert!(matches!(err, TraceFileError::Malformed { line: 2, .. }));
        let fp = sprout_cache::fingerprint64(b"10\n9\n");
        assert!(lookup_trace(fp).is_none());
    }

    #[test]
    fn unknown_fingerprint_is_none() {
        assert!(lookup_trace(0xdead_beef_0bad_cafe).is_none());
    }
}
