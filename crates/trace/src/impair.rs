//! Deterministic network fault injection: the stochastic processes behind
//! the `Impairment` scenario axis.
//!
//! Real cellular paths do not fail like Bernoulli coins. Losses arrive in
//! correlated bursts (fades), links drop out entirely for seconds at a
//! time (outages/flaps), and delivery timestamps carry jitter that can
//! reorder packets. This module models each as a *seeded* stochastic
//! process so an impaired cell is exactly as reproducible as a clean one:
//! the sweep engine derives every seed from the per-cell
//! `(master_seed, scenario_id)` seed via [`crate::derive_labeled_seed`],
//! so results are bit-identical across thread counts, shards, and batch
//! modes.
//!
//! The processes live here; the hook points that apply them to a link are
//! in `sprout-sim`'s `TraceLink` (loss/outage gating at the bottleneck,
//! jittered delivery timestamps, a release buffer that keeps emission in
//! timestamp order).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::{Duration, Timestamp};

/// Gilbert-Elliott burst-loss parameters: a two-state (good/bad) Markov
/// chain advanced once per arriving packet, with a per-state loss
/// probability. The classic model for correlated (bursty) packet loss.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GilbertElliott {
    /// Per-packet probability of transitioning good → bad.
    pub p_good_to_bad: f64,
    /// Per-packet probability of transitioning bad → good.
    pub p_bad_to_good: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// Panic unless every field is a probability.
    pub fn validate(&self) {
        for (name, p) in [
            ("p_good_to_bad", self.p_good_to_bad),
            ("p_bad_to_good", self.p_bad_to_good),
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be a probability");
        }
    }
}

/// Link outage (flap) process parameters: the link goes fully dead for
/// `duration` roughly every `spacing` of virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OutageSpec {
    /// Length of each outage.
    pub duration: Duration,
    /// Nominal time between consecutive outage *starts* (the first outage
    /// starts near `spacing`, not at t = 0, so runs warm up cleanly).
    pub spacing: Duration,
}

/// Delay jitter parameters: every delivered packet is held an extra
/// uniform `[0, max]` beyond its delivery opportunity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JitterSpec {
    /// Maximum extra delay.
    pub max: Duration,
}

/// Packet reordering parameters: with `probability`, a delivered packet
/// is additionally held `extra_delay`, letting later packets overtake it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReorderSpec {
    /// Probability a packet is held back.
    pub probability: f64,
    /// How long a held packet is delayed beyond its opportunity.
    pub extra_delay: Duration,
}

/// One value of the impairment scenario axis: any combination of burst
/// loss, outages, jitter, and reordering. [`Impairment::none`] (the
/// default) reproduces the unimpaired link exactly.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Impairment {
    /// Correlated burst loss at packet ingress.
    pub burst_loss: Option<GilbertElliott>,
    /// Full link outages (both directions go dark together).
    pub outage: Option<OutageSpec>,
    /// Delivery-timestamp jitter.
    pub jitter: Option<JitterSpec>,
    /// Probabilistic packet holding (reordering).
    pub reorder: Option<ReorderSpec>,
}

/// The named impairment presets accepted by `reproduce --impairments`.
pub const IMPAIRMENT_PRESETS: &[&str] = &[
    "none", "burst", "outage", "flap", "jitter", "reorder", "storm",
];

impl Impairment {
    /// No impairment: the link behaves exactly as before this axis
    /// existed.
    pub fn none() -> Self {
        Impairment::default()
    }

    /// Whether every component is disabled.
    pub fn is_none(&self) -> bool {
        self.burst_loss.is_none()
            && self.outage.is_none()
            && self.jitter.is_none()
            && self.reorder.is_none()
    }

    /// Look up a named preset (see [`IMPAIRMENT_PRESETS`]); `None` for
    /// unknown names.
    pub fn preset(name: &str) -> Option<Impairment> {
        let burst = GilbertElliott {
            p_good_to_bad: 0.008,
            p_bad_to_good: 0.25,
            loss_good: 0.0,
            loss_bad: 0.5,
        };
        let outage = OutageSpec {
            duration: Duration::from_secs(4),
            spacing: Duration::from_secs(45),
        };
        let flap = OutageSpec {
            duration: Duration::from_millis(800),
            spacing: Duration::from_secs(15),
        };
        let jitter = JitterSpec {
            max: Duration::from_millis(15),
        };
        let reorder = ReorderSpec {
            probability: 0.05,
            extra_delay: Duration::from_millis(25),
        };
        Some(match name {
            "none" => Impairment::none(),
            "burst" => Impairment {
                burst_loss: Some(burst),
                ..Impairment::none()
            },
            "outage" => Impairment {
                outage: Some(outage),
                ..Impairment::none()
            },
            "flap" => Impairment {
                outage: Some(flap),
                ..Impairment::none()
            },
            "jitter" => Impairment {
                jitter: Some(jitter),
                ..Impairment::none()
            },
            "reorder" => Impairment {
                reorder: Some(reorder),
                ..Impairment::none()
            },
            "storm" => Impairment {
                burst_loss: Some(burst),
                outage: Some(outage),
                jitter: Some(jitter),
                reorder: Some(reorder),
            },
            _ => return None,
        })
    }

    /// Stable identifier used in cell labels and JSON: the `+`-joined
    /// component tags (`ge…`, `out…`, `jit…`, `ro…`), or `"none"`.
    /// Derived purely from the parameters, so two impairments with the
    /// same settings share one id however they were constructed.
    pub fn id(&self) -> String {
        if self.is_none() {
            return "none".to_string();
        }
        let mut parts = Vec::new();
        if let Some(ge) = &self.burst_loss {
            parts.push(format!(
                "ge{}-{}-{}-{}",
                ge.p_good_to_bad, ge.p_bad_to_good, ge.loss_good, ge.loss_bad
            ));
        }
        if let Some(o) = &self.outage {
            parts.push(format!(
                "out{}ms-{}ms",
                o.duration.as_millis(),
                o.spacing.as_millis()
            ));
        }
        if let Some(j) = &self.jitter {
            parts.push(format!("jit{}ms", j.max.as_millis()));
        }
        if let Some(r) = &self.reorder {
            parts.push(format!(
                "ro{}-{}ms",
                r.probability,
                r.extra_delay.as_millis()
            ));
        }
        parts.join("+")
    }

    /// Panic unless every configured component is self-consistent.
    pub fn validate(&self) {
        if let Some(ge) = &self.burst_loss {
            ge.validate();
        }
        if let Some(o) = &self.outage {
            assert!(o.duration > Duration::ZERO, "outage duration must be > 0");
            assert!(
                o.spacing > o.duration,
                "outage spacing must exceed duration"
            );
        }
        if let Some(r) = &self.reorder {
            assert!(
                (0.0..=1.0).contains(&r.probability),
                "reorder probability must be a probability"
            );
        }
    }
}

/// Runtime state of a seeded Gilbert-Elliott chain.
#[derive(Clone, Debug)]
pub struct GilbertElliottProcess {
    params: GilbertElliott,
    rng: StdRng,
    in_bad: bool,
}

impl GilbertElliottProcess {
    /// Start the chain in the good state with a derived seed.
    pub fn new(params: GilbertElliott, seed: u64) -> Self {
        params.validate();
        GilbertElliottProcess {
            params,
            rng: StdRng::seed_from_u64(seed),
            in_bad: false,
        }
    }

    /// Advance the chain one packet and decide whether that packet is
    /// lost. Exactly two RNG draws per call (transition, loss), so the
    /// consumed stream is independent of the outcomes.
    pub fn should_drop(&mut self) -> bool {
        let transition: f64 = self.rng.gen();
        if self.in_bad {
            if transition < self.params.p_bad_to_good {
                self.in_bad = false;
            }
        } else if transition < self.params.p_good_to_bad {
            self.in_bad = true;
        }
        let loss: f64 = self.rng.gen();
        let rate = if self.in_bad {
            self.params.loss_bad
        } else {
            self.params.loss_good
        };
        loss < rate
    }

    /// Whether the chain is currently in the bad (lossy) state.
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }
}

/// A precomputed, seeded schedule of link outages: non-overlapping
/// half-open windows `[start, end)` during which the link is fully dark.
/// Precomputing the whole schedule (rather than sampling on the fly)
/// makes the windows available to the degradation metrics and keeps the
/// on/off process independent of how often the link is polled.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OutageSchedule {
    windows: Vec<(Timestamp, Timestamp)>,
}

impl OutageSchedule {
    /// A schedule with no outages (the unimpaired default).
    pub fn empty() -> Self {
        OutageSchedule::default()
    }

    /// Generate the schedule for a run of length `horizon`. Outage `k`
    /// (k = 1, 2, …) starts near `k × spacing`, offset by a seeded
    /// uniform draw in `[0, spacing/4)`, and lasts `duration`. Starts are
    /// clamped so windows never overlap.
    pub fn generate(spec: &OutageSpec, seed: u64, horizon: Duration) -> Self {
        assert!(
            spec.duration > Duration::ZERO,
            "outage duration must be > 0"
        );
        assert!(
            spec.spacing > spec.duration,
            "outage spacing must exceed duration"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut windows = Vec::new();
        let mut prev_end = Timestamp::ZERO;
        let mut k: u64 = 1;
        loop {
            let offset_range = spec.spacing.as_micros() / 4;
            let offset = if offset_range > 0 {
                rng.gen_range(0..offset_range)
            } else {
                0
            };
            let nominal = Timestamp::ZERO + spec.spacing.mul(k) + Duration::from_micros(offset);
            let start = nominal.max(prev_end);
            if start.saturating_since(Timestamp::ZERO) >= horizon {
                break;
            }
            let end = start + spec.duration;
            windows.push((start, end));
            prev_end = end;
            k += 1;
        }
        OutageSchedule { windows }
    }

    /// The outage windows, in order.
    pub fn windows(&self) -> &[(Timestamp, Timestamp)] {
        &self.windows
    }

    /// Whether the link is dark at `t`.
    pub fn is_out(&self, t: Timestamp) -> bool {
        let idx = self.windows.partition_point(|&(start, _)| start <= t);
        idx > 0 && t < self.windows[idx - 1].1
    }

    /// Whether the schedule has no outages.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

/// Seeded per-delivery perturbation: jitter plus probabilistic holding
/// (reordering). One instance serves one link direction.
#[derive(Clone, Debug)]
pub struct DeliveryPerturber {
    jitter: Option<JitterSpec>,
    reorder: Option<ReorderSpec>,
    rng: StdRng,
}

impl DeliveryPerturber {
    /// Build from the (possibly absent) jitter/reorder specs. Returns
    /// `None` when both are absent, so the unimpaired link pays nothing.
    pub fn new(
        jitter: Option<JitterSpec>,
        reorder: Option<ReorderSpec>,
        seed: u64,
    ) -> Option<Self> {
        if jitter.is_none() && reorder.is_none() {
            return None;
        }
        if let Some(r) = &reorder {
            assert!(
                (0.0..=1.0).contains(&r.probability),
                "reorder probability must be a probability"
            );
        }
        Some(DeliveryPerturber {
            jitter,
            reorder,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Extra delay for the next delivered packet, and whether the reorder
    /// hold fired. Draw count per call is fixed per configuration
    /// (jitter: one, reorder: one), independent of outcomes.
    pub fn perturb(&mut self) -> (Duration, bool) {
        let mut extra = Duration::ZERO;
        if let Some(j) = &self.jitter {
            let max = j.max.as_micros();
            if max > 0 {
                extra += Duration::from_micros(self.rng.gen_range(0..max + 1));
            } else {
                let _: f64 = self.rng.gen();
            }
        }
        let mut held = false;
        if let Some(r) = &self.reorder {
            let u: f64 = self.rng.gen();
            if u < r.probability {
                extra += r.extra_delay;
                held = true;
            }
        }
        (extra, held)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_all_parse_and_none_is_none() {
        for name in IMPAIRMENT_PRESETS {
            let imp = Impairment::preset(name).expect("preset exists");
            imp.validate();
            assert_eq!(imp.is_none(), *name == "none");
        }
        assert_eq!(Impairment::preset("bogus"), None);
    }

    #[test]
    fn ids_are_stable_and_distinct() {
        let ids: Vec<String> = IMPAIRMENT_PRESETS
            .iter()
            .map(|n| Impairment::preset(n).unwrap().id())
            .collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "preset ids must be distinct");
        assert_eq!(Impairment::none().id(), "none");
        assert_eq!(
            Impairment::preset("outage").unwrap().id(),
            "out4000ms-45000ms"
        );
    }

    #[test]
    fn gilbert_elliott_is_deterministic_and_bursty() {
        let params = GilbertElliott {
            p_good_to_bad: 0.05,
            p_bad_to_good: 0.3,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let seq = |seed| -> Vec<bool> {
            let mut p = GilbertElliottProcess::new(params, seed);
            (0..5_000).map(|_| p.should_drop()).collect()
        };
        assert_eq!(seq(7), seq(7), "same seed, same loss pattern");
        assert_ne!(seq(7), seq(8), "different seeds diverge");
        // Loss fraction ≈ stationary bad-state occupancy 0.05/(0.05+0.3).
        let losses = seq(7).iter().filter(|&&l| l).count() as f64 / 5_000.0;
        let expected = 0.05 / 0.35;
        assert!((losses - expected).abs() < 0.05, "loss fraction {losses}");
        // Burstiness: mean run length of losses must exceed 1 packet
        // (Bernoulli at the same rate would give ~1/(1-p) ≈ 1.17).
        let s = seq(7);
        let mut runs = 0u64;
        let mut lost = 0u64;
        for w in s.windows(2) {
            if w[1] && !w[0] {
                runs += 1;
            }
        }
        for &l in &s {
            if l {
                lost += 1;
            }
        }
        let mean_run = lost as f64 / runs.max(1) as f64;
        assert!(mean_run > 2.0, "mean loss-burst length {mean_run}");
    }

    #[test]
    fn outage_schedule_is_deterministic_and_non_overlapping() {
        let spec = OutageSpec {
            duration: Duration::from_secs(4),
            spacing: Duration::from_secs(30),
        };
        let a = OutageSchedule::generate(&spec, 42, Duration::from_secs(300));
        let b = OutageSchedule::generate(&spec, 42, Duration::from_secs(300));
        assert_eq!(a, b);
        let c = OutageSchedule::generate(&spec, 43, Duration::from_secs(300));
        assert_ne!(a, c, "different seeds shift the windows");
        assert!(!a.is_empty());
        for w in a.windows().windows(2) {
            assert!(w[0].1 <= w[1].0, "windows must not overlap");
        }
        for &(start, end) in a.windows() {
            assert_eq!(end - start, spec.duration);
            assert!(a.is_out(start));
            assert!(!a.is_out(end), "windows are half-open");
        }
        assert!(!a.is_out(Timestamp::ZERO), "no outage at t=0");
    }

    #[test]
    fn outage_schedule_spacing_bounds_window_count() {
        let spec = OutageSpec {
            duration: Duration::from_secs(2),
            spacing: Duration::from_secs(40),
        };
        let s = OutageSchedule::generate(&spec, 1, Duration::from_secs(100));
        // Starts near 40 s and 80 s (plus up to 10 s of offset): 1–2 windows.
        assert!(
            (1..=2).contains(&s.windows().len()),
            "{} windows",
            s.windows().len()
        );
    }

    #[test]
    fn empty_schedule_is_never_out() {
        let s = OutageSchedule::empty();
        assert!(s.is_empty());
        assert!(!s.is_out(Timestamp::from_secs(5)));
    }

    #[test]
    fn perturber_requires_a_component_and_respects_bounds() {
        assert!(DeliveryPerturber::new(None, None, 1).is_none());
        let jitter = JitterSpec {
            max: Duration::from_millis(10),
        };
        let reorder = ReorderSpec {
            probability: 0.5,
            extra_delay: Duration::from_millis(30),
        };
        let mut p = DeliveryPerturber::new(Some(jitter), Some(reorder), 9).unwrap();
        let mut held_count = 0;
        for _ in 0..2_000 {
            let (extra, held) = p.perturb();
            let max = Duration::from_millis(10) + Duration::from_millis(30);
            assert!(extra <= max, "extra {extra} exceeds jitter+hold bound");
            if held {
                held_count += 1;
                assert!(extra >= Duration::from_millis(30));
            }
        }
        let frac = held_count as f64 / 2_000.0;
        assert!((frac - 0.5).abs() < 0.05, "hold fraction {frac}");
    }

    #[test]
    fn perturber_is_deterministic_per_seed() {
        let jitter = Some(JitterSpec {
            max: Duration::from_millis(8),
        });
        let seq = |seed| -> Vec<(Duration, bool)> {
            let mut p = DeliveryPerturber::new(jitter, None, seed).unwrap();
            (0..100).map(|_| p.perturb()).collect()
        };
        assert_eq!(seq(3), seq(3));
        assert_ne!(seq(3), seq(4));
    }
}
