//! Synthetic cellular trace generation.
//!
//! The generator implements the paper's own model of a cellular link
//! (§3.1, Figure 3): packet delivery opportunities form a Poisson process
//! whose underlying rate λ performs Brownian motion with noise power σ
//! (packets per second per √second), with a *sticky* outage state at λ = 0
//! escaped at exponential rate λz. Two extensions make the synthetic links
//! track the paper's eight measured links rather than wander arbitrarily:
//!
//! * a configurable mean-reversion pull toward a per-network typical rate
//!   (set `mean_reversion = 0` to recover the paper's pure Brownian model);
//! * a configurable spontaneous outage-entry rate, standing in for the
//!   coverage holes a drive around Boston encounters (the paper's traces
//!   contain multi-second outages; pure reflected Brownian motion reaches
//!   λ=0 too rarely at LTE rates to reproduce them).
//!
//! Both extensions are deliberate, documented substitutions for the
//! paper's measured drive traces, which are not available offline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr_poisson::sample_poisson;
use sprout_cache::{ArtifactKind, ByteReader, ByteWriter, CacheCounters};

use crate::time::{Duration, Timestamp};
use crate::trace::Trace;

/// On-disk persistence of synthesized traces. The version covers the
/// payload encoding *and* the synthesis algorithm (model parameters, RNG
/// stream layout) — bump it if either changes, or stale traces would load
/// silently.
static TRACE_ARTIFACT: ArtifactKind = ArtifactKind::new("trace-synth", 1);

/// Disk-cache traffic counters for trace synthesis (hits mean a
/// [`NetProfile::generate`] call skipped the millisecond-step simulation).
pub fn trace_cache_counters() -> CacheCounters {
    TRACE_ARTIFACT.counters()
}

/// Reset the trace cache counters (bench/test harnesses).
pub fn reset_trace_cache_counters() {
    TRACE_ARTIFACT.reset_counters()
}

/// Encode a trace's delivery opportunities: count, first timestamp, then
/// `u32` deltas (microseconds). Deltas beyond `u32::MAX` (> 71 virtual
/// minutes of continuous outage — unreachable for these links) make the
/// trace uncacheable and return `None`.
fn encode_trace(trace: &Trace) -> Option<Vec<u8>> {
    let ops = trace.opportunities();
    let mut w = ByteWriter::with_capacity(16 + 4 * ops.len());
    w.u64(ops.len() as u64);
    let mut prev: Option<Timestamp> = None;
    for &t in ops {
        match prev {
            None => {
                w.u64(t.as_micros());
            }
            Some(p) => {
                let delta = t.as_micros() - p.as_micros();
                if delta > u32::MAX as u64 {
                    return None;
                }
                w.u32(delta as u32);
            }
        }
        prev = Some(t);
    }
    Some(w.finish())
}

/// Decode an [`encode_trace`] payload; `None` on any shape mismatch.
fn decode_trace(bytes: &[u8]) -> Option<Trace> {
    let mut r = ByteReader::new(bytes);
    let count = r.u64()? as usize;
    let mut ops = Vec::with_capacity(count);
    if count > 0 {
        let mut at = r.u64()?;
        ops.push(Timestamp::from_micros(at));
        for _ in 1..count {
            at += r.u32()? as u64;
            ops.push(Timestamp::from_micros(at));
        }
    }
    if r.remaining() != 0 {
        return None;
    }
    Some(Trace::new(ops))
}

/// Parameters of the doubly-stochastic link model.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkModelParams {
    /// Typical (long-run mean) rate, MTU-sized packets per second.
    pub mean_rate_pps: f64,
    /// Hard ceiling on λ, packets per second (the paper discretizes up to
    /// 1000 pps ≈ 11–12 Mbps).
    pub max_rate_pps: f64,
    /// Brownian noise power σ, packets per second per √second (§3.1; the
    /// paper's frozen value is 200).
    pub sigma: f64,
    /// Mean-reversion strength θ (1/s): drift θ·(mean − λ) per second.
    /// 0 disables reversion (paper's pure model).
    pub mean_reversion: f64,
    /// Rate (1/s) of spontaneous entries into the outage state.
    pub outage_entry_rate: f64,
    /// Outage escape rate λz (1/s); the paper freezes λz = 1.
    pub outage_escape_rate: f64,
}

impl LinkModelParams {
    /// The paper's frozen model constants (σ = 200, λz = 1) around a given
    /// typical rate.
    pub fn paper_frozen(mean_rate_pps: f64) -> Self {
        LinkModelParams {
            mean_rate_pps,
            max_rate_pps: 1000.0,
            sigma: 200.0,
            mean_reversion: 0.0,
            outage_entry_rate: 0.0,
            outage_escape_rate: 1.0,
        }
    }
}

/// The eight links of the paper's evaluation (§4.1): four commercial
/// networks, each measured on both directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NetProfile {
    /// Verizon LTE, downlink. The fastest and most variable link (Fig. 1).
    VerizonLteDown,
    /// Verizon LTE, uplink.
    VerizonLteUp,
    /// Verizon 3G (1xEV-DO / eHRPD), downlink.
    Verizon3gDown,
    /// Verizon 3G (1xEV-DO / eHRPD), uplink.
    Verizon3gUp,
    /// AT&T LTE, downlink.
    AttLteDown,
    /// AT&T LTE, uplink.
    AttLteUp,
    /// T-Mobile 3G (UMTS), downlink.
    TmobileUmtsDown,
    /// T-Mobile 3G (UMTS), uplink.
    TmobileUmtsUp,
}

impl NetProfile {
    /// All eight links, in the paper's Figure 7 order.
    pub fn all() -> [NetProfile; 8] {
        [
            NetProfile::VerizonLteDown,
            NetProfile::VerizonLteUp,
            NetProfile::Verizon3gDown,
            NetProfile::Verizon3gUp,
            NetProfile::AttLteDown,
            NetProfile::AttLteUp,
            NetProfile::TmobileUmtsDown,
            NetProfile::TmobileUmtsUp,
        ]
    }

    /// Human-readable name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            NetProfile::VerizonLteDown => "Verizon LTE Downlink",
            NetProfile::VerizonLteUp => "Verizon LTE Uplink",
            NetProfile::Verizon3gDown => "Verizon 3G (1xEV-DO) Downlink",
            NetProfile::Verizon3gUp => "Verizon 3G (1xEV-DO) Uplink",
            NetProfile::AttLteDown => "AT&T LTE Downlink",
            NetProfile::AttLteUp => "AT&T LTE Uplink",
            NetProfile::TmobileUmtsDown => "T-Mobile 3G (UMTS) Downlink",
            NetProfile::TmobileUmtsUp => "T-Mobile 3G (UMTS) Uplink",
        }
    }

    /// Short machine-friendly identifier (file names, TSV columns).
    pub fn id(self) -> &'static str {
        match self {
            NetProfile::VerizonLteDown => "vz-lte-down",
            NetProfile::VerizonLteUp => "vz-lte-up",
            NetProfile::Verizon3gDown => "vz-3g-down",
            NetProfile::Verizon3gUp => "vz-3g-up",
            NetProfile::AttLteDown => "att-lte-down",
            NetProfile::AttLteUp => "att-lte-up",
            NetProfile::TmobileUmtsDown => "tmo-3g-down",
            NetProfile::TmobileUmtsUp => "tmo-3g-up",
        }
    }

    /// Model parameters calibrated so each synthetic link lands on the
    /// capacity scale visible on the corresponding Figure 7 axes. LTE links
    /// keep the paper's σ = 200; slower 3G links get proportionally smaller
    /// noise (rate swings in the measured 3G traces are smaller in absolute
    /// terms). Outage parameters give occasional one-to-several-second
    /// stalls, heaviest on the EV-DO link as in the paper's description.
    pub fn params(self) -> LinkModelParams {
        // Mean rates chosen from Fig. 7 axis scales (kbps / 12 = packets/s).
        // Outage entry/escape rates are kept mild: the OU rate process
        // already stalls naturally when it wanders to zero, and at low
        // means an escape that resumes near zero re-enters immediately
        // (flapping), so heavy forced outages compound into dead zones
        // far harsher than the measured links.
        // Weak mean reversion: the measured links "vary by two orders of
        // magnitude within seconds" (§2.2) — the rate must be allowed to
        // dive deep and climb high, not hug the mean.
        let (mean_pps, max_pps, sigma, theta, outage_in, outage_out) = match self {
            NetProfile::VerizonLteDown => (420.0, 1000.0, 200.0, 0.50, 0.012, 1.2),
            NetProfile::VerizonLteUp => (230.0, 800.0, 140.0, 0.50, 0.012, 1.2),
            NetProfile::Verizon3gDown => (37.0, 120.0, 18.0, 0.45, 0.030, 0.9),
            NetProfile::Verizon3gUp => (42.0, 120.0, 14.0, 0.45, 0.020, 1.0),
            NetProfile::AttLteDown => (230.0, 700.0, 150.0, 0.50, 0.015, 1.2),
            NetProfile::AttLteUp => (62.0, 200.0, 40.0, 0.45, 0.018, 1.1),
            NetProfile::TmobileUmtsDown => (95.0, 300.0, 55.0, 0.45, 0.018, 1.1),
            NetProfile::TmobileUmtsUp => (72.0, 220.0, 35.0, 0.45, 0.018, 1.1),
        };
        LinkModelParams {
            mean_rate_pps: mean_pps,
            max_rate_pps: max_pps,
            sigma,
            mean_reversion: theta,
            outage_entry_rate: outage_in,
            outage_escape_rate: outage_out,
        }
    }

    /// Generate this link's standard synthetic trace: `duration` long,
    /// deterministic in `seed`.
    ///
    /// Results are persisted in the content-addressed artifact cache
    /// keyed by `(profile, duration, seed)`: a second process asking for
    /// the same trace decodes the recorded event stream (bit-identical
    /// to a fresh synthesis) instead of re-running the millisecond-step
    /// simulation. Set `SPROUT_CACHE_DIR` / `sprout_cache::disable()` to
    /// redirect or turn this off.
    pub fn generate(self, duration: Duration, seed: u64) -> Trace {
        let key = {
            let mut w = ByteWriter::with_capacity(32);
            w.str(self.id()).u64(duration.as_micros()).u64(seed);
            w.finish()
        };
        if let Some(bytes) = TRACE_ARTIFACT.load(&key) {
            if let Some(trace) = decode_trace(&bytes) {
                return trace;
            }
        }
        // Derive a per-profile sub-stream so "seed 1" still gives the
        // eight links independent sample paths.
        let derived = crate::seed::derive_labeled_seed(seed, "trace-synth", self as u64);
        let trace = LinkSimulator::new(self.params(), derived).generate(duration);
        if let Some(encoded) = encode_trace(&trace) {
            TRACE_ARTIFACT.store(&key, &encoded);
        }
        trace
    }
}

/// Minimal Poisson sampler (Knuth's product method) — per-millisecond means
/// here never exceed `max_rate_pps / 1000 = 1`, where the method is exact
/// and fast. Kept in a private module to make the tiny dependency surface
/// obvious.
mod rand_distr_poisson {
    use rand::Rng;

    /// Draw from Poisson(mean). Only valid for small means (< ~30), which
    /// covers every call site in this crate (mean ≤ 1 per millisecond step).
    pub fn sample_poisson(rng: &mut impl Rng, mean: f64) -> u32 {
        debug_assert!((0.0..30.0).contains(&mean));
        if mean <= 0.0 {
            return 0;
        }
        let l = (-mean).exp();
        let mut k = 0u32;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
}

/// Stateful simulator of the doubly-stochastic link; advances in 1 ms steps
/// and emits delivery opportunities. Exposed so callers (e.g. the Saturator
/// reproduction) can co-simulate with other components.
#[derive(Clone, Debug)]
pub struct LinkSimulator {
    params: LinkModelParams,
    rng: StdRng,
    /// Current underlying rate λ, packets per second. 0 while in an outage.
    rate_pps: f64,
    /// Whether the link is in the sticky outage state.
    in_outage: bool,
    now_ms: u64,
}

impl LinkSimulator {
    /// Millisecond step size of the simulation.
    const DT: f64 = 1e-3;

    /// New simulator starting at the profile's mean rate.
    pub fn new(params: LinkModelParams, seed: u64) -> Self {
        assert!(params.max_rate_pps > 0.0, "max rate must be positive");
        let rate = params.mean_rate_pps.min(params.max_rate_pps);
        LinkSimulator {
            params,
            rng: StdRng::seed_from_u64(seed),
            rate_pps: rate,
            in_outage: false,
            now_ms: 0,
        }
    }

    /// Current underlying rate (0 during outages). Test/diagnostic hook.
    pub fn rate_pps(&self) -> f64 {
        if self.in_outage {
            0.0
        } else {
            self.rate_pps
        }
    }

    /// Whether the link is currently in the outage state.
    pub fn in_outage(&self) -> bool {
        self.in_outage
    }

    /// Advance one millisecond; returns the number of delivery
    /// opportunities generated in that millisecond.
    pub fn step_ms(&mut self) -> u32 {
        let p = &self.params;
        let dt = Self::DT;
        self.now_ms += 1;

        if self.in_outage {
            // Exponential escape at rate λz (§3.1 "outage escape rate").
            if self.rng.gen::<f64>() < p.outage_escape_rate * dt {
                self.in_outage = false;
                // Resume from a modest rate: an escaping link does not jump
                // straight back to its mean.
                self.rate_pps = 0.25 * p.mean_rate_pps;
            }
            return 0;
        }

        // Spontaneous outage entry (coverage hole).
        if self.rng.gen::<f64>() < p.outage_entry_rate * dt {
            self.in_outage = true;
            self.rate_pps = 0.0;
            return 0;
        }

        // Mean-reverting Brownian step; gaussian via Box-Muller on two
        // uniform draws (avoids depending on rand_distr).
        let z = gaussian(&mut self.rng);
        let drift = p.mean_reversion * (p.mean_rate_pps - self.rate_pps) * dt;
        self.rate_pps += drift + p.sigma * dt.sqrt() * z;

        // Reflect at the ceiling; entering λ≤0 means the link stalls, and
        // stalls are sticky (§3.1).
        if self.rate_pps >= p.max_rate_pps {
            self.rate_pps = 2.0 * p.max_rate_pps - self.rate_pps;
        }
        if self.rate_pps <= 0.0 {
            self.in_outage = true;
            self.rate_pps = 0.0;
            return 0;
        }

        sample_poisson(&mut self.rng, self.rate_pps * dt)
    }

    /// Run the simulator for `duration`, collecting a trace.
    pub fn generate(mut self, duration: Duration) -> Trace {
        let total_ms = duration.as_millis();
        let mut opportunities =
            Vec::with_capacity((self.params.mean_rate_pps * duration.as_secs_f64()) as usize + 16);
        for ms in 0..total_ms {
            // Synthesis runs minutes of virtual time at 1 ms steps; honor
            // a watchdog cancellation every ~4 virtual seconds.
            if ms.is_multiple_of(4096) {
                crate::cancel::checkpoint();
            }
            let n = self.step_ms();
            for _ in 0..n {
                opportunities.push(Timestamp::from_millis(ms));
            }
        }
        Trace::new(opportunities)
    }
}

fn gaussian(rng: &mut impl Rng) -> f64 {
    // Box–Muller; u1 is kept away from zero to avoid ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_encode_decode_round_trips_bit_exact() {
        let trace = NetProfile::TmobileUmtsDown.generate(Duration::from_secs(20), 99);
        let encoded = encode_trace(&trace).expect("per-ms traces always encode");
        let decoded = decode_trace(&encoded).expect("fresh encoding decodes");
        assert_eq!(trace, decoded);
        // Empty and single-event traces survive too.
        for t in [Trace::new(vec![]), Trace::from_millis([1234])] {
            let d = decode_trace(&encode_trace(&t).unwrap()).unwrap();
            assert_eq!(t, d);
        }
        // Truncated payloads degrade into misses, not panics.
        assert!(decode_trace(&encoded[..encoded.len() - 1]).is_none());
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let d = Duration::from_secs(30);
        let a = NetProfile::VerizonLteDown.generate(d, 7);
        let b = NetProfile::VerizonLteDown.generate(d, 7);
        let c = NetProfile::VerizonLteDown.generate(d, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn profiles_have_distinct_sample_paths_for_same_seed() {
        let d = Duration::from_secs(10);
        let a = NetProfile::VerizonLteDown.generate(d, 1);
        let b = NetProfile::AttLteDown.generate(d, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn mean_rate_is_near_profile_mean() {
        // Long-run average should land within a factor of ~2 of the profile
        // mean despite outages and reflection.
        for profile in NetProfile::all() {
            let tr = profile.generate(Duration::from_secs(120), 42);
            let kbps = tr.average_rate_kbps();
            let target = profile.params().mean_rate_pps * 12.0; // pps → kbps
            assert!(
                kbps > target * 0.4 && kbps < target * 2.0,
                "{}: got {kbps:.0} kbps, target {target:.0}",
                profile.name()
            );
        }
    }

    #[test]
    fn rates_never_exceed_ceiling() {
        let params = NetProfile::VerizonLteDown.params();
        let mut sim = LinkSimulator::new(params.clone(), 3);
        for _ in 0..60_000 {
            sim.step_ms();
            assert!(sim.rate_pps() <= params.max_rate_pps);
            assert!(sim.rate_pps() >= 0.0);
        }
    }

    #[test]
    fn outages_are_sticky_but_escape() {
        // With a high entry rate we must observe at least one outage, and
        // with λz=1 the link must always come back within the run.
        let params = LinkModelParams {
            outage_entry_rate: 2.0,
            ..NetProfile::VerizonLteDown.params()
        };
        let mut sim = LinkSimulator::new(params, 11);
        let mut saw_outage = false;
        let mut saw_recovery = false;
        for _ in 0..120_000 {
            sim.step_ms();
            if sim.in_outage() {
                saw_outage = true;
            } else if saw_outage {
                saw_recovery = true;
            }
        }
        assert!(saw_outage && saw_recovery);
    }

    #[test]
    fn paper_frozen_params_match_section_3_1() {
        let p = LinkModelParams::paper_frozen(137.0);
        assert_eq!(p.sigma, 200.0);
        assert_eq!(p.outage_escape_rate, 1.0);
        assert_eq!(p.max_rate_pps, 1000.0);
        assert_eq!(p.mean_reversion, 0.0);
    }

    #[test]
    fn poisson_sampler_matches_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let mean = 0.8;
        let total: u64 = (0..n)
            .map(|_| rand_distr_poisson::sample_poisson(&mut rng, mean) as u64)
            .sum();
        let empirical = total as f64 / n as f64;
        assert!((empirical - mean).abs() < 0.02, "empirical {empirical}");
    }
}
