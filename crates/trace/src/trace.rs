//! The in-memory representation of a cellular link trace.
//!
//! A trace is the ground truth the Saturator records (§4.1): the sequence of
//! times at which the link was able to transmit one MTU-sized packet. The
//! emulator replays these as *delivery opportunities* — whatever bytes are
//! queued when an opportunity fires are released, up to one MTU per
//! opportunity; opportunities that find an empty queue are wasted (§4.2).

use crate::time::{Duration, Timestamp, MTU_BYTES};

/// A recorded (or synthesized) cellular link trace: a non-decreasing list of
/// delivery-opportunity timestamps. Several opportunities may share the same
/// millisecond on fast links.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Delivery opportunities, in non-decreasing order.
    opportunities: Vec<Timestamp>,
}

impl Trace {
    /// Build a trace from raw opportunity timestamps. The list is sorted if
    /// it is not already in order.
    pub fn new(mut opportunities: Vec<Timestamp>) -> Self {
        if !opportunities.windows(2).all(|w| w[0] <= w[1]) {
            opportunities.sort_unstable();
        }
        Trace { opportunities }
    }

    /// Build a trace from opportunity times given in milliseconds (the
    /// Saturator file unit).
    pub fn from_millis(ms: impl IntoIterator<Item = u64>) -> Self {
        Trace::new(ms.into_iter().map(Timestamp::from_millis).collect())
    }

    /// The delivery opportunities, in order.
    pub fn opportunities(&self) -> &[Timestamp] {
        &self.opportunities
    }

    /// Number of delivery opportunities (i.e. MTU-sized packets the link
    /// could have carried).
    pub fn len(&self) -> usize {
        self.opportunities.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.opportunities.is_empty()
    }

    /// Time of the last opportunity — the usable length of the trace.
    pub fn duration(&self) -> Duration {
        self.opportunities
            .last()
            .map(|t| t.saturating_since(Timestamp::ZERO))
            .unwrap_or(Duration::ZERO)
    }

    /// Total bytes the link could have carried (opportunities × MTU).
    pub fn capacity_bytes(&self) -> u64 {
        self.len() as u64 * MTU_BYTES as u64
    }

    /// Average capacity in bits per second over the whole trace.
    pub fn average_rate_bps(&self) -> f64 {
        let secs = self.duration().as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.capacity_bytes() as f64 * 8.0 / secs
    }

    /// Average capacity in kilobits per second (the paper's reporting unit).
    pub fn average_rate_kbps(&self) -> f64 {
        self.average_rate_bps() / 1e3
    }

    /// Truncate the trace to `limit`, dropping opportunities at or after it.
    pub fn truncated(&self, limit: Timestamp) -> Trace {
        let end = self.opportunities.partition_point(|&t| t < limit);
        Trace {
            opportunities: self.opportunities[..end].to_vec(),
        }
    }

    /// The sub-trace within `[from, to)`, re-based so `from` becomes t=0.
    pub fn window(&self, from: Timestamp, to: Timestamp) -> Trace {
        let lo = self.opportunities.partition_point(|&t| t < from);
        let hi = self.opportunities.partition_point(|&t| t < to);
        Trace {
            opportunities: self.opportunities[lo..hi]
                .iter()
                .map(|&t| Timestamp::from_micros(t.as_micros() - from.as_micros()))
                .collect(),
        }
    }

    /// Capacity in each consecutive bin of width `bin`, in kbps — the
    /// "Capacity" staircase of Figure 1.
    pub fn capacity_series_kbps(&self, bin: Duration) -> Vec<f64> {
        assert!(bin > Duration::ZERO, "bin width must be positive");
        let total = self.duration();
        let nbins = (total.as_micros() / bin.as_micros() + 1) as usize;
        let mut counts = vec![0u64; nbins];
        for &t in &self.opportunities {
            let idx = (t.as_micros() / bin.as_micros()) as usize;
            counts[idx] += 1;
        }
        let bin_secs = bin.as_secs_f64();
        counts
            .into_iter()
            .map(|c| c as f64 * MTU_BYTES as f64 * 8.0 / bin_secs / 1e3)
            .collect()
    }

    /// Interarrival gaps between consecutive opportunities.
    pub fn interarrivals(&self) -> impl Iterator<Item = Duration> + '_ {
        self.opportunities.windows(2).map(|w| w[1] - w[0])
    }

    /// Count of opportunities in `[from, to)`.
    pub fn opportunities_between(&self, from: Timestamp, to: Timestamp) -> usize {
        let lo = self.opportunities.partition_point(|&t| t < from);
        let hi = self.opportunities.partition_point(|&t| t < to);
        hi - lo
    }
}

/// Cursor over a trace used by the emulator: yields opportunities in order
/// and remembers its position, so replay is O(1) amortized per event.
#[derive(Clone, Debug)]
pub struct TraceCursor {
    trace: Trace,
    next: usize,
}

impl TraceCursor {
    /// Start replaying `trace` from its beginning.
    pub fn new(trace: Trace) -> Self {
        TraceCursor { trace, next: 0 }
    }

    /// Timestamp of the next unconsumed delivery opportunity.
    pub fn peek(&self) -> Option<Timestamp> {
        self.trace.opportunities().get(self.next).copied()
    }

    /// Consume and return the next opportunity if it is at or before `now`.
    pub fn pop_due(&mut self, now: Timestamp) -> Option<Timestamp> {
        match self.peek() {
            Some(t) if t <= now => {
                self.next += 1;
                Some(t)
            }
            _ => None,
        }
    }

    /// Whether the trace is exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.next >= self.trace.len()
    }

    /// The underlying trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn new_sorts_out_of_order_input() {
        let tr = Trace::new(vec![t(30), t(10), t(20)]);
        assert_eq!(tr.opportunities(), &[t(10), t(20), t(30)]);
    }

    #[test]
    fn capacity_and_rate() {
        // 10 opportunities over 1 second: 10 * 1500 * 8 bits / 1 s = 120 kbps.
        let tr = Trace::from_millis((1..=10).map(|i| i * 100));
        assert_eq!(tr.len(), 10);
        assert_eq!(tr.capacity_bytes(), 15_000);
        assert!((tr.average_rate_kbps() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let tr = Trace::new(vec![]);
        assert!(tr.is_empty());
        assert_eq!(tr.duration(), Duration::ZERO);
        assert_eq!(tr.average_rate_bps(), 0.0);
        assert!(tr.capacity_series_kbps(Duration::from_millis(100)).len() <= 1);
    }

    #[test]
    fn window_rebases_to_zero() {
        let tr = Trace::from_millis([100, 200, 300, 400]);
        let w = tr.window(t(150), t(350));
        assert_eq!(w.opportunities(), &[t(50), t(150)]);
    }

    #[test]
    fn truncated_is_strictly_before_limit() {
        let tr = Trace::from_millis([100, 200, 300]);
        assert_eq!(tr.truncated(t(300)).len(), 2);
        assert_eq!(tr.truncated(t(301)).len(), 3);
    }

    #[test]
    fn capacity_series_bins_correctly() {
        // 2 opportunities in [0,1s), 1 in [1s,2s).
        let tr = Trace::from_millis([100, 900, 1500]);
        let series = tr.capacity_series_kbps(Duration::from_secs(1));
        assert_eq!(series.len(), 2);
        assert!((series[0] - 24.0).abs() < 1e-9); // 2*1500*8/1e3
        assert!((series[1] - 12.0).abs() < 1e-9);
    }

    #[test]
    fn cursor_pops_in_order_and_respects_now() {
        let tr = Trace::from_millis([10, 20, 20, 30]);
        let mut c = TraceCursor::new(tr);
        assert_eq!(c.pop_due(t(5)), None);
        assert_eq!(c.pop_due(t(20)), Some(t(10)));
        assert_eq!(c.pop_due(t(20)), Some(t(20)));
        assert_eq!(c.pop_due(t(20)), Some(t(20)));
        assert_eq!(c.pop_due(t(20)), None);
        assert_eq!(c.peek(), Some(t(30)));
        assert!(!c.is_exhausted());
        assert_eq!(c.pop_due(t(1000)), Some(t(30)));
        assert!(c.is_exhausted());
    }

    #[test]
    fn interarrivals_are_gaps() {
        let tr = Trace::from_millis([10, 30, 60]);
        let gaps: Vec<u64> = tr.interarrivals().map(|d| d.as_millis()).collect();
        assert_eq!(gaps, vec![20, 30]);
    }

    #[test]
    fn opportunities_between_is_half_open() {
        let tr = Trace::from_millis([10, 20, 30]);
        assert_eq!(tr.opportunities_between(t(10), t(30)), 2);
        assert_eq!(tr.opportunities_between(t(0), t(100)), 3);
        assert_eq!(tr.opportunities_between(t(31), t(100)), 0);
    }
}
