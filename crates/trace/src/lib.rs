//! Cellular link traces for the Sprout reproduction.
//!
//! This crate is the foundation of the workspace: integer virtual-time
//! primitives ([`Timestamp`], [`Duration`]), the Saturator trace format
//! (§4.1 of the paper), a doubly-stochastic synthetic trace generator
//! implementing the paper's own link model (§3.1), and the analysis used
//! for Figure 2.
//!
//! ```
//! use sprout_trace::{NetProfile, Duration};
//!
//! let trace = NetProfile::VerizonLteDown.generate(Duration::from_secs(30), 42);
//! println!("mean capacity: {:.0} kbps", trace.average_rate_kbps());
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod cancel;
pub mod fit;
pub mod format;
pub mod impair;
pub mod registry;
pub mod seed;
pub mod synth;
pub mod time;
#[allow(clippy::module_inception)]
mod trace;

pub use analysis::{outage_stats, summarize, InterarrivalHistogram, OutageStats, TraceSummary};
pub use cancel::{CancelGuard, CancelToken, Cancelled};
pub use fit::{fit_link_model, FitConfig, FittedModel};
pub use format::{load_trace, read_trace, save_trace, write_trace, TraceFileError, MAX_TRACE_MS};
pub use impair::{
    DeliveryPerturber, GilbertElliott, GilbertElliottProcess, Impairment, JitterSpec,
    OutageSchedule, OutageSpec, ReorderSpec, IMPAIRMENT_PRESETS,
};
pub use registry::{lookup_trace, register_trace_bytes, register_trace_file};
pub use seed::{derive_labeled_seed, derive_seed, session_seed};
pub use synth::{
    reset_trace_cache_counters, trace_cache_counters, LinkModelParams, LinkSimulator, NetProfile,
};
pub use time::{Duration, Timestamp, MTU_BYTES, TICK};
pub use trace::{Trace, TraceCursor};
