//! Trace analysis: interarrival statistics (Figure 2), outage statistics,
//! and capacity summaries.

use crate::time::{Duration, Timestamp};
use crate::trace::Trace;

/// Histogram of interarrival times between delivery opportunities, with
/// logarithmic bins — the raw material of the paper's Figure 2.
#[derive(Clone, Debug)]
pub struct InterarrivalHistogram {
    /// Bin lower edges in milliseconds (log-spaced), plus a 0 ms bin for
    /// same-millisecond opportunities.
    edges_ms: Vec<f64>,
    /// Count of interarrivals falling in `[edges[i], edges[i+1])`.
    counts: Vec<u64>,
    total: u64,
}

impl InterarrivalHistogram {
    /// Build the histogram with `bins_per_decade` log-spaced bins covering
    /// 1 ms .. `max_ms`.
    pub fn from_trace(trace: &Trace, bins_per_decade: usize, max_ms: f64) -> Self {
        assert!(bins_per_decade > 0 && max_ms > 1.0);
        let decades = max_ms.log10();
        let nbins = (decades * bins_per_decade as f64).ceil() as usize + 1;
        // edges: [0, 1, 10^(1/bpd), 10^(2/bpd), ...]
        let mut edges_ms = Vec::with_capacity(nbins + 1);
        edges_ms.push(0.0);
        for i in 0..nbins {
            edges_ms.push(10f64.powf(i as f64 / bins_per_decade as f64));
        }
        let mut counts = vec![0u64; edges_ms.len()];
        let mut total = 0u64;
        for gap in trace.interarrivals() {
            let ms = gap.as_micros() as f64 / 1e3;
            // Find the last edge ≤ ms.
            let idx = edges_ms.partition_point(|&e| e <= ms).saturating_sub(1);
            counts[idx.min(edges_ms.len() - 1)] += 1;
            total += 1;
        }
        InterarrivalHistogram {
            edges_ms,
            counts,
            total,
        }
    }

    /// Total number of interarrivals observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterate over `(bin_start_ms, bin_end_ms, percent_of_interarrivals)`.
    pub fn rows(&self) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        let total = self.total.max(1) as f64;
        self.edges_ms
            .iter()
            .zip(
                self.edges_ms
                    .iter()
                    .skip(1)
                    .chain(std::iter::once(&f64::INFINITY)),
            )
            .zip(self.counts.iter())
            .map(move |((&lo, &hi), &c)| (lo, hi, 100.0 * c as f64 / total))
    }

    /// Fraction of interarrivals that arrive within `within_ms` of the
    /// previous packet (the paper reports 99.99% within 20 ms on Verizon
    /// LTE).
    pub fn fraction_within_ms(&self, within_ms: f64) -> f64 {
        let total = self.total.max(1) as f64;
        let mut acc = 0u64;
        for ((&lo, &c), _) in self
            .edges_ms
            .iter()
            .zip(self.counts.iter())
            .zip(std::iter::repeat(()))
        {
            if lo < within_ms {
                acc += c;
            }
        }
        acc as f64 / total
    }

    /// Least-squares fit of the tail as a power law `percent ∝ t^slope`
    /// over bins whose start lies in `[lo_ms, hi_ms]` with nonzero counts.
    /// Figure 2 reports slope ≈ −3.27 for the Verizon LTE downlink. Returns
    /// `None` when fewer than 3 tail bins are populated.
    pub fn tail_power_law_slope(&self, lo_ms: f64, hi_ms: f64) -> Option<f64> {
        let total = self.total.max(1) as f64;
        let pts: Vec<(f64, f64)> = self
            .edges_ms
            .iter()
            .zip(self.counts.iter())
            .filter(|&(&lo, &c)| lo >= lo_ms && lo <= hi_ms && c > 0 && lo > 0.0)
            .map(|(&lo, &c)| (lo.log10(), (100.0 * c as f64 / total).log10()))
            .collect();
        linear_regression_slope(&pts)
    }
}

fn linear_regression_slope(pts: &[(f64, f64)]) -> Option<f64> {
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

/// Summary of the outages (delivery gaps) in a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OutageStats {
    /// Number of gaps longer than the threshold.
    pub count: usize,
    /// Longest gap observed.
    pub longest: Duration,
    /// Total time spent in gaps longer than the threshold.
    pub total_time: Duration,
}

/// Find all delivery gaps longer than `threshold`.
pub fn outage_stats(trace: &Trace, threshold: Duration) -> OutageStats {
    let mut stats = OutageStats::default();
    for gap in trace.interarrivals() {
        if gap > threshold {
            stats.count += 1;
            stats.total_time += gap;
            if gap > stats.longest {
                stats.longest = gap;
            }
        }
    }
    stats
}

/// One-line summary of a trace, for reports and examples.
#[derive(Clone, Debug)]
pub struct TraceSummary {
    /// Usable length of the trace.
    pub duration: Duration,
    /// Number of delivery opportunities.
    pub opportunities: usize,
    /// Mean capacity in kbps.
    pub mean_kbps: f64,
    /// Peak capacity over 1-second bins, kbps.
    pub peak_1s_kbps: f64,
    /// Minimum capacity over 1-second bins, kbps.
    pub min_1s_kbps: f64,
    /// Outages longer than one second.
    pub outages_over_1s: OutageStats,
}

/// Compute a [`TraceSummary`].
pub fn summarize(trace: &Trace) -> TraceSummary {
    let series = trace.capacity_series_kbps(Duration::from_secs(1));
    TraceSummary {
        duration: trace.duration(),
        opportunities: trace.len(),
        mean_kbps: trace.average_rate_kbps(),
        peak_1s_kbps: series.iter().copied().fold(0.0, f64::max),
        min_1s_kbps: series.iter().copied().fold(f64::INFINITY, f64::min),
        outages_over_1s: outage_stats(trace, Duration::from_secs(1)),
    }
}

/// Instantaneous rate estimate over sliding windows — used by Figure 1's
/// capacity staircase and by tests that compare protocols against capacity.
pub fn windowed_rate_kbps(
    trace: &Trace,
    window: Duration,
    step: Duration,
) -> Vec<(Timestamp, f64)> {
    assert!(window > Duration::ZERO && step > Duration::ZERO);
    let mut out = Vec::new();
    let end = trace.duration();
    let mut start = Timestamp::ZERO;
    while start + window <= Timestamp::ZERO + end {
        let n = trace.opportunities_between(start, start + window);
        let kbps = n as f64 * crate::time::MTU_BYTES as f64 * 8.0 / window.as_secs_f64() / 1e3;
        out.push((start, kbps));
        start += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::NetProfile;

    #[test]
    fn histogram_counts_every_gap() {
        let tr = Trace::from_millis([0, 1, 2, 50, 51, 4000]);
        let h = InterarrivalHistogram::from_trace(&tr, 10, 10_000.0);
        assert_eq!(h.total(), 5);
        let pct_sum: f64 = h.rows().map(|r| r.2).sum();
        assert!((pct_sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fraction_within_counts_short_gaps() {
        // Gaps: 1,1,48,1,3949 ms → 3 of 5 within 20 ms.
        let tr = Trace::from_millis([0, 1, 2, 50, 51, 4000]);
        let h = InterarrivalHistogram::from_trace(&tr, 10, 10_000.0);
        assert!((h.fraction_within_ms(20.0) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn synthetic_lte_interarrivals_are_mostly_short_with_heavy_tail() {
        // The §3.1/Fig. 2 claim our generator must reproduce: almost all
        // interarrivals are short (memoryless regime), but gaps of hundreds
        // of ms to seconds exist.
        let tr = NetProfile::VerizonLteDown.generate(Duration::from_secs(300), 2);
        let h = InterarrivalHistogram::from_trace(&tr, 10, 10_000.0);
        assert!(h.fraction_within_ms(20.0) > 0.95);
        let max_gap = tr.interarrivals().max().unwrap_or(Duration::ZERO);
        assert!(
            max_gap > Duration::from_millis(300),
            "expected a heavy tail, max gap {max_gap}"
        );
    }

    #[test]
    fn tail_slope_is_negative_on_synthetic_lte() {
        let tr = NetProfile::VerizonLteDown.generate(Duration::from_secs(600), 3);
        let h = InterarrivalHistogram::from_trace(&tr, 10, 10_000.0);
        if let Some(slope) = h.tail_power_law_slope(20.0, 5_000.0) {
            assert!(slope < -0.5, "tail should decay, slope {slope}");
        }
        // A fit can be absent on an unlucky seed (too few tail bins); the
        // fig2 harness uses much longer traces.
    }

    #[test]
    fn outage_stats_find_long_gaps() {
        let tr = Trace::from_millis([0, 100, 2_200, 2_300, 7_300]);
        let s = outage_stats(&tr, Duration::from_secs(1));
        assert_eq!(s.count, 2);
        assert_eq!(s.longest, Duration::from_secs(5));
        assert_eq!(s.total_time, Duration::from_millis(7_100));
    }

    #[test]
    fn summary_is_consistent() {
        let tr = NetProfile::TmobileUmtsUp.generate(Duration::from_secs(60), 9);
        let s = summarize(&tr);
        assert_eq!(s.opportunities, tr.len());
        assert!(s.peak_1s_kbps >= s.mean_kbps * 0.5);
        assert!(s.min_1s_kbps <= s.mean_kbps * 1.5);
    }

    #[test]
    fn windowed_rate_covers_trace() {
        let tr = Trace::from_millis((0..1000).map(|i| i * 10)); // 100 pps steady
        let rates = windowed_rate_kbps(&tr, Duration::from_secs(1), Duration::from_millis(500));
        assert!(!rates.is_empty());
        for (_, kbps) in &rates {
            assert!((kbps - 1200.0).abs() < 120.0, "rate {kbps}");
        }
    }

    #[test]
    fn regression_slope_of_known_line() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 - 2.0 * i as f64)).collect();
        let slope = linear_regression_slope(&pts).unwrap();
        assert!((slope + 2.0).abs() < 1e-9);
    }
}
