//! Self-contained statistical primitives for the inference engine.
//!
//! The model needs the Poisson likelihood (with real-valued counts, since
//! observed bytes rarely align to whole MTUs) and the normal CDF (to
//! integrate the Brownian kernel over rate bins). Implemented here from
//! standard approximations so the workspace needs no external math crate.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
/// Absolute error < 1e-10 over the domain used here (x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain is x > 0, got {x}");
    // Coefficients for g=7, n=9 (Numerical Recipes / Boost style).
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Log of the Poisson pmf `P(K = k)` with mean `mean`, extended to
/// real-valued `k ≥ 0` via the gamma function. Returns `-inf` when the
/// event is impossible (`mean == 0` with `k > 0`).
pub fn poisson_ln_pmf(k: f64, mean: f64) -> f64 {
    assert!(k >= 0.0 && mean >= 0.0, "k={k}, mean={mean}");
    if mean == 0.0 {
        return if k == 0.0 { 0.0 } else { f64::NEG_INFINITY };
    }
    k * mean.ln() - mean - ln_gamma(k + 1.0)
}

/// [`poisson_ln_pmf`] with the `ln Γ(k + 1)` term supplied by the
/// caller. The observation loop of the rate model evaluates the pmf at
/// one fixed `k` across every rate bin; `ln_gamma` is the expensive term
/// and depends only on `k`, so hoisting it out of that loop saves ~256
/// Lanczos evaluations per tick. The arithmetic (`k·ln(mean) − mean −
/// lgk1`, left to right) is exactly [`poisson_ln_pmf`]'s, so results are
/// bit-identical when `lgk1 == ln_gamma(k + 1)`.
pub fn poisson_ln_pmf_with_ln_gamma(k: f64, mean: f64, lgk1: f64) -> f64 {
    assert!(k >= 0.0 && mean >= 0.0, "k={k}, mean={mean}");
    if mean == 0.0 {
        return if k == 0.0 { 0.0 } else { f64::NEG_INFINITY };
    }
    k * mean.ln() - mean - lgk1
}

/// Poisson pmf for integer `k` (used to build forecast convolution
/// kernels).
pub fn poisson_pmf(k: u32, mean: f64) -> f64 {
    poisson_ln_pmf(k as f64, mean).exp()
}

/// Standard normal CDF via the complementary error function.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Complementary error function, Numerical-Recipes rational Chebyshev
/// approximation; |error| < 1.2e-7 everywhere, which is far below the
/// probability floor of the model.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Probability mass of a normal distribution `N(mu, sigma)` falling inside
/// the interval `[lo, hi]`.
pub fn normal_mass(mu: f64, sigma: f64, lo: f64, hi: f64) -> f64 {
    assert!(sigma > 0.0 && hi >= lo);
    normal_cdf((hi - mu) / sigma) - normal_cdf((lo - mu) / sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n+1) = n!
        let facts: [(f64, f64); 6] = [
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (4.0, 6.0),
            (5.0, 24.0),
            (11.0, 3_628_800.0),
        ];
        for (x, f) in facts {
            assert!(
                (ln_gamma(x) - f.ln()).abs() < 1e-9,
                "ln_gamma({x}) = {} want {}",
                ln_gamma(x),
                f.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-9);
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        for mean in [0.1, 1.0, 5.0, 20.0] {
            let total: f64 = (0..200).map(|k| poisson_pmf(k, mean)).sum();
            assert!((total - 1.0).abs() < 1e-9, "mean {mean}: sum {total}");
        }
    }

    #[test]
    fn poisson_pmf_known_values() {
        // P(K=0 | mean 2) = e^-2.
        assert!((poisson_pmf(0, 2.0) - (-2.0f64).exp()).abs() < 1e-12);
        // P(K=3 | mean 3) = 27 e^-3 / 6.
        let want = 27.0 * (-3.0f64).exp() / 6.0;
        assert!((poisson_pmf(3, 3.0) - want).abs() < 1e-12);
    }

    #[test]
    fn poisson_zero_mean_is_degenerate() {
        assert_eq!(poisson_ln_pmf(0.0, 0.0), 0.0);
        assert_eq!(poisson_ln_pmf(1.0, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn poisson_fractional_k_is_smooth() {
        // The continuous extension should interpolate between the integer
        // values monotonically for k below the mean.
        let mean = 10.0;
        let a = poisson_ln_pmf(4.0, mean);
        let b = poisson_ln_pmf(4.5, mean);
        let c = poisson_ln_pmf(5.0, mean);
        assert!(a < b && b < c, "{a} {b} {c}");
    }

    #[test]
    fn normal_cdf_symmetry_and_landmarks() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959_96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.959_96) - 0.025).abs() < 1e-4);
        for z in [-3.0, -1.0, -0.2, 0.7, 2.5] {
            let s = normal_cdf(z) + normal_cdf(-z);
            assert!((s - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn normal_mass_covers_everything() {
        assert!((normal_mass(5.0, 2.0, -1e3, 1e3) - 1.0).abs() < 1e-7);
        // ±1σ contains ≈ 68.27%.
        let m = normal_mass(0.0, 1.0, -1.0, 1.0);
        assert!((m - 0.682_69).abs() < 1e-4, "{m}");
    }

    #[test]
    fn erfc_landmarks() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!(erfc(3.0) < 1e-4);
        assert!((erfc(-3.0) - 2.0).abs() < 1e-4);
    }
}
