//! The packet delivery forecast (§3.3).
//!
//! Given the posterior over the current rate, Sprout predicts — at a
//! cautious percentile — the *cumulative* number of packets the link will
//! deliver over each of the next `horizon_ticks` ticks, evolving the model
//! forward **without** observations.
//!
//! Exactly as the paper hints ("most of these steps can be precalculated…
//! the only work at runtime is to take a weighted sum over each λ"), the
//! heavy lifting happens once per configuration: for every starting rate
//! bin `i`, horizon tick `t`, and cumulative count `c`, we precompute
//!
//! ```text
//! F[t][c][i] = P( C_{t} ≤ c | λ₀ = bin i )
//! ```
//!
//! by dynamic programming over the joint (rate bin × cumulative volume)
//! distribution: each tick applies the Brownian/outage transition to the
//! bin axis and advances the volume axis by the bin's expected per-tick
//! deliveries (in quarter-MTU units, split across adjacent cells to keep
//! the expectation exact). At runtime the forecast CDF is the
//! posterior-weighted mixture `Σᵢ P(λ₀=i)·F[t][c][i]`, binary-searched
//! for the configured percentile.
//!
//! **Implementation note (documented deviation).** The percentile is
//! taken over the *rate path* (the model's uncertainty about λ and
//! outages), not over the additional Poisson sampling noise of the
//! counts. §3.3's text suggests the full count distribution, but at 3G
//! rates (~1 packet per tick) the 5th percentile of a Poisson count is
//! zero, which would cap Sprout at ~150 kbps on links where the paper
//! measures ~400 kbps at 90% utilization — the published numbers are
//! only consistent with rate-uncertainty caution — a deliberate,
//! documented interpretation of the paper's text.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use sprout_cache::{ArtifactKind, ByteReader, ByteWriter, CacheCounters};

use crate::config::{SproutConfig, TableKey};
use crate::lru::LruCache;
use crate::model::{ScatterMatrix, TransitionKernel};

/// On-disk persistence of built tables. Version covers both the byte
/// layout of [`ForecastTables::to_bytes`] and the DP semantics — bump it
/// whenever either changes, or stale files would silently load.
static TABLE_ARTIFACT: ArtifactKind = ArtifactKind::new("forecast-table", 1);

/// Disk-cache traffic counters for forecast tables (hits mean a
/// `ForecastTables::get` skipped the DP entirely).
pub fn table_cache_counters() -> CacheCounters {
    TABLE_ARTIFACT.counters()
}

/// Reset the forecast-table cache counters (bench/test harnesses).
pub fn reset_table_cache_counters() {
    TABLE_ARTIFACT.reset_counters()
}

/// In-memory amortization counters: how many times a shared resource was
/// materialized in this process versus served from a live in-memory
/// handle. Distinct from [`CacheCounters`], which tracks the *disk*
/// artifact cache — a "built" here may still have been a disk hit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// First-time materializations (DP build or disk decode).
    pub built: u64,
    /// Requests served from an already-live in-memory instance.
    pub reused: u64,
}

impl MemCounters {
    /// Counter deltas since an earlier snapshot of the same counters.
    pub fn since(self, earlier: MemCounters) -> MemCounters {
        MemCounters {
            built: self.built - earlier.built,
            reused: self.reused - earlier.reused,
        }
    }
}

static TABLES_BUILT: AtomicU64 = AtomicU64::new(0);
static TABLES_REUSED: AtomicU64 = AtomicU64::new(0);
static TABLES_EVICTED: AtomicU64 = AtomicU64::new(0);
static TABLE_CACHE_LEN: AtomicU64 = AtomicU64::new(0);

/// How many link geometries the in-memory forecast-table cache keeps
/// live at once. Each entry is ≈4 MB at paper scale; eight covers every
/// matrix the `reproduce` experiments declare with headroom, while a
/// daemon cycling through arbitrary geometries stays bounded.
pub const FORECAST_TABLE_CACHE_CAP: usize = 8;

/// A per-key build slot: the first caller of a key initializes the
/// `OnceLock` (building the table) while others wait on it, without
/// holding the whole-cache lock.
type TableSlot = Arc<OnceLock<Arc<ForecastTables>>>;

/// Occupancy of the in-memory forecast-table cache: `(live_entries,
/// evictions_total)`. `live_entries` never exceeds
/// [`FORECAST_TABLE_CACHE_CAP`]; a growing `evictions_total` under a
/// geometry-heavy sweep is the cache recycling slots as designed.
pub fn table_cache_occupancy() -> (usize, u64) {
    (
        TABLE_CACHE_LEN.load(Ordering::Relaxed) as usize,
        TABLES_EVICTED.load(Ordering::Relaxed),
    )
}

/// Process-wide in-memory forecast-table amortization counters: `built`
/// counts [`ForecastTables::get`] calls that materialized a table (DP
/// build or disk load), `reused` counts calls served by the live
/// in-memory cache.
pub fn table_memory_counters() -> MemCounters {
    MemCounters {
        built: TABLES_BUILT.load(Ordering::Relaxed),
        reused: TABLES_REUSED.load(Ordering::Relaxed),
    }
}

/// Resolution of the cumulative-volume axis: quarter-MTU units. Finer
/// than whole packets so slow links (1–2 packets per tick) don't lose
/// their entire forecast to quantization.
pub const UNITS_PER_MTU: u64 = 4;

/// A delivery forecast: entry `t` is the cumulative volume (in
/// quarter-MTU [`UNITS_PER_MTU`] units) predicted at the configured
/// percentile to be delivered within the first `t+1` ticks from the
/// forecast's reference time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Forecast {
    /// Cumulative volume in quarter-MTU units, one entry per horizon
    /// tick; non-decreasing.
    pub cumulative_units: Vec<u32>,
}

impl Forecast {
    /// Cumulative *bytes* deliverable within the first `t+1` ticks.
    pub fn cumulative_bytes(&self, tick_index: usize, mtu: u32) -> u64 {
        let idx = tick_index.min(self.cumulative_units.len() - 1);
        self.cumulative_units[idx] as u64 * mtu as u64 / UNITS_PER_MTU
    }

    /// Number of horizon ticks covered.
    pub fn horizon(&self) -> usize {
        self.cumulative_units.len()
    }
}

/// Precomputed conditional CDF tables; build once, share via [`Arc`].
pub struct ForecastTables {
    num_bins: usize,
    horizon: usize,
    count_max: usize,
    /// Upper bound on the per-tick advance of the cumulative-volume axis:
    /// no rate bin delivers more than this many quarter-MTU units in one
    /// tick, so the percentile index grows by at most `max_step` per tick.
    /// Bounds the warm-started search in [`Self::forecast_into`]. Derived
    /// from the configuration, not serialized; tables decoded through the
    /// raw [`Self::from_bytes`] fall back to the unbounded `count_max`
    /// (identical results, more probes per search).
    max_step: usize,
    /// Layout: `cdf[(t * count_max + c) * num_bins + i]`, f32 to halve the
    /// footprint (≈4 MB at paper scale).
    cdf: Vec<f32>,
}

impl ForecastTables {
    /// Fetch (building on first use) the tables for `cfg` from the global
    /// cache. Tables depend only on the model geometry, not the percentile,
    /// so Fig-9 style confidence sweeps share one build. The cache is a
    /// bounded LRU ([`FORECAST_TABLE_CACHE_CAP`] geometries, ≈4 MB each at
    /// paper scale): a daemon sweeping many disjoint geometries recycles
    /// slots instead of growing without bound.
    pub fn get(cfg: &SproutConfig) -> Arc<ForecastTables> {
        // Per-key OnceLock slots: the first caller of a key builds while
        // holding only that key's slot, so concurrent sweep workers neither
        // duplicate a build (it costs seconds at paper scale) nor block
        // callers wanting a different geometry. Eviction drops the map's
        // Arc only — a builder mid-flight on an evicted slot still owns
        // it and finishes; the next `get` of that key simply rebuilds.
        static CACHE: OnceLock<Mutex<LruCache<TableKey, TableSlot>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(LruCache::new(FORECAST_TABLE_CACHE_CAP)));
        let key = cfg.table_key();
        let slot = {
            let mut map = cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let (slot, _) = map.get_or_insert_with(&key, TableSlot::default);
            let slot = Arc::clone(slot);
            TABLES_EVICTED.store(map.evictions(), Ordering::Relaxed);
            TABLE_CACHE_LEN.store(map.len() as u64, Ordering::Relaxed);
            slot
        };
        let mut built_now = false;
        let tables = Arc::clone(slot.get_or_init(|| {
            built_now = true;
            Arc::new(ForecastTables::load_or_build(cfg))
        }));
        if built_now {
            TABLES_BUILT.fetch_add(1, Ordering::Relaxed);
        } else {
            TABLES_REUSED.fetch_add(1, Ordering::Relaxed);
        }
        tables
    }

    /// Fetch the tables for `cfg` from the on-disk artifact cache, or
    /// build them (persisting the result for the next process). Bypasses
    /// the in-memory layer — [`ForecastTables::get`] is the usual entry
    /// point; this one exists for cache tooling and tests.
    pub fn load_or_build(cfg: &SproutConfig) -> ForecastTables {
        cfg.validate();
        let key = cfg.table_key().cache_key_bytes();
        if let Some(bytes) = TABLE_ARTIFACT.load(&key) {
            if let Some(mut t) = ForecastTables::from_bytes(&bytes) {
                // The decoded dims are part of the key, but stay defensive:
                // a mismatch means a corrupt entry that beat the checksum.
                if t.num_bins == cfg.num_bins
                    && t.horizon == cfg.horizon_ticks
                    && t.count_max == cfg.count_max
                {
                    // The search bound is config-derived, not serialized.
                    t.max_step = max_unit_step(cfg);
                    return t;
                }
            }
        }
        let kernel = TransitionKernel::new(cfg);
        let tables = ForecastTables::build(cfg, &kernel);
        TABLE_ARTIFACT.store(&key, &tables.to_bytes());
        tables
    }

    /// Serialize to the on-disk payload: three dimensions then the raw
    /// f32 bit patterns of the CDF strip. Bit-exact round trip, so cached
    /// and freshly built tables produce identical forecasts.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(24 + 4 * self.cdf.len());
        w.u64(self.num_bins as u64)
            .u64(self.horizon as u64)
            .u64(self.count_max as u64);
        for &v in &self.cdf {
            w.f32(v);
        }
        w.finish()
    }

    /// Decode a [`ForecastTables::to_bytes`] payload; `None` on any
    /// dimension/length mismatch (treated as a cache miss upstream).
    pub fn from_bytes(bytes: &[u8]) -> Option<ForecastTables> {
        let mut r = ByteReader::new(bytes);
        let num_bins = r.u64()? as usize;
        let horizon = r.u64()? as usize;
        let count_max = r.u64()? as usize;
        let cells = num_bins.checked_mul(horizon)?.checked_mul(count_max)?;
        if r.remaining() != 4 * cells {
            return None;
        }
        let mut cdf = Vec::with_capacity(cells);
        for _ in 0..cells {
            cdf.push(r.f32()?);
        }
        Some(ForecastTables {
            num_bins,
            horizon,
            count_max,
            max_step: count_max,
            cdf,
        })
    }

    /// Build the tables by per-start-bin dynamic programming.
    pub fn build(cfg: &SproutConfig, kernel: &TransitionKernel) -> ForecastTables {
        ForecastTables::build_impl(cfg, kernel, build_one_start)
    }

    /// [`Self::build`] driven by the pre-vectorization scalar DP, kept as
    /// the bit-exactness reference: the blocked/restructured inner loops
    /// of the production build must produce byte-identical tables
    /// (enforced by the `kernel_equivalence` proptest suite).
    pub fn build_reference(cfg: &SproutConfig, kernel: &TransitionKernel) -> ForecastTables {
        ForecastTables::build_impl(cfg, kernel, build_one_start_reference)
    }

    /// Shared build scaffolding (shift precomputation, worker threads,
    /// strip merge) parameterized over the per-start DP implementation.
    fn build_impl(
        cfg: &SproutConfig,
        kernel: &TransitionKernel,
        one_start: OneStart,
    ) -> ForecastTables {
        cfg.validate();
        let n = cfg.num_bins;
        let horizon = cfg.horizon_ticks;
        let cm = cfg.count_max;
        let tau = cfg.tick_secs();

        // Per-bin deterministic volume advance for one tick, in quarter-MTU
        // units: the expectation λ·τ·UNITS_PER_MTU, split between the two
        // adjacent integer cells so the expected advance is exact. (The
        // percentile covers rate-path uncertainty, not Poisson sampling
        // noise — see the module docs.)
        let shifts: Vec<(usize, f64)> = (0..n)
            .map(|i| {
                let units = cfg.bin_rate_pps(i) * tau * UNITS_PER_MTU as f64;
                let lo = units.floor();
                (lo as usize, units - lo)
            })
            .collect();

        // The CSR transition matrix and its transpose (for the
        // destination-major evolve), shared read-only by every worker.
        let scatter = kernel.scatter();
        let scatter_t = scatter.transposed();

        // The DP over start bins is embarrassingly parallel; chunk it over
        // the available cores with scoped threads (no extra dependencies).
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        let chunk = n.div_ceil(threads);
        let mut per_start: Vec<Vec<f32>> = vec![Vec::new(); n];
        std::thread::scope(|scope| {
            let mut rest: &mut [Vec<f32>] = &mut per_start;
            let mut base = 0usize;
            let mut handles = Vec::new();
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let start0 = base;
                base += take;
                let shifts = &shifts;
                let scatter_t = &scatter_t;
                handles.push(scope.spawn(move || {
                    let mut joint = vec![0.0f64; n * cm];
                    let mut next = vec![0.0f64; n * cm];
                    let mut conv = vec![0.0f64; cm];
                    for (off, slot) in head.iter_mut().enumerate() {
                        let start = start0 + off;
                        *slot = one_start(
                            start, horizon, cm, shifts, scatter, scatter_t, &mut joint, &mut next,
                            &mut conv,
                        );
                    }
                }));
            }
            for h in handles {
                h.join().expect("forecast-table worker panicked");
            }
        });

        // Merge the per-start CDF strips into the runtime layout
        // `cdf[(t*cm + c)*n + start]` (contiguous in start for the
        // mixture's inner loop).
        let mut cdf = vec![0.0f32; horizon * cm * n];
        for (start, strip) in per_start.iter().enumerate() {
            debug_assert_eq!(strip.len(), horizon * cm);
            for t in 0..horizon {
                for c in 0..cm {
                    cdf[(t * cm + c) * n + start] = strip[t * cm + c];
                }
            }
        }

        let max_step = shifts.iter().map(|&(lo, _)| lo + 1).max().unwrap_or(cm);
        debug_assert_eq!(max_step, max_unit_step(cfg));
        ForecastTables {
            num_bins: n,
            horizon,
            count_max: cm,
            max_step,
            cdf,
        }
    }

    /// Conditional CDF `P(C_{t+1} ≤ c | λ₀ = bin)` (test/diagnostic hook).
    pub fn conditional_cdf(&self, tick: usize, count: usize, bin: usize) -> f64 {
        self.cdf[(tick * self.count_max + count) * self.num_bins + bin] as f64
    }

    /// The mixture CDF `P(C_{t+1} ≤ c)` under `posterior`.
    pub fn mixture_cdf(&self, posterior: &[f64], tick: usize, count: usize) -> f64 {
        assert_eq!(posterior.len(), self.num_bins);
        let row = &self.cdf[(tick * self.count_max + count) * self.num_bins..][..self.num_bins];
        posterior
            .iter()
            .zip(row.iter())
            .map(|(&p, &f)| p * f as f64)
            .sum()
    }

    /// Compute the cautious forecast for `posterior` at `percentile`
    /// (e.g. 5.0 for the paper's 95%-confidence forecast). Allocating
    /// convenience wrapper over [`ForecastTables::forecast_into`].
    pub fn forecast(&self, posterior: &[f64], percentile: f64) -> Forecast {
        let mut scratch = ForecastScratch::default();
        self.forecast_into(posterior, percentile, &mut scratch)
            .clone()
    }

    /// The allocation-free forecast hot path: every per-tick working set
    /// lives in `scratch`, which the caller keeps between ticks.
    ///
    /// Two structural properties make this fast:
    ///
    /// * **Live-bin masking.** Converged posteriors concentrate their
    ///   mass in a narrow band of rate bins; the rest sit at or near the
    ///   likelihood floor. Bins holding ≤ [`MASS_EPSILON`] are dropped
    ///   once up front — their combined contribution to any mixture CDF
    ///   value is below `num_bins × MASS_EPSILON ≈ 3e-10`, orders of
    ///   magnitude under any percentile of interest — so every probe of
    ///   the search sums only the live bins.
    /// * **Warm-started bounded search.** `C_t` is non-decreasing in
    ///   `t`, so `P(C_{t+1} ≤ c) ≤ P(C_t ≤ c)` holds per start bin and
    ///   therefore for (masked) mixtures; the percentile index can only
    ///   grow from one tick to the next — and by at most `max_step`
    ///   units, because no rate bin advances the volume axis faster than
    ///   the top bin. Each tick's search therefore binary-searches only
    ///   `(prev, prev + max_step]` — ~7 probes at paper scale instead of
    ///   a `log2(count_max)` search (or an unbounded gallop) from
    ///   scratch. The stored CDF is non-decreasing in the count, so the
    ///   bounded search provably returns the same index the gallop did.
    pub fn forecast_into<'a>(
        &self,
        posterior: &[f64],
        percentile: f64,
        scratch: &'a mut ForecastScratch,
    ) -> &'a Forecast {
        assert!(percentile > 0.0 && percentile < 100.0);
        assert_eq!(posterior.len(), self.num_bins);
        let want = percentile / 100.0;

        scratch.live_idx.clear();
        scratch.live_w.clear();
        for (i, &p) in posterior.iter().enumerate() {
            if p > MASS_EPSILON {
                scratch.live_idx.push(i as u32);
                scratch.live_w.push(p);
            }
        }

        // Last call's answers become this call's predictions: consecutive
        // forecasts from a slowly-evolving posterior land within a unit or
        // two of each other, so "previous answer (tick 0) / previous
        // increment (later ticks)" is usually exact and the search
        // verifies it in 2–3 probes.
        std::mem::swap(&mut scratch.prev_units, &mut scratch.out.cumulative_units);
        let prev_units = &scratch.prev_units;

        // Prefetch the rows the warm-started search probes first: when the
        // per-tick predictions hold (the common case), tick `t` touches
        // exactly rows `(t, g_t)` and `(t, g_t − 1)`, both known up front
        // from the previous call's answers. The 6 MB table does not stay
        // cache-resident between protocol ticks, so issuing these loads
        // early overlaps their DRAM latency with earlier ticks' compute.
        // Prefetching cannot affect results.
        #[cfg(target_arch = "x86_64")]
        if let (Some(&first), Some(&last)) = (scratch.live_idx.first(), scratch.live_idx.last()) {
            for (t, &g) in prev_units.iter().take(self.horizon).enumerate() {
                let g = (g as usize).min(self.count_max - 1);
                for row in [g.saturating_sub(1), g] {
                    let base = (t * self.count_max + row) * self.num_bins;
                    let mut p = base + first as usize;
                    let end = base + last as usize;
                    while p <= end {
                        // SAFETY: `p` indexes within `cdf`; prefetch reads
                        // nothing architecturally and has no side effects.
                        unsafe {
                            std::arch::x86_64::_mm_prefetch(
                                self.cdf.as_ptr().add(p) as *const i8,
                                std::arch::x86_64::_MM_HINT_T0,
                            );
                        }
                        p += 16; // one 64-byte line of f32s
                    }
                }
            }
        }

        let cum = &mut scratch.out.cumulative_units;
        cum.clear();
        cum.reserve(self.horizon);
        let mut prev = 0usize;
        for t in 0..self.horizon {
            let guess = match (t, prev_units.get(t), prev_units.get(t.wrapping_sub(1))) {
                (0, Some(&g0), _) => g0 as usize,
                (_, Some(&gt), Some(&gp)) => prev + (gt - gp) as usize,
                _ => prev,
            };
            let c = self.percentile_index(t, want, prev, guess, &scratch.live_idx, &scratch.live_w);
            cum.push(c as u32);
            prev = c;
        }
        &scratch.out
    }

    /// Mixture CDF over the pre-masked live bins only. Converged
    /// posteriors keep their live bins in one contiguous span; walking
    /// the CDF row as a slice then skips the per-element index load.
    /// Either path adds the same operands in the same ascending-bin
    /// order into one accumulator, so the sums are bit-identical.
    fn live_mixture_cdf(&self, tick: usize, count: usize, idx: &[u32], w: &[f64]) -> f64 {
        let row = &self.cdf[(tick * self.count_max + count) * self.num_bins..][..self.num_bins];
        match (idx.first(), idx.last()) {
            (Some(&first), Some(&last)) if (last - first) as usize + 1 == idx.len() => row
                [first as usize..=last as usize]
                .iter()
                .zip(w.iter())
                .map(|(&f, &p)| p * f as f64)
                .sum(),
            _ => idx
                .iter()
                .zip(w.iter())
                .map(|(&i, &p)| p * row[i as usize] as f64)
                .sum(),
        }
    }

    /// Smallest `c ≥ start` with masked mixture CDF ≥ `want` at `tick`
    /// (clamped to the count axis). `start` must be a valid warm start,
    /// i.e. a lower bound on the answer. `guess` is a prediction of the
    /// answer (any value — it only steers which indices get probed, never
    /// the result): when it is exact, the search confirms it with two
    /// probes (`cdf(guess) ≥ want`, `cdf(guess−1) < want`) instead of a
    /// full bisection.
    fn percentile_index(
        &self,
        tick: usize,
        want: f64,
        start: usize,
        guess: usize,
        idx: &[u32],
        w: &[f64],
    ) -> usize {
        let last = self.count_max - 1;
        // One tick advances every start bin's cumulative volume by at
        // most `max_step` units, so `F_{t+1}(c + max_step) ≥ F_t(c)`
        // holds per start bin and hence for any fixed nonnegative
        // mixture: a warm start that satisfied the previous tick's
        // percentile puts this tick's answer in `(start, start +
        // max_step]`. The CDF is non-decreasing in the count, so a
        // bracketed search over that range returns exactly the smallest
        // satisfying index — the same index an unbounded gallop-and-
        // bisect finds. Each CDF probe streams a whole table row through
        // the cache, so the probe order starts at the predicted answer:
        // `cdf(g) ≥ want` and `cdf(g−1) < want` prove `g` is the smallest
        // satisfying index using two (adjacent-row) probes, no start
        // probe needed.
        let cap = start.saturating_add(self.max_step).min(last);
        let g = guess.clamp(start + 1, cap);
        let (mut lo, mut hi);
        if self.live_mixture_cdf(tick, g, idx, w) >= want {
            if self.live_mixture_cdf(tick, g - 1, idx, w) < want {
                return g; // prediction confirmed exactly
            }
            if g - 1 == start {
                return start; // cdf(start) ≥ want
            }
            if self.live_mixture_cdf(tick, start, idx, w) >= want {
                return start;
            }
            lo = start;
            hi = g - 1;
        } else {
            lo = g;
            hi = cap;
            if hi == lo {
                // The guess hit the cap and still fell short: the bound
                // theorem's premise is void (degenerate mixture). Search
                // the rest of the axis exactly as the gallop did.
                if hi == last {
                    return last;
                }
                hi = last;
            } else if hi < last && self.live_mixture_cdf(tick, hi, idx, w) < want {
                // Defensive, same degenerate case: cap to the axis end.
                hi = last;
            }
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.live_mixture_cdf(tick, mid, idx, w) >= want {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

/// Posterior mass below which a bin is dropped from the forecast's
/// mixture sums. With 256 bins the total dropped mass is ≤ 2.6e-10 —
/// invisible next to the coarsest percentile the protocol uses.
pub const MASS_EPSILON: f64 = 1e-12;

/// Reusable working memory for [`ForecastTables::forecast_into`]: the
/// live-bin mask and the output forecast, kept allocated between ticks.
#[derive(Debug, Default)]
pub struct ForecastScratch {
    live_idx: Vec<u32>,
    live_w: Vec<f64>,
    out: Forecast,
    /// The previous call's answers, recycled as this call's search
    /// predictions (guesses only — they cannot affect results).
    prev_units: Vec<u32>,
}

/// Signature shared by the production per-start DP and its scalar
/// reference, so [`ForecastTables::build_impl`] can run either. The two
/// `ScatterMatrix` arguments are the transition operator and its
/// transpose (the reference ignores the transpose).
type OneStart = fn(
    usize,
    usize,
    usize,
    &[(usize, f64)],
    &ScatterMatrix,
    &ScatterMatrix,
    &mut Vec<f64>,
    &mut Vec<f64>,
    &mut [f64],
) -> Vec<f32>;

/// Largest per-tick advance of the cumulative-volume axis, in
/// quarter-MTU units: the top bin's expected per-tick deliveries,
/// rounded up for the fractional two-point split. Rates are monotone in
/// the bin index, so this equals `max(shifts[j].0 + 1)`.
fn max_unit_step(cfg: &SproutConfig) -> usize {
    let units = cfg.bin_rate_pps(cfg.num_bins - 1) * cfg.tick_secs() * UNITS_PER_MTU as f64;
    units.floor() as usize + 1
}

/// Count-axis cache block for [`evolve_rows`], in f64 lanes. The evolve
/// step re-reads every source row once per destination (~2·half_width+1
/// times); blocking the count axis keeps the active slab — the kernel
/// band's worth of source and destination row segments — resident in
/// cache across those passes instead of streaming the full
/// `window × count_max` panels (≈ 1.8 MB at paper scale) through memory
/// once per band offset.
const C_BLOCK: usize = 32;

/// The DP for a single starting bin: returns the conditional CDF strip
/// laid out as `strip[t * cm + c] = P(C_{t+1} ≤ c | λ₀ = start)`.
///
/// This is the production implementation: count-axis blocking in the
/// evolve step, per-tick zero-fill narrowed to the reachable count
/// range, and a bin-outer marginalization pass. Every floating-point
/// accumulation keeps the reference implementation's order (ascending
/// source bin per destination cell, ascending count for the cumulative
/// sum), so the strips are bit-identical to
/// [`build_one_start_reference`] — see that function and the
/// `kernel_equivalence` tests.
#[allow(clippy::too_many_arguments)]
fn build_one_start(
    start: usize,
    horizon: usize,
    cm: usize,
    shifts: &[(usize, f64)],
    scatter: &ScatterMatrix,
    scatter_t: &ScatterMatrix,
    joint: &mut Vec<f64>,
    next: &mut Vec<f64>,
    conv: &mut [f64],
) -> Vec<f32> {
    let n = scatter.num_bins();
    let hw = scatter.max_reach();
    let mut nz = vec![false; n];
    let mut terms: Vec<(u32, f64)> = Vec::new();
    joint.fill(0.0);
    next.fill(0.0);
    joint[start * cm] = 1.0;
    let mut strip = vec![0.0f32; horizon * cm];
    // Reachable bin window grows by the kernel half-width per tick (the
    // outage escape row is bounded the same way); the reachable count
    // ceiling grows by the widest kernel among reachable bins.
    let mut j_lo = start;
    let mut j_hi = start;
    let mut c_hi = 0usize;

    for t in 0..horizon {
        j_lo = j_lo.saturating_sub(hw);
        j_hi = (j_hi + hw).min(n - 1);
        let (jl, jh) = (j_lo, j_hi);

        // Count ceiling after this tick's volume advance. Nothing beyond
        // it is written or read before the next tick's fill re-zeroes the
        // range, so the scratch rows only need zeroing up to here —
        // window rows outside `[jl, jh]` stay all-zero from the initial
        // full fill by induction (writes never leave the window).
        let widest = shifts[jh].0 + 1;
        let new_c_hi = (c_hi + widest).min(cm - 1);

        // --- evolve the bin axis (count axis untouched) ---
        // The destination-major evolve overwrites counts `0..=c_hi` of
        // every window row; only the counts this tick's volume advance
        // will newly reach still need zeroing by hand.
        for j in jl..=jh {
            next[j * cm + c_hi + 1..j * cm + new_c_hi + 1].fill(0.0);
        }
        evolve_rows(
            scatter_t, joint, next, jl, jh, c_hi, cm, &mut nz, &mut terms,
        );
        std::mem::swap(joint, next);

        // --- advance the volume axis per bin (quarter-MTU units) ---
        // The reference walks counts in ascending order doing two
        // scattered adds per cell. Destination cells are independent, so
        // the same result is computed cell-centrically as a two-point
        // stencil: cell `k` receives the `frac` term from `c = k-lo-1`
        // *then* the `1-frac` term from `c = k-lo` (ascending-`c` order),
        // i.e. `row[k-lo-1]*frac + row[k-lo]*(1-frac)` — the reference's
        // exact operand sequence per cell. Reads beyond `c_hi` see the
        // zeros left by this tick's fill, contributing `+0.0` terms that
        // cannot change any bit (no value in the DP is negative zero).
        for j in jl..=jh {
            let row = &mut joint[j * cm..(j + 1) * cm];
            let (lo, frac) = shifts[j];
            if lo == 0 && frac == 0.0 {
                continue; // outage bin: volume unchanged
            }
            let inv = 1.0 - frac;
            conv[..lo.min(new_c_hi + 1)].fill(0.0); // below the shift: unreachable
            if lo <= new_c_hi {
                conv[lo] = row[0] * inv; // only c = 0's low half reaches k = lo
            }
            let top = new_c_hi.min(cm - 2);
            for k in lo + 1..=top {
                conv[k] = row[k - lo - 1] * frac + row[k - lo] * inv;
            }
            if new_c_hi == cm - 1 {
                // Clamped top cell: several counts collapse into `cm-1`,
                // so replay the reference's accumulation order exactly
                // (ascending `c`; low half before high half within one).
                // `lo` can exceed `cm-1` when one tick's volume advance
                // overshoots the whole count axis (tiny `count_max`
                // relative to the rate grid) — then every count collapses
                // into the top cell and the scan starts at `c = 0`.
                let mut acc = 0.0f64;
                for (c, &p) in row
                    .iter()
                    .enumerate()
                    .take(c_hi + 1)
                    .skip((cm - 1).saturating_sub(lo).saturating_sub(1))
                {
                    if p == 0.0 {
                        continue;
                    }
                    if c + lo >= cm - 1 {
                        acc += p * inv;
                    }
                    if c + lo + 1 >= cm - 1 {
                        acc += p * frac;
                    }
                }
                conv[cm - 1] = acc;
            }
            row[..=new_c_hi].copy_from_slice(&conv[..=new_c_hi]);
        }
        c_hi = new_c_hi;

        // --- marginalize over bins, cumulative-sum, store ---
        // Bin-outer accumulation into `conv` walks the joint array
        // contiguously (the count-outer form strides by `cm` on every
        // add); each count cell still sums its bins in ascending order
        // and the cumulative sum still adds per-count totals in
        // ascending count order, so `acc` sees the reference's exact
        // operand sequence.
        conv[..=c_hi].fill(0.0);
        for j in jl..=jh {
            let row = &joint[j * cm..j * cm + c_hi + 1];
            crate::simd::add_assign(&mut conv[..=c_hi], row);
        }
        let mut acc = 0.0f64;
        for (c, slot) in strip[t * cm..(t + 1) * cm].iter_mut().enumerate() {
            if c <= c_hi {
                acc += conv[c];
            } else {
                acc = 1.0; // everything reachable is ≤ c_hi
            }
            *slot = acc.min(1.0) as f32;
        }
    }
    strip
}

/// Apply the transition operator to bins `[j_lo, j_hi]` of the joint
/// distribution, overwriting counts `0..=c_hi` of every window row of
/// `next`. Only counts `0..=c_hi` of `joint` carry mass; the count axis
/// stays contiguous so the inner loop vectorizes.
///
/// The walk is destination-major over the transposed operator: each
/// destination block accumulates all of its source contributions in one
/// register-resident pass ([`crate::simd::weighted_sum_into`]) instead
/// of being re-read and re-written once per source row. Per destination
/// cell the contributions still arrive in ascending source-bin order —
/// the reference's exact accumulation order — so the results are
/// bit-identical (the per-block zero-source skip only elides `+0.0`
/// terms, which cannot change any bit: no value in the DP is negative
/// zero). The count axis is processed in [`C_BLOCK`]-wide blocks so the
/// active slab of source rows stays cache-resident across the
/// destination passes.
#[allow(clippy::too_many_arguments)]
fn evolve_rows(
    scatter_t: &ScatterMatrix,
    joint: &[f64],
    next: &mut [f64],
    j_lo: usize,
    j_hi: usize,
    c_hi: usize,
    cm: usize,
    nz: &mut [bool],
    terms: &mut Vec<(u32, f64)>,
) {
    let mut c0 = 0usize;
    while c0 <= c_hi {
        let c1 = (c0 + C_BLOCK).min(c_hi + 1); // exclusive block end
        for j in j_lo..=j_hi {
            nz[j] = joint[j * cm + c0..j * cm + c1].iter().any(|&p| p != 0.0);
        }
        for dst in j_lo..=j_hi {
            terms.clear();
            let (srcs, weights) = scatter_t.row(dst);
            for (&src, &w) in srcs.iter().zip(weights.iter()) {
                let s = src as usize;
                if s >= j_lo && s <= j_hi && nz[s] {
                    terms.push(((s * cm + c0) as u32, w));
                }
            }
            crate::simd::weighted_sum_into(&mut next[dst * cm + c0..dst * cm + c1], joint, terms);
        }
        c0 = c1;
    }
}

/// The pre-vectorization scalar DP for one starting bin, kept verbatim
/// as the bit-exactness reference for [`build_one_start`] (exercised by
/// [`ForecastTables::build_reference`] and the `kernel_equivalence`
/// proptest suite).
#[allow(clippy::too_many_arguments)]
fn build_one_start_reference(
    start: usize,
    horizon: usize,
    cm: usize,
    shifts: &[(usize, f64)],
    scatter: &ScatterMatrix,
    _scatter_t: &ScatterMatrix,
    joint: &mut Vec<f64>,
    next: &mut Vec<f64>,
    conv: &mut [f64],
) -> Vec<f32> {
    let n = scatter.num_bins();
    let hw = scatter.max_reach();
    joint.fill(0.0);
    next.fill(0.0);
    joint[start * cm] = 1.0;
    let mut strip = vec![0.0f32; horizon * cm];
    let mut j_lo = start;
    let mut j_hi = start;
    let mut c_hi = 0usize;

    for t in 0..horizon {
        j_lo = j_lo.saturating_sub(hw);
        j_hi = (j_hi + hw).min(n - 1);
        let (jl, jh) = (j_lo, j_hi);

        // --- evolve the bin axis (count axis untouched) ---
        for v in next[jl * cm..(jh + 1) * cm].iter_mut() {
            *v = 0.0;
        }
        evolve_rows_reference(scatter, joint, next, jl, jh, c_hi, cm);
        std::mem::swap(joint, next);

        // --- advance the volume axis per bin (quarter-MTU units) ---
        let widest = shifts[jh].0 + 1;
        let new_c_hi = (c_hi + widest).min(cm - 1);
        for j in jl..=jh {
            let row = &mut joint[j * cm..(j + 1) * cm];
            let (lo, frac) = shifts[j];
            if lo == 0 && frac == 0.0 {
                continue; // outage bin: volume unchanged
            }
            conv[..=new_c_hi].fill(0.0);
            for (c, &p) in row.iter().enumerate().take(c_hi + 1) {
                if p == 0.0 {
                    continue;
                }
                let a = (c + lo).min(cm - 1);
                let b = (c + lo + 1).min(cm - 1);
                conv[a] += p * (1.0 - frac);
                conv[b] += p * frac;
            }
            row[..=new_c_hi].copy_from_slice(&conv[..=new_c_hi]);
        }
        c_hi = new_c_hi;

        // --- marginalize over bins, cumulative-sum, store ---
        let mut acc = 0.0f64;
        for c in 0..cm {
            if c <= c_hi {
                let mut pc = 0.0;
                for j in jl..=jh {
                    pc += joint[j * cm + c];
                }
                acc += pc;
            } else {
                acc = 1.0; // everything reachable is ≤ c_hi
            }
            strip[t * cm + c] = acc.min(1.0) as f32;
        }
    }
    strip
}

/// The reference (unblocked) form of [`evolve_rows`].
fn evolve_rows_reference(
    scatter: &ScatterMatrix,
    joint: &[f64],
    next: &mut [f64],
    j_lo: usize,
    j_hi: usize,
    c_hi: usize,
    cm: usize,
) {
    for j in j_lo..=j_hi {
        let src = &joint[j * cm..j * cm + c_hi + 1];
        if src.iter().all(|&p| p == 0.0) {
            continue;
        }
        let (dests, weights) = scatter.row(j);
        for (&dst_bin, &w) in dests.iter().zip(weights.iter()) {
            let dst_bin = dst_bin as usize;
            let dst = &mut next[dst_bin * cm..dst_bin * cm + c_hi + 1];
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d += w * s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SproutConfig {
        SproutConfig::test_small()
    }

    fn tables(cfg: &SproutConfig) -> Arc<ForecastTables> {
        ForecastTables::get(cfg)
    }

    fn uniform(n: usize) -> Vec<f64> {
        vec![1.0 / n as f64; n]
    }

    fn point_mass(n: usize, at: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        v[at] = 1.0;
        v
    }

    #[test]
    fn conditional_cdfs_are_valid() {
        let cfg = small_cfg();
        let t = tables(&cfg);
        for tick in 0..cfg.horizon_ticks {
            for bin in [0, 1, cfg.num_bins / 2, cfg.num_bins - 1] {
                let mut prev = 0.0;
                for c in 0..cfg.count_max {
                    let f = t.conditional_cdf(tick, c, bin);
                    assert!(
                        (0.0..=1.0 + 1e-6).contains(&f),
                        "cdf out of range: {f} at t={tick} c={c} bin={bin}"
                    );
                    assert!(f + 1e-6 >= prev, "cdf must be non-decreasing in c");
                    prev = f;
                }
                assert!(
                    (prev - 1.0).abs() < 1e-4,
                    "cdf must reach 1, got {prev} (tick {tick}, bin {bin})"
                );
            }
        }
    }

    #[test]
    fn outage_start_forecasts_nothing() {
        // Starting in a certain outage, the 5th-percentile forecast must
        // be 0 for every tick in the horizon (escape is unlikely and slow).
        let cfg = small_cfg();
        let t = tables(&cfg);
        let f = t.forecast(&point_mass(cfg.num_bins, 0), 5.0);
        assert!(f.cumulative_units.iter().all(|&c| c == 0), "{f:?}");
    }

    #[test]
    fn fast_start_forecasts_roughly_rate_times_time() {
        // Start certain at the top bin (250 pps in the test config → 5
        // packets = 20 quarter-units per 20 ms tick). The *median*
        // cumulative forecast should grow ≈20 units per tick; the 5th
        // percentile strictly less.
        let cfg = small_cfg();
        let t = tables(&cfg);
        let top = point_mass(cfg.num_bins, cfg.num_bins - 1);
        let median = t.forecast(&top, 50.0);
        let last = *median.cumulative_units.last().unwrap() as f64;
        let expect = 250.0 * 0.02 * cfg.horizon_ticks as f64 * UNITS_PER_MTU as f64;
        assert!(
            (last - expect).abs() < expect * 0.35,
            "median cumulative {last} units, expect ≈{expect}"
        );
        let cautious = t.forecast(&top, 5.0);
        for (c, m) in cautious
            .cumulative_units
            .iter()
            .zip(median.cumulative_units.iter())
        {
            assert!(c <= m, "cautious must not exceed median");
        }
    }

    #[test]
    fn table_cache_stays_bounded_across_disjoint_geometries() {
        // A daemon sweeping many distinct link geometries must not grow
        // the in-memory table cache without bound: push well past the cap
        // and pin that occupancy stays at or under it while the overflow
        // shows up as evictions.
        let span = FORECAST_TABLE_CACHE_CAP + 4;
        let (_, evicted_before) = table_cache_occupancy();
        for i in 0..span {
            let cfg = SproutConfig {
                num_bins: 16 + i, // distinct geometry ⇒ distinct table key
                max_rate_pps: 100.0,
                sigma: 100.0,
                count_max: 32,
                ..SproutConfig::default()
            };
            let _t = ForecastTables::get(&cfg);
            let (len, _) = table_cache_occupancy();
            assert!(
                len <= FORECAST_TABLE_CACHE_CAP,
                "cache grew to {len} entries past the cap after geometry {i}"
            );
        }
        let (_, evicted_after) = table_cache_occupancy();
        // Other tests in this binary share the cache, so evictions can
        // only exceed the floor this loop forces.
        assert!(
            evicted_after - evicted_before >= (span - FORECAST_TABLE_CACHE_CAP) as u64,
            "expected ≥{} evictions, saw {}",
            span - FORECAST_TABLE_CACHE_CAP,
            evicted_after - evicted_before
        );
    }

    #[test]
    fn forecast_is_monotone_in_tick() {
        let cfg = small_cfg();
        let t = tables(&cfg);
        for posterior in [
            uniform(cfg.num_bins),
            point_mass(cfg.num_bins, cfg.num_bins / 2),
        ] {
            for pct in [5.0, 50.0, 95.0] {
                let f = t.forecast(&posterior, pct);
                for w in f.cumulative_units.windows(2) {
                    assert!(w[0] <= w[1], "{f:?}");
                }
            }
        }
    }

    #[test]
    fn lower_percentile_is_more_cautious() {
        let cfg = small_cfg();
        let t = tables(&cfg);
        let posterior = point_mass(cfg.num_bins, cfg.num_bins / 2);
        let f5 = t.forecast(&posterior, 5.0);
        let f50 = t.forecast(&posterior, 50.0);
        let f95 = t.forecast(&posterior, 95.0);
        for i in 0..f5.horizon() {
            assert!(f5.cumulative_units[i] <= f50.cumulative_units[i]);
            assert!(f50.cumulative_units[i] <= f95.cumulative_units[i]);
        }
        // And strictly so somewhere, or the sweep of Fig. 9 would be flat.
        assert_ne!(f5.cumulative_units, f95.cumulative_units);
    }

    #[test]
    fn mixture_matches_conditional_for_point_mass() {
        let cfg = small_cfg();
        let t = tables(&cfg);
        let bin = cfg.num_bins / 3;
        let pm = point_mass(cfg.num_bins, bin);
        for c in [0, 5, 20] {
            let a = t.mixture_cdf(&pm, 2, c);
            let b = t.conditional_cdf(2, c, bin);
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn one_tick_cdf_matches_direct_computation() {
        // For one tick from a point mass, C₁'s distribution is the
        // one-step-evolved bin distribution pushed through the per-bin
        // volume advance (λ·τ in quarter-units, two-point split).
        let cfg = small_cfg();
        let kernel = TransitionKernel::new(&cfg);
        let t = ForecastTables::build(&cfg, &kernel);
        let bin = cfg.num_bins / 2;
        let mut evolved = vec![0.0; cfg.num_bins];
        let mut pm = vec![0.0; cfg.num_bins];
        pm[bin] = 1.0;
        kernel.evolve_into(&pm, &mut evolved);
        let tau = cfg.tick_secs();
        for c in [0usize, 2, 4, 8, 16] {
            let direct: f64 = evolved
                .iter()
                .enumerate()
                .map(|(j, &p)| {
                    let units = cfg.bin_rate_pps(j) * tau * UNITS_PER_MTU as f64;
                    let lo = units.floor() as usize;
                    let frac = units - units.floor();
                    // P(volume ≤ c | bin j): lands at lo w.p. 1−frac,
                    // lo+1 w.p. frac.
                    let cdf = if lo < c {
                        1.0
                    } else if lo <= c {
                        1.0 - frac
                    } else {
                        0.0
                    };
                    p * cdf
                })
                .sum();
            let table = t.conditional_cdf(0, c, bin);
            assert!(
                (direct - table).abs() < 1e-4,
                "c={c}: direct {direct} vs table {table}"
            );
        }
    }

    #[test]
    fn forecast_bytes_clamps_to_horizon() {
        // Units are quarter-MTU: 4 units = 1500 bytes.
        let f = Forecast {
            cumulative_units: vec![4, 8, 12],
        };
        assert_eq!(f.cumulative_bytes(0, 1500), 1_500);
        assert_eq!(f.cumulative_bytes(2, 1500), 4_500);
        assert_eq!(f.cumulative_bytes(99, 1500), 4_500); // clamped
    }

    #[test]
    fn blocked_build_is_byte_identical_to_reference() {
        let cfg = small_cfg();
        let kernel = TransitionKernel::new(&cfg);
        let fast = ForecastTables::build(&cfg, &kernel);
        let slow = ForecastTables::build_reference(&cfg, &kernel);
        assert_eq!(fast.to_bytes(), slow.to_bytes());
        assert_eq!(fast.max_step, slow.max_step);
    }

    #[test]
    fn bounded_search_matches_unbounded_gallop_domain() {
        // A table decoded through raw `from_bytes` has no config-derived
        // search bound (max_step == count_max). Forecasts must be
        // identical either way.
        let cfg = small_cfg();
        let kernel = TransitionKernel::new(&cfg);
        let bounded = ForecastTables::build(&cfg, &kernel);
        assert!(bounded.max_step < bounded.count_max);
        let unbounded = ForecastTables::from_bytes(&bounded.to_bytes()).unwrap();
        assert_eq!(unbounded.max_step, unbounded.count_max);
        for posterior in [
            uniform(cfg.num_bins),
            point_mass(cfg.num_bins, 0),
            point_mass(cfg.num_bins, cfg.num_bins - 1),
        ] {
            for pct in [5.0, 25.0, 50.0, 75.0, 95.0] {
                assert_eq!(
                    bounded.forecast(&posterior, pct),
                    unbounded.forecast(&posterior, pct)
                );
            }
        }
    }

    #[test]
    fn cache_returns_shared_instance() {
        let cfg = small_cfg();
        let a = ForecastTables::get(&cfg);
        let b = ForecastTables::get(&cfg);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
