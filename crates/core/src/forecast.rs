//! The packet delivery forecast (§3.3).
//!
//! Given the posterior over the current rate, Sprout predicts — at a
//! cautious percentile — the *cumulative* number of packets the link will
//! deliver over each of the next `horizon_ticks` ticks, evolving the model
//! forward **without** observations.
//!
//! Exactly as the paper hints ("most of these steps can be precalculated…
//! the only work at runtime is to take a weighted sum over each λ"), the
//! heavy lifting happens once per configuration: for every starting rate
//! bin `i`, horizon tick `t`, and cumulative count `c`, we precompute
//!
//! ```text
//! F[t][c][i] = P( C_{t} ≤ c | λ₀ = bin i )
//! ```
//!
//! by dynamic programming over the joint (rate bin × cumulative volume)
//! distribution: each tick applies the Brownian/outage transition to the
//! bin axis and advances the volume axis by the bin's expected per-tick
//! deliveries (in quarter-MTU units, split across adjacent cells to keep
//! the expectation exact). At runtime the forecast CDF is the
//! posterior-weighted mixture `Σᵢ P(λ₀=i)·F[t][c][i]`, binary-searched
//! for the configured percentile.
//!
//! **Implementation note (documented deviation).** The percentile is
//! taken over the *rate path* (the model's uncertainty about λ and
//! outages), not over the additional Poisson sampling noise of the
//! counts. §3.3's text suggests the full count distribution, but at 3G
//! rates (~1 packet per tick) the 5th percentile of a Poisson count is
//! zero, which would cap Sprout at ~150 kbps on links where the paper
//! measures ~400 kbps at 90% utilization — the published numbers are
//! only consistent with rate-uncertainty caution — a deliberate,
//! documented interpretation of the paper's text.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use sprout_cache::{ArtifactKind, ByteReader, ByteWriter, CacheCounters};

use crate::config::{SproutConfig, TableKey};
use crate::model::{ScatterMatrix, TransitionKernel};

/// On-disk persistence of built tables. Version covers both the byte
/// layout of [`ForecastTables::to_bytes`] and the DP semantics — bump it
/// whenever either changes, or stale files would silently load.
static TABLE_ARTIFACT: ArtifactKind = ArtifactKind::new("forecast-table", 1);

/// Disk-cache traffic counters for forecast tables (hits mean a
/// `ForecastTables::get` skipped the DP entirely).
pub fn table_cache_counters() -> CacheCounters {
    TABLE_ARTIFACT.counters()
}

/// Reset the forecast-table cache counters (bench/test harnesses).
pub fn reset_table_cache_counters() {
    TABLE_ARTIFACT.reset_counters()
}

/// Resolution of the cumulative-volume axis: quarter-MTU units. Finer
/// than whole packets so slow links (1–2 packets per tick) don't lose
/// their entire forecast to quantization.
pub const UNITS_PER_MTU: u64 = 4;

/// A delivery forecast: entry `t` is the cumulative volume (in
/// quarter-MTU [`UNITS_PER_MTU`] units) predicted at the configured
/// percentile to be delivered within the first `t+1` ticks from the
/// forecast's reference time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Forecast {
    /// Cumulative volume in quarter-MTU units, one entry per horizon
    /// tick; non-decreasing.
    pub cumulative_units: Vec<u32>,
}

impl Forecast {
    /// Cumulative *bytes* deliverable within the first `t+1` ticks.
    pub fn cumulative_bytes(&self, tick_index: usize, mtu: u32) -> u64 {
        let idx = tick_index.min(self.cumulative_units.len() - 1);
        self.cumulative_units[idx] as u64 * mtu as u64 / UNITS_PER_MTU
    }

    /// Number of horizon ticks covered.
    pub fn horizon(&self) -> usize {
        self.cumulative_units.len()
    }
}

/// Precomputed conditional CDF tables; build once, share via [`Arc`].
pub struct ForecastTables {
    num_bins: usize,
    horizon: usize,
    count_max: usize,
    /// Layout: `cdf[(t * count_max + c) * num_bins + i]`, f32 to halve the
    /// footprint (≈4 MB at paper scale).
    cdf: Vec<f32>,
}

impl ForecastTables {
    /// Fetch (building on first use) the tables for `cfg` from the global
    /// cache. Tables depend only on the model geometry, not the percentile,
    /// so Fig-9 style confidence sweeps share one build.
    pub fn get(cfg: &SproutConfig) -> Arc<ForecastTables> {
        // Per-key OnceLock slots: the first caller of a key builds while
        // holding only that key's slot, so concurrent sweep workers neither
        // duplicate a build (it costs seconds at paper scale) nor block
        // callers wanting a different geometry.
        type Slot = Arc<OnceLock<Arc<ForecastTables>>>;
        static CACHE: OnceLock<Mutex<HashMap<TableKey, Slot>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = cfg.table_key();
        let slot = Arc::clone(cache.lock().unwrap().entry(key).or_default());
        Arc::clone(slot.get_or_init(|| Arc::new(ForecastTables::load_or_build(cfg))))
    }

    /// Fetch the tables for `cfg` from the on-disk artifact cache, or
    /// build them (persisting the result for the next process). Bypasses
    /// the in-memory layer — [`ForecastTables::get`] is the usual entry
    /// point; this one exists for cache tooling and tests.
    pub fn load_or_build(cfg: &SproutConfig) -> ForecastTables {
        cfg.validate();
        let key = cfg.table_key().cache_key_bytes();
        if let Some(bytes) = TABLE_ARTIFACT.load(&key) {
            if let Some(t) = ForecastTables::from_bytes(&bytes) {
                // The decoded dims are part of the key, but stay defensive:
                // a mismatch means a corrupt entry that beat the checksum.
                if t.num_bins == cfg.num_bins
                    && t.horizon == cfg.horizon_ticks
                    && t.count_max == cfg.count_max
                {
                    return t;
                }
            }
        }
        let kernel = TransitionKernel::new(cfg);
        let tables = ForecastTables::build(cfg, &kernel);
        TABLE_ARTIFACT.store(&key, &tables.to_bytes());
        tables
    }

    /// Serialize to the on-disk payload: three dimensions then the raw
    /// f32 bit patterns of the CDF strip. Bit-exact round trip, so cached
    /// and freshly built tables produce identical forecasts.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(24 + 4 * self.cdf.len());
        w.u64(self.num_bins as u64)
            .u64(self.horizon as u64)
            .u64(self.count_max as u64);
        for &v in &self.cdf {
            w.f32(v);
        }
        w.finish()
    }

    /// Decode a [`ForecastTables::to_bytes`] payload; `None` on any
    /// dimension/length mismatch (treated as a cache miss upstream).
    pub fn from_bytes(bytes: &[u8]) -> Option<ForecastTables> {
        let mut r = ByteReader::new(bytes);
        let num_bins = r.u64()? as usize;
        let horizon = r.u64()? as usize;
        let count_max = r.u64()? as usize;
        let cells = num_bins.checked_mul(horizon)?.checked_mul(count_max)?;
        if r.remaining() != 4 * cells {
            return None;
        }
        let mut cdf = Vec::with_capacity(cells);
        for _ in 0..cells {
            cdf.push(r.f32()?);
        }
        Some(ForecastTables {
            num_bins,
            horizon,
            count_max,
            cdf,
        })
    }

    /// Build the tables by per-start-bin dynamic programming.
    pub fn build(cfg: &SproutConfig, kernel: &TransitionKernel) -> ForecastTables {
        cfg.validate();
        let n = cfg.num_bins;
        let horizon = cfg.horizon_ticks;
        let cm = cfg.count_max;
        let tau = cfg.tick_secs();

        // Per-bin deterministic volume advance for one tick, in quarter-MTU
        // units: the expectation λ·τ·UNITS_PER_MTU, split between the two
        // adjacent integer cells so the expected advance is exact. (The
        // percentile covers rate-path uncertainty, not Poisson sampling
        // noise — see the module docs.)
        let shifts: Vec<(usize, f64)> = (0..n)
            .map(|i| {
                let units = cfg.bin_rate_pps(i) * tau * UNITS_PER_MTU as f64;
                let lo = units.floor();
                (lo as usize, units - lo)
            })
            .collect();

        // The CSR transition matrix, shared read-only by every worker.
        let scatter = kernel.scatter();

        // The DP over start bins is embarrassingly parallel; chunk it over
        // the available cores with scoped threads (no extra dependencies).
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        let chunk = n.div_ceil(threads);
        let mut per_start: Vec<Vec<f32>> = vec![Vec::new(); n];
        std::thread::scope(|scope| {
            let mut rest: &mut [Vec<f32>] = &mut per_start;
            let mut base = 0usize;
            let mut handles = Vec::new();
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let start0 = base;
                base += take;
                let shifts = &shifts;
                handles.push(scope.spawn(move || {
                    let mut joint = vec![0.0f64; n * cm];
                    let mut next = vec![0.0f64; n * cm];
                    let mut conv = vec![0.0f64; cm];
                    for (off, slot) in head.iter_mut().enumerate() {
                        let start = start0 + off;
                        *slot = build_one_start(
                            start, horizon, cm, shifts, scatter, &mut joint, &mut next, &mut conv,
                        );
                    }
                }));
            }
            for h in handles {
                h.join().expect("forecast-table worker panicked");
            }
        });

        // Merge the per-start CDF strips into the runtime layout
        // `cdf[(t*cm + c)*n + start]` (contiguous in start for the
        // mixture's inner loop).
        let mut cdf = vec![0.0f32; horizon * cm * n];
        for (start, strip) in per_start.iter().enumerate() {
            debug_assert_eq!(strip.len(), horizon * cm);
            for t in 0..horizon {
                for c in 0..cm {
                    cdf[(t * cm + c) * n + start] = strip[t * cm + c];
                }
            }
        }

        ForecastTables {
            num_bins: n,
            horizon,
            count_max: cm,
            cdf,
        }
    }

    /// Conditional CDF `P(C_{t+1} ≤ c | λ₀ = bin)` (test/diagnostic hook).
    pub fn conditional_cdf(&self, tick: usize, count: usize, bin: usize) -> f64 {
        self.cdf[(tick * self.count_max + count) * self.num_bins + bin] as f64
    }

    /// The mixture CDF `P(C_{t+1} ≤ c)` under `posterior`.
    pub fn mixture_cdf(&self, posterior: &[f64], tick: usize, count: usize) -> f64 {
        assert_eq!(posterior.len(), self.num_bins);
        let row = &self.cdf[(tick * self.count_max + count) * self.num_bins..][..self.num_bins];
        posterior
            .iter()
            .zip(row.iter())
            .map(|(&p, &f)| p * f as f64)
            .sum()
    }

    /// Compute the cautious forecast for `posterior` at `percentile`
    /// (e.g. 5.0 for the paper's 95%-confidence forecast). Allocating
    /// convenience wrapper over [`ForecastTables::forecast_into`].
    pub fn forecast(&self, posterior: &[f64], percentile: f64) -> Forecast {
        let mut scratch = ForecastScratch::default();
        self.forecast_into(posterior, percentile, &mut scratch)
            .clone()
    }

    /// The allocation-free forecast hot path: every per-tick working set
    /// lives in `scratch`, which the caller keeps between ticks.
    ///
    /// Two structural properties make this fast:
    ///
    /// * **Live-bin masking.** Converged posteriors concentrate their
    ///   mass in a narrow band of rate bins; the rest sit at or near the
    ///   likelihood floor. Bins holding ≤ [`MASS_EPSILON`] are dropped
    ///   once up front — their combined contribution to any mixture CDF
    ///   value is below `num_bins × MASS_EPSILON ≈ 3e-10`, orders of
    ///   magnitude under any percentile of interest — so every probe of
    ///   the search sums only the live bins.
    /// * **Warm-started galloping search.** `C_t` is non-decreasing in
    ///   `t`, so `P(C_{t+1} ≤ c) ≤ P(C_t ≤ c)` holds per start bin and
    ///   therefore for (masked) mixtures; the percentile index can only
    ///   grow from one tick to the next. Each tick's search starts at the
    ///   previous tick's answer and gallops (1, 2, 4, …) to bracket the
    ///   new index before binary-searching the bracket — a handful of
    ///   probes instead of `log2(count_max)` from scratch, since the
    ///   index advances by at most one tick's volume.
    pub fn forecast_into<'a>(
        &self,
        posterior: &[f64],
        percentile: f64,
        scratch: &'a mut ForecastScratch,
    ) -> &'a Forecast {
        assert!(percentile > 0.0 && percentile < 100.0);
        assert_eq!(posterior.len(), self.num_bins);
        let want = percentile / 100.0;

        scratch.live_idx.clear();
        scratch.live_w.clear();
        for (i, &p) in posterior.iter().enumerate() {
            if p > MASS_EPSILON {
                scratch.live_idx.push(i as u32);
                scratch.live_w.push(p);
            }
        }

        let cum = &mut scratch.out.cumulative_units;
        cum.clear();
        cum.reserve(self.horizon);
        let mut prev = 0usize;
        for t in 0..self.horizon {
            let c = self.percentile_index(t, want, prev, &scratch.live_idx, &scratch.live_w);
            cum.push(c as u32);
            prev = c;
        }
        &scratch.out
    }

    /// Mixture CDF over the pre-masked live bins only.
    fn live_mixture_cdf(&self, tick: usize, count: usize, idx: &[u32], w: &[f64]) -> f64 {
        let row = &self.cdf[(tick * self.count_max + count) * self.num_bins..][..self.num_bins];
        idx.iter()
            .zip(w.iter())
            .map(|(&i, &p)| p * row[i as usize] as f64)
            .sum()
    }

    /// Smallest `c ≥ start` with masked mixture CDF ≥ `want` at `tick`
    /// (clamped to the count axis). `start` must be a valid warm start,
    /// i.e. a lower bound on the answer.
    fn percentile_index(
        &self,
        tick: usize,
        want: f64,
        start: usize,
        idx: &[u32],
        w: &[f64],
    ) -> usize {
        let last = self.count_max - 1;
        if self.live_mixture_cdf(tick, start, idx, w) >= want {
            return start;
        }
        // Gallop: invariant cdf(lo) < want; stop when a probe reaches
        // `want` (or the axis end, which the table clamps to ≈ 1).
        let mut lo = start;
        let mut step = 1usize;
        let hi = loop {
            let cand = (lo + step).min(last);
            if cand == last || self.live_mixture_cdf(tick, cand, idx, w) >= want {
                break cand;
            }
            lo = cand;
            step *= 2;
        };
        // Binary search in (lo, hi]: smallest c with cdf ≥ want.
        let (mut lo, mut hi) = (lo, hi);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.live_mixture_cdf(tick, mid, idx, w) >= want {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

/// Posterior mass below which a bin is dropped from the forecast's
/// mixture sums. With 256 bins the total dropped mass is ≤ 2.6e-10 —
/// invisible next to the coarsest percentile the protocol uses.
pub const MASS_EPSILON: f64 = 1e-12;

/// Reusable working memory for [`ForecastTables::forecast_into`]: the
/// live-bin mask and the output forecast, kept allocated between ticks.
#[derive(Debug, Default)]
pub struct ForecastScratch {
    live_idx: Vec<u32>,
    live_w: Vec<f64>,
    out: Forecast,
}

/// The DP for a single starting bin: returns the conditional CDF strip
/// laid out as `strip[t * cm + c] = P(C_{t+1} ≤ c | λ₀ = start)`.
#[allow(clippy::too_many_arguments)]
fn build_one_start(
    start: usize,
    horizon: usize,
    cm: usize,
    shifts: &[(usize, f64)],
    scatter: &ScatterMatrix,
    joint: &mut Vec<f64>,
    next: &mut Vec<f64>,
    conv: &mut [f64],
) -> Vec<f32> {
    let n = scatter.num_bins();
    let hw = scatter.max_reach();
    joint.fill(0.0);
    next.fill(0.0);
    joint[start * cm] = 1.0;
    let mut strip = vec![0.0f32; horizon * cm];
    // Reachable bin window grows by the kernel half-width per tick (the
    // outage escape row is bounded the same way); the reachable count
    // ceiling grows by the widest kernel among reachable bins.
    let mut j_lo = start;
    let mut j_hi = start;
    let mut c_hi = 0usize;

    for t in 0..horizon {
        j_lo = j_lo.saturating_sub(hw);
        j_hi = (j_hi + hw).min(n - 1);
        let (jl, jh) = (j_lo, j_hi);

        // --- evolve the bin axis (count axis untouched) ---
        for v in next[jl * cm..(jh + 1) * cm].iter_mut() {
            *v = 0.0;
        }
        evolve_rows(scatter, joint, next, jl, jh, c_hi, cm);
        std::mem::swap(joint, next);

        // --- advance the volume axis per bin (quarter-MTU units) ---
        let widest = shifts[jh].0 + 1;
        let new_c_hi = (c_hi + widest).min(cm - 1);
        for j in jl..=jh {
            let row = &mut joint[j * cm..(j + 1) * cm];
            let (lo, frac) = shifts[j];
            if lo == 0 && frac == 0.0 {
                continue; // outage bin: volume unchanged
            }
            conv[..=new_c_hi].fill(0.0);
            for (c, &p) in row.iter().enumerate().take(c_hi + 1) {
                if p == 0.0 {
                    continue;
                }
                let a = (c + lo).min(cm - 1);
                let b = (c + lo + 1).min(cm - 1);
                conv[a] += p * (1.0 - frac);
                conv[b] += p * frac;
            }
            row[..=new_c_hi].copy_from_slice(&conv[..=new_c_hi]);
        }
        c_hi = new_c_hi;

        // --- marginalize over bins, cumulative-sum, store ---
        let mut acc = 0.0f64;
        for c in 0..cm {
            if c <= c_hi {
                let mut pc = 0.0;
                for j in jl..=jh {
                    pc += joint[j * cm + c];
                }
                acc += pc;
            } else {
                acc = 1.0; // everything reachable is ≤ c_hi
            }
            strip[t * cm + c] = acc.min(1.0) as f32;
        }
    }
    strip
}

/// Apply the CSR transition rows to bins `[j_lo, j_hi]` of the joint
/// distribution, writing into `next`. Only counts `0..=c_hi` carry
/// mass; the count axis stays contiguous so the inner loop vectorizes.
fn evolve_rows(
    scatter: &ScatterMatrix,
    joint: &[f64],
    next: &mut [f64],
    j_lo: usize,
    j_hi: usize,
    c_hi: usize,
    cm: usize,
) {
    for j in j_lo..=j_hi {
        let src = &joint[j * cm..j * cm + c_hi + 1];
        if src.iter().all(|&p| p == 0.0) {
            continue;
        }
        let (dests, weights) = scatter.row(j);
        for (&dst_bin, &w) in dests.iter().zip(weights.iter()) {
            let dst_bin = dst_bin as usize;
            let dst = &mut next[dst_bin * cm..dst_bin * cm + c_hi + 1];
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d += w * s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SproutConfig {
        SproutConfig::test_small()
    }

    fn tables(cfg: &SproutConfig) -> Arc<ForecastTables> {
        ForecastTables::get(cfg)
    }

    fn uniform(n: usize) -> Vec<f64> {
        vec![1.0 / n as f64; n]
    }

    fn point_mass(n: usize, at: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        v[at] = 1.0;
        v
    }

    #[test]
    fn conditional_cdfs_are_valid() {
        let cfg = small_cfg();
        let t = tables(&cfg);
        for tick in 0..cfg.horizon_ticks {
            for bin in [0, 1, cfg.num_bins / 2, cfg.num_bins - 1] {
                let mut prev = 0.0;
                for c in 0..cfg.count_max {
                    let f = t.conditional_cdf(tick, c, bin);
                    assert!(
                        (0.0..=1.0 + 1e-6).contains(&f),
                        "cdf out of range: {f} at t={tick} c={c} bin={bin}"
                    );
                    assert!(f + 1e-6 >= prev, "cdf must be non-decreasing in c");
                    prev = f;
                }
                assert!(
                    (prev - 1.0).abs() < 1e-4,
                    "cdf must reach 1, got {prev} (tick {tick}, bin {bin})"
                );
            }
        }
    }

    #[test]
    fn outage_start_forecasts_nothing() {
        // Starting in a certain outage, the 5th-percentile forecast must
        // be 0 for every tick in the horizon (escape is unlikely and slow).
        let cfg = small_cfg();
        let t = tables(&cfg);
        let f = t.forecast(&point_mass(cfg.num_bins, 0), 5.0);
        assert!(f.cumulative_units.iter().all(|&c| c == 0), "{f:?}");
    }

    #[test]
    fn fast_start_forecasts_roughly_rate_times_time() {
        // Start certain at the top bin (250 pps in the test config → 5
        // packets = 20 quarter-units per 20 ms tick). The *median*
        // cumulative forecast should grow ≈20 units per tick; the 5th
        // percentile strictly less.
        let cfg = small_cfg();
        let t = tables(&cfg);
        let top = point_mass(cfg.num_bins, cfg.num_bins - 1);
        let median = t.forecast(&top, 50.0);
        let last = *median.cumulative_units.last().unwrap() as f64;
        let expect = 250.0 * 0.02 * cfg.horizon_ticks as f64 * UNITS_PER_MTU as f64;
        assert!(
            (last - expect).abs() < expect * 0.35,
            "median cumulative {last} units, expect ≈{expect}"
        );
        let cautious = t.forecast(&top, 5.0);
        for (c, m) in cautious
            .cumulative_units
            .iter()
            .zip(median.cumulative_units.iter())
        {
            assert!(c <= m, "cautious must not exceed median");
        }
    }

    #[test]
    fn forecast_is_monotone_in_tick() {
        let cfg = small_cfg();
        let t = tables(&cfg);
        for posterior in [
            uniform(cfg.num_bins),
            point_mass(cfg.num_bins, cfg.num_bins / 2),
        ] {
            for pct in [5.0, 50.0, 95.0] {
                let f = t.forecast(&posterior, pct);
                for w in f.cumulative_units.windows(2) {
                    assert!(w[0] <= w[1], "{f:?}");
                }
            }
        }
    }

    #[test]
    fn lower_percentile_is_more_cautious() {
        let cfg = small_cfg();
        let t = tables(&cfg);
        let posterior = point_mass(cfg.num_bins, cfg.num_bins / 2);
        let f5 = t.forecast(&posterior, 5.0);
        let f50 = t.forecast(&posterior, 50.0);
        let f95 = t.forecast(&posterior, 95.0);
        for i in 0..f5.horizon() {
            assert!(f5.cumulative_units[i] <= f50.cumulative_units[i]);
            assert!(f50.cumulative_units[i] <= f95.cumulative_units[i]);
        }
        // And strictly so somewhere, or the sweep of Fig. 9 would be flat.
        assert_ne!(f5.cumulative_units, f95.cumulative_units);
    }

    #[test]
    fn mixture_matches_conditional_for_point_mass() {
        let cfg = small_cfg();
        let t = tables(&cfg);
        let bin = cfg.num_bins / 3;
        let pm = point_mass(cfg.num_bins, bin);
        for c in [0, 5, 20] {
            let a = t.mixture_cdf(&pm, 2, c);
            let b = t.conditional_cdf(2, c, bin);
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn one_tick_cdf_matches_direct_computation() {
        // For one tick from a point mass, C₁'s distribution is the
        // one-step-evolved bin distribution pushed through the per-bin
        // volume advance (λ·τ in quarter-units, two-point split).
        let cfg = small_cfg();
        let kernel = TransitionKernel::new(&cfg);
        let t = ForecastTables::build(&cfg, &kernel);
        let bin = cfg.num_bins / 2;
        let mut evolved = vec![0.0; cfg.num_bins];
        let mut pm = vec![0.0; cfg.num_bins];
        pm[bin] = 1.0;
        kernel.evolve_into(&pm, &mut evolved);
        let tau = cfg.tick_secs();
        for c in [0usize, 2, 4, 8, 16] {
            let direct: f64 = evolved
                .iter()
                .enumerate()
                .map(|(j, &p)| {
                    let units = cfg.bin_rate_pps(j) * tau * UNITS_PER_MTU as f64;
                    let lo = units.floor() as usize;
                    let frac = units - units.floor();
                    // P(volume ≤ c | bin j): lands at lo w.p. 1−frac,
                    // lo+1 w.p. frac.
                    let cdf = if lo < c {
                        1.0
                    } else if lo <= c {
                        1.0 - frac
                    } else {
                        0.0
                    };
                    p * cdf
                })
                .sum();
            let table = t.conditional_cdf(0, c, bin);
            assert!(
                (direct - table).abs() < 1e-4,
                "c={c}: direct {direct} vs table {table}"
            );
        }
    }

    #[test]
    fn forecast_bytes_clamps_to_horizon() {
        // Units are quarter-MTU: 4 units = 1500 bytes.
        let f = Forecast {
            cumulative_units: vec![4, 8, 12],
        };
        assert_eq!(f.cumulative_bytes(0, 1500), 1_500);
        assert_eq!(f.cumulative_bytes(2, 1500), 4_500);
        assert_eq!(f.cumulative_bytes(99, 1500), 4_500); // clamped
    }

    #[test]
    fn cache_returns_shared_instance() {
        let cfg = small_cfg();
        let a = ForecastTables::get(&cfg);
        let b = ForecastTables::get(&cfg);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
