//! The packet delivery forecast (§3.3).
//!
//! Given the posterior over the current rate, Sprout predicts — at a
//! cautious percentile — the *cumulative* number of packets the link will
//! deliver over each of the next `horizon_ticks` ticks, evolving the model
//! forward **without** observations.
//!
//! Exactly as the paper hints ("most of these steps can be precalculated…
//! the only work at runtime is to take a weighted sum over each λ"), the
//! heavy lifting happens once per configuration: for every starting rate
//! bin `i`, horizon tick `t`, and cumulative count `c`, we precompute
//!
//! ```text
//! F[t][c][i] = P( C_{t} ≤ c | λ₀ = bin i )
//! ```
//!
//! by dynamic programming over the joint (rate bin × cumulative volume)
//! distribution: each tick applies the Brownian/outage transition to the
//! bin axis and advances the volume axis by the bin's expected per-tick
//! deliveries (in quarter-MTU units, split across adjacent cells to keep
//! the expectation exact). At runtime the forecast CDF is the
//! posterior-weighted mixture `Σᵢ P(λ₀=i)·F[t][c][i]`, binary-searched
//! for the configured percentile.
//!
//! **Implementation note (documented deviation).** The percentile is
//! taken over the *rate path* (the model's uncertainty about λ and
//! outages), not over the additional Poisson sampling noise of the
//! counts. §3.3's text suggests the full count distribution, but at 3G
//! rates (~1 packet per tick) the 5th percentile of a Poisson count is
//! zero, which would cap Sprout at ~150 kbps on links where the paper
//! measures ~400 kbps at 90% utilization — the published numbers are
//! only consistent with rate-uncertainty caution. See DESIGN.md §6.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::config::{SproutConfig, TableKey};
use crate::model::TransitionKernel;

/// Resolution of the cumulative-volume axis: quarter-MTU units. Finer
/// than whole packets so slow links (1–2 packets per tick) don't lose
/// their entire forecast to quantization.
pub const UNITS_PER_MTU: u64 = 4;

/// A delivery forecast: entry `t` is the cumulative volume (in
/// quarter-MTU [`UNITS_PER_MTU`] units) predicted at the configured
/// percentile to be delivered within the first `t+1` ticks from the
/// forecast's reference time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Forecast {
    /// Cumulative volume in quarter-MTU units, one entry per horizon
    /// tick; non-decreasing.
    pub cumulative_units: Vec<u32>,
}

impl Forecast {
    /// Cumulative *bytes* deliverable within the first `t+1` ticks.
    pub fn cumulative_bytes(&self, tick_index: usize, mtu: u32) -> u64 {
        let idx = tick_index.min(self.cumulative_units.len() - 1);
        self.cumulative_units[idx] as u64 * mtu as u64 / UNITS_PER_MTU
    }

    /// Number of horizon ticks covered.
    pub fn horizon(&self) -> usize {
        self.cumulative_units.len()
    }
}

/// Precomputed conditional CDF tables; build once, share via [`Arc`].
pub struct ForecastTables {
    num_bins: usize,
    horizon: usize,
    count_max: usize,
    /// Layout: `cdf[(t * count_max + c) * num_bins + i]`, f32 to halve the
    /// footprint (≈4 MB at paper scale).
    cdf: Vec<f32>,
}

impl ForecastTables {
    /// Fetch (building on first use) the tables for `cfg` from the global
    /// cache. Tables depend only on the model geometry, not the percentile,
    /// so Fig-9 style confidence sweeps share one build.
    pub fn get(cfg: &SproutConfig) -> Arc<ForecastTables> {
        // Per-key OnceLock slots: the first caller of a key builds while
        // holding only that key's slot, so concurrent sweep workers neither
        // duplicate a build (it costs seconds at paper scale) nor block
        // callers wanting a different geometry.
        type Slot = Arc<OnceLock<Arc<ForecastTables>>>;
        static CACHE: OnceLock<Mutex<HashMap<TableKey, Slot>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = cfg.table_key();
        let slot = Arc::clone(cache.lock().unwrap().entry(key).or_default());
        Arc::clone(slot.get_or_init(|| {
            let kernel = TransitionKernel::new(cfg);
            Arc::new(ForecastTables::build(cfg, &kernel))
        }))
    }

    /// Build the tables by per-start-bin dynamic programming.
    pub fn build(cfg: &SproutConfig, kernel: &TransitionKernel) -> ForecastTables {
        cfg.validate();
        let n = cfg.num_bins;
        let horizon = cfg.horizon_ticks;
        let cm = cfg.count_max;
        let tau = cfg.tick_secs();

        // Per-bin deterministic volume advance for one tick, in quarter-MTU
        // units: the expectation λ·τ·UNITS_PER_MTU, split between the two
        // adjacent integer cells so the expected advance is exact. (The
        // percentile covers rate-path uncertainty, not Poisson sampling
        // noise — see the module docs.)
        let shifts: Vec<(usize, f64)> = (0..n)
            .map(|i| {
                let units = cfg.bin_rate_pps(i) * tau * UNITS_PER_MTU as f64;
                let lo = units.floor();
                (lo as usize, units - lo)
            })
            .collect();

        // Explicit transition rows (destination, weight), computed once.
        let scatter_rows: Vec<Vec<(usize, f64)>> = (0..n).map(|j| kernel.scatter_row(j)).collect();

        // The DP over start bins is embarrassingly parallel; chunk it over
        // the available cores with scoped threads (no extra dependencies).
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        let chunk = n.div_ceil(threads);
        let mut per_start: Vec<Vec<f32>> = vec![Vec::new(); n];
        std::thread::scope(|scope| {
            let mut rest: &mut [Vec<f32>] = &mut per_start;
            let mut base = 0usize;
            let mut handles = Vec::new();
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let start0 = base;
                base += take;
                let shifts = &shifts;
                let scatter_rows = &scatter_rows;
                handles.push(scope.spawn(move || {
                    let hw = kernel_half_width(scatter_rows);
                    let mut joint = vec![0.0f64; n * cm];
                    let mut next = vec![0.0f64; n * cm];
                    let mut conv = vec![0.0f64; cm];
                    for (off, slot) in head.iter_mut().enumerate() {
                        let start = start0 + off;
                        *slot = build_one_start(
                            start,
                            n,
                            horizon,
                            cm,
                            hw,
                            shifts,
                            scatter_rows,
                            &mut joint,
                            &mut next,
                            &mut conv,
                        );
                    }
                }));
            }
            for h in handles {
                h.join().expect("forecast-table worker panicked");
            }
        });

        // Merge the per-start CDF strips into the runtime layout
        // `cdf[(t*cm + c)*n + start]` (contiguous in start for the
        // mixture's inner loop).
        let mut cdf = vec![0.0f32; horizon * cm * n];
        for (start, strip) in per_start.iter().enumerate() {
            debug_assert_eq!(strip.len(), horizon * cm);
            for t in 0..horizon {
                for c in 0..cm {
                    cdf[(t * cm + c) * n + start] = strip[t * cm + c];
                }
            }
        }

        ForecastTables {
            num_bins: n,
            horizon,
            count_max: cm,
            cdf,
        }
    }

    /// Conditional CDF `P(C_{t+1} ≤ c | λ₀ = bin)` (test/diagnostic hook).
    pub fn conditional_cdf(&self, tick: usize, count: usize, bin: usize) -> f64 {
        self.cdf[(tick * self.count_max + count) * self.num_bins + bin] as f64
    }

    /// The mixture CDF `P(C_{t+1} ≤ c)` under `posterior`.
    pub fn mixture_cdf(&self, posterior: &[f64], tick: usize, count: usize) -> f64 {
        assert_eq!(posterior.len(), self.num_bins);
        let row = &self.cdf[(tick * self.count_max + count) * self.num_bins..][..self.num_bins];
        posterior
            .iter()
            .zip(row.iter())
            .map(|(&p, &f)| p * f as f64)
            .sum()
    }

    /// Compute the cautious forecast for `posterior` at `percentile`
    /// (e.g. 5.0 for the paper's 95%-confidence forecast).
    pub fn forecast(&self, posterior: &[f64], percentile: f64) -> Forecast {
        assert!(percentile > 0.0 && percentile < 100.0);
        let want = percentile / 100.0;
        let mut cumulative = Vec::with_capacity(self.horizon);
        for t in 0..self.horizon {
            // Smallest c with mixture CDF ≥ want: the link delivers at
            // least c units with probability ≥ 1 − want.
            let mut lo = 0usize;
            let mut hi = self.count_max - 1;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if self.mixture_cdf(posterior, t, mid) >= want {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            cumulative.push(lo as u32);
        }
        // Cumulative volume is non-decreasing by construction of C_t, but
        // guard against f32 rounding at the percentile boundary.
        for t in 1..cumulative.len() {
            if cumulative[t] < cumulative[t - 1] {
                cumulative[t] = cumulative[t - 1];
            }
        }
        Forecast {
            cumulative_units: cumulative,
        }
    }
}

/// Largest offset any transition row reaches (the Brownian half-width).
fn kernel_half_width(scatter_rows: &[Vec<(usize, f64)>]) -> usize {
    scatter_rows
        .iter()
        .enumerate()
        .map(|(j, row)| {
            row.iter()
                .map(|&(dst, _)| dst.abs_diff(j))
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(1)
        .max(1)
}

/// The DP for a single starting bin: returns the conditional CDF strip
/// laid out as `strip[t * cm + c] = P(C_{t+1} ≤ c | λ₀ = start)`.
#[allow(clippy::too_many_arguments)]
fn build_one_start(
    start: usize,
    n: usize,
    horizon: usize,
    cm: usize,
    hw: usize,
    shifts: &[(usize, f64)],
    scatter_rows: &[Vec<(usize, f64)>],
    joint: &mut Vec<f64>,
    next: &mut Vec<f64>,
    conv: &mut [f64],
) -> Vec<f32> {
    joint.fill(0.0);
    next.fill(0.0);
    joint[start * cm] = 1.0;
    let mut strip = vec![0.0f32; horizon * cm];
    // Reachable bin window grows by the kernel half-width per tick (the
    // outage escape row is bounded the same way); the reachable count
    // ceiling grows by the widest kernel among reachable bins.
    let mut j_lo = start;
    let mut j_hi = start;
    let mut c_hi = 0usize;

    for t in 0..horizon {
        j_lo = j_lo.saturating_sub(hw);
        j_hi = (j_hi + hw).min(n - 1);
        let (jl, jh) = (j_lo, j_hi);

        // --- evolve the bin axis (count axis untouched) ---
        for v in next[jl * cm..(jh + 1) * cm].iter_mut() {
            *v = 0.0;
        }
        evolve_rows(scatter_rows, joint, next, jl, jh, c_hi, cm);
        std::mem::swap(joint, next);

        // --- advance the volume axis per bin (quarter-MTU units) ---
        let widest = shifts[jh].0 + 1;
        let new_c_hi = (c_hi + widest).min(cm - 1);
        for j in jl..=jh {
            let row = &mut joint[j * cm..(j + 1) * cm];
            let (lo, frac) = shifts[j];
            if lo == 0 && frac == 0.0 {
                continue; // outage bin: volume unchanged
            }
            conv[..=new_c_hi].fill(0.0);
            for (c, &p) in row.iter().enumerate().take(c_hi + 1) {
                if p == 0.0 {
                    continue;
                }
                let a = (c + lo).min(cm - 1);
                let b = (c + lo + 1).min(cm - 1);
                conv[a] += p * (1.0 - frac);
                conv[b] += p * frac;
            }
            row[..=new_c_hi].copy_from_slice(&conv[..=new_c_hi]);
        }
        c_hi = new_c_hi;

        // --- marginalize over bins, cumulative-sum, store ---
        let mut acc = 0.0f64;
        for c in 0..cm {
            if c <= c_hi {
                let mut pc = 0.0;
                for j in jl..=jh {
                    pc += joint[j * cm + c];
                }
                acc += pc;
            } else {
                acc = 1.0; // everything reachable is ≤ c_hi
            }
            strip[t * cm + c] = acc.min(1.0) as f32;
        }
    }
    strip
}

/// Apply the precomputed transition rows to bins `[j_lo, j_hi]` of the
/// joint distribution, writing into `next`. Only counts `0..=c_hi` carry
/// mass; the count axis stays contiguous so the inner loop vectorizes.
fn evolve_rows(
    scatter_rows: &[Vec<(usize, f64)>],
    joint: &[f64],
    next: &mut [f64],
    j_lo: usize,
    j_hi: usize,
    c_hi: usize,
    cm: usize,
) {
    for j in j_lo..=j_hi {
        let src = &joint[j * cm..j * cm + c_hi + 1];
        if src.iter().all(|&p| p == 0.0) {
            continue;
        }
        for &(dst_bin, w) in &scatter_rows[j] {
            let dst = &mut next[dst_bin * cm..dst_bin * cm + c_hi + 1];
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d += w * s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SproutConfig {
        SproutConfig::test_small()
    }

    fn tables(cfg: &SproutConfig) -> Arc<ForecastTables> {
        ForecastTables::get(cfg)
    }

    fn uniform(n: usize) -> Vec<f64> {
        vec![1.0 / n as f64; n]
    }

    fn point_mass(n: usize, at: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        v[at] = 1.0;
        v
    }

    #[test]
    fn conditional_cdfs_are_valid() {
        let cfg = small_cfg();
        let t = tables(&cfg);
        for tick in 0..cfg.horizon_ticks {
            for bin in [0, 1, cfg.num_bins / 2, cfg.num_bins - 1] {
                let mut prev = 0.0;
                for c in 0..cfg.count_max {
                    let f = t.conditional_cdf(tick, c, bin);
                    assert!(
                        (0.0..=1.0 + 1e-6).contains(&f),
                        "cdf out of range: {f} at t={tick} c={c} bin={bin}"
                    );
                    assert!(f + 1e-6 >= prev, "cdf must be non-decreasing in c");
                    prev = f;
                }
                assert!(
                    (prev - 1.0).abs() < 1e-4,
                    "cdf must reach 1, got {prev} (tick {tick}, bin {bin})"
                );
            }
        }
    }

    #[test]
    fn outage_start_forecasts_nothing() {
        // Starting in a certain outage, the 5th-percentile forecast must
        // be 0 for every tick in the horizon (escape is unlikely and slow).
        let cfg = small_cfg();
        let t = tables(&cfg);
        let f = t.forecast(&point_mass(cfg.num_bins, 0), 5.0);
        assert!(f.cumulative_units.iter().all(|&c| c == 0), "{f:?}");
    }

    #[test]
    fn fast_start_forecasts_roughly_rate_times_time() {
        // Start certain at the top bin (250 pps in the test config → 5
        // packets = 20 quarter-units per 20 ms tick). The *median*
        // cumulative forecast should grow ≈20 units per tick; the 5th
        // percentile strictly less.
        let cfg = small_cfg();
        let t = tables(&cfg);
        let top = point_mass(cfg.num_bins, cfg.num_bins - 1);
        let median = t.forecast(&top, 50.0);
        let last = *median.cumulative_units.last().unwrap() as f64;
        let expect = 250.0 * 0.02 * cfg.horizon_ticks as f64 * UNITS_PER_MTU as f64;
        assert!(
            (last - expect).abs() < expect * 0.35,
            "median cumulative {last} units, expect ≈{expect}"
        );
        let cautious = t.forecast(&top, 5.0);
        for (c, m) in cautious
            .cumulative_units
            .iter()
            .zip(median.cumulative_units.iter())
        {
            assert!(c <= m, "cautious must not exceed median");
        }
    }

    #[test]
    fn forecast_is_monotone_in_tick() {
        let cfg = small_cfg();
        let t = tables(&cfg);
        for posterior in [
            uniform(cfg.num_bins),
            point_mass(cfg.num_bins, cfg.num_bins / 2),
        ] {
            for pct in [5.0, 50.0, 95.0] {
                let f = t.forecast(&posterior, pct);
                for w in f.cumulative_units.windows(2) {
                    assert!(w[0] <= w[1], "{f:?}");
                }
            }
        }
    }

    #[test]
    fn lower_percentile_is_more_cautious() {
        let cfg = small_cfg();
        let t = tables(&cfg);
        let posterior = point_mass(cfg.num_bins, cfg.num_bins / 2);
        let f5 = t.forecast(&posterior, 5.0);
        let f50 = t.forecast(&posterior, 50.0);
        let f95 = t.forecast(&posterior, 95.0);
        for i in 0..f5.horizon() {
            assert!(f5.cumulative_units[i] <= f50.cumulative_units[i]);
            assert!(f50.cumulative_units[i] <= f95.cumulative_units[i]);
        }
        // And strictly so somewhere, or the sweep of Fig. 9 would be flat.
        assert_ne!(f5.cumulative_units, f95.cumulative_units);
    }

    #[test]
    fn mixture_matches_conditional_for_point_mass() {
        let cfg = small_cfg();
        let t = tables(&cfg);
        let bin = cfg.num_bins / 3;
        let pm = point_mass(cfg.num_bins, bin);
        for c in [0, 5, 20] {
            let a = t.mixture_cdf(&pm, 2, c);
            let b = t.conditional_cdf(2, c, bin);
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn one_tick_cdf_matches_direct_computation() {
        // For one tick from a point mass, C₁'s distribution is the
        // one-step-evolved bin distribution pushed through the per-bin
        // volume advance (λ·τ in quarter-units, two-point split).
        let cfg = small_cfg();
        let kernel = TransitionKernel::new(&cfg);
        let t = ForecastTables::build(&cfg, &kernel);
        let bin = cfg.num_bins / 2;
        let mut evolved = vec![0.0; cfg.num_bins];
        let mut pm = vec![0.0; cfg.num_bins];
        pm[bin] = 1.0;
        kernel.evolve_into(&pm, &mut evolved);
        let tau = cfg.tick_secs();
        for c in [0usize, 2, 4, 8, 16] {
            let direct: f64 = evolved
                .iter()
                .enumerate()
                .map(|(j, &p)| {
                    let units = cfg.bin_rate_pps(j) * tau * UNITS_PER_MTU as f64;
                    let lo = units.floor() as usize;
                    let frac = units - units.floor();
                    // P(volume ≤ c | bin j): lands at lo w.p. 1−frac,
                    // lo+1 w.p. frac.
                    let cdf = if lo < c {
                        1.0
                    } else if lo <= c {
                        1.0 - frac
                    } else {
                        0.0
                    };
                    p * cdf
                })
                .sum();
            let table = t.conditional_cdf(0, c, bin);
            assert!(
                (direct - table).abs() < 1e-4,
                "c={c}: direct {direct} vs table {table}"
            );
        }
    }

    #[test]
    fn forecast_bytes_clamps_to_horizon() {
        // Units are quarter-MTU: 4 units = 1500 bytes.
        let f = Forecast {
            cumulative_units: vec![4, 8, 12],
        };
        assert_eq!(f.cumulative_bytes(0, 1500), 1_500);
        assert_eq!(f.cumulative_bytes(2, 1500), 4_500);
        assert_eq!(f.cumulative_bytes(99, 1500), 4_500); // clamped
    }

    #[test]
    fn cache_returns_shared_instance() {
        let cfg = small_cfg();
        let a = ForecastTables::get(&cfg);
        let b = ForecastTables::get(&cfg);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
