//! Runtime-dispatched element-wise kernels for the evolve/DP hot loops.
//!
//! The workspace builds for baseline x86-64 (SSE2, two f64 lanes), but the
//! forecast-table DP and the per-tick evolve spend nearly all their time in
//! two element-wise loops. Compiling those loops a second time inside
//! `#[target_feature(enable = ...)]` wrappers — and dispatching on runtime
//! CPU feature detection — lets LLVM autovectorize them 4 (AVX2) or
//! 8 (AVX-512) lanes wide without changing how the workspace is built.
//!
//! **Bit-exactness.** Every kernel here is element-wise: lane `i` computes
//! `dst[i] += w * src[i]` (or `dst[i] += src[i]`) with one IEEE multiply
//! and one IEEE add, exactly like the scalar loop. Rust never enables
//! floating-point contraction (no FMA fusing) or reassociation, and wider
//! registers do not change per-lane rounding, so every dispatch path
//! produces bit-identical results. This invariant is what lets the sweep
//! keep byte-identical canonical output across machines — and it is
//! enforced by unit tests here and the `kernel_equivalence` suite.

/// `dst[i] += w * src[i]` over the common prefix of the two slices.
#[inline]
pub(crate) fn saxpy(dst: &mut [f64], w: f64, src: &[f64]) {
    #[cfg(target_arch = "x86_64")]
    {
        match features() {
            Level::Avx512 => {
                // SAFETY: AVX-512F support verified at runtime.
                return unsafe { saxpy_avx512(dst, w, src) };
            }
            Level::Avx2 => {
                // SAFETY: AVX2 support verified at runtime.
                return unsafe { saxpy_avx2(dst, w, src) };
            }
            Level::Baseline => {}
        }
    }
    saxpy_scalar(dst, w, src);
}

/// `dst[i] += src[i]` over the common prefix of the two slices.
#[inline]
pub(crate) fn add_assign(dst: &mut [f64], src: &[f64]) {
    #[cfg(target_arch = "x86_64")]
    {
        match features() {
            Level::Avx512 => {
                // SAFETY: AVX-512F support verified at runtime.
                return unsafe { add_assign_avx512(dst, src) };
            }
            Level::Avx2 => {
                // SAFETY: AVX2 support verified at runtime.
                return unsafe { add_assign_avx2(dst, src) };
            }
            Level::Baseline => {}
        }
    }
    add_assign_scalar(dst, src);
}

/// `dst[k] = Σᵢ wᵢ · flat[offᵢ + k]`, terms accumulated in slice order
/// starting from `0.0` — per lane, the exact operand sequence of
/// `dst.fill(0.0)` followed by one [`saxpy`] per term. Keeping the
/// accumulator in registers instead of re-reading `dst` per term is what
/// makes destination-major loops cheaper than the saxpy-per-source form.
#[inline]
pub(crate) fn weighted_sum_into(dst: &mut [f64], flat: &[f64], terms: &[(u32, f64)]) {
    #[cfg(target_arch = "x86_64")]
    {
        match features() {
            Level::Avx512 => {
                // SAFETY: AVX-512F support verified at runtime.
                return unsafe { weighted_sum_into_avx512(dst, flat, terms) };
            }
            Level::Avx2 => {
                // SAFETY: AVX2 support verified at runtime.
                return unsafe { weighted_sum_into_avx2(dst, flat, terms) };
            }
            Level::Baseline => {}
        }
    }
    weighted_sum_into_scalar(dst, flat, terms);
}

#[inline(always)]
fn weighted_sum_into_scalar(dst: &mut [f64], flat: &[f64], terms: &[(u32, f64)]) {
    // 32-lane tiles spread each term's adds over enough independent
    // accumulator registers that the loop is bound by multiply/add
    // throughput, not by the latency chain through one accumulator.
    const TILE: usize = 32;
    let len = dst.len();
    let mut k = 0;
    while k + TILE <= len {
        let mut acc = [0.0f64; TILE];
        for &(off, w) in terms {
            let s = &flat[off as usize + k..off as usize + k + TILE];
            for (a, &v) in acc.iter_mut().zip(s.iter()) {
                *a += w * v;
            }
        }
        dst[k..k + TILE].copy_from_slice(&acc);
        k += TILE;
    }
    if k < len {
        let rem = len - k;
        let mut acc = [0.0f64; TILE];
        for &(off, w) in terms {
            let s = &flat[off as usize + k..off as usize + k + rem];
            for (a, &v) in acc.iter_mut().zip(s.iter()) {
                *a += w * v;
            }
        }
        dst[k..].copy_from_slice(&acc[..rem]);
    }
}

#[inline(always)]
fn saxpy_scalar(dst: &mut [f64], w: f64, src: &[f64]) {
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d += w * s;
    }
}

#[inline(always)]
fn add_assign_scalar(dst: &mut [f64], src: &[f64]) {
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d += s;
    }
}

/// Widest vector extension available on this CPU.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy, PartialEq, Eq)]
enum Level {
    Baseline,
    Avx2,
    Avx512,
}

/// Detect (once) the widest usable extension. `is_x86_feature_detected!`
/// caches internally, but routing through one atomic keeps the hot-loop
/// dispatch to a single load.
#[cfg(target_arch = "x86_64")]
#[inline]
fn features() -> Level {
    use std::sync::atomic::{AtomicU8, Ordering};
    static LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Baseline,
        1 => Level::Avx2,
        2 => Level::Avx512,
        _ => {
            let level = if std::arch::is_x86_feature_detected!("avx512f") {
                Level::Avx512
            } else if std::arch::is_x86_feature_detected!("avx2") {
                Level::Avx2
            } else {
                Level::Baseline
            };
            LEVEL.store(level as u8, Ordering::Relaxed);
            level
        }
    }
}

// The wrappers contain only safe element-wise loops; `#[target_feature]`
// makes them `unsafe` to *call* (the caller must have verified CPU
// support) while letting LLVM autovectorize the body at the wider width.

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn saxpy_avx2(dst: &mut [f64], w: f64, src: &[f64]) {
    saxpy_scalar(dst, w, src);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn saxpy_avx512(dst: &mut [f64], w: f64, src: &[f64]) {
    saxpy_scalar(dst, w, src);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_assign_avx2(dst: &mut [f64], src: &[f64]) {
    add_assign_scalar(dst, src);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn weighted_sum_into_avx2(dst: &mut [f64], flat: &[f64], terms: &[(u32, f64)]) {
    weighted_sum_into_scalar(dst, flat, terms);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn weighted_sum_into_avx512(dst: &mut [f64], flat: &[f64], terms: &[(u32, f64)]) {
    weighted_sum_into_scalar(dst, flat, terms);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn add_assign_avx512(dst: &mut [f64], src: &[f64]) {
    add_assign_scalar(dst, src);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_vec(n: usize, salt: u64) -> Vec<f64> {
        // Deterministic awkward values: denormal-adjacent, huge, negative,
        // zero — anything where a contracted or reordered op would differ.
        (0..n)
            .map(|i| {
                let x = ((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt) as f64;
                (x / u64::MAX as f64 - 0.5) * 1e3 + if i % 7 == 0 { 1e-300 } else { 0.0 }
            })
            .collect()
    }

    #[test]
    fn dispatched_saxpy_is_bitwise_scalar() {
        for n in [0, 1, 3, 8, 31, 257] {
            let src = probe_vec(n, 1);
            for w in [0.0, 1.0, -3.5, 1e-200, 7.25] {
                let mut a = probe_vec(n, 2);
                let mut b = a.clone();
                saxpy(&mut a, w, &src);
                saxpy_scalar(&mut b, w, &src);
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "n={n} w={w}");
                }
            }
        }
    }

    #[test]
    fn weighted_sum_into_is_bitwise_fill_plus_saxpy() {
        let flat = probe_vec(600, 7);
        let terms: Vec<(u32, f64)> = vec![(3, 1.5), (40, -2.25), (301, 1e-150), (0, 0.5)];
        for len in [0usize, 1, 5, 8, 17, 64, 127, 128] {
            let mut a = vec![9.0; len]; // stale contents must be overwritten
            weighted_sum_into(&mut a, &flat, &terms);
            let mut b = vec![0.0; len];
            for &(off, w) in &terms {
                saxpy_scalar(&mut b, w, &flat[off as usize..off as usize + len]);
            }
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "len={len}");
            }
        }
    }

    #[test]
    fn dispatched_add_assign_is_bitwise_scalar() {
        for n in [0, 1, 5, 64, 130] {
            let src = probe_vec(n, 3);
            let mut a = probe_vec(n, 4);
            let mut b = a.clone();
            add_assign(&mut a, &src);
            add_assign_scalar(&mut b, &src);
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "n={n}");
            }
        }
    }
}
