//! # sprout-core — the Sprout transport protocol
//!
//! A from-scratch Rust implementation of **Sprout** (Winstein, Sivaraman,
//! Balakrishnan — *Stochastic Forecasts Achieve High Throughput and Low
//! Delay over Cellular Networks*, NSDI 2013).
//!
//! Sprout is an end-to-end transport for interactive applications on
//! cellular paths. Instead of reacting to loss or delay, the **receiver**
//! infers the link's time-varying delivery rate from packet arrival times
//! (Bayesian filtering on a doubly-stochastic Poisson model, §3.1–3.2),
//! forecasts — at the 5th percentile — how many bytes the link will
//! deliver over the next 160 ms (§3.3), and feeds that forecast back. The
//! **sender** turns the forecast into an evolving window that bounds the
//! risk of any packet queueing longer than 100 ms to under 5% (§3.5).
//!
//! The protocol state machines are sans-IO: drive [`SproutEndpoint`] from
//! the virtual-time emulator (`sprout-sim`) for experiments, or from real
//! sockets (`sprout-net`) for live use.
//!
//! ```
//! use sprout_core::{SproutConfig, SproutEndpoint};
//! use sprout_sim::{Simulation, PathConfig};
//! use sprout_trace::{NetProfile, Duration, Timestamp};
//!
//! let cfg = SproutConfig::test_small(); // paper-scale: SproutConfig::paper()
//! let mut client = SproutEndpoint::new_ewma(cfg.clone());
//! client.set_saturating();
//! let server = SproutEndpoint::new_ewma(cfg);
//!
//! let mut sim = Simulation::new(
//!     client,
//!     server,
//!     PathConfig::standard(NetProfile::TmobileUmtsUp.generate(Duration::from_secs(5), 1)),
//!     PathConfig::standard(NetProfile::TmobileUmtsDown.generate(Duration::from_secs(5), 2)),
//! );
//! sim.run_until(Timestamp::from_secs(5));
//! assert!(sim.ab_metrics().records().len() > 0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod endpoint;
pub mod forecast;
pub mod forecaster;
pub mod lru;
pub mod model;
pub mod receiver;
pub mod sender;
pub mod session;
mod simd;
pub mod stats;
pub mod wire;

pub use config::SproutConfig;
pub use endpoint::{EndpointStats, SproutEndpoint};
pub use forecast::{
    reset_table_cache_counters, table_cache_counters, table_cache_occupancy, table_memory_counters,
    Forecast, ForecastScratch, ForecastTables, MemCounters, FORECAST_TABLE_CACHE_CAP,
};
pub use forecaster::{BayesianForecaster, EwmaForecaster, Forecaster};
pub use lru::LruCache;
pub use model::{RateModel, ScatterMatrix, TransitionKernel};
pub use receiver::{IntervalSet, SproutReceiver};
pub use sender::SproutSender;
pub use session::{SessionPool, SessionRef};
pub use wire::{SproutHeader, WireError, WireForecast};
