//! The stochastic link model and its Bayesian updater (§3.1–3.2).
//!
//! The link is modeled as a doubly-stochastic process: packet deliveries
//! form a Poisson process whose rate λ performs Brownian motion with noise
//! power σ, except that λ = 0 (an outage) is *sticky*, escaped at
//! exponential rate λz. Sprout discretizes λ into `num_bins` values
//! uniformly spanning `[0, max_rate_pps]` and maintains a probability
//! distribution over them, updated every 20 ms tick in three steps:
//! evolve (Brownian blur + outage bias), observe (Poisson likelihood of
//! the bytes that arrived), normalize.

use std::sync::Arc;

use crate::config::SproutConfig;
use crate::stats::{ln_gamma, normal_mass};

/// The per-tick transition matrix in CSR (compressed sparse row) form:
/// one flat `(destination, weight)` stream with per-row extents, so the
/// hot loops of [`TransitionKernel::evolve_into`] and the forecast-table
/// DP walk contiguous memory instead of a `Vec` of `Vec`s. Boundary
/// reflections are already folded in (duplicate destinations merged), and
/// rows list destinations in ascending order.
#[derive(Debug)]
pub struct ScatterMatrix {
    num_bins: usize,
    /// Row `j` spans `row_ptr[j]..row_ptr[j+1]` of `dests`/`weights`.
    row_ptr: Vec<u32>,
    dests: Vec<u32>,
    weights: Vec<f64>,
    /// Largest `|dst − j|` over all rows — how far one tick can move
    /// probability mass (the DP's reachable-window growth rate).
    max_reach: usize,
    /// True when every row's destinations form one contiguous ascending
    /// run (`dests[k+1] == dests[k] + 1`). Gaussian bands with folded
    /// reflections always satisfy this; it lets the evolve hot loop use a
    /// dense slice saxpy (no index gather, no per-element bounds check)
    /// instead of the scattered CSR walk.
    contiguous_rows: bool,
}

impl ScatterMatrix {
    fn from_rows(num_bins: usize, rows: impl Iterator<Item = Vec<(usize, f64)>>) -> Self {
        let mut row_ptr = Vec::with_capacity(num_bins + 1);
        let mut dests = Vec::new();
        let mut weights = Vec::new();
        let mut max_reach = 1usize;
        let mut contiguous_rows = true;
        row_ptr.push(0u32);
        for (j, row) in rows.enumerate() {
            let start = dests.len();
            for (dst, w) in row {
                max_reach = max_reach.max(dst.abs_diff(j));
                dests.push(dst as u32);
                weights.push(w);
            }
            contiguous_rows = contiguous_rows
                && dests.len() > start
                && dests[start..].windows(2).all(|w| w[1] == w[0] + 1);
            row_ptr.push(dests.len() as u32);
        }
        assert_eq!(row_ptr.len(), num_bins + 1);
        ScatterMatrix {
            num_bins,
            row_ptr,
            dests,
            weights,
            max_reach,
            contiguous_rows,
        }
    }

    /// Number of rate bins (rows and columns).
    pub fn num_bins(&self) -> usize {
        self.num_bins
    }

    /// The outgoing `(destinations, weights)` of bin `j`, destinations
    /// ascending.
    pub fn row(&self, j: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[j] as usize;
        let hi = self.row_ptr[j + 1] as usize;
        (&self.dests[lo..hi], &self.weights[lo..hi])
    }

    /// Largest per-tick bin displacement (≥ 1).
    pub fn max_reach(&self) -> usize {
        self.max_reach
    }

    /// Whether every row's destinations are one contiguous ascending run
    /// (see the field docs; true for every kernel this crate builds).
    pub fn rows_are_contiguous(&self) -> bool {
        self.contiguous_rows
    }

    /// The transposed operator: row `d` of the result lists the
    /// `(source, weight)` pairs that scatter into bin `d`, sources
    /// ascending (the outer ascending-`j` scan guarantees the order).
    /// Lets destination-major consumers accumulate each output cell in
    /// the same ascending-source order as the row-major walk.
    pub(crate) fn transposed(&self) -> ScatterMatrix {
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.num_bins];
        for j in 0..self.num_bins {
            let (dests, weights) = self.row(j);
            for (&d, &w) in dests.iter().zip(weights.iter()) {
                cols[d as usize].push((j, w));
            }
        }
        ScatterMatrix::from_rows(self.num_bins, cols.into_iter())
    }
}

/// Precomputed per-tick evolution operator: a banded Gaussian kernel for
/// the Brownian step plus the special sticky-outage row for bin 0.
#[derive(Debug)]
pub struct TransitionKernel {
    num_bins: usize,
    /// Half-width of the banded kernel, in bins (±4σ).
    half_width: usize,
    /// The whole operator flattened to CSR — the Gaussian Brownian band
    /// (reflected at both boundaries) for positive bins and the sticky
    /// outage/escape mixture for bin 0. This is the only runtime
    /// representation; `evolve_into` and the forecast-table builder both
    /// walk it.
    scatter: ScatterMatrix,
}

impl TransitionKernel {
    /// Build the kernel for a configuration.
    pub fn new(cfg: &SproutConfig) -> Self {
        cfg.validate();
        let step = cfg.bin_width_pps();
        // Per-tick Brownian standard deviation: σ·√τ (§3.1).
        let sigma_tick = cfg.sigma * cfg.tick_secs().sqrt();
        let half_width = ((4.0 * sigma_tick / step).ceil() as usize).clamp(1, cfg.num_bins - 1);
        let mut weights = Vec::with_capacity(2 * half_width + 1);
        for d in -(half_width as i64)..=(half_width as i64) {
            let lo = (d as f64 - 0.5) * step;
            let hi = (d as f64 + 0.5) * step;
            weights.push(normal_mass(0.0, sigma_tick, lo, hi));
        }
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        // Escape distribution: positive-offset half of the kernel.
        let mut escape_row: Vec<f64> = weights[half_width + 1..].to_vec();
        let esc_total: f64 = escape_row.iter().sum();
        if esc_total > 0.0 {
            for w in &mut escape_row {
                *w /= esc_total;
            }
        } else {
            // Degenerate kernel (huge bins): escape to the first bin.
            escape_row = vec![1.0];
        }
        let escape_prob = 1.0 - (-cfg.outage_escape_rate * cfg.tick_secs()).exp();
        let n = cfg.num_bins;
        let scatter = ScatterMatrix::from_rows(
            n,
            (0..n).map(|j| compute_row(j, n, half_width, &weights, escape_prob, &escape_row)),
        );
        TransitionKernel {
            num_bins: cfg.num_bins,
            half_width,
            scatter,
        }
    }

    /// Kernel half-width in bins.
    pub fn half_width(&self) -> usize {
        self.half_width
    }

    /// The operator flattened to CSR (the forecast-table builder and the
    /// hot evolve loop consume this form).
    pub fn scatter(&self) -> &ScatterMatrix {
        &self.scatter
    }

    /// Apply one tick of evolution: `dst = T(src)`. `dst` is overwritten.
    /// Probability is conserved exactly up to floating-point rounding
    /// (out-of-range Brownian mass clamps to the edge bins).
    ///
    /// Walks the precomputed CSR rows — the sticky-outage row 0 and the
    /// reflected Brownian rows are already folded into the matrix — so
    /// the inner loop is a contiguous multiply-accumulate with no
    /// per-weight reflection arithmetic.
    ///
    /// When every row's destinations are contiguous (true for all kernels
    /// built by this crate), the inner loop runs over a dense destination
    /// slice: no index gather and no per-element bounds check, which lets
    /// the compiler vectorize the saxpy. Destination lanes are
    /// independent and each destination still accumulates contributions
    /// in ascending source order, so results are bit-identical to
    /// [`Self::evolve_into_reference`].
    pub fn evolve_into(&self, src: &[f64], dst: &mut [f64]) {
        assert_eq!(src.len(), self.num_bins);
        assert_eq!(dst.len(), self.num_bins);
        if !self.scatter.rows_are_contiguous() {
            return self.evolve_into_reference(src, dst);
        }
        dst.fill(0.0);
        for (j, &p) in src.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let (dests, weights) = self.scatter.row(j);
            let lo = dests[0] as usize;
            let out = &mut dst[lo..lo + weights.len()];
            crate::simd::saxpy(out, p, weights);
        }
    }

    /// The pre-vectorization scalar CSR walk of [`Self::evolve_into`],
    /// kept as the bit-exactness reference (and as the fallback for
    /// matrices with non-contiguous rows). Equivalence is enforced by the
    /// `kernel_equivalence` proptest suite.
    pub fn evolve_into_reference(&self, src: &[f64], dst: &mut [f64]) {
        assert_eq!(src.len(), self.num_bins);
        assert_eq!(dst.len(), self.num_bins);
        dst.fill(0.0);
        for (j, &p) in src.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let (dests, weights) = self.scatter.row(j);
            for (&d, &w) in dests.iter().zip(weights.iter()) {
                dst[d as usize] += p * w;
            }
        }
    }

    /// The outgoing transition row of bin `j` as explicit
    /// `(destination bin, probability)` pairs with boundary-clamped mass
    /// merged (a borrowing view into the CSR matrix, materialized for
    /// callers wanting owned pairs).
    pub fn scatter_row(&self, j: usize) -> Vec<(usize, f64)> {
        assert!(j < self.num_bins);
        let (dests, weights) = self.scatter.row(j);
        dests
            .iter()
            .zip(weights.iter())
            .map(|(&d, &w)| (d as usize, w))
            .collect()
    }
}

/// One CSR row of the transition operator: the sticky-outage mixture for
/// bin 0 (§3.1), the reflected Brownian band for positive bins. Both
/// boundaries reflect: mass pushed below the lowest positive rate folds
/// back up rather than entering the outage state (λ = 0 is a *discrete*
/// sticky state of the paper's model — a continuous diffusion has zero
/// probability of landing exactly on it; outage probability accumulates
/// through observation of silence instead), and mass pushed past the
/// grid ceiling folds back down.
fn compute_row(
    j: usize,
    num_bins: usize,
    half_width: usize,
    weights: &[f64],
    escape_prob: f64,
    escape_row: &[f64],
) -> Vec<(usize, f64)> {
    if j == 0 {
        let mut row = Vec::with_capacity(escape_row.len() + 1);
        row.push((0, 1.0 - escape_prob));
        for (k, &w) in escape_row.iter().enumerate() {
            let dst = (k + 1).min(num_bins - 1);
            match row.last_mut() {
                Some((d, acc)) if *d == dst => *acc += escape_prob * w,
                _ => row.push((dst, escape_prob * w)),
            }
        }
        return row;
    }
    let n = num_bins as i64;
    let hw = half_width as i64;
    let mut acc = vec![0.0f64; num_bins];
    let mut lo = num_bins - 1;
    let mut hi = 1;
    for (k, &w) in weights.iter().enumerate() {
        let dst = reflect_positive((j as i64) + k as i64 - hw, n);
        acc[dst] += w;
        lo = lo.min(dst);
        hi = hi.max(dst);
    }
    (lo..=hi)
        .filter(|&d| acc[d] > 0.0)
        .map(|d| (d, acc[d]))
        .collect()
}

/// Reflect a bin index into the positive range `[1, n-1]`. The lower
/// reflecting boundary sits at 0.5 (between the outage bin and bin 1):
/// `j' = 1 − j`; the upper at `n − 0.5`: `j' = 2n − 1 − j`. One
/// reflection per side suffices because the kernel half-width is bounded
/// by the grid size; any residue is clamped defensively.
fn reflect_positive(j: i64, n: i64) -> usize {
    let mut j = j;
    if j < 1 {
        j = 1 - j;
    }
    if j > n - 1 {
        j = 2 * n - 1 - j;
    }
    j.clamp(1, n - 1) as usize
}

/// The evolving posterior over the link rate.
#[derive(Clone, Debug)]
pub struct RateModel {
    cfg: SproutConfig,
    kernel: Arc<TransitionKernel>,
    dist: Vec<f64>,
    scratch: Vec<f64>,
    /// Cached `ln(bin_rate_pps(i) · exposure)` per bin for the exposure in
    /// `ln_means_exposure`. Endpoints observe with the same exposure on
    /// almost every tick (a full queue-backed tick), so the logs are
    /// recomputed only when the exposure's bit pattern changes — the
    /// cached values are produced by the exact expression the scalar path
    /// evaluates, keeping the likelihood bit-identical.
    ln_means: Vec<f64>,
    /// Bit pattern of the exposure `ln_means` was computed for
    /// (`f64::NAN.to_bits()` = never computed; NaN never matches itself
    /// by value, so compare bits).
    ln_means_exposure: u64,
}

impl RateModel {
    /// New model with the uniform prior of §3.1 ("at program startup, all
    /// values of λ are equally probable").
    pub fn new(cfg: SproutConfig) -> Self {
        let kernel = Arc::new(TransitionKernel::new(&cfg));
        Self::with_kernel(cfg, kernel)
    }

    /// New model sharing an existing kernel (the endpoint shares it with
    /// the forecast tables).
    pub fn with_kernel(cfg: SproutConfig, kernel: Arc<TransitionKernel>) -> Self {
        cfg.validate();
        let n = cfg.num_bins;
        RateModel {
            cfg,
            kernel,
            dist: vec![1.0 / n as f64; n],
            scratch: vec![0.0; n],
            ln_means: vec![0.0; n],
            ln_means_exposure: f64::NAN.to_bits(),
        }
    }

    /// The configuration this model runs with.
    pub fn config(&self) -> &SproutConfig {
        &self.cfg
    }

    /// The shared evolution kernel.
    pub fn kernel(&self) -> &Arc<TransitionKernel> {
        &self.kernel
    }

    /// Current posterior over rate bins (sums to 1).
    pub fn distribution(&self) -> &[f64] {
        &self.dist
    }

    /// Reset to the uniform prior.
    pub fn reset_uniform(&mut self) {
        let n = self.dist.len() as f64;
        self.dist.fill(1.0 / n);
    }

    /// Step 1 of the tick (§3.2): evolve the distribution one tick.
    pub fn evolve(&mut self) {
        self.kernel.evolve_into(&self.dist, &mut self.scratch);
        std::mem::swap(&mut self.dist, &mut self.scratch);
    }

    /// Steps 2–3 of the tick (§3.2): multiply in the Poisson likelihood of
    /// having observed `packets` packet-equivalents over one full tick,
    /// then renormalize.
    pub fn observe(&mut self, packets: f64) {
        let tau = self.cfg.tick_secs();
        self.observe_exposed(packets, tau);
    }

    /// Censored observation: `packets` arrived during `exposure_secs` of
    /// *queue-backed* time (the §3.2 time-to-next mechanism tells the
    /// receiver how much of the tick the sender's queue was empty; that
    /// idle time carries no information about the link and is excluded
    /// from the Poisson exposure). Likelihoods are floored (relative to
    /// the maximum) to keep a surprising observation from annihilating
    /// the posterior.
    pub fn observe_exposed(&mut self, packets: f64, exposure_secs: f64) {
        assert!(packets >= 0.0 && packets.is_finite());
        assert!(exposure_secs > 0.0 && exposure_secs.is_finite());
        let tau = exposure_secs;
        let n = self.dist.len();
        // ln Γ(packets + 1) depends only on the observation, not the bin:
        // hoist the Lanczos evaluation out of the loop. Combined with the
        // cached ln-means this reduces the per-bin work to one multiply,
        // two subtractions and a max — the exact operations (in the exact
        // order) `poisson_ln_pmf(packets, mean)` performs, so the
        // log-likelihoods are bit-identical to the scalar path.
        let lgk1 = ln_gamma(packets + 1.0);
        self.refresh_ln_means(tau);
        // Log-likelihood per bin, max-normalized before exponentiation.
        let mut max_ll = f64::NEG_INFINITY;
        for i in 0..n {
            let mean = self.cfg.bin_rate_pps(i) * tau;
            let ll = if mean == 0.0 {
                if packets == 0.0 {
                    0.0
                } else {
                    f64::NEG_INFINITY
                }
            } else {
                packets * self.ln_means[i] - mean - lgk1
            };
            self.scratch[i] = ll;
            if ll > max_ll {
                max_ll = ll;
            }
        }
        if !max_ll.is_finite() {
            // Impossible observation under every bin (cannot happen with a
            // positive grid, but stay defensive): skip the update.
            return;
        }
        let floor = self.cfg.likelihood_floor;
        // `exp` is the costliest op left in this loop, and for a peaked
        // likelihood most bins land on the floor anyway. Skipping the call
        // when `x < ln(floor) − 1e-9` is exact: exp is monotone with ~1 ulp
        // relative error, so `exp(x) ≤ floor·e^{−1e-9}·(1+ε) < floor` and
        // `max` would have produced precisely `floor`.
        let skip_below = floor.ln() - 1e-9;
        for i in 0..n {
            let x = self.scratch[i] - max_ll;
            let like = if x < skip_below {
                floor
            } else {
                x.exp().max(floor)
            };
            self.dist[i] *= like;
        }
        self.normalize();
    }

    /// Recompute the cached `ln(mean)` table if `exposure` differs (by bit
    /// pattern) from the one it was built for.
    fn refresh_ln_means(&mut self, exposure: f64) {
        let bits = exposure.to_bits();
        if self.ln_means_exposure == bits {
            return;
        }
        for i in 0..self.ln_means.len() {
            self.ln_means[i] = (self.cfg.bin_rate_pps(i) * exposure).ln();
        }
        self.ln_means_exposure = bits;
    }

    /// Renormalize the posterior to sum to 1, resetting to uniform if the
    /// mass underflowed entirely.
    pub fn normalize(&mut self) {
        let total: f64 = self.dist.iter().sum();
        if total > 0.0 && total.is_finite() {
            for p in &mut self.dist {
                *p /= total;
            }
        } else {
            self.reset_uniform();
        }
    }

    /// Posterior mean rate, packets per second.
    pub fn mean_rate_pps(&self) -> f64 {
        self.dist
            .iter()
            .enumerate()
            .map(|(i, &p)| p * self.cfg.bin_rate_pps(i))
            .sum()
    }

    /// Lower `pct` percentile of the posterior rate, packets per second.
    pub fn percentile_rate_pps(&self, pct: f64) -> f64 {
        assert!((0.0..=100.0).contains(&pct));
        let want = pct / 100.0;
        let mut acc = 0.0;
        for (i, &p) in self.dist.iter().enumerate() {
            acc += p;
            if acc >= want {
                return self.cfg.bin_rate_pps(i);
            }
        }
        self.cfg.max_rate_pps
    }

    /// Probability currently assigned to the outage state (bin 0).
    pub fn outage_probability(&self) -> f64 {
        self.dist[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SproutConfig {
        SproutConfig::test_small()
    }

    fn assert_is_distribution(d: &[f64]) {
        let sum: f64 = d.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(d.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
    }

    #[test]
    fn evolution_conserves_probability() {
        let mut m = RateModel::new(small());
        for _ in 0..200 {
            m.evolve();
            assert_is_distribution(m.distribution());
        }
    }

    #[test]
    fn evolution_spreads_a_point_mass() {
        let mut m = RateModel::new(small());
        let n = m.distribution().len();
        m.dist.fill(0.0);
        m.dist[n / 2] = 1.0;
        m.evolve();
        let nonzero = m.distribution().iter().filter(|&&p| p > 1e-12).count();
        assert!(nonzero > 3, "Brownian step must blur: {nonzero} bins");
        assert_is_distribution(m.distribution());
    }

    #[test]
    fn observation_concentrates_posterior_near_true_rate() {
        // Feed 60 ticks of observations from a steady 100 pps link
        // (2 packets per 20 ms tick): the posterior mean should converge
        // near 100 pps.
        let mut m = RateModel::new(small());
        for _ in 0..60 {
            m.evolve();
            m.observe(2.0);
        }
        let mean = m.mean_rate_pps();
        assert!(
            (mean - 100.0).abs() < 30.0,
            "posterior mean {mean} pps, want ≈100"
        );
        assert_is_distribution(m.distribution());
    }

    #[test]
    fn zero_observations_drive_toward_outage() {
        let mut m = RateModel::new(small());
        // Converge on a healthy rate first.
        for _ in 0..30 {
            m.evolve();
            m.observe(2.0);
        }
        assert!(m.outage_probability() < 0.05);
        // Then silence: the model must shift mass toward λ = 0.
        for _ in 0..50 {
            m.evolve();
            m.observe(0.0);
        }
        assert!(
            m.percentile_rate_pps(50.0) < 20.0,
            "median {} pps should collapse toward 0",
            m.percentile_rate_pps(50.0)
        );
    }

    #[test]
    fn outage_is_sticky_under_evolution_alone() {
        let mut m = RateModel::new(small());
        m.dist.fill(0.0);
        m.dist[0] = 1.0;
        m.evolve();
        // One tick with λz=1: stay probability is exp(-0.02) ≈ 0.980.
        assert!(
            (m.outage_probability() - 0.980).abs() < 0.002,
            "outage stay prob {}",
            m.outage_probability()
        );
        // Escape is exponential at rate λz, and the reflecting boundary
        // keeps escaped mass from diffusing back, so bin-0 occupancy after
        // 1 s is exactly exp(−λz·1s) = e^-1 (§3.1: outage durations follow
        // exp[−λz]).
        let mut prev = m.outage_probability();
        for _ in 0..49 {
            m.evolve();
            let cur = m.outage_probability();
            assert!(cur <= prev + 1e-12, "occupancy must not grow");
            prev = cur;
        }
        let stayed = m.outage_probability();
        assert!(
            (stayed - (-1.0f64).exp()).abs() < 1e-6,
            "after 1 s, occupancy {stayed} should equal e^-1"
        );
    }

    #[test]
    fn recovery_after_outage_when_packets_return() {
        let mut m = RateModel::new(small());
        for _ in 0..100 {
            m.evolve();
            m.observe(0.0);
        }
        assert!(m.percentile_rate_pps(50.0) < 10.0);
        for _ in 0..50 {
            m.evolve();
            m.observe(3.0); // 150 pps
        }
        let mean = m.mean_rate_pps();
        assert!(mean > 80.0, "model must recover, mean {mean}");
    }

    #[test]
    fn fractional_observations_are_accepted() {
        let mut m = RateModel::new(small());
        m.evolve();
        m.observe(0.04); // a 60-byte heartbeat
        assert_is_distribution(m.distribution());
    }

    #[test]
    fn surprising_observation_does_not_collapse_posterior() {
        let mut m = RateModel::new(small());
        // Convince the model the link is dead...
        for _ in 0..200 {
            m.evolve();
            m.observe(0.0);
        }
        // ...then hit it with sustained bursts far beyond any bin's
        // per-tick mean. The likelihood floor keeps the posterior finite
        // (no collapse) and lets it flip to high rates within a few ticks
        // instead of being trapped by the astronomically confident prior.
        for _ in 0..6 {
            m.evolve();
            m.observe(8.0); // 400 pps-equivalent, above the 250 pps grid top
            assert_is_distribution(m.distribution());
        }
        assert!(
            m.percentile_rate_pps(50.0) > 100.0,
            "median {} pps should flip high",
            m.percentile_rate_pps(50.0)
        );
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut m = RateModel::new(small());
        for _ in 0..20 {
            m.evolve();
            m.observe(1.0);
        }
        let p5 = m.percentile_rate_pps(5.0);
        let p50 = m.percentile_rate_pps(50.0);
        let p95 = m.percentile_rate_pps(95.0);
        assert!(p5 <= p50 && p50 <= p95, "{p5} {p50} {p95}");
    }

    #[test]
    fn csr_rows_are_stochastic_and_match_scatter_row() {
        let k = TransitionKernel::new(&small());
        let s = k.scatter();
        assert_eq!(s.num_bins(), small().num_bins);
        assert!(s.max_reach() >= k.half_width());
        for j in 0..s.num_bins() {
            let (dests, weights) = s.row(j);
            assert!(!dests.is_empty());
            // Rows are probability distributions with ascending,
            // deduplicated destinations.
            let sum: f64 = weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {j} sums to {sum}");
            assert!(dests.windows(2).all(|w| w[0] < w[1]), "row {j} not sorted");
            // The materialized view agrees.
            let owned = k.scatter_row(j);
            assert_eq!(owned.len(), dests.len());
            for ((d, w), (&cd, &cw)) in owned.iter().zip(dests.iter().zip(weights.iter())) {
                assert_eq!(*d, cd as usize);
                assert_eq!(*w, cw);
            }
        }
    }

    #[test]
    fn evolve_into_matches_manual_row_application() {
        let cfg = small();
        let k = TransitionKernel::new(&cfg);
        let n = cfg.num_bins;
        // An arbitrary distribution touching the outage bin, the bulk,
        // and both boundaries.
        let mut src = vec![0.0; n];
        src[0] = 0.25;
        src[1] = 0.10;
        src[n / 2] = 0.40;
        src[n - 1] = 0.25;
        let mut dst = vec![0.0; n];
        k.evolve_into(&src, &mut dst);
        let mut manual = vec![0.0; n];
        for (j, &p) in src.iter().enumerate() {
            for (d, w) in k.scatter_row(j) {
                manual[d] += p * w;
            }
        }
        for (a, b) in dst.iter().zip(manual.iter()) {
            assert!((a - b).abs() < 1e-15, "{a} vs {b}");
        }
    }

    #[test]
    fn evolve_into_bitwise_matches_reference() {
        for cfg in [small(), SproutConfig::paper()] {
            let k = TransitionKernel::new(&cfg);
            assert!(k.scatter().rows_are_contiguous());
            let n = cfg.num_bins;
            // A handful of shapes: uniform, point masses at the edges,
            // and a sparse comb (exercises the zero-skip).
            let mut shapes: Vec<Vec<f64>> = vec![vec![1.0 / n as f64; n]];
            for idx in [0, 1, n / 2, n - 1] {
                let mut d = vec![0.0; n];
                d[idx] = 1.0;
                shapes.push(d);
            }
            let mut comb = vec![0.0; n];
            for i in (0..n).step_by(7) {
                comb[i] = 1.0 / n.div_ceil(7) as f64;
            }
            shapes.push(comb);
            for src in shapes {
                let mut fast = vec![0.0; n];
                let mut slow = vec![0.0; n];
                k.evolve_into(&src, &mut fast);
                k.evolve_into_reference(&src, &mut slow);
                for (a, b) in fast.iter().zip(slow.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn observe_exposed_bitwise_matches_poisson_reference() {
        use crate::stats::poisson_ln_pmf;
        let cfg = small();
        let mut m = RateModel::new(cfg.clone());
        // Mix of full-tick and censored exposures, repeats (cache hits)
        // and switches (cache refreshes), zero and surprise observations.
        let obs = [
            (2.0, cfg.tick_secs()),
            (0.0, cfg.tick_secs()),
            (3.5, 0.013),
            (8.0, cfg.tick_secs()),
            (0.04, 0.020_3),
        ];
        for &(packets, exposure) in obs.iter().cycle().take(40) {
            m.evolve();
            // Reference update (the pre-hoist scalar formulation) applied
            // to a copy of the current posterior.
            let prior: Vec<f64> = m.distribution().to_vec();
            let n = prior.len();
            let mut max_ll = f64::NEG_INFINITY;
            let lls: Vec<f64> = (0..n)
                .map(|i| {
                    let ll = poisson_ln_pmf(packets, cfg.bin_rate_pps(i) * exposure);
                    max_ll = max_ll.max(ll);
                    ll
                })
                .collect();
            assert!(max_ll.is_finite());
            let mut expect = prior;
            for (p, &ll) in expect.iter_mut().zip(lls.iter()) {
                *p *= (ll - max_ll).exp().max(cfg.likelihood_floor);
            }
            let total: f64 = expect.iter().sum();
            for p in &mut expect {
                *p /= total;
            }
            m.observe_exposed(packets, exposure);
            for (a, b) in m.distribution().iter().zip(expect.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn kernel_width_matches_sigma() {
        // Paper config: σ√τ = 200·√0.02 ≈ 28.3 pps; bins are 3.92 pps wide;
        // ±4σ ≈ ±29 bins.
        let k = TransitionKernel::new(&SproutConfig::paper());
        assert!(
            k.half_width() >= 28 && k.half_width() <= 30,
            "{}",
            k.half_width()
        );
    }

    #[test]
    fn uniform_prior_at_startup() {
        let m = RateModel::new(small());
        let n = m.distribution().len() as f64;
        for &p in m.distribution() {
            assert!((p - 1.0 / n).abs() < 1e-12);
        }
    }
}
