//! The Sprout sender half (§3.4–3.5): queue-occupancy estimation from
//! feedback, the evolving window computed from the forecast, throwaway
//! numbers, and heartbeat scheduling.

use std::collections::VecDeque;

use crate::config::SproutConfig;
use crate::wire::WireForecast;
use sprout_trace::Timestamp;

/// The forecast currently steering the sender, rebased to sender time.
#[derive(Clone, Debug)]
struct ActiveForecast {
    /// When the forecast arrived at the sender (its tick 0 reference).
    received_at: Timestamp,
    /// Cumulative deliverable bytes per tick; index k = within k+1 ticks.
    cumulative_bytes: Vec<u64>,
    /// Receiver tick counter, to discard stale reordered forecasts.
    tick: u32,
    /// Forecast ticks already credited against the queue estimate.
    drained_ticks: usize,
}

impl ActiveForecast {
    /// Cumulative bytes deliverable within `k` ticks of `received_at`
    /// (k = 0 → 0).
    fn cumulative(&self, k: usize) -> u64 {
        if k == 0 {
            return 0;
        }
        let idx = (k - 1).min(self.cumulative_bytes.len() - 1);
        self.cumulative_bytes[idx]
    }
}

/// Sender-half state.
pub struct SproutSender {
    cfg: SproutConfig,
    /// Total wire bytes handed to the network on this direction.
    bytes_sent: u64,
    /// Estimated bytes still inside the network (queue + wire).
    queue_estimate: u64,
    forecast: Option<ActiveForecast>,
    /// Recent transmissions (send time, sequence number) for computing
    /// throwaway numbers (§3.4).
    recent_sends: VecDeque<(Timestamp, u64)>,
    /// Throwaway candidate: seq of the most recent packet sent more than
    /// `reorder_window` ago.
    throwaway: u64,
    /// Time of the last transmission (for heartbeat scheduling).
    last_send: Option<Timestamp>,
}

impl SproutSender {
    /// New sender at the start of a connection.
    pub fn new(cfg: SproutConfig) -> Self {
        SproutSender {
            cfg,
            bytes_sent: 0,
            queue_estimate: 0,
            forecast: None,
            recent_sends: VecDeque::new(),
            throwaway: 0,
            last_send: None,
        }
    }

    /// Ingest a feedback block. Stale forecasts (older receiver tick than
    /// the current one) are ignored; a fresh one re-anchors the queue
    /// estimate from the received-or-lost total (§3.4–3.5).
    pub fn on_feedback(&mut self, fb: &WireForecast, now: Timestamp) {
        if let Some(cur) = &self.forecast {
            if fb.tick < cur.tick {
                return;
            }
        }
        let unit = self.cfg.mtu_bytes as u64 / crate::forecast::UNITS_PER_MTU;
        let cumulative_bytes: Vec<u64> = fb
            .cumulative_units
            .iter()
            .map(|&c| c as u64 * unit)
            .collect();
        self.queue_estimate = self.bytes_sent.saturating_sub(fb.recv_or_lost_bytes);
        self.forecast = Some(ActiveForecast {
            received_at: now,
            cumulative_bytes,
            tick: fb.tick,
            drained_ticks: 0,
        });
    }

    /// Credit forecast ticks that have elapsed against the queue estimate
    /// (§3.5: "every time it advances into a new tick of the 8-tick
    /// forecast, it decrements the estimate by the amount of the
    /// forecast").
    pub fn advance(&mut self, now: Timestamp) {
        let Some(f) = &mut self.forecast else {
            return;
        };
        let elapsed = now.saturating_since(f.received_at).as_micros() / self.cfg.tick.as_micros();
        let elapsed = (elapsed as usize).min(f.cumulative_bytes.len());
        while f.drained_ticks < elapsed {
            let k = f.drained_ticks + 1;
            let delta = f.cumulative(k) - f.cumulative(k - 1);
            self.queue_estimate = self.queue_estimate.saturating_sub(delta);
            f.drained_ticks = k;
        }
    }

    /// The §3.5 window: bytes safe to transmit now such that everything
    /// clears the queue within the 100 ms lookahead with the forecast's
    /// confidence. Call [`advance`](Self::advance) first.
    pub fn window_bytes(&self, now: Timestamp) -> u64 {
        match &self.forecast {
            None => {
                // Startup: no forecast yet (the first one arrives within
                // ~1 RTT). Allow a single MTU so the receiver has
                // something to observe.
                self.cfg.mtu_bytes as u64
            }
            Some(f) => {
                let elapsed =
                    now.saturating_since(f.received_at).as_micros() / self.cfg.tick.as_micros();
                let e = (elapsed as usize).min(f.cumulative_bytes.len());
                let look = (e + self.cfg.lookahead_ticks).min(f.cumulative_bytes.len());
                let deliverable = f.cumulative(look) - f.cumulative(e);
                deliverable.saturating_sub(self.queue_estimate)
            }
        }
    }

    /// Bytes the current forecast still predicts deliverable from `now`
    /// to the end of its horizon — "the number of packets that can be
    /// delivered over the life of the forecast" (§4.3), used as the
    /// tunnel's total queue cap. Zero with no forecast.
    pub fn forecast_remaining_bytes(&self, now: Timestamp) -> u64 {
        match &self.forecast {
            None => 0,
            Some(f) => {
                let elapsed =
                    now.saturating_since(f.received_at).as_micros() / self.cfg.tick.as_micros();
                let e = (elapsed as usize).min(f.cumulative_bytes.len());
                f.cumulative(f.cumulative_bytes.len()) - f.cumulative(e)
            }
        }
    }

    /// Register a transmission of `wire_bytes`; returns the sequence
    /// number the packet must carry.
    pub fn on_send(&mut self, wire_bytes: u32, now: Timestamp) -> u64 {
        let seq = self.bytes_sent;
        self.bytes_sent += wire_bytes as u64;
        self.queue_estimate += wire_bytes as u64;
        self.recent_sends.push_back((now, seq));
        self.last_send = Some(now);
        self.refresh_throwaway(now);
        seq
    }

    /// Current throwaway number (§3.4): the sequence number of the most
    /// recent packet sent more than `reorder_window` before `now`.
    pub fn throwaway(&mut self, now: Timestamp) -> u64 {
        self.refresh_throwaway(now);
        self.throwaway
    }

    fn refresh_throwaway(&mut self, now: Timestamp) {
        while let Some(&(t, seq)) = self.recent_sends.front() {
            if now.saturating_since(t) > self.cfg.reorder_window {
                self.throwaway = self.throwaway.max(seq);
                self.recent_sends.pop_front();
            } else {
                break;
            }
        }
    }

    /// Whether a heartbeat is due: nothing sent for a heartbeat interval
    /// (§3.2: "the sender sends regular heartbeat packets when idle").
    pub fn heartbeat_due(&self, now: Timestamp) -> bool {
        match self.last_send {
            None => true,
            Some(t) => now.saturating_since(t) >= self.cfg.heartbeat_interval,
        }
    }

    /// Total wire bytes sent.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Current estimate of bytes inside the network.
    pub fn queue_estimate(&self) -> u64 {
        self.queue_estimate
    }

    /// Whether any forecast has been received yet.
    pub fn has_forecast(&self) -> bool {
        self.forecast.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WIRE_HORIZON;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn cfg() -> SproutConfig {
        SproutConfig::paper()
    }

    /// Feedback forecasting `per_tick` packets each tick (wire units are
    /// quarter-MTU, hence the ×4).
    fn fb(recv_or_lost: u64, tick: u32, per_tick: u16) -> WireForecast {
        let mut cumulative_units = [0u16; WIRE_HORIZON];
        for (i, c) in cumulative_units.iter_mut().enumerate() {
            *c = per_tick * 4 * (i as u16 + 1);
        }
        WireForecast {
            recv_or_lost_bytes: recv_or_lost,
            tick,
            cumulative_units,
        }
    }

    #[test]
    fn startup_window_is_one_mtu() {
        let s = SproutSender::new(cfg());
        assert_eq!(s.window_bytes(t(0)), 1_500);
    }

    #[test]
    fn window_is_lookahead_minus_queue() {
        let mut s = SproutSender::new(cfg());
        // Send 10 MTU first so there's something in the network.
        for _ in 0..10 {
            s.on_send(1_500, t(0));
        }
        // Feedback: receiver got 4 of them; forecast 2 packets per tick.
        s.on_feedback(&fb(6_000, 1, 2), t(10));
        // queue_estimate = 15000 − 6000 = 9000.
        assert_eq!(s.queue_estimate(), 9_000);
        // Lookahead 5 ticks × 2 pkts × 1500 = 15000; window = 15000−9000.
        assert_eq!(s.window_bytes(t(10)), 6_000);
    }

    #[test]
    fn queue_drains_as_forecast_ticks_pass() {
        let mut s = SproutSender::new(cfg());
        for _ in 0..10 {
            s.on_send(1_500, t(0));
        }
        s.on_feedback(&fb(0, 1, 2), t(10));
        assert_eq!(s.queue_estimate(), 15_000);
        // After 2 forecast ticks (40 ms), 2×2×1500 = 6000 credited.
        s.advance(t(50));
        assert_eq!(s.queue_estimate(), 9_000);
        // Window now looks at ticks 2..7: still 5 ticks of 3000 = 15000,
        // minus remaining queue 9000.
        assert_eq!(s.window_bytes(t(50)), 6_000);
    }

    #[test]
    fn lookahead_clamps_at_forecast_end() {
        let mut s = SproutSender::new(cfg());
        s.on_feedback(&fb(0, 1, 2), t(0));
        // 7 ticks in: only 1 tick of forecast remains (8−7).
        s.advance(t(141));
        let w = s.window_bytes(t(141));
        assert_eq!(w, 3_000); // one tick × 2 pkts × 1500
                              // Past the horizon: nothing deliverable.
        s.advance(t(161));
        assert_eq!(s.window_bytes(t(161)), 0);
    }

    #[test]
    fn stale_feedback_is_ignored() {
        let mut s = SproutSender::new(cfg());
        s.on_feedback(&fb(0, 10, 2), t(0));
        for _ in 0..4 {
            s.on_send(1_500, t(1));
        }
        // An old forecast (tick 9) arrives late and must not clobber.
        s.on_feedback(&fb(6_000, 9, 1), t(2));
        assert_eq!(s.queue_estimate(), 6_000); // unchanged by stale fb
                                               // Fresh forecast re-anchors.
        s.on_feedback(&fb(6_000, 11, 1), t(3));
        assert_eq!(s.queue_estimate(), 0);
    }

    #[test]
    fn window_never_goes_negative() {
        let mut s = SproutSender::new(cfg());
        s.on_feedback(&fb(0, 1, 1), t(0));
        for _ in 0..100 {
            s.on_send(1_500, t(1));
        }
        assert_eq!(s.window_bytes(t(1)), 0);
    }

    #[test]
    fn throwaway_trails_by_reorder_window() {
        let mut s = SproutSender::new(cfg());
        let s0 = s.on_send(1_500, t(0));
        let s1 = s.on_send(1_500, t(5));
        let _s2 = s.on_send(1_500, t(12));
        assert_eq!(s0, 0);
        assert_eq!(s1, 1_500);
        // At 12 ms: packets sent at 0 ms qualify (>10 ms old); 5 ms does
        // not (7 ms old).
        assert_eq!(s.throwaway(t(12)), 0);
        // At 16 ms: the 5 ms packet (11 ms old) qualifies → throwaway is
        // its seq.
        assert_eq!(s.throwaway(t(16)), 1_500);
        // Monotone even if queried far in the future.
        assert_eq!(s.throwaway(t(1_000)), 3_000);
    }

    #[test]
    fn heartbeat_after_idle_interval() {
        let mut s = SproutSender::new(cfg());
        assert!(s.heartbeat_due(t(0))); // never sent anything
        s.on_send(100, t(0));
        assert!(!s.heartbeat_due(t(10)));
        assert!(s.heartbeat_due(t(20)));
    }

    #[test]
    fn feedback_after_sends_accounts_in_flight() {
        let mut s = SproutSender::new(cfg());
        for _ in 0..4 {
            s.on_send(1_500, t(0));
        }
        assert_eq!(s.bytes_sent(), 6_000);
        // Receiver saw nothing yet.
        s.on_feedback(&fb(0, 1, 4), t(5));
        assert_eq!(s.queue_estimate(), 6_000);
        // 5-tick lookahead: 4×5×1500 = 30000 − 6000 = 24000.
        assert_eq!(s.window_bytes(t(5)), 24_000);
    }
}
