//! Sprout tuning parameters.
//!
//! The paper freezes its parameters before collecting traces (§3.1, §5):
//! σ = 200 MTU/s/√s, λz = 1/s, 256 rate bins over 0..1000 MTU/s, 20 ms
//! ticks, an 8-tick forecast, a 100 ms (5-tick) sender window lookahead,
//! and a 95%-confidence (5th-percentile) forecast. Those are the defaults
//! here; Figure 9 sweeps the confidence parameter.

use sprout_trace::{Duration, MTU_BYTES, TICK};

/// All tunables of a Sprout session. The model/forecast fields feed the
/// precomputed tables; the protocol fields govern the sender and wire.
#[derive(Clone, Debug, PartialEq)]
pub struct SproutConfig {
    /// Inference tick length (paper: 20 ms).
    pub tick: Duration,
    /// Number of discretized rate values (paper: 256).
    pub num_bins: usize,
    /// Largest modeled rate, MTU-sized packets per second (paper: 1000).
    pub max_rate_pps: f64,
    /// Brownian noise power σ, packets/s/√s (paper: 200).
    pub sigma: f64,
    /// Outage escape rate λz, 1/s (paper: 1).
    pub outage_escape_rate: f64,
    /// Forecast horizon in ticks (paper: 8 → 160 ms).
    pub horizon_ticks: usize,
    /// Sender window lookahead in ticks (paper: 5 → 100 ms).
    pub lookahead_ticks: usize,
    /// Forecast percentile: the forecast is a count the link will deliver
    /// with probability `100 − forecast_percentile` (paper default 5.0,
    /// i.e. 95% confidence; Figure 9 sweeps this).
    pub forecast_percentile: f64,
    /// Cumulative-volume axis size of the forecast tables, in quarter-MTU
    /// units. 768 quarters = 192 MTU over 160 ms ≈ 14 Mbps, above the
    /// rate grid's 11 Mbps ceiling.
    pub count_max: usize,
    /// Relative likelihood floor guarding against posterior collapse on
    /// surprising observations.
    pub likelihood_floor: f64,
    /// MTU in bytes; the unit of the rate grid and forecasts.
    pub mtu_bytes: u32,
    /// Reorder tolerance for the throwaway number (§3.4: packets sent
    /// more than 10 ms apart are assumed not to reorder).
    pub reorder_window: Duration,
    /// Idle-sender heartbeat interval (§3.2; one per tick).
    pub heartbeat_interval: Duration,
    /// Enable §3.2 time-to-next gating of observations. Disabling it
    /// exists only for the ablation benches
    /// (`crates/bench/benches/ablations.rs`): the receiver then
    /// treats every tick as fully exposed, mistaking sender idleness for
    /// outages.
    pub ttn_gating: bool,
}

impl Default for SproutConfig {
    fn default() -> Self {
        SproutConfig {
            tick: TICK,
            num_bins: 256,
            max_rate_pps: 1000.0,
            sigma: 200.0,
            outage_escape_rate: 1.0,
            horizon_ticks: 8,
            lookahead_ticks: 5,
            forecast_percentile: 5.0,
            count_max: 768,
            likelihood_floor: 1e-12,
            mtu_bytes: MTU_BYTES,
            reorder_window: Duration::from_millis(10),
            heartbeat_interval: TICK,
            ttn_gating: true,
        }
    }
}

impl SproutConfig {
    /// The paper's frozen configuration (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// The paper configuration at a different forecast confidence (Fig. 9:
    /// confidence ∈ {95, 75, 50, 25, 5} ⇒ percentile {5, 25, 50, 75, 95}).
    pub fn with_confidence_percent(confidence: f64) -> Self {
        assert!((0.0..100.0).contains(&confidence) && confidence > 0.0);
        SproutConfig {
            forecast_percentile: 100.0 - confidence,
            ..Self::default()
        }
    }

    /// A scaled-down configuration for fast unit tests: 64 bins to 250
    /// pps, short count axis. Keeps every code path, costs milliseconds.
    pub fn test_small() -> Self {
        SproutConfig {
            num_bins: 64,
            max_rate_pps: 250.0,
            sigma: 100.0,
            count_max: 256,
            ..Self::default()
        }
    }

    /// Rate-grid step in packets per second.
    pub fn bin_width_pps(&self) -> f64 {
        self.max_rate_pps / (self.num_bins - 1) as f64
    }

    /// Rate value of bin `i` in packets per second.
    pub fn bin_rate_pps(&self, i: usize) -> f64 {
        i as f64 * self.bin_width_pps()
    }

    /// Tick length in seconds.
    pub fn tick_secs(&self) -> f64 {
        self.tick.as_secs_f64()
    }

    /// Validate invariants; called by the model constructors.
    pub fn validate(&self) {
        assert!(self.num_bins >= 2, "need at least 2 rate bins");
        assert!(self.max_rate_pps > 0.0);
        assert!(self.sigma > 0.0);
        assert!(self.outage_escape_rate >= 0.0);
        assert!(self.horizon_ticks >= 1);
        assert!(
            self.lookahead_ticks >= 1 && self.lookahead_ticks <= self.horizon_ticks,
            "lookahead must fit inside the forecast horizon"
        );
        assert!(self.forecast_percentile > 0.0 && self.forecast_percentile < 100.0);
        assert!(self.count_max >= 8);
        assert!(self.tick > Duration::ZERO);
        assert!(self.mtu_bytes > 0);
    }

    /// Key identifying the precomputed-table inputs (used for caching).
    pub(crate) fn table_key(&self) -> TableKey {
        TableKey {
            num_bins: self.num_bins,
            horizon_ticks: self.horizon_ticks,
            count_max: self.count_max,
            max_rate_bits: self.max_rate_pps.to_bits(),
            sigma_bits: self.sigma.to_bits(),
            escape_bits: self.outage_escape_rate.to_bits(),
            tick_us: self.tick.as_micros(),
        }
    }
}

/// Hashable identity of the model/forecast table inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct TableKey {
    num_bins: usize,
    horizon_ticks: usize,
    count_max: usize,
    max_rate_bits: u64,
    sigma_bits: u64,
    escape_bits: u64,
    tick_us: u64,
}

impl TableKey {
    /// Stable byte encoding of the full key, for content-addressing the
    /// on-disk forecast-table artifact. Field order is frozen; any change
    /// to it must bump the table artifact's schema version.
    pub(crate) fn cache_key_bytes(&self) -> Vec<u8> {
        let mut w = sprout_cache::ByteWriter::with_capacity(7 * 8);
        w.u64(self.num_bins as u64)
            .u64(self.horizon_ticks as u64)
            .u64(self.count_max as u64)
            .u64(self.max_rate_bits)
            .u64(self.sigma_bits)
            .u64(self.escape_bits)
            .u64(self.tick_us);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_3() {
        let c = SproutConfig::paper();
        assert_eq!(c.tick.as_millis(), 20);
        assert_eq!(c.num_bins, 256);
        assert_eq!(c.max_rate_pps, 1000.0);
        assert_eq!(c.sigma, 200.0);
        assert_eq!(c.outage_escape_rate, 1.0);
        assert_eq!(c.horizon_ticks, 8);
        assert_eq!(c.lookahead_ticks, 5);
        assert_eq!(c.forecast_percentile, 5.0);
        c.validate();
    }

    #[test]
    fn confidence_maps_to_percentile() {
        assert_eq!(
            SproutConfig::with_confidence_percent(95.0).forecast_percentile,
            5.0
        );
        assert_eq!(
            SproutConfig::with_confidence_percent(25.0).forecast_percentile,
            75.0
        );
    }

    #[test]
    fn bin_grid_spans_zero_to_max() {
        let c = SproutConfig::paper();
        assert_eq!(c.bin_rate_pps(0), 0.0);
        assert!((c.bin_rate_pps(255) - 1000.0).abs() < 1e-9);
        assert!((c.bin_width_pps() - 1000.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn table_key_distinguishes_configs() {
        let a = SproutConfig::paper().table_key();
        let b = SproutConfig {
            sigma: 100.0,
            ..SproutConfig::paper()
        }
        .table_key();
        assert_ne!(a, b);
        let c = SproutConfig {
            forecast_percentile: 50.0, // not a table input
            ..SproutConfig::paper()
        }
        .table_key();
        assert_eq!(a, c);
    }

    #[test]
    #[should_panic]
    fn lookahead_beyond_horizon_is_rejected() {
        SproutConfig {
            lookahead_ticks: 9,
            ..SproutConfig::paper()
        }
        .validate();
    }

    #[test]
    fn test_small_is_valid() {
        SproutConfig::test_small().validate();
    }
}
