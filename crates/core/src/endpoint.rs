//! The full-duplex Sprout endpoint: receiver inference + sender window,
//! assembled behind the sans-IO [`sprout_sim::Endpoint`] trait
//! so the same state machine runs under the virtual-time emulator and the
//! real-UDP driver.

use bytes::Bytes;

use crate::config::SproutConfig;
use crate::forecaster::{BayesianForecaster, EwmaForecaster, Forecaster};
use crate::receiver::SproutReceiver;
use crate::sender::SproutSender;
use crate::wire::{SproutHeader, WireForecast, FULL_HEADER_LEN};
use sprout_sim::{Endpoint, FlowId, Packet};
use sprout_trace::{Duration, Timestamp};

/// Application traffic source feeding the sender.
#[derive(Clone, Debug)]
enum AppSource {
    /// Always has data (bulk/saturating workloads; the paper's main
    /// evaluation saturates the protocol, §5.1).
    Saturating,
    /// A byte bucket filled by `push_app_bytes` (videoconference-style
    /// frame sources).
    Buffered(u64),
    /// A queue of opaque datagrams with preserved boundaries (the
    /// SproutTunnel encapsulation mode, §4.3). Each datagram rides in its
    /// own Sprout packet.
    Datagrams(std::collections::VecDeque<Bytes>),
}

impl AppSource {
    fn available(&self) -> u64 {
        match self {
            AppSource::Saturating => u64::MAX,
            AppSource::Buffered(n) => *n,
            AppSource::Datagrams(q) => q.iter().map(|d| d.len() as u64).sum(),
        }
    }

    fn consume(&mut self, n: u64) {
        if let AppSource::Buffered(b) = self {
            *b = b.saturating_sub(n);
        }
    }
}

/// What goes after the header of an outgoing packet.
enum PacketBody {
    /// Opaque zero filler of the given length (benchmark workloads).
    Padding(u16),
    /// An encapsulated client datagram (tunnel mode).
    Datagram(Bytes),
}

/// Counters exposed for tests, examples, and experiment logging.
#[derive(Clone, Copy, Debug, Default)]
pub struct EndpointStats {
    /// Data-bearing packets sent.
    pub data_packets_sent: u64,
    /// Control packets sent (feedback-only and heartbeats).
    pub control_packets_sent: u64,
    /// Packets received and decoded.
    pub packets_received: u64,
    /// Packets that failed to decode (should stay 0 in experiments).
    pub decode_errors: u64,
    /// Application payload bytes sent.
    pub app_bytes_sent: u64,
    /// Application payload bytes received.
    pub app_bytes_received: u64,
}

/// A Sprout endpoint. Construct one per side of a session; wire them with
/// the emulator ([`sprout_sim::Simulation`]) or the UDP driver.
pub struct SproutEndpoint {
    cfg: SproutConfig,
    sender: SproutSender,
    receiver: SproutReceiver,
    app: AppSource,
    /// Fresh feedback should be sent (a receiver tick completed).
    need_feedback: bool,
    flow: FlowId,
    stats: EndpointStats,
    /// Emulator-level packet counter (diagnostic sequence).
    packet_counter: u64,
    /// Slack added to announced time-to-next so in-order queue drain does
    /// not spuriously expire the promise at the receiver.
    ttn_margin: Duration,
    /// Datagrams decapsulated from received tunnel-mode packets.
    delivered_datagrams: Vec<Bytes>,
}

impl SproutEndpoint {
    /// Standard Sprout endpoint (Bayesian forecaster, paper config).
    pub fn new(cfg: SproutConfig) -> Self {
        let f = Box::new(BayesianForecaster::new(cfg.clone()));
        Self::with_forecaster(cfg, f)
    }

    /// Sprout-EWMA endpoint (§5.3 ablation).
    pub fn new_ewma(cfg: SproutConfig) -> Self {
        let f = Box::new(EwmaForecaster::new(cfg.clone()));
        Self::with_forecaster(cfg, f)
    }

    /// Endpoint with a custom forecaster.
    pub fn with_forecaster(cfg: SproutConfig, forecaster: Box<dyn Forecaster>) -> Self {
        cfg.validate();
        let receiver = SproutReceiver::new(cfg.clone(), forecaster, Timestamp::ZERO);
        SproutEndpoint {
            sender: SproutSender::new(cfg.clone()),
            receiver,
            cfg,
            app: AppSource::Buffered(0),
            need_feedback: false,
            flow: FlowId::PRIMARY,
            stats: EndpointStats::default(),
            packet_counter: 0,
            ttn_margin: Duration::from_millis(2),
            delivered_datagrams: Vec::new(),
        }
    }

    /// Mark this endpoint's application as always having data to send.
    pub fn set_saturating(&mut self) {
        self.app = AppSource::Saturating;
    }

    /// Add application bytes to the send buffer (no effect if saturating).
    pub fn push_app_bytes(&mut self, bytes: u64) {
        if let AppSource::Buffered(b) = &mut self.app {
            *b += bytes;
        }
    }

    /// Switch to datagram mode (tunnel encapsulation) and enqueue one
    /// datagram. Boundaries are preserved end to end; each datagram
    /// travels in its own Sprout packet (the wire packet may slightly
    /// exceed the MTU for full-size client packets — the emulator's
    /// per-byte accounting handles that, and a real deployment would rely
    /// on IP fragmentation exactly as tunnels over UDP do).
    pub fn push_app_datagram(&mut self, datagram: Bytes) {
        match &mut self.app {
            AppSource::Datagrams(q) => q.push_back(datagram),
            _ => {
                let mut q = std::collections::VecDeque::new();
                q.push_back(datagram);
                self.app = AppSource::Datagrams(q);
            }
        }
    }

    /// Datagrams decapsulated from received Sprout packets, in arrival
    /// order.
    pub fn take_app_datagrams(&mut self) -> Vec<Bytes> {
        std::mem::take(&mut self.delivered_datagrams)
    }

    /// Bytes the peer is predicted to accept over the remaining life of
    /// the current forecast (§4.3 uses this as the tunnel's total queue
    /// cap). Zero before the first forecast arrives.
    pub fn forecast_life_bytes(&mut self, now: Timestamp) -> u64 {
        self.sender.advance(now);
        self.sender.forecast_remaining_bytes(now)
    }

    /// Bytes waiting in the application send buffer (`u64::MAX` when
    /// saturating).
    pub fn app_backlog(&self) -> u64 {
        self.app.available()
    }

    /// Set the flow id stamped on outgoing packets (tunnel use).
    pub fn set_flow(&mut self, flow: FlowId) {
        self.flow = flow;
    }

    /// Endpoint counters.
    pub fn stats(&self) -> EndpointStats {
        self.stats
    }

    /// The sender half (diagnostics).
    pub fn sender(&self) -> &SproutSender {
        &self.sender
    }

    /// The receiver half (diagnostics).
    pub fn receiver(&self) -> &SproutReceiver {
        &self.receiver
    }

    /// Current send window in bytes (after advancing to `now`).
    pub fn window_bytes(&mut self, now: Timestamp) -> u64 {
        self.sender.advance(now);
        self.sender.window_bytes(now)
    }

    fn next_wakeup_at(&self) -> Timestamp {
        self.receiver.next_tick_end()
    }

    fn build_packet(
        &mut self,
        body: PacketBody,
        heartbeat: bool,
        forecast: Option<WireForecast>,
        ttn: Duration,
        now: Timestamp,
    ) -> Packet {
        let header_len = if forecast.is_some() {
            FULL_HEADER_LEN
        } else {
            crate::wire::BASE_HEADER_LEN
        };
        let (payload_len, datagram) = match &body {
            PacketBody::Padding(n) => (*n, false),
            PacketBody::Datagram(d) => (d.len() as u16, true),
        };
        let wire_len = (header_len + payload_len as usize) as u32;
        let seq = self.sender.on_send(wire_len, now);
        let header = SproutHeader {
            seq,
            throwaway: self.sender.throwaway(now),
            time_to_next: ttn,
            sent_at: now,
            heartbeat,
            datagram,
            forecast,
            payload_len,
        };
        let payload: Bytes = match &body {
            PacketBody::Padding(_) => header.encode_with_padding(),
            PacketBody::Datagram(d) => header.encode_with_payload(d),
        };
        self.packet_counter += 1;
        Packet {
            flow: self.flow,
            seq: self.packet_counter,
            sent_at: Timestamp::ZERO, // stamped by the driver
            size: wire_len,
            payload,
        }
    }
}

impl Endpoint for SproutEndpoint {
    fn on_packet(&mut self, packet: Packet, now: Timestamp) {
        let header = match SproutHeader::decode(&packet.payload) {
            Ok(h) => h,
            Err(_) => {
                self.stats.decode_errors += 1;
                return;
            }
        };
        self.stats.packets_received += 1;
        self.stats.app_bytes_received += header.payload_len as u64;
        if header.datagram
            && packet.payload.len() >= header.encoded_len() + header.payload_len as usize
        {
            let start = header.encoded_len();
            self.delivered_datagrams.push(
                packet
                    .payload
                    .slice(start..start + header.payload_len as usize),
            );
        }
        self.receiver.on_packet(&header, packet.size, now);
        if let Some(fb) = &header.forecast {
            self.sender.on_feedback(fb, now);
        }
    }

    fn poll_into(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
        if self.receiver.process_ticks(now) > 0 {
            self.need_feedback = true;
        }
        self.sender.advance(now);

        // `out` may carry other endpoints' packets; everything from
        // `start` on is this flight.
        let start = out.len();
        // One feedback block per poll, shared by every packet in the
        // flight (the receiver keeps only the freshest tick anyway).
        let feedback = self.receiver.make_feedback();

        // --- data packets, governed by the window (§3.5) ---
        let mut window = self.sender.window_bytes(now);
        let max_payload = (self.cfg.mtu_bytes as usize - FULL_HEADER_LEN) as u64;
        loop {
            let body = match &mut self.app {
                AppSource::Datagrams(q) => {
                    let Some(front_len) = q.front().map(|d| d.len() as u64) else {
                        break;
                    };
                    let wire = front_len + FULL_HEADER_LEN as u64;
                    if window < wire {
                        break;
                    }
                    window -= wire;
                    let d = q.pop_front().unwrap();
                    self.stats.app_bytes_sent += d.len() as u64;
                    PacketBody::Datagram(d)
                }
                _ => {
                    if self.app.available() == 0 {
                        break;
                    }
                    let payload = self.app.available().min(max_payload);
                    let wire = payload + FULL_HEADER_LEN as u64;
                    if window < wire {
                        break;
                    }
                    window -= wire;
                    self.app.consume(payload);
                    self.stats.app_bytes_sent += payload;
                    PacketBody::Padding(payload as u16)
                }
            };
            self.stats.data_packets_sent += 1;
            let pkt = self.build_packet(body, false, Some(feedback.clone()), Duration::ZERO, now);
            out.push(pkt);
        }

        // --- control packet: feedback each tick / heartbeat when idle ---
        // Control packets bypass the window (they are ~60 bytes and carry
        // the feedback that un-sticks the whole session), but they do
        // count against the sequence space and queue estimate.
        if out.len() == start && (self.need_feedback || self.sender.heartbeat_due(now)) {
            let heartbeat = self.sender.heartbeat_due(now);
            let pkt = self.build_packet(
                PacketBody::Padding(0),
                heartbeat,
                Some(feedback),
                Duration::ZERO,
                now,
            );
            self.stats.control_packets_sent += 1;
            out.push(pkt);
        }
        if out.len() > start {
            self.need_feedback = false;
            // The final packet of every flight announces when we will
            // speak next (§3.2: "for a flight of several packets, the
            // time-to-next will be zero for all but the last packet").
            // The receiver cancels the promise if it turns out the queue
            // was backlogged (the next arrival shows queueing delay).
            let ttn = self.next_wakeup_at().saturating_since(now) + self.ttn_margin;
            if let Some(last) = out.last_mut() {
                patch_time_to_next(last, ttn);
            }
        }
    }

    fn next_wakeup(&self) -> Option<Timestamp> {
        Some(self.next_wakeup_at())
    }
}

/// Rewrite the time-to-next field of an already-encoded packet. The field
/// lives at a fixed offset, so this avoids re-encoding the whole packet —
/// and a freshly built payload has no other owners, so the usual case is
/// an in-place patch with no copy at all.
fn patch_time_to_next(packet: &mut Packet, ttn: Duration) {
    // Offset 4: u32 LE time-to-next (see wire.rs layout).
    let us = (ttn.as_micros() as u32).to_le_bytes();
    if let Some(buf) = packet.payload.try_mut() {
        buf[4..8].copy_from_slice(&us);
    } else {
        let mut buf = packet.payload.to_vec();
        buf[4..8].copy_from_slice(&us);
        packet.payload = Bytes::from(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn endpoint() -> SproutEndpoint {
        SproutEndpoint::new_ewma(SproutConfig::test_small())
    }

    #[test]
    fn idle_endpoint_heartbeats_every_tick() {
        let mut e = endpoint();
        let mut control = 0;
        for ms in (0..200).step_by(20) {
            let pkts = e.poll(t(ms));
            control += pkts.len();
            for p in &pkts {
                let h = SproutHeader::decode(&p.payload).unwrap();
                assert_eq!(h.payload_len, 0);
                assert!(h.forecast.is_some());
                assert!(h.time_to_next > Duration::ZERO);
            }
        }
        assert!(control >= 9, "one control packet per tick, got {control}");
        assert_eq!(e.stats().data_packets_sent, 0);
    }

    #[test]
    fn startup_sends_limited_data_before_forecast() {
        let mut e = endpoint();
        e.set_saturating();
        let pkts = e.poll(t(0));
        // Startup window is one MTU: at most one data packet (plus no
        // separate control packet since data carries the feedback).
        let data: Vec<_> = pkts
            .iter()
            .filter(|p| SproutHeader::decode(&p.payload).unwrap().payload_len > 0)
            .collect();
        assert_eq!(data.len(), 1);
    }

    #[test]
    fn forecast_feedback_opens_window() {
        let mut e = endpoint();
        e.set_saturating();
        let _ = e.poll(t(0));
        // Hand-craft generous feedback: 4 packets per tick, nothing lost.
        let fb = WireForecast {
            recv_or_lost_bytes: e.sender().bytes_sent(),
            tick: 1,
            cumulative_units: [16, 32, 48, 64, 80, 96, 112, 128],
        };
        let mut packet_with_fb = SproutHeader {
            seq: 0,
            throwaway: 0,
            time_to_next: Duration::ZERO,
            sent_at: t(0),
            heartbeat: false,
            datagram: false,
            forecast: Some(fb),
            payload_len: 0,
        }
        .encode_with_padding();
        let _ = &mut packet_with_fb;
        let pkt = Packet {
            flow: FlowId::PRIMARY,
            seq: 0,
            sent_at: t(0),
            size: packet_with_fb.len() as u32,
            payload: packet_with_fb,
        };
        e.on_packet(pkt, t(25));
        let pkts = e.poll(t(25));
        // Window: 5 ticks × 4 pkts × 1500 B = 30 kB minus queue estimate;
        // expect a burst of MTU-sized data packets.
        let data_count = pkts
            .iter()
            .filter(|p| SproutHeader::decode(&p.payload).unwrap().payload_len > 0)
            .count();
        assert!(data_count >= 10, "window should open: {data_count} packets");
        // All but the last packet of the flight carry time-to-next zero;
        // the flight-final packet announces the next transmission (§3.2).
        let headers: Vec<_> = pkts
            .iter()
            .map(|p| SproutHeader::decode(&p.payload).unwrap())
            .collect();
        for h in &headers[..headers.len() - 1] {
            assert_eq!(h.time_to_next, Duration::ZERO);
        }
        assert!(headers.last().unwrap().time_to_next > Duration::ZERO);
    }

    #[test]
    fn idle_heartbeats_carry_promises() {
        let mut e = endpoint();
        // Idle endpoint: heartbeats must carry a positive time-to-next so
        // the peer's observations stay gated during the silence.
        let pkts = e.poll(t(0));
        assert_eq!(pkts.len(), 1);
        let h = SproutHeader::decode(&pkts[0].payload).unwrap();
        assert!(h.heartbeat);
        assert!(h.time_to_next > Duration::ZERO);
    }

    #[test]
    fn app_limited_sends_only_backlog() {
        let mut e = endpoint();
        e.push_app_bytes(2_000);
        // Give it a forecast so the window is not the bottleneck.
        let fb = WireForecast {
            recv_or_lost_bytes: 0,
            tick: 1,
            cumulative_units: [40, 80, 120, 160, 200, 240, 280, 320],
        };
        let payload = SproutHeader {
            seq: 0,
            throwaway: 0,
            time_to_next: Duration::ZERO,
            sent_at: t(0),
            heartbeat: false,
            datagram: false,
            forecast: Some(fb),
            payload_len: 0,
        }
        .encode_with_padding();
        e.on_packet(
            Packet {
                flow: FlowId::PRIMARY,
                seq: 0,
                sent_at: t(0),
                size: payload.len() as u32,
                payload,
            },
            t(5),
        );
        let pkts = e.poll(t(5));
        let sent: u64 = pkts
            .iter()
            .map(|p| SproutHeader::decode(&p.payload).unwrap().payload_len as u64)
            .sum();
        assert_eq!(sent, 2_000);
        assert_eq!(e.app_backlog(), 0);
        assert_eq!(e.stats().app_bytes_sent, 2_000);
    }

    #[test]
    fn malformed_packets_are_counted_not_fatal() {
        let mut e = endpoint();
        e.on_packet(
            Packet::from_payload(FlowId::PRIMARY, 0, Bytes::from_static(b"garbage")),
            t(0),
        );
        assert_eq!(e.stats().decode_errors, 1);
        assert_eq!(e.stats().packets_received, 0);
    }

    #[test]
    fn patch_time_to_next_rewrites_field() {
        let mut e = endpoint();
        e.set_saturating();
        let mut pkts = e.poll(t(0));
        let pkt = pkts.last_mut().unwrap();
        patch_time_to_next(pkt, Duration::from_millis(123));
        let h = SproutHeader::decode(&pkt.payload).unwrap();
        assert_eq!(h.time_to_next, Duration::from_millis(123));
    }

    #[test]
    fn datagrams_round_trip_with_boundaries_preserved() {
        use bytes::Bytes;
        let mut tx = endpoint();
        let mut rx = endpoint();
        tx.push_app_datagram(Bytes::from_static(b"first datagram"));
        tx.push_app_datagram(Bytes::from_static(b"second"));
        // Walk packets across a perfect wire for a few ticks.
        for step in 0..10u64 {
            let now = t(step * 20);
            for p in tx.poll(now) {
                rx.on_packet(p, now);
            }
            for p in rx.poll(now) {
                tx.on_packet(p, now);
            }
        }
        let got = rx.take_app_datagrams();
        assert_eq!(got.len(), 2, "both datagrams delivered");
        assert_eq!(&got[0][..], b"first datagram");
        assert_eq!(&got[1][..], b"second");
        // Taking drains the queue.
        assert!(rx.take_app_datagrams().is_empty());
    }

    #[test]
    fn forecast_life_bytes_tracks_feedback() {
        let mut e = endpoint();
        assert_eq!(e.forecast_life_bytes(t(0)), 0, "no forecast yet");
        let fb = WireForecast {
            recv_or_lost_bytes: 0,
            tick: 1,
            cumulative_units: [16, 32, 48, 64, 80, 96, 112, 128], // 4 MTU/tick
        };
        let payload = SproutHeader {
            seq: 0,
            throwaway: 0,
            time_to_next: Duration::ZERO,
            sent_at: t(0),
            heartbeat: false,
            datagram: false,
            forecast: Some(fb),
            payload_len: 0,
        }
        .encode_with_padding();
        e.on_packet(
            Packet {
                flow: FlowId::PRIMARY,
                seq: 0,
                sent_at: t(0),
                size: payload.len() as u32,
                payload,
            },
            t(5),
        );
        // Whole life of the forecast: 32 packets × 1500 = 48 kB.
        assert_eq!(e.forecast_life_bytes(t(5)), 48_000);
        // Two ticks later, two ticks' worth (8 packets) have aged out.
        assert_eq!(e.forecast_life_bytes(t(45)), 36_000);
    }

    #[test]
    fn next_wakeup_is_tick_aligned() {
        let e = endpoint();
        assert_eq!(e.next_wakeup(), Some(t(20)));
    }
}
