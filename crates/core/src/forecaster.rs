//! The forecaster abstraction: Sprout's Bayesian model and the
//! Sprout-EWMA ablation (§5.3) behind one interface, so the rest of the
//! protocol is identical for both (as in the paper: "The rest of the
//! protocol is the same as Sprout").

use std::sync::Arc;

use crate::config::SproutConfig;
use crate::forecast::{ForecastScratch, ForecastTables};
use crate::model::RateModel;

/// What the receiver saw during one tick: `bytes` of data arrived while
/// the sender's queue was (believed) non-empty for `exposure_secs` of the
/// tick. The time-to-next mechanism (§3.2) supplies the exposure: spans
/// the sender promised to be idle are excluded, so a window-limited burst
/// that crossed in 3 ms is correctly read as a fast link rather than
/// averaged over the whole tick.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TickObservation {
    /// Data bytes that arrived during the exposed part of the tick.
    pub bytes: u64,
    /// Seconds of the tick during which arrivals were informative.
    pub exposure_secs: f64,
}

/// Produces cumulative delivery forecasts from per-tick arrival
/// observations. `tick(None)` means the whole tick was gated by the
/// time-to-next mechanism (§3.2): the queue was simply empty, so no
/// inference about the link should be drawn.
pub trait Forecaster: Send {
    /// Advance one tick, optionally incorporating an observation.
    fn tick(&mut self, observation: Option<TickObservation>);

    /// Fill `out` (cleared first) with the cumulative bytes the link is
    /// predicted to deliver within the first `t+1` ticks from now, for
    /// `t` in `0..horizon`. Non-decreasing. Takes `&mut self` so
    /// implementations can reuse internal scratch buffers — this runs in
    /// the receiver's per-poll hot path.
    fn forecast_cumulative_bytes_into(&mut self, out: &mut Vec<u64>);

    /// Allocating convenience form of
    /// [`Forecaster::forecast_cumulative_bytes_into`] (tests,
    /// diagnostics).
    fn forecast_cumulative_bytes(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        self.forecast_cumulative_bytes_into(&mut out);
        out
    }

    /// Number of ticks covered by the forecast.
    fn horizon(&self) -> usize;

    /// Current central rate estimate in bits per second (diagnostics).
    fn rate_estimate_bps(&self) -> f64;
}

/// The paper's forecaster: Bayesian inference on the doubly-stochastic
/// link model, forecasting at a cautious percentile (§3.1–3.3).
pub struct BayesianForecaster {
    cfg: SproutConfig,
    model: RateModel,
    tables: Arc<ForecastTables>,
    scratch: ForecastScratch,
}

impl BayesianForecaster {
    /// Build (or fetch from the global cache) the forecaster for `cfg`.
    pub fn new(cfg: SproutConfig) -> Self {
        cfg.validate();
        let tables = ForecastTables::get(&cfg);
        let model = RateModel::new(cfg.clone());
        BayesianForecaster {
            cfg,
            model,
            tables,
            scratch: ForecastScratch::default(),
        }
    }

    /// The underlying posterior (diagnostics and tests).
    pub fn model(&self) -> &RateModel {
        &self.model
    }

    /// The shared table handle this forecaster computes against. Session
    /// pools use it to assert every session of one link group shares a
    /// single build.
    pub fn tables(&self) -> &Arc<ForecastTables> {
        &self.tables
    }
}

impl Forecaster for BayesianForecaster {
    fn tick(&mut self, observation: Option<TickObservation>) {
        self.model.evolve();
        if let Some(obs) = observation {
            let packets = obs.bytes as f64 / self.cfg.mtu_bytes as f64;
            self.model.observe_exposed(packets, obs.exposure_secs);
        }
    }

    fn forecast_cumulative_bytes_into(&mut self, out: &mut Vec<u64>) {
        let f = self.tables.forecast_into(
            self.model.distribution(),
            self.cfg.forecast_percentile,
            &mut self.scratch,
        );
        out.clear();
        out.extend((0..f.horizon()).map(|t| f.cumulative_bytes(t, self.cfg.mtu_bytes)));
    }

    fn horizon(&self) -> usize {
        self.cfg.horizon_ticks
    }

    fn rate_estimate_bps(&self) -> f64 {
        self.model.mean_rate_pps() * self.cfg.mtu_bytes as f64 * 8.0
    }
}

/// Sprout-EWMA (§5.3): an exponentially-weighted moving average of the
/// observed per-tick throughput, extrapolated flat across the horizon —
/// no caution, no model.
pub struct EwmaForecaster {
    cfg: SproutConfig,
    /// Smoothing gain for samples above the estimate.
    alpha: f64,
    /// Smoothing gain for samples below the estimate (smaller: §5.3
    /// describes the EWMA as "a low-pass filter, which does not
    /// immediately respond to sudden rate reductions or outages" — that
    /// sluggishness is what costs Sprout-EWMA its delay).
    alpha_down: f64,
    /// Smoothed estimate of bytes delivered per tick.
    bytes_per_tick: f64,
}

impl EwmaForecaster {
    /// Default upward smoothing gain. The paper does not publish
    /// Sprout-EWMA's gain; ablated in `benches/ablations.rs`.
    pub const DEFAULT_ALPHA: f64 = 0.25;

    /// Default downward gain (≈ halving in 9 ticks / 180 ms).
    pub const DEFAULT_ALPHA_DOWN: f64 = 0.08;

    /// Multiplicative estimate growth per *gated* tick. Gated ticks mean
    /// the sender underflowed the link, which is exactly when the
    /// estimate may be stale-low; without some upward drift a 1-packet
    /// flight chain can freeze the estimate forever (the flight both
    /// closes the previous idle span and opens the next, leaving zero
    /// exposure). This is the EWMA analogue of the Bayesian model's
    /// Brownian diffusion during unobserved ticks.
    pub const GATED_GROWTH: f64 = 1.03;

    /// New EWMA forecaster with the default gain.
    pub fn new(cfg: SproutConfig) -> Self {
        Self::with_alpha(cfg, Self::DEFAULT_ALPHA)
    }

    /// New EWMA forecaster with an explicit upward gain in (0, 1]; the
    /// downward gain scales proportionally.
    pub fn with_alpha(cfg: SproutConfig, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        cfg.validate();
        // Start at one MTU per tick: lets the sender ramp from idle
        // without an initial forecast of zero.
        let initial = cfg.mtu_bytes as f64;
        let alpha_down = alpha * Self::DEFAULT_ALPHA_DOWN / Self::DEFAULT_ALPHA;
        EwmaForecaster {
            cfg,
            alpha,
            alpha_down,
            bytes_per_tick: initial,
        }
    }

    /// Current smoothed per-tick byte estimate.
    pub fn bytes_per_tick(&self) -> f64 {
        self.bytes_per_tick
    }
}

impl Forecaster for EwmaForecaster {
    fn tick(&mut self, observation: Option<TickObservation>) {
        let tau = self.cfg.tick_secs();
        let ceiling = self.cfg.max_rate_pps * tau * self.cfg.mtu_bytes as f64;
        match observation {
            Some(obs) => {
                // Normalize to a full-tick rate through the exposure,
                // clamped at the same ceiling as the Bayesian grid so a
                // tiny exposure cannot inject an absurd sample.
                let sample = (obs.bytes as f64 * tau / obs.exposure_secs).min(ceiling);
                let gain = if sample >= self.bytes_per_tick {
                    self.alpha
                } else {
                    self.alpha_down
                };
                self.bytes_per_tick = (1.0 - gain) * self.bytes_per_tick + gain * sample;
            }
            None => {
                // Underflow (gated): probe upward slowly; see GATED_GROWTH.
                // The floor keeps multiplicative growth alive after an
                // outage decays the estimate to ~0 (0 × 1.03 = 0 forever).
                let floor = self.cfg.mtu_bytes as f64 / 8.0;
                self.bytes_per_tick = (self.bytes_per_tick * Self::GATED_GROWTH)
                    .max(floor)
                    .min(ceiling);
            }
        }
    }

    fn forecast_cumulative_bytes_into(&mut self, out: &mut Vec<u64>) {
        out.clear();
        out.extend((1..=self.cfg.horizon_ticks).map(|k| (self.bytes_per_tick * k as f64) as u64));
    }

    fn horizon(&self) -> usize {
        self.cfg.horizon_ticks
    }

    fn rate_estimate_bps(&self) -> f64 {
        self.bytes_per_tick * 8.0 / self.cfg.tick_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Full-tick observation of `bytes` (20 ms exposure).
    fn obs(bytes: u64) -> Option<TickObservation> {
        Some(TickObservation {
            bytes,
            exposure_secs: 0.02,
        })
    }

    #[test]
    fn bayesian_forecast_tracks_observed_rate() {
        let cfg = SproutConfig::test_small();
        let mut f = BayesianForecaster::new(cfg.clone());
        // 100 pps → 2 MTU per tick = 3000 bytes.
        for _ in 0..80 {
            f.tick(obs(3_000));
        }
        let fc = f.forecast_cumulative_bytes();
        assert_eq!(fc.len(), cfg.horizon_ticks);
        // The cautious forecast should be positive but below the true
        // delivered volume (8 ticks × 3000 = 24000).
        let last = *fc.last().unwrap();
        assert!(last > 0, "forecast must be positive after steady input");
        assert!(
            last <= 24_000,
            "cautious forecast {last} must not exceed truth"
        );
        for w in fc.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn bayesian_gated_ticks_do_not_collapse_estimate() {
        let cfg = SproutConfig::test_small();
        let mut f = BayesianForecaster::new(cfg);
        for _ in 0..60 {
            f.tick(obs(3_000));
        }
        let before = f.rate_estimate_bps();
        // 25 gated ticks (sender idle): estimate decays only via model
        // diffusion, not observation.
        for _ in 0..25 {
            f.tick(None);
        }
        let after = f.rate_estimate_bps();
        assert!(
            after > before * 0.5,
            "gated ticks should not collapse the estimate: {before} → {after}"
        );
        // Whereas observing zeros must collapse it.
        for _ in 0..25 {
            f.tick(obs(0));
        }
        assert!(f.rate_estimate_bps() < before * 0.5);
    }

    #[test]
    fn ewma_converges_to_observed_rate() {
        let cfg = SproutConfig::test_small();
        let mut f = EwmaForecaster::new(cfg.clone());
        for _ in 0..50 {
            f.tick(obs(6_000));
        }
        assert!((f.bytes_per_tick() - 6_000.0).abs() < 60.0);
        let fc = f.forecast_cumulative_bytes();
        // Flat extrapolation: tick k ≈ k × rate.
        assert!((fc[0] as f64 - 6_000.0).abs() < 100.0);
        let last = fc[cfg.horizon_ticks - 1] as f64;
        assert!((last - 6_000.0 * cfg.horizon_ticks as f64).abs() < 1_000.0);
    }

    #[test]
    fn ewma_is_a_low_pass_filter_on_outages() {
        // The §5.3 point: an EWMA reacts slowly to a sudden outage, while
        // the Bayesian model's cautious percentile reacts within ticks.
        let cfg = SproutConfig::test_small();
        let mut ewma = EwmaForecaster::new(cfg.clone());
        let mut bayes = BayesianForecaster::new(cfg);
        for _ in 0..60 {
            ewma.tick(obs(3_000));
            bayes.tick(obs(3_000));
        }
        // Outage begins: three silent (unexpectedly empty) ticks.
        for _ in 0..3 {
            ewma.tick(obs(0));
            bayes.tick(obs(0));
        }
        let ewma_fc = ewma.forecast_cumulative_bytes()[0];
        let bayes_fc = bayes.forecast_cumulative_bytes()[0];
        // EWMA still forecasts a sizable fraction of the old rate; the
        // cautious forecast has slammed to (near) zero.
        assert!(ewma_fc as f64 > 3_000.0 * 0.3, "ewma {ewma_fc}");
        assert!(bayes_fc < ewma_fc, "bayes {bayes_fc} < ewma {ewma_fc}");
    }

    #[test]
    fn ewma_gated_ticks_probe_upward_to_ceiling() {
        let cfg = SproutConfig::test_small();
        let ceiling = cfg.max_rate_pps * cfg.tick_secs() * cfg.mtu_bytes as f64;
        let mut f = EwmaForecaster::new(cfg);
        for _ in 0..20 {
            f.tick(obs(4_500));
        }
        let before = f.bytes_per_tick();
        // Gated ticks (sender underflow) probe upward, never downward,
        // and never past the grid ceiling.
        for _ in 0..1_000 {
            f.tick(None);
            assert!(f.bytes_per_tick() >= before);
        }
        assert!(f.bytes_per_tick() <= ceiling + 1e-9);
        assert!(
            (f.bytes_per_tick() - ceiling).abs() < 1.0,
            "reaches ceiling"
        );
    }
}
