//! The Sprout receiver half (§3.2–3.4): per-tick inference, time-to-next
//! gating, received-or-lost accounting, and forecast feedback assembly.

use std::collections::BTreeMap;

use crate::config::SproutConfig;
use crate::forecaster::{Forecaster, TickObservation};
use crate::wire::{SproutHeader, WireForecast, WIRE_HORIZON};
use sprout_trace::{Duration, Timestamp};

/// A set of disjoint half-open byte ranges `[start, end)`; used to total
/// the bytes received above the written-off horizon.
#[derive(Clone, Debug, Default)]
pub struct IntervalSet {
    /// start → end, disjoint and non-adjacent after merging.
    ranges: BTreeMap<u64, u64>,
}

impl IntervalSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `[start, end)`, merging with neighbors.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let mut new_start = start;
        let mut new_end = end;
        // Merge with a predecessor that overlaps or touches.
        if let Some((&ps, &pe)) = self.ranges.range(..=start).next_back() {
            if pe >= start {
                if pe >= end {
                    return; // fully contained
                }
                new_start = ps;
                new_end = new_end.max(pe);
                self.ranges.remove(&ps);
            }
        }
        // Merge with successors that overlap or touch.
        let overlapping: Vec<u64> = self
            .ranges
            .range(new_start..=new_end)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let e = self.ranges.remove(&s).unwrap();
            new_end = new_end.max(e);
        }
        self.ranges.insert(new_start, new_end);
    }

    /// Drop everything below `cut` (clipping straddling ranges).
    pub fn discard_below(&mut self, cut: u64) {
        let below: Vec<u64> = self.ranges.range(..cut).map(|(&s, _)| s).collect();
        for s in below {
            let e = self.ranges.remove(&s).unwrap();
            if e > cut {
                self.ranges.insert(cut, e);
            }
        }
    }

    /// Total length of ranges at or above `floor`.
    pub fn len_above(&self, floor: u64) -> u64 {
        self.ranges
            .iter()
            .map(|(&s, &e)| e.saturating_sub(s.max(floor)))
            .sum()
    }

    /// Number of stored ranges (diagnostics).
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }
}

/// Receiver-half state.
pub struct SproutReceiver {
    cfg: SproutConfig,
    forecaster: Box<dyn Forecaster>,
    /// End of the tick currently being accumulated.
    tick_end: Timestamp,
    /// Number of completed ticks.
    tick_counter: u32,
    /// Data wire bytes that arrived during the current tick.
    bytes_this_tick: u64,
    /// Heartbeat wire bytes that arrived during the current tick.
    heartbeat_bytes_this_tick: u64,
    /// Closed sender-idle spans not yet consumed by tick processing.
    exclusions: Vec<(Timestamp, Timestamp)>,
    /// An idle span opened by the most recent promising packet:
    /// (start = its arrival, deadline = arrival + time-to-next).
    open_exclusion: Option<(Timestamp, Timestamp)>,
    /// Smallest one-way delay seen this session (sender clock to receiver
    /// clock; any fixed clock offset cancels because only differences
    /// against this minimum are used).
    min_one_way_delay: Option<Duration>,
    /// Highest sequence number of the most recently received packet
    /// (detects reordering for diagnostics).
    highest_seq_end: u64,
    /// Written-off horizon: everything below is received or lost (§3.4).
    horizon: u64,
    /// Received ranges above the horizon.
    received: IntervalSet,
    /// Count of gated (skipped) observations, for diagnostics/ablation.
    gated_ticks: u64,
    observed_ticks: u64,
    /// The forecast units of the current tick, computed once per tick
    /// and reused by every `make_feedback` call until the next tick
    /// completes (the forecaster's state only changes on ticks; a loaded
    /// sender polls many times per tick).
    cached_units: Option<[u16; WIRE_HORIZON]>,
    /// Reusable buffer for the forecaster's cumulative-bytes output.
    fc_scratch: Vec<u64>,
}

impl SproutReceiver {
    /// Minimum informative exposure: ticks whose exposed time is shorter
    /// are treated as fully gated. The Poisson likelihood self-weights
    /// small exposures, so this is purely a numerical guard.
    const MIN_EXPOSURE: Duration = Duration::from_micros(500);

    /// An exclusion's closing packet showing more queueing delay than
    /// this proves the "idle" span was actually backlogged service time,
    /// and the exclusion is cancelled (the span stays exposed).
    const CANCEL_QUEUEING_DELAY: Duration = Duration::from_millis(10);

    /// New receiver whose first tick ends one tick after `start`.
    pub fn new(cfg: SproutConfig, forecaster: Box<dyn Forecaster>, start: Timestamp) -> Self {
        let tick_end = start + cfg.tick;
        SproutReceiver {
            cfg,
            forecaster,
            tick_end,
            tick_counter: 0,
            bytes_this_tick: 0,
            heartbeat_bytes_this_tick: 0,
            exclusions: Vec::new(),
            open_exclusion: None,
            min_one_way_delay: None,
            highest_seq_end: 0,
            horizon: 0,
            received: IntervalSet::new(),
            gated_ticks: 0,
            observed_ticks: 0,
            cached_units: None,
            fc_scratch: Vec::new(),
        }
    }

    /// Account an arriving packet: `wire_size` is the full on-the-wire
    /// size (the sender's sequence space counts wire bytes).
    pub fn on_packet(&mut self, header: &SproutHeader, wire_size: u32, now: Timestamp) {
        // Heartbeats exist to dispel outage ambiguity (§3.2), not to carry
        // rate information: an idle sender's 60-byte heartbeat per tick
        // would otherwise be "observed" as a near-dead link and collapse
        // the posterior. They are tracked separately (see process_ticks)
        // and still count toward received-or-lost below.
        if header.heartbeat {
            self.heartbeat_bytes_this_tick += wire_size as u64;
        } else {
            self.bytes_this_tick += wire_size as u64;
        }
        // One-way delay tracking (constant clock offsets cancel; only the
        // excess over the session minimum — the queueing delay — is used).
        let one_way = now.saturating_since(header.sent_at);
        let min_delay = match self.min_one_way_delay {
            Some(m) if m <= one_way => m,
            _ => {
                self.min_one_way_delay = Some(one_way);
                one_way
            }
        };
        let queueing_delay = one_way.saturating_sub(min_delay);

        // Any arrival ends an open idle span. If the closing packet
        // itself sat in a queue, the sender's idleness promise was moot —
        // the bottleneck held bytes the whole time — so the span is
        // cancelled and stays exposed. Otherwise (the closer flew through
        // an empty queue) the span really was idle and is excluded.
        if let Some((start, deadline)) = self.open_exclusion.take() {
            let end = deadline.min(now);
            if end > start && queueing_delay < Self::CANCEL_QUEUEING_DELAY {
                self.exclusions.push((start, end));
            }
        }
        // A promising packet (§3.2: positive time-to-next on the last
        // packet of a flight) opens a new idle span.
        if header.time_to_next > Duration::ZERO {
            self.open_exclusion = Some((now, now + header.time_to_next));
        }
        // Byte-range accounting for received-or-lost.
        let start = header.seq;
        let end = header.seq + wire_size as u64;
        self.received.insert(start, end);
        self.highest_seq_end = self.highest_seq_end.max(end);
        if header.throwaway > self.horizon {
            self.horizon = header.throwaway;
            self.received.discard_below(self.horizon);
        }
    }

    /// Total sender-idle time overlapping the tick `[tick_start,
    /// tick_end)`, consuming closed spans and clipping the open one.
    fn idle_time_in_tick(&mut self, tick_start: Timestamp, tick_end: Timestamp) -> Duration {
        let mut idle = Duration::ZERO;
        for &(s, e) in &self.exclusions {
            let lo = s.max(tick_start);
            let hi = e.min(tick_end);
            if hi > lo {
                idle += hi - lo;
            }
        }
        // Closed spans end at an arrival or a promise deadline — both at
        // or before "now" ≥ tick_end of the tick being processed — so
        // they never extend past this tick... except a span closed late
        // in a multi-tick gap; keep any remainder for the next tick.
        self.exclusions.retain(|&(_, e)| e > tick_end);
        if let Some((s, deadline)) = self.open_exclusion {
            let lo = s.max(tick_start);
            let hi = deadline.min(tick_end);
            if hi > lo {
                idle += hi - lo;
            }
            if deadline <= tick_end {
                // The promise expired with no arrival: silence from here
                // on is informative; close the span.
                self.open_exclusion = None;
            }
        }
        idle.min(tick_end - tick_start)
    }

    /// Process any ticks that have completed by `now`. Returns the number
    /// of ticks processed (callers send fresh feedback when > 0).
    pub fn process_ticks(&mut self, now: Timestamp) -> u32 {
        let mut processed = 0;
        while self.tick_end <= now {
            let tick_end = self.tick_end;
            let tick_start = tick_end - self.cfg.tick;
            // §3.2: the time-to-next markings tell the receiver how much
            // of the tick the sender's queue was empty. That idle time is
            // excluded from the Poisson exposure; a tick with (almost) no
            // exposed time is skipped outright ("skips the observation
            // process until this timer expires").
            let idle = if self.cfg.ttn_gating {
                self.idle_time_in_tick(tick_start, tick_end)
            } else {
                // Ablation: ignore the §3.2 mechanism entirely.
                Duration::ZERO
            };
            let exposure = self.cfg.tick - idle;
            let exposure_secs = exposure.as_secs_f64();
            // "Even one tiny packet does much to dispel this ambiguity"
            // (§3.2): a tick whose only arrivals were heartbeats proves
            // the link is alive but says nothing about its rate — it must
            // be skipped, never observed as zero bytes. (Promise chains
            // jitter by up to one link service time, which on slow links
            // exceeds the time-to-next margin; without this rule such
            // ticks would feed spurious outage evidence.)
            let heartbeat_only = self.cfg.ttn_gating
                && self.bytes_this_tick == 0
                && self.heartbeat_bytes_this_tick > 0;
            if exposure < Self::MIN_EXPOSURE || heartbeat_only {
                self.gated_ticks += 1;
                self.forecaster.tick(None);
            } else {
                self.observed_ticks += 1;
                self.forecaster.tick(Some(TickObservation {
                    bytes: self.bytes_this_tick,
                    exposure_secs,
                }));
            }
            self.bytes_this_tick = 0;
            self.heartbeat_bytes_this_tick = 0;
            self.tick_counter += 1;
            self.tick_end += self.cfg.tick;
            processed += 1;
        }
        if processed > 0 {
            // The forecaster advanced: the cached feedback units are stale.
            self.cached_units = None;
        }
        processed
    }

    /// Total bytes received or written off as lost (§3.4): the horizon
    /// plus everything received above it.
    pub fn recv_or_lost_bytes(&self) -> u64 {
        self.horizon + self.received.len_above(self.horizon)
    }

    /// Assemble the current feedback block for piggybacking. The
    /// forecast units are computed once per tick and cached; only the
    /// received-or-lost total (which moves with every arrival) is
    /// re-read per call.
    pub fn make_feedback(&mut self) -> WireForecast {
        let cumulative_units = match self.cached_units {
            Some(units) => units,
            None => {
                self.forecaster
                    .forecast_cumulative_bytes_into(&mut self.fc_scratch);
                let fc = &self.fc_scratch;
                let unit = self.cfg.mtu_bytes as u64 / crate::forecast::UNITS_PER_MTU;
                let mut units = [0u16; WIRE_HORIZON];
                for (i, slot) in units.iter_mut().enumerate() {
                    // Clamp into the wire's fixed 8-tick format: shorter
                    // horizons extend flat, longer ones truncate.
                    let idx = i.min(fc.len() - 1);
                    *slot = (fc[idx] / unit).min(u16::MAX as u64) as u16;
                }
                self.cached_units = Some(units);
                units
            }
        };
        WireForecast {
            recv_or_lost_bytes: self.recv_or_lost_bytes(),
            tick: self.tick_counter,
            cumulative_units,
        }
    }

    /// End of the tick currently accumulating (the next inference time).
    pub fn next_tick_end(&self) -> Timestamp {
        self.tick_end
    }

    /// Completed tick count.
    pub fn tick_counter(&self) -> u32 {
        self.tick_counter
    }

    /// Diagnostics: (observed, gated) tick counts.
    pub fn observation_counts(&self) -> (u64, u64) {
        (self.observed_ticks, self.gated_ticks)
    }

    /// Diagnostics: the forecaster's central rate estimate, bits/s.
    pub fn rate_estimate_bps(&self) -> f64 {
        self.forecaster.rate_estimate_bps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::EwmaForecaster;
    use sprout_trace::Duration;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn header(seq: u64, throwaway: u64, ttn_ms: u64) -> SproutHeader {
        SproutHeader {
            seq,
            throwaway,
            time_to_next: Duration::from_millis(ttn_ms),
            sent_at: Timestamp::ZERO,
            heartbeat: false,
            datagram: false,
            forecast: None,
            payload_len: 0,
        }
    }

    fn heartbeat(seq: u64, ttn_ms: u64) -> SproutHeader {
        SproutHeader {
            heartbeat: true,
            ..header(seq, 0, ttn_ms)
        }
    }

    fn receiver() -> SproutReceiver {
        let cfg = SproutConfig::test_small();
        let f = Box::new(EwmaForecaster::new(cfg.clone()));
        SproutReceiver::new(cfg, f, Timestamp::ZERO)
    }

    // ---- IntervalSet ----

    #[test]
    fn interval_insert_and_merge() {
        let mut s = IntervalSet::new();
        s.insert(0, 100);
        s.insert(200, 300);
        assert_eq!(s.range_count(), 2);
        assert_eq!(s.len_above(0), 200);
        s.insert(100, 200); // bridges the two
        assert_eq!(s.range_count(), 1);
        assert_eq!(s.len_above(0), 300);
    }

    #[test]
    fn interval_overlaps_do_not_double_count() {
        let mut s = IntervalSet::new();
        s.insert(0, 150);
        s.insert(100, 200);
        s.insert(50, 120);
        assert_eq!(s.len_above(0), 200);
        s.insert(0, 200); // fully covered
        assert_eq!(s.len_above(0), 200);
    }

    #[test]
    fn interval_len_above_clips() {
        let mut s = IntervalSet::new();
        s.insert(0, 100);
        s.insert(200, 260);
        assert_eq!(s.len_above(50), 110);
        assert_eq!(s.len_above(230), 30);
        assert_eq!(s.len_above(1_000), 0);
    }

    #[test]
    fn interval_discard_below_clips_straddlers() {
        let mut s = IntervalSet::new();
        s.insert(0, 100);
        s.insert(150, 250);
        s.discard_below(200);
        assert_eq!(s.len_above(0), 50);
        assert_eq!(s.range_count(), 1);
    }

    #[test]
    fn interval_empty_and_degenerate() {
        let mut s = IntervalSet::new();
        s.insert(10, 10);
        assert_eq!(s.range_count(), 0);
        assert_eq!(s.len_above(0), 0);
        s.discard_below(100); // no-op on empty
    }

    // ---- receiver accounting ----

    #[test]
    fn recv_or_lost_counts_contiguous_bytes() {
        let mut r = receiver();
        r.on_packet(&header(0, 0, 0), 1_000, t(1));
        r.on_packet(&header(1_000, 0, 0), 1_000, t(2));
        assert_eq!(r.recv_or_lost_bytes(), 2_000);
    }

    #[test]
    fn throwaway_writes_off_holes() {
        let mut r = receiver();
        r.on_packet(&header(0, 0, 0), 1_000, t(1));
        // Packet [1000, 2000) is lost; a later packet arrives with
        // throwaway = 2000 (sent >10 ms after the lost one).
        r.on_packet(&header(2_000, 2_000, 0), 1_000, t(15));
        // All of [0, 2000) is written off; [2000, 3000) received.
        assert_eq!(r.recv_or_lost_bytes(), 3_000);
    }

    #[test]
    fn out_of_order_arrivals_are_counted_once() {
        let mut r = receiver();
        r.on_packet(&header(1_000, 0, 0), 1_000, t(1));
        r.on_packet(&header(0, 0, 0), 1_000, t(2));
        r.on_packet(&header(1_000, 0, 0), 1_000, t(3)); // duplicate
        assert_eq!(r.recv_or_lost_bytes(), 2_000);
    }

    #[test]
    fn ticks_observe_arrived_bytes() {
        let mut r = receiver();
        r.on_packet(&header(0, 0, 0), 3_000, t(5));
        assert_eq!(r.process_ticks(t(20)), 1);
        let (observed, gated) = r.observation_counts();
        assert_eq!((observed, gated), (1, 0));
        // Forecast reflects the observation (EWMA moved off its initial
        // 1500 B/tick towards 3000).
        let fb = r.make_feedback();
        assert!(fb.cumulative_units[0] >= 1);
        assert_eq!(fb.recv_or_lost_bytes, 3_000);
    }

    #[test]
    fn data_tick_is_observed_then_covered_silence_is_gated() {
        let mut r = receiver();
        // A flight-end data packet arrives at 5 ms promising the next
        // packet within 40 ms: the tick it arrived in is observed (it has
        // data bytes); the silent tick ending at 40 ms is covered by the
        // promise and gated.
        r.on_packet(&header(0, 0, 40), 1_500, t(5));
        r.process_ticks(t(40));
        let (observed, gated) = r.observation_counts();
        assert_eq!(observed, 1);
        assert_eq!(gated, 1);
    }

    #[test]
    fn heartbeat_ticks_are_gated_and_bytes_uncounted() {
        let mut r = receiver();
        // Idle chain: a heartbeat per tick, each promising the next, each
        // crossing an empty queue (constant one-way delay). No tick may
        // be observed — heartbeat dribble is not rate information — yet
        // received-or-lost still advances.
        for k in 0..5u64 {
            let mut h = heartbeat(k * 60, 22);
            h.sent_at = t(k * 20); // constant 1 ms one-way delay
            r.on_packet(&h, 60, t(k * 20 + 1));
        }
        r.process_ticks(t(100));
        let (observed, gated) = r.observation_counts();
        // Every tick saw only heartbeats: all gated ("even one tiny
        // packet does much to dispel this ambiguity", §3.2), none
        // observed as zero-rate evidence.
        assert_eq!(observed, 0);
        assert_eq!(gated, 5);
        assert_eq!(r.recv_or_lost_bytes(), 300);
    }

    #[test]
    fn queued_closer_cancels_the_idle_exclusion() {
        let mut r = receiver();
        // Establish the session's minimum one-way delay: 1 ms.
        let mut first = header(0, 0, 0);
        first.sent_at = t(4);
        r.on_packet(&first, 1_500, t(5));
        // A flight-final promise at 6 ms claims idleness for 22 ms...
        let mut fin = header(1_500, 0, 22);
        fin.sent_at = t(5);
        r.on_packet(&fin, 1_500, t(6));
        // ...but the next packet arrives having sat in a queue for 15 ms:
        // the bottleneck clearly held bytes, so the claimed idle span
        // [6, 14) must stay exposed.
        let mut queued = header(3_000, 0, 0);
        queued.sent_at = Timestamp::ZERO; // sent at 0, arrives at 16 ms
        r.on_packet(&queued, 1_500, t(16));
        r.process_ticks(t(20));
        // Full exposure: the tick is observed with all 4500 bytes.
        let (observed, gated) = r.observation_counts();
        assert_eq!((observed, gated), (1, 0));
    }

    #[test]
    fn backlogged_flight_with_zero_ttn_is_observed() {
        let mut r = receiver();
        // Link-paced arrivals all tick with ttn = 0 (queue still full):
        // the tick is observed with its full byte count.
        for i in 0..4u64 {
            r.on_packet(&header(i * 1_500, 0, 0), 1_500, t(3 + i * 4));
        }
        r.process_ticks(t(20));
        let (observed, gated) = r.observation_counts();
        assert_eq!((observed, gated), (1, 0));
    }

    #[test]
    fn silence_without_promise_is_observed_as_zero() {
        let mut r = receiver();
        // Last packet had ttn = 0 ("more coming"): subsequent silence is
        // evidence of an outage and must be observed.
        r.on_packet(&header(0, 0, 0), 1_500, t(5));
        r.process_ticks(t(100));
        let (observed, gated) = r.observation_counts();
        assert_eq!(gated, 0);
        assert_eq!(observed, 5);
    }

    #[test]
    fn promise_expires_and_observation_resumes() {
        let mut r = receiver();
        r.on_packet(&header(0, 0, 25), 1_500, t(5)); // covered until 30 ms
        r.process_ticks(t(80));
        // Tick[0,20): data bytes → observed. Tick[20,40): silent, but the
        // promise expired at 30 ms, before the tick end → observed as
        // silence (possible outage). Ticks after: observed.
        let (observed, gated) = r.observation_counts();
        assert_eq!(gated, 0);
        assert_eq!(observed, 4);
    }

    #[test]
    fn feedback_tick_counter_advances() {
        let mut r = receiver();
        r.process_ticks(t(100));
        assert_eq!(r.make_feedback().tick, 5);
        assert_eq!(r.tick_counter(), 5);
    }
}
