//! A small bounded LRU map for in-process memoization.
//!
//! The sweep engine and the forecast-table cache memoize expensive
//! pure-function results (synthesized traces, CDF tables) keyed by their
//! input configuration. In a one-shot `reproduce` run the key population
//! is tiny and boundedness is irrelevant; in a long-running daemon that
//! sweeps many disjoint link geometries, an unbounded map is a slow
//! memory leak. [`LruCache`] caps the population: inserting past the cap
//! evicts the least-recently-*used* entry.
//!
//! Capacities here are single digits to low tens, so recency is a plain
//! monotonic tick per entry and eviction is an O(n) minimum scan — no
//! linked lists, no unsafe, and the scan is cheaper than one hash at
//! these sizes.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded least-recently-used map. `get` and `get_or_insert_with`
/// refresh recency; inserting a new key while full evicts the stalest
/// entry (and counts it in [`LruCache::evictions`]).
#[derive(Debug)]
pub struct LruCache<K, V> {
    cap: usize,
    /// Monotonic use counter; each touch stamps the entry.
    tick: u64,
    map: HashMap<K, (u64, V)>,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `cap` entries (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "an LRU cache needs room for at least one entry");
        LruCache {
            cap,
            tick: 0,
            map: HashMap::with_capacity(cap + 1),
            evictions: 0,
        }
    }

    /// Live entry count (≤ the cap, always).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Entries evicted to make room since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(stamp, v)| {
            *stamp = tick;
            &*v
        })
    }

    /// Look up `key`, building and inserting the value on a miss (evicting
    /// the least-recently-used entry if that overflows the cap). The
    /// returned flag reports whether the value was constructed by this
    /// call — callers use it to split built-vs-reused counters.
    pub fn get_or_insert_with(&mut self, key: &K, make: impl FnOnce() -> V) -> (&V, bool) {
        self.tick += 1;
        let tick = self.tick;
        let built = !self.map.contains_key(key);
        if built {
            self.map.insert(key.clone(), (tick, make()));
            if self.map.len() > self.cap {
                self.evict_stalest();
            }
        }
        let entry = self.map.get_mut(key).expect("just inserted or present");
        entry.0 = tick;
        (&entry.1, built)
    }

    /// Drop the entry with the oldest use stamp.
    fn evict_stalest(&mut self) {
        if let Some(stale) = self
            .map
            .iter()
            .min_by_key(|(_, (stamp, _))| *stamp)
            .map(|(k, _)| k.clone())
        {
            self.map.remove(&stale);
            self.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_bounded_and_evicts_the_stalest() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for k in 0..10 {
            let (_, built) = c.get_or_insert_with(&k, || k * 100);
            assert!(built, "fresh keys build");
            assert!(c.len() <= 3, "cap must hold at {} entries", c.len());
        }
        assert_eq!(c.evictions(), 7);
        // The three most recent keys survive.
        assert!(c.get(&9).is_some() && c.get(&8).is_some() && c.get(&7).is_some());
        assert!(c.get(&0).is_none());
    }

    #[test]
    fn get_refreshes_recency() {
        let mut c: LruCache<&str, u8> = LruCache::new(2);
        c.get_or_insert_with(&"a", || 1);
        c.get_or_insert_with(&"b", || 2);
        // Touch "a" so "b" is now the stalest; inserting "c" evicts "b".
        assert_eq!(c.get(&"a"), Some(&1));
        let (_, built) = c.get_or_insert_with(&"c", || 3);
        assert!(built);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"c"), Some(&3));
    }

    #[test]
    fn repeat_lookups_do_not_rebuild() {
        let mut c: LruCache<u8, u8> = LruCache::new(2);
        let (_, built) = c.get_or_insert_with(&1, || 10);
        assert!(built);
        let (_, built) = c.get_or_insert_with(&1, || unreachable!("cached"));
        assert!(!built);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        assert_eq!(c.cap(), 2);
        assert_eq!(c.evictions(), 0);
    }
}
