//! Sprout's wire format (§3.4).
//!
//! Every packet carries:
//! * a **sequence number** counting the wire bytes sent so far on this
//!   direction (so the receiver can total "received or lost" bytes);
//! * a **throwaway number**: the sequence number of the most recent packet
//!   sent more than `reorder_window` (10 ms) earlier — once any later
//!   packet arrives, everything below it is either received or lost,
//!   never merely reordered;
//! * a **time-to-next** marking (§3.2) announcing when the sender expects
//!   to transmit next, letting the receiver distinguish an empty queue
//!   from an outage;
//! * optionally, a piggybacked **forecast**: the receiver-side
//!   received-or-lost total plus the cumulative delivery forecast.
//!
//! Layout (little-endian), base header 32 bytes:
//!
//! ```text
//!  0  u8   magic 0x5A
//!  1  u8   flags (bit0 = forecast present, bit1 = heartbeat)
//!  2  u16  payload length in bytes
//!  4  u32  time-to-next, µs
//!  8  u64  sequence number (wire bytes sent before this packet)
//! 16  u64  throwaway number
//! 24  u64  sender clock at transmission, µs
//! ```
//!
//! Forecast block (when present), 28 + 2·8 = 44... see [`FORECAST_LEN`]:
//!
//! ```text
//!  0  u64  received-or-lost total, bytes
//!  8  u32  receiver tick counter when the forecast was made
//! 12  u16 × HORIZON  cumulative volume per tick, quarter-MTU units
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sprout_trace::{Duration, Timestamp};

/// Wire magic byte.
pub const MAGIC: u8 = 0x5A;
/// Number of forecast entries carried on the wire (the paper's 8 ticks).
pub const WIRE_HORIZON: usize = 8;
/// Base header length in bytes.
pub const BASE_HEADER_LEN: usize = 32;
/// Forecast block length in bytes.
pub const FORECAST_LEN: usize = 8 + 4 + 2 * WIRE_HORIZON;
/// Header length with a forecast block attached.
pub const FULL_HEADER_LEN: usize = BASE_HEADER_LEN + FORECAST_LEN;

const FLAG_FORECAST: u8 = 0b0000_0001;
const FLAG_HEARTBEAT: u8 = 0b0000_0010;
const FLAG_DATAGRAM: u8 = 0b0000_0100;

/// The piggybacked receiver feedback (§3.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireForecast {
    /// Total wire bytes the receiver has received or written off as lost.
    pub recv_or_lost_bytes: u64,
    /// Receiver tick counter at forecast time (detects stale forecasts).
    pub tick: u32,
    /// Cumulative predicted deliveries for ticks 1..=8, in quarter-MTU
    /// units (fine enough for slow links; u16 reaches ~16k packets).
    pub cumulative_units: [u16; WIRE_HORIZON],
}

/// A decoded Sprout packet header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SproutHeader {
    /// Wire bytes sent on this direction before this packet.
    pub seq: u64,
    /// Received-or-lost horizon marker (see module docs).
    pub throwaway: u64,
    /// Expected time until the sender's next transmission; zero inside a
    /// flight.
    pub time_to_next: Duration,
    /// Sender clock when the packet was sent.
    pub sent_at: Timestamp,
    /// Whether this is an idle heartbeat.
    pub heartbeat: bool,
    /// Whether the payload is an encapsulated datagram (tunnel mode,
    /// §4.3) rather than opaque application filler.
    pub datagram: bool,
    /// Piggybacked feedback, if any.
    pub forecast: Option<WireForecast>,
    /// Application payload length.
    pub payload_len: u16,
}

impl SproutHeader {
    /// Serialized length of this header.
    pub fn encoded_len(&self) -> usize {
        if self.forecast.is_some() {
            FULL_HEADER_LEN
        } else {
            BASE_HEADER_LEN
        }
    }

    /// Encode the header followed by a zero-filled payload of
    /// `payload_len` bytes (experiment payloads are opaque filler; a real
    /// application would append its own bytes).
    pub fn encode_with_padding(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len() + self.payload_len as usize);
        self.encode_into(&mut buf);
        buf.resize(self.encoded_len() + self.payload_len as usize, 0);
        buf.freeze()
    }

    /// Encode the header followed by real payload bytes (`payload.len()`
    /// must equal `payload_len`).
    pub fn encode_with_payload(&self, payload: &[u8]) -> Bytes {
        assert_eq!(payload.len(), self.payload_len as usize);
        let mut buf = BytesMut::with_capacity(self.encoded_len() + payload.len());
        self.encode_into(&mut buf);
        buf.extend_from_slice(payload);
        buf.freeze()
    }

    /// The payload bytes of a decoded packet (after the header).
    pub fn payload_of<'a>(&self, packet: &'a [u8]) -> &'a [u8] {
        let start = self.encoded_len();
        &packet[start..start + self.payload_len as usize]
    }

    /// Encode just the header into `buf`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u8(MAGIC);
        let mut flags = 0u8;
        if self.forecast.is_some() {
            flags |= FLAG_FORECAST;
        }
        if self.heartbeat {
            flags |= FLAG_HEARTBEAT;
        }
        if self.datagram {
            flags |= FLAG_DATAGRAM;
        }
        buf.put_u8(flags);
        buf.put_u16_le(self.payload_len);
        buf.put_u32_le(self.time_to_next.as_micros() as u32);
        buf.put_u64_le(self.seq);
        buf.put_u64_le(self.throwaway);
        buf.put_u64_le(self.sent_at.as_micros());
        if let Some(f) = &self.forecast {
            buf.put_u64_le(f.recv_or_lost_bytes);
            buf.put_u32_le(f.tick);
            for &c in &f.cumulative_units {
                buf.put_u16_le(c);
            }
        }
    }

    /// Decode a header from the front of `data`.
    pub fn decode(data: &[u8]) -> Result<SproutHeader, WireError> {
        let mut buf = data;
        if buf.len() < BASE_HEADER_LEN {
            return Err(WireError::Truncated {
                need: BASE_HEADER_LEN,
                have: buf.len(),
            });
        }
        let magic = buf.get_u8();
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let flags = buf.get_u8();
        if flags & !(FLAG_FORECAST | FLAG_HEARTBEAT | FLAG_DATAGRAM) != 0 {
            return Err(WireError::UnknownFlags(flags));
        }
        let payload_len = buf.get_u16_le();
        let time_to_next = Duration::from_micros(buf.get_u32_le() as u64);
        let seq = buf.get_u64_le();
        let throwaway = buf.get_u64_le();
        let sent_at = Timestamp::from_micros(buf.get_u64_le());
        let forecast = if flags & FLAG_FORECAST != 0 {
            if buf.len() < FORECAST_LEN {
                return Err(WireError::Truncated {
                    need: FULL_HEADER_LEN,
                    have: data.len(),
                });
            }
            let recv_or_lost_bytes = buf.get_u64_le();
            let tick = buf.get_u32_le();
            let mut cumulative_units = [0u16; WIRE_HORIZON];
            for c in &mut cumulative_units {
                *c = buf.get_u16_le();
            }
            Some(WireForecast {
                recv_or_lost_bytes,
                tick,
                cumulative_units,
            })
        } else {
            None
        };
        Ok(SproutHeader {
            seq,
            throwaway,
            time_to_next,
            sent_at,
            heartbeat: flags & FLAG_HEARTBEAT != 0,
            datagram: flags & FLAG_DATAGRAM != 0,
            forecast,
            payload_len,
        })
    }
}

/// Wire decoding failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Packet shorter than its advertised structure.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// First byte was not the Sprout magic.
    BadMagic(u8),
    /// Reserved flag bits were set.
    UnknownFlags(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated sprout packet: need {need} bytes, have {have}")
            }
            WireError::BadMagic(m) => write!(f, "bad magic byte {m:#04x}"),
            WireError::UnknownFlags(fl) => write!(f, "unknown flag bits {fl:#010b}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header(with_forecast: bool) -> SproutHeader {
        SproutHeader {
            seq: 123_456_789,
            throwaway: 120_000_000,
            time_to_next: Duration::from_micros(22_000),
            sent_at: Timestamp::from_micros(5_500_123),
            heartbeat: false,
            datagram: false,
            forecast: with_forecast.then_some(WireForecast {
                recv_or_lost_bytes: 119_999_000,
                tick: 275,
                cumulative_units: [3, 7, 11, 14, 18, 21, 25, 29],
            }),
            payload_len: 1_440,
        }
    }

    #[test]
    fn round_trip_without_forecast() {
        let h = sample_header(false);
        let bytes = h.encode_with_padding();
        assert_eq!(bytes.len(), BASE_HEADER_LEN + 1_440);
        let back = SproutHeader::decode(&bytes).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn round_trip_with_forecast() {
        let h = sample_header(true);
        let bytes = h.encode_with_padding();
        assert_eq!(bytes.len(), FULL_HEADER_LEN + 1_440);
        let back = SproutHeader::decode(&bytes).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn heartbeat_flag_round_trips() {
        let mut h = sample_header(true);
        h.heartbeat = true;
        h.payload_len = 0;
        let bytes = h.encode_with_padding();
        let back = SproutHeader::decode(&bytes).unwrap();
        assert!(back.heartbeat);
        assert_eq!(back.payload_len, 0);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample_header(false).encode_with_padding().to_vec();
        bytes[0] = 0x00;
        assert_eq!(SproutHeader::decode(&bytes), Err(WireError::BadMagic(0)));
    }

    #[test]
    fn rejects_unknown_flags() {
        let mut bytes = sample_header(false).encode_with_padding().to_vec();
        bytes[1] = 0b1000_0000;
        assert!(matches!(
            SproutHeader::decode(&bytes),
            Err(WireError::UnknownFlags(_))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let full = sample_header(true).encode_with_padding();
        // Any prefix shorter than the full header must fail cleanly.
        for cut in 0..FULL_HEADER_LEN {
            let r = SproutHeader::decode(&full[..cut]);
            assert!(r.is_err(), "cut at {cut} should fail");
        }
        assert!(SproutHeader::decode(&full[..FULL_HEADER_LEN]).is_ok());
    }

    #[test]
    fn header_lengths_are_stable() {
        // The sender budgets MTU payloads around these constants; changing
        // them silently would corrupt queue accounting.
        assert_eq!(BASE_HEADER_LEN, 32);
        assert_eq!(FORECAST_LEN, 28);
        assert_eq!(FULL_HEADER_LEN, 60);
    }
}
