//! Multi-session state for a Sprout server process.
//!
//! One server process terminating N independent Sprout sessions keeps the
//! per-session protocol state deliberately thin: the expensive, immutable
//! forecast-table dynamic program is shared behind one
//! [`Arc<ForecastTables>`] by every session on the same link
//! configuration (the [`table_memory_counters`] amortization counters
//! prove the sharing — one `built`, N−1 `reused` per link group), while
//! each session owns only what actually differs per user: its
//! [`SproutEndpoint`] state machine (whose forecaster carries its own
//! `ForecastScratch`), its RNG sub-stream seed derived from
//! `(cell_seed, session_id)` via [`sprout_trace::session_seed`], and its
//! [`EndpointStats`].
//!
//! The pool is laid out struct-of-arrays: parallel `ids` / `seeds` /
//! `endpoints` columns indexed by a dense session index, so the server's
//! event loop iterates hot columns (wakeups, stats) without striding over
//! cold protocol state.
//!
//! [`table_memory_counters`]: crate::forecast::table_memory_counters

use std::collections::HashMap;
use std::sync::Arc;

use crate::config::SproutConfig;
use crate::endpoint::{EndpointStats, SproutEndpoint};
use crate::forecast::ForecastTables;
use crate::forecaster::BayesianForecaster;
use sprout_sim::FlowId;
use sprout_trace::session_seed;

/// The per-session state of one Sprout session inside a pool, borrowed by
/// dense index. Everything here is *per user*; everything shared lives
/// once on the [`SessionPool`].
pub struct SessionRef<'a> {
    /// The wire-visible session id (also the packet [`FlowId`]).
    pub id: u32,
    /// This session's RNG sub-stream seed, `session_seed(cell_seed, id)`.
    pub seed: u64,
    /// The session's protocol state machine.
    pub endpoint: &'a mut SproutEndpoint,
}

/// A struct-of-arrays pool of independent Sprout sessions sharing one
/// forecast-table build.
///
/// A pool belongs to exactly one cell (one `cell_seed`): session identity
/// is `(cell_seed, session_id)`, and [`SessionPool::add_session`] asserts
/// a session id is never added twice, so two sessions with the same
/// identity — and therefore the same derived RNG sub-stream — cannot
/// coexist.
pub struct SessionPool {
    cfg: SproutConfig,
    cell_seed: u64,
    /// The shared immutable forecast tables, captured from the first
    /// session's forecaster; every later session must share this exact
    /// allocation (asserted in `add_session`).
    tables: Option<Arc<ForecastTables>>,
    /// SoA column: wire-visible session ids, by dense index.
    ids: Vec<u32>,
    /// SoA column: per-session RNG sub-stream seeds, by dense index.
    seeds: Vec<u64>,
    /// SoA column: per-session protocol state machines, by dense index.
    endpoints: Vec<SproutEndpoint>,
    /// Demux map: session id → dense index.
    index: HashMap<u32, usize>,
}

impl SessionPool {
    /// Empty pool for one cell's sessions. `cfg` is the shared link/model
    /// configuration; all sessions added later share its table build.
    pub fn new(cfg: SproutConfig, cell_seed: u64) -> Self {
        cfg.validate();
        SessionPool {
            cfg,
            cell_seed,
            tables: None,
            ids: Vec::new(),
            seeds: Vec::new(),
            endpoints: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Add the server half of session `session_id` and return its dense
    /// index. The endpoint's forecaster goes through the global table
    /// cache, so the first session in a fresh link group *builds* the
    /// tables and every subsequent one *reuses* them.
    ///
    /// # Panics
    ///
    /// Panics if `session_id` already exists in this pool: session
    /// identity is `(cell_seed, session_id)`, and duplicating it would
    /// alias one RNG sub-stream across two live sessions.
    pub fn add_session(&mut self, session_id: u32) -> usize {
        let idx = self.ids.len();
        assert!(
            self.index.insert(session_id, idx).is_none(),
            "duplicate session: (cell_seed={}, session_id={session_id}) already exists",
            self.cell_seed
        );
        let forecaster = BayesianForecaster::new(self.cfg.clone());
        match &self.tables {
            None => self.tables = Some(Arc::clone(forecaster.tables())),
            Some(shared) => assert!(
                Arc::ptr_eq(shared, forecaster.tables()),
                "session {session_id} built a second forecast table for one link group"
            ),
        }
        let mut endpoint = SproutEndpoint::with_forecaster(self.cfg.clone(), Box::new(forecaster));
        endpoint.set_flow(FlowId(session_id));
        self.ids.push(session_id);
        self.seeds.push(session_seed(self.cell_seed, session_id));
        self.endpoints.push(endpoint);
        idx
    }

    /// Number of sessions in the pool.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the pool holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The cell seed all session sub-streams derive from.
    pub fn cell_seed(&self) -> u64 {
        self.cell_seed
    }

    /// The shared table handle (`None` until the first session is added).
    pub fn tables(&self) -> Option<&Arc<ForecastTables>> {
        self.tables.as_ref()
    }

    /// Dense index of `session_id`, if present.
    pub fn index_of(&self, session_id: u32) -> Option<usize> {
        self.index.get(&session_id).copied()
    }

    /// The wire-visible session id at dense index `idx`.
    pub fn session_id(&self, idx: usize) -> u32 {
        self.ids[idx]
    }

    /// The RNG sub-stream seed of the session at dense index `idx`.
    pub fn session_seed(&self, idx: usize) -> u64 {
        self.seeds[idx]
    }

    /// Mutable access to the session endpoint at dense index `idx`.
    pub fn endpoint_mut(&mut self, idx: usize) -> &mut SproutEndpoint {
        &mut self.endpoints[idx]
    }

    /// Borrow session `idx` as one logical record across the SoA columns.
    pub fn session_mut(&mut self, idx: usize) -> SessionRef<'_> {
        SessionRef {
            id: self.ids[idx],
            seed: self.seeds[idx],
            endpoint: &mut self.endpoints[idx],
        }
    }

    /// Endpoint counters of the session at dense index `idx`.
    pub fn stats(&self, idx: usize) -> EndpointStats {
        self.endpoints[idx].stats()
    }

    /// Estimated resident bytes of *per-session* state: the endpoint
    /// struct (sender, receiver, forecaster posterior and scratch all
    /// live inline or in small owned buffers) plus this pool's SoA slots.
    /// Shared state — the table DP, the config — is deliberately
    /// excluded: it does not scale with N, which is the point. Reported
    /// as `serve.per_session_bytes` in the bench trajectory.
    pub fn approx_session_bytes(&self) -> usize {
        std::mem::size_of::<SproutEndpoint>()
            + std::mem::size_of::<BayesianForecaster>()
            + std::mem::size_of::<u32>()
            + std::mem::size_of::<u64>()
            // HashMap entry: key + value + bucket overhead (~1.1 factor
            // rounded up to whole words).
            + 3 * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecast::table_memory_counters;

    /// A geometry no other test in this binary uses, so the first
    /// `ForecastTables::get` in this test is a genuine in-memory build.
    fn unique_cfg() -> SproutConfig {
        let mut cfg = SproutConfig::test_small();
        cfg.max_rate_pps = 203.0;
        cfg
    }

    #[test]
    fn sessions_share_one_table_build() {
        let before = table_memory_counters();
        let mut pool = SessionPool::new(unique_cfg(), 42);
        for sid in 0..8 {
            pool.add_session(sid);
        }
        let d = table_memory_counters().since(before);
        assert_eq!(d.built, 1, "one build per link group");
        assert_eq!(d.reused, 7, "N-1 reuses per link group");
        assert_eq!(pool.len(), 8);
        assert!(pool.tables().is_some());
    }

    #[test]
    fn pool_columns_align_and_seeds_derive_from_identity() {
        let mut pool = SessionPool::new(SproutConfig::test_small(), 7);
        pool.add_session(3);
        pool.add_session(11);
        assert_eq!(pool.index_of(11), Some(1));
        assert_eq!(pool.index_of(4), None);
        assert_eq!(pool.session_id(1), 11);
        assert_eq!(pool.session_seed(1), sprout_trace::session_seed(7, 11));
        assert_eq!(pool.session_mut(0).id, 3);
    }

    #[test]
    #[should_panic(expected = "duplicate session")]
    fn duplicate_session_identity_is_rejected() {
        let mut pool = SessionPool::new(SproutConfig::test_small(), 7);
        pool.add_session(5);
        pool.add_session(5);
    }
}
