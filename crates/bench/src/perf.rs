//! The `BENCH_sweep.json` performance trajectory.
//!
//! `reproduce --bench` runs a small canonical scenario matrix plus a set
//! of hot-path microbenchmarks and writes one JSON document recording:
//!
//! * per-cell wall time and the deterministic per-cell metrics (the
//!   metrics double as a cross-machine determinism check — they must
//!   match the committed baseline *exactly* for the same seed);
//! * sweep-level wall time and artifact-cache traffic (hits mean the
//!   run skipped forecast-table DP / trace synthesis);
//! * nanoseconds-per-iteration for the forecast, model-tick, and
//!   table-build hot paths.
//!
//! [`check_regression`] compares a fresh report against a recorded
//! baseline: timing fields may drift up to a tolerance (CI uses 20%),
//! deterministic metric fields must be identical. CI archives the file
//! as an artifact so the repository accumulates a perf trajectory.

use std::time::Instant;

use sprout_core::{
    ForecastScratch, ForecastTables, RateModel, SproutConfig, SproutEndpoint, TransitionKernel,
};
use sprout_sim::{FlowId, PathConfig, ServeSim};
use sprout_trace::{Duration, NetProfile, Timestamp};
use sprout_tunnel::SproutServer;

use crate::figures::ExperimentConfig;
use crate::scenario::{paired_profile, ScenarioMatrix};
use crate::schemes::{RunConfig, Scheme};
use crate::sweep::{json_f64, json_str, SweepResult, SweepStats};

/// One microbenchmark sample.
#[derive(Clone, Debug)]
pub struct MicroBench {
    /// Stable metric key (doubles as the JSON field name).
    pub key: &'static str,
    /// Nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// Wall-clock capacity of the multi-session serve loop, measured by
/// [`run_serve_capacity`]. These are host-dependent timing numbers (like
/// the microbenchmarks), deliberately separate from the deterministic
/// virtual-time [`ServeStats`](crate::sweep::ServeStats) the serve sweep
/// records.
#[derive(Clone, Copy, Debug)]
pub struct ServeCapacity {
    /// Sessions the probe drove concurrently.
    pub sessions: u32,
    /// Real-time serving capacity: `sessions × virtual seconds / wall
    /// seconds` — how many sessions this host could drive at 1× speed.
    pub sessions_per_sec: f64,
    /// Approximate per-session heap bytes of the session pool (the
    /// shared forecast table amortized away).
    pub per_session_bytes: f64,
    /// 99th-percentile wall time of one 20 ms event-loop tick across all
    /// sessions, nanoseconds.
    pub tick_p99_ns: f64,
}

/// A full `--bench` run: the sweep's results and stats plus the
/// microbenchmark samples.
#[derive(Debug)]
pub struct BenchReport {
    /// Master seed the bench matrix ran with.
    pub seed: u64,
    /// Results of the bench matrix, in matrix order.
    pub results: Vec<SweepResult>,
    /// Sweep-level wall time and cache traffic.
    pub stats: SweepStats,
    /// Hot-path microbenchmarks.
    pub micro: Vec<MicroBench>,
    /// Multi-session serve-loop capacity probe.
    pub serve: ServeCapacity,
}

impl BenchReport {
    /// Sweep throughput in cells per second (0 for an empty/instant run).
    pub fn cells_per_sec(&self) -> f64 {
        if self.stats.total_wall_ms > 0.0 {
            self.results.len() as f64 / (self.stats.total_wall_ms / 1e3)
        } else {
            0.0
        }
    }
}

/// The canonical bench matrix: Sprout across the Figure-9 confidence
/// axis on the T-Mobile 3G uplink — small enough for CI, broad enough
/// to exercise forecast tables, trace synthesis, and the full endpoint
/// hot path.
pub fn bench_matrix(cfg: &ExperimentConfig) -> ScenarioMatrix {
    cfg.matrix("bench")
        .schemes([Scheme::Sprout])
        .links([NetProfile::TmobileUmtsUp])
        .confidences_pct(crate::figures::FIG9_CONFIDENCES)
        .build()
}

/// Best-of-runs timing loop: times `iters` iterations of `f`, `runs`
/// times, and reports the fastest run (the minimum suppresses scheduler
/// noise without a statistics engine — remember it when reasoning about
/// baseline variance).
fn time_ns<O>(runs: usize, iters: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

/// Run the hot-path microbenchmarks at paper scale (except the table
/// build, which uses the scaled-down test config — the paper-scale build
/// is a one-time cost measured by the sweep's cold-cache wall time).
pub fn run_micro_benches() -> Vec<MicroBench> {
    let cfg = SproutConfig::paper();
    let tables = ForecastTables::get(&cfg);
    let mut model = RateModel::new(cfg.clone());
    for _ in 0..50 {
        model.evolve();
        model.observe(8.0);
    }
    let mut scratch = ForecastScratch::default();
    let forecast_ns = time_ns(5, 200, || {
        tables
            .forecast_into(model.distribution(), 5.0, &mut scratch)
            .cumulative_units
            .len()
    });
    let model_tick_ns = time_ns(5, 200, || {
        model.evolve();
        model.observe(std::hint::black_box(8.0));
    });
    // The chunked/SIMD-dispatched evolve kernel in isolation (no
    // observation): the inner loop the batched table DP and the per-tick
    // model both stand on.
    let evolve_batched_ns = time_ns(5, 200, || model.evolve());
    let small = SproutConfig::test_small();
    let kernel = TransitionKernel::new(&small);
    let table_build_ns = time_ns(2, 3, || ForecastTables::build(&small, &kernel));
    vec![
        MicroBench {
            key: "forecast_ns",
            ns_per_iter: forecast_ns,
        },
        MicroBench {
            key: "model_tick_ns",
            ns_per_iter: model_tick_ns,
        },
        MicroBench {
            key: "evolve_batched_ns",
            ns_per_iter: evolve_batched_ns,
        },
        MicroBench {
            key: "table_build_small_ns",
            ns_per_iter: table_build_ns,
        },
    ]
}

/// Sessions the serve capacity probe drives: large enough that shared
/// state and the O(due) event loop dominate, small enough for CI.
pub const CAPACITY_SESSIONS: u32 = 128;

/// Virtual seconds the serve capacity probe simulates.
const CAPACITY_SECS: u64 = 10;

/// Time the multi-session serve loop: [`CAPACITY_SESSIONS`] saturating
/// Sprout sessions on the T-Mobile 3G uplink, stepped in 20 ms virtual
/// ticks so each `run_until` call is one "tick" of the shared event
/// loop. Wall-clock only — the deterministic serve results come from the
/// `serve` sweep matrix.
pub fn run_serve_capacity(seed: u64) -> ServeCapacity {
    let sessions = CAPACITY_SESSIONS;
    let duration = Duration::from_secs(CAPACITY_SECS);
    let link = NetProfile::TmobileUmtsUp;
    let rc = RunConfig {
        duration,
        warmup: Duration::ZERO,
        ..RunConfig::new(
            link.generate(duration, seed),
            paired_profile(link).generate(duration, seed),
        )
    };
    let mut server = SproutServer::new(rc.sprout.clone(), rc.serve_seed);
    for i in 0..sessions {
        server.add_session(i + 1);
    }
    let per_session_bytes = server.pool().approx_session_bytes() as f64;
    let mut sim = ServeSim::new(server);
    for i in 0..sessions {
        let up = PathConfig::standard(rc.data_trace.clone()).with_prop_delay(rc.prop_delay);
        let down = PathConfig::standard(rc.feedback_trace.clone()).with_prop_delay(rc.prop_delay);
        let mut client = SproutEndpoint::new_ewma(rc.sprout.clone());
        client.set_saturating();
        client.set_flow(FlowId(i + 1));
        sim.add_session(FlowId(i + 1), client, up, down);
    }

    let end = Timestamp::ZERO + duration;
    let tick = Duration::from_millis(20);
    let mut samples = Vec::with_capacity((CAPACITY_SECS * 50) as usize + 1);
    let t0 = Instant::now();
    let mut now = Timestamp::ZERO;
    while now < end {
        now = (now + tick).min(end);
        let s = Instant::now();
        sim.run_until(now);
        samples.push(s.elapsed().as_nanos() as f64);
    }
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    samples.sort_by(f64::total_cmp);
    let tick_p99_ns = samples[(samples.len() - 1) * 99 / 100];
    ServeCapacity {
        sessions,
        sessions_per_sec: sessions as f64 * CAPACITY_SECS as f64 / wall_s,
        per_session_bytes,
        tick_p99_ns,
    }
}

/// Render a bench report as one stable-key-order JSON document
/// (`BENCH_sweep.json`).
pub fn bench_report_to_json(report: &BenchReport) -> String {
    let mut o = String::with_capacity(1024);
    o.push_str("{\"bench_version\":1,\"seed\":");
    o.push_str(&report.seed.to_string());
    o.push_str(",\"cells\":[\n");
    for (i, r) in report.results.iter().enumerate() {
        o.push_str("{\"label\":");
        json_str(&mut o, &r.scenario.label);
        o.push_str(",\"wall_ms\":");
        json_f64(&mut o, r.wall_ms);
        if let Some(m) = &r.metrics {
            o.push_str(",\"throughput_kbps\":");
            json_f64(&mut o, m.throughput_kbps);
            o.push_str(",\"self_inflicted_ms\":");
            json_f64(&mut o, m.self_inflicted_ms);
        }
        o.push('}');
        if i + 1 < report.results.len() {
            o.push(',');
        }
        o.push('\n');
    }
    o.push_str("],\"total_wall_ms\":");
    json_f64(&mut o, report.stats.total_wall_ms);
    // Sweep throughput: the headline the batch executor optimizes.
    // Higher is better — `check_regression` gates it downward.
    o.push_str(",\"cells_per_sec\":");
    json_f64(&mut o, report.cells_per_sec());
    // Batch-executor layout and in-memory amortization. Field names must
    // not contain the substring "misses" — the CI warm-cache assertion
    // counts `"misses":` occurrences across the document and expects
    // exactly the three disk-cache counters.
    let b = &report.stats.batch;
    o.push_str(",\"batch\":{\"enabled\":");
    o.push_str(if b.enabled { "true" } else { "false" });
    o.push_str(",\"workers\":");
    o.push_str(&b.workers.to_string());
    o.push_str(",\"batches\":");
    o.push_str(&b.batches.to_string());
    o.push_str(",\"tables_built\":");
    o.push_str(&b.tables.built.to_string());
    o.push_str(",\"tables_reused\":");
    o.push_str(&b.tables.reused.to_string());
    o.push_str(",\"traces_built\":");
    o.push_str(&b.traces.built.to_string());
    o.push_str(",\"traces_reused\":");
    o.push_str(&b.traces.reused.to_string());
    o.push('}');
    let cache = |o: &mut String, c: sprout_cache::CacheCounters| {
        o.push_str("{\"hits\":");
        o.push_str(&c.hits.to_string());
        o.push_str(",\"misses\":");
        o.push_str(&c.misses.to_string());
        o.push_str(",\"stores\":");
        o.push_str(&c.stores.to_string());
        o.push('}');
    };
    o.push_str(",\"cache\":{\"table\":");
    cache(&mut o, report.stats.table_cache);
    o.push_str(",\"trace\":");
    cache(&mut o, report.stats.trace_cache);
    o.push_str(",\"cell\":");
    cache(&mut o, report.stats.cell_cache);
    // Serve-loop capacity. Like cells_per_sec, sessions_per_sec gates
    // *downward* in `check_regression`; the other fields are recorded
    // for the trajectory.
    let s = &report.serve;
    o.push_str("},\"serve\":{\"sessions\":");
    o.push_str(&s.sessions.to_string());
    o.push_str(",\"sessions_per_sec\":");
    json_f64(&mut o, s.sessions_per_sec);
    o.push_str(",\"per_session_bytes\":");
    json_f64(&mut o, s.per_session_bytes);
    o.push_str(",\"tick_p99_ns\":");
    json_f64(&mut o, s.tick_p99_ns);
    o.push_str("},\"micro\":{");
    for (i, m) in report.micro.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push('"');
        o.push_str(m.key);
        o.push_str("\":");
        json_f64(&mut o, m.ns_per_iter);
    }
    o.push_str("}}\n");
    o
}

/// Extract the first number following `"key":` in a JSON document. Good
/// enough for the flat, uniquely-keyed fields of `BENCH_sweep.json`
/// (this workspace is offline — no serde).
fn find_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compare a fresh bench report against a recorded baseline document.
///
/// * Timing metrics (`total_wall_ms` and each microbenchmark) may be up
///   to `tolerance` (e.g. `0.20`) slower than the baseline.
/// * Deterministic metrics (per-cell throughput, exact to the printed
///   digit for the same seed) must match the baseline exactly; a
///   mismatch means behavior changed and the baseline needs a deliberate
///   update.
///
/// Returns the list of violations (empty = pass).
pub fn check_regression(report: &BenchReport, baseline_json: &str, tolerance: f64) -> Vec<String> {
    let mut violations = Vec::new();
    let mut check_timing = |key: &str, current: f64| {
        match find_number(baseline_json, key) {
            Some(base) if base > 0.0 => {
                if current > base * (1.0 + tolerance) {
                    violations.push(format!(
                        "{key}: {current:.0} exceeds baseline {base:.0} by more than {:.0}%",
                        tolerance * 100.0
                    ));
                }
            }
            _ => violations.push(format!("{key}: missing from baseline")),
        };
    };
    check_timing("total_wall_ms", report.stats.total_wall_ms);
    for m in &report.micro {
        check_timing(m.key, m.ns_per_iter);
    }
    // Throughput gates downward: lower is worse. Baselines predating a
    // field are tolerated (the additive-key guard, not this check,
    // forbids dropping fields going forward).
    let mut check_throughput = |key: &str, current: f64| {
        if let Some(base) = find_number(baseline_json, key) {
            if base > 0.0 && current < base * (1.0 - tolerance) {
                violations.push(format!(
                    "{key}: {current:.2} fell below baseline {base:.2} by more than {:.0}%",
                    tolerance * 100.0
                ));
            }
        }
    };
    check_throughput("cells_per_sec", report.cells_per_sec());
    check_throughput("sessions_per_sec", report.serve.sessions_per_sec);
    // Determinism: each cell's throughput must equal the value the
    // baseline records under the *same label* (same seed ⇒ same
    // simulated bytes ⇒ exact f64 round trip) — a whole-document
    // substring match would let swapped cells pass.
    for r in &report.results {
        if let Some(m) = &r.metrics {
            match cell_throughput(baseline_json, &r.scenario.label) {
                None => violations.push(format!(
                    "{}: cell missing from baseline (matrix changed — regenerate BENCH_sweep.json deliberately)",
                    r.scenario.label
                )),
                Some(base) if base != m.throughput_kbps => violations.push(format!(
                    "{}: throughput {} kbps differs from baseline {base} (nondeterminism or behavior change — regenerate BENCH_sweep.json deliberately)",
                    r.scenario.label, m.throughput_kbps
                )),
                Some(_) => {}
            }
        }
    }
    violations
}

/// Every JSON key present in `baseline_json` but absent from
/// `report_json`, in baseline order (deduplicated).
///
/// `BENCH_sweep.json` is an append-only trajectory: later engine
/// versions may add fields, but silently dropping one would sever the
/// perf history it anchors (and break downstream tooling keyed on it).
/// `reproduce --bench` refuses to overwrite a baseline whose keys the
/// fresh report no longer carries.
pub fn missing_keys(baseline_json: &str, report_json: &str) -> Vec<String> {
    let report_keys: std::collections::HashSet<String> = json_keys(report_json).collect();
    let mut missing = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for key in json_keys(baseline_json) {
        if seen.insert(key.clone()) && !report_keys.contains(&key) {
            missing.push(key);
        }
    }
    missing
}

/// All `"key":` tokens of a JSON document (a string immediately followed
/// by a colon). String values never precede a colon in valid JSON, so
/// this names exactly the object keys.
fn json_keys(json: &str) -> impl Iterator<Item = String> + '_ {
    let bytes = json.as_bytes();
    let mut i = 0;
    std::iter::from_fn(move || {
        while i < bytes.len() {
            if bytes[i] == b'"' {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                let end = j.min(bytes.len());
                i = end + 1;
                if i < bytes.len() && bytes[i] == b':' {
                    return Some(json[start..end].to_string());
                }
            } else {
                i += 1;
            }
        }
        None
    })
}

/// The `throughput_kbps` the baseline records for the cell labelled
/// `label`. Cell objects in `BENCH_sweep.json` are flat (no nested
/// braces), so the cell ends at the first `}` after its label.
fn cell_throughput(json: &str, label: &str) -> Option<f64> {
    let mut needle = String::from("\"label\":");
    json_str(&mut needle, label);
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest.find('}').unwrap_or(rest.len());
    find_number(&rest[..end], "throughput_kbps")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepEngine;

    fn tiny_report() -> BenchReport {
        let cfg = ExperimentConfig {
            run_secs: 12,
            warmup_secs: 2,
            seed: 7,
            ..ExperimentConfig::default()
        };
        let matrix = bench_matrix(&cfg);
        let (results, stats) = SweepEngine::new(cfg.seed).run_with_stats(&matrix);
        BenchReport {
            seed: cfg.seed,
            results,
            stats,
            micro: vec![
                MicroBench {
                    key: "forecast_ns",
                    ns_per_iter: 1000.0,
                },
                MicroBench {
                    key: "model_tick_ns",
                    ns_per_iter: 2000.0,
                },
                MicroBench {
                    key: "table_build_small_ns",
                    ns_per_iter: 3000.0,
                },
            ],
            serve: ServeCapacity {
                sessions: 8,
                sessions_per_sec: 100.0,
                per_session_bytes: 1024.0,
                tick_p99_ns: 5000.0,
            },
        }
    }

    #[test]
    fn report_round_trips_through_regression_check() {
        let report = tiny_report();
        let json = bench_report_to_json(&report);
        assert!(json.contains("\"cache\""));
        assert!(json.contains("\"forecast_ns\""));
        assert!(json.contains("\"sessions_per_sec\""));
        // A report always passes against its own rendering.
        let violations = check_regression(&report, &json, 0.20);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn slower_serve_capacity_fails_against_baseline() {
        let mut report = tiny_report();
        let json = bench_report_to_json(&report);
        report.serve.sessions_per_sec /= 2.0;
        let violations = check_regression(&report, &json, 0.20);
        assert!(
            violations.iter().any(|v| v.contains("sessions_per_sec")),
            "{violations:?}"
        );
    }

    #[test]
    fn slower_run_fails_against_tight_baseline() {
        let mut report = tiny_report();
        let json = bench_report_to_json(&report);
        report.micro[0].ns_per_iter *= 2.0; // 100% slower than baseline
        let violations = check_regression(&report, &json, 0.20);
        assert!(
            violations.iter().any(|v| v.contains("forecast_ns")),
            "{violations:?}"
        );
    }

    #[test]
    fn swapped_cells_fail_determinism_check() {
        // Both values still appear in the baseline document — only the
        // per-label comparison catches the swap.
        let mut report = tiny_report();
        let json = bench_report_to_json(&report);
        let (a, b) = (0, report.results.len() - 1);
        let tmp = report.results[a].metrics;
        report.results[a].metrics = report.results[b].metrics;
        report.results[b].metrics = tmp;
        let violations = check_regression(&report, &json, 1000.0);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("differs from baseline")),
            "{violations:?}"
        );
    }

    #[test]
    fn changed_metrics_fail_determinism_check() {
        let report = tiny_report();
        let mut json = bench_report_to_json(&report);
        // Corrupt every digit so the throughput strings cannot match.
        json = json.replace(['1', '2', '3', '4'], "9");
        let violations = check_regression(&report, &json, 1000.0);
        assert!(!violations.is_empty());
    }

    #[test]
    fn find_number_parses_fields() {
        let doc = r#"{"a":12.5,"b":-3e2,"nested":{"c":7}}"#;
        assert_eq!(find_number(doc, "a"), Some(12.5));
        assert_eq!(find_number(doc, "b"), Some(-300.0));
        assert_eq!(find_number(doc, "c"), Some(7.0));
        assert_eq!(find_number(doc, "missing"), None);
    }
}
