//! Per-cell result persistence: the `cell-result` artifact kind.
//!
//! A [`SweepResult`] is a pure function of `(engine version, matrix
//! declaration, scenario, master seed)` — everything else (thread count,
//! shard assignment, execution order) is guaranteed not to matter by the
//! sweep engine's determinism contract. This module persists finished
//! cells in the shared `sprout-cache` store under exactly that key, with
//! the same checksummed/atomic/versioned guarantees forecast tables and
//! synthesized traces already enjoy. It is what makes sweeps:
//!
//! * **shardable** — processes running disjoint shards of one matrix
//!   against one cache directory each deposit their cells; a merge pass
//!   reassembles the canonical sweep from the cache alone;
//! * **resumable** — a killed or partially-failed sweep reruns with
//!   [`CellCachePolicy::Resume`](crate::sweep::CellCachePolicy) and only
//!   executes the cells that never completed.
//!
//! The payload deliberately **excludes** [`SweepResult::wall_ms`]: wall
//! time is a property of one execution, not of the cell, and the
//! canonical sweep JSON excludes it for the same reason. Cached loads
//! report `wall_ms = 0.0`, which also makes "served from cache" visible
//! in `BENCH_sweep.json` trajectories.

use sprout_cache::{ArtifactKind, ByteReader, ByteWriter, CacheCounters};

use crate::scenario::{ResolvedQueue, Scenario};
use crate::schemes::SchemeResult;
use crate::sweep::{
    CellSeries, CellSeriesBin, FlowSummary, InterarrivalSummary, SeriesRow, ServeStats, SweepResult,
};

/// On-disk persistence of sweep cells. The version covers the payload
/// encoding only; simulation-semantics changes are keyed separately by
/// [`ENGINE_VERSION`].
static CELL_ARTIFACT: ArtifactKind = ArtifactKind::new("cell-result", 1);

/// On-disk persistence of per-cell time series, stored *alongside* the
/// cell result under the same key (own kind, own file). Split out so the
/// summary payload stays small for sweeps that never request a series,
/// while a `--timeseries` resume can serve both without re-simulating.
static CELL_SERIES_ARTIFACT: ArtifactKind = ArtifactKind::new("cell-series", 1);

/// Version of the sweep engine's *execution semantics*. Bump whenever a
/// change makes the same `(matrix, scenario, master_seed)` produce
/// different results — endpoint behavior, seed derivation, metrics
/// definitions — so stale cell results read as misses instead of
/// silently resurfacing pre-change numbers.
///
/// v2: the default DropTail queue became an explicit deep capacity
/// (`DEEP_QUEUE_BYTES`) instead of unbounded, and cells gained
/// prop-delay / queue-depth / app-workload axes (new `Scenario` fields
/// and a richer `ResolvedQueue` payload encoding).
///
/// v3: multi-flow contention workloads (`Workload::Contention` grows
/// the canonical workload detail) and `SweepResult` gained the Jain's
/// fairness field, which the cell payload now encodes.
///
/// v4: the fault-injection layer. `Scenario` gained the `impairment`
/// field (burst loss, outages, jitter, reordering — encoded into the
/// canonical bytes), the per-cell seed derivation grew the
/// `impair-data`/`impair-feedback`/`impair-outage` sub-streams, and
/// `SchemeResult` gained the graceful-degradation metrics (`outages`,
/// `recovery_ms`, `degraded_delivery`), which the payload now encodes.
///
/// v5: the multi-session serve workload. `Workload::Serve` joined the
/// scenario axis (new canonical workload id/detail), the per-cell seed
/// derivation grew the per-session `session` sub-streams
/// ([`sprout_trace::session_seed`]), and `SweepResult` gained the
/// [`ServeStats`] capacity summary, which the payload now encodes.
///
/// v6: measured-trace replay and the cell-series artifact. `Scenario`
/// links became [`crate::scenario::LinkSpec`] (measured captures keyed
/// by the content fingerprint of their raw bytes, never a path) and
/// gained the `cell_series_bin` request field; a cell result now
/// carries an optional time-series attachment persisted as its own
/// "cell-series" artifact under the same key, and a series-requesting
/// hit must find that artifact — the bump retires every pre-series
/// cell so the invariant holds from the first v6 run.
pub const ENGINE_VERSION: u32 = 6;

/// Disk-cache traffic counters for cell results (hits mean a sweep
/// served a whole cell without simulating it).
pub fn cell_cache_counters() -> CacheCounters {
    CELL_ARTIFACT.counters()
}

/// Reset the cell cache counters (bench/test harnesses).
pub fn reset_cell_cache_counters() {
    CELL_ARTIFACT.reset_counters()
}

/// Disk-cache traffic counters for per-cell time-series artifacts.
pub fn cell_series_cache_counters() -> CacheCounters {
    CELL_SERIES_ARTIFACT.counters()
}

/// The full content address of one cell's result. The cache layer stores
/// these bytes verbatim and compares them on load, so two cells collide
/// only if every component below is identical.
fn cell_key(
    matrix_name: &str,
    matrix_fingerprint: u64,
    scenario: &Scenario,
    master_seed: u64,
) -> Vec<u8> {
    cell_key_versioned(
        ENGINE_VERSION,
        matrix_name,
        matrix_fingerprint,
        scenario,
        master_seed,
    )
}

/// [`cell_key`] under an explicit engine version, so tests can prove
/// cells stored by an older engine are *missed* (re-executed), never
/// wrongly served.
fn cell_key_versioned(
    engine_version: u32,
    matrix_name: &str,
    matrix_fingerprint: u64,
    scenario: &Scenario,
    master_seed: u64,
) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(128);
    w.u32(engine_version);
    w.str(matrix_name);
    w.u64(matrix_fingerprint);
    w.u64(master_seed);
    scenario.canonical_bytes(&mut w);
    w.finish()
}

fn encode_result(r: &SweepResult) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(256 + 40 * r.series.len());
    let (queue_tag, queue_cap) = match r.queue {
        ResolvedQueue::DropTail => (0u32, 0u64),
        ResolvedQueue::CoDel => (1, 0),
        ResolvedQueue::DropTailBytes(cap) => (2, cap),
    };
    w.u32(queue_tag).u64(queue_cap);
    w.u64(r.cell_seed);
    w.bool(r.metrics.is_some());
    if let Some(m) = &r.metrics {
        w.f64(m.throughput_kbps)
            .f64(m.p95_delay_ms)
            .f64(m.self_inflicted_ms)
            .f64(m.omniscient_ms)
            .f64(m.utilization)
            .u32(m.outages)
            .f64(m.recovery_ms)
            .f64(m.degraded_delivery);
    }
    w.u32(r.flows.len() as u32);
    for f in &r.flows {
        w.u32(f.flow).f64(f.throughput_kbps).f64(f.p95_delay_ms);
    }
    w.bool(r.fairness.is_some());
    w.f64(r.fairness.unwrap_or(0.0));
    w.u32(r.series.len() as u32);
    for s in &r.series {
        w.f64(s.t_s)
            .f64(s.capacity_kbps)
            .f64(s.throughput_kbps)
            .f64(s.worst_delay_ms);
    }
    w.bool(r.serve.is_some());
    if let Some(s) = &r.serve {
        w.u32(s.sessions)
            .u64(s.delivered_bytes)
            .u64(s.min_session_bytes)
            .u64(s.max_session_bytes)
            .u64(s.wire_delivered_bytes);
    }
    w.bool(r.interarrival.is_some());
    if let Some(ia) = &r.interarrival {
        w.f64(ia.fraction_within_20ms);
        w.bool(ia.tail_slope.is_some());
        w.f64(ia.tail_slope.unwrap_or(0.0));
        w.u64(ia.samples);
        w.u32(ia.rows.len() as u32);
        for &(lo, hi, pct) in &ia.rows {
            w.f64(lo).f64(hi).f64(pct);
        }
    }
    w.finish()
}

fn decode_result(scenario: &Scenario, matrix_name: &str, bytes: &[u8]) -> Option<SweepResult> {
    let mut r = ByteReader::new(bytes);
    let queue = match (r.u32()?, r.u64()?) {
        (0, _) => ResolvedQueue::DropTail,
        (1, _) => ResolvedQueue::CoDel,
        (2, cap) => ResolvedQueue::DropTailBytes(cap),
        _ => return None,
    };
    let cell_seed = r.u64()?;
    let metrics = if r.bool()? {
        Some(SchemeResult {
            throughput_kbps: r.f64()?,
            p95_delay_ms: r.f64()?,
            self_inflicted_ms: r.f64()?,
            omniscient_ms: r.f64()?,
            utilization: r.f64()?,
            outages: r.u32()?,
            recovery_ms: r.f64()?,
            degraded_delivery: r.f64()?,
        })
    } else {
        None
    };
    let n_flows = r.u32()? as usize;
    let mut flows = Vec::with_capacity(n_flows);
    for _ in 0..n_flows {
        flows.push(FlowSummary {
            flow: r.u32()?,
            throughput_kbps: r.f64()?,
            p95_delay_ms: r.f64()?,
        });
    }
    let has_fairness = r.bool()?;
    let fairness_value = r.f64()?;
    let fairness = has_fairness.then_some(fairness_value);
    let n_series = r.u32()? as usize;
    let mut series = Vec::with_capacity(n_series);
    for _ in 0..n_series {
        series.push(SeriesRow {
            t_s: r.f64()?,
            capacity_kbps: r.f64()?,
            throughput_kbps: r.f64()?,
            worst_delay_ms: r.f64()?,
        });
    }
    let serve = if r.bool()? {
        Some(ServeStats {
            sessions: r.u32()?,
            delivered_bytes: r.u64()?,
            min_session_bytes: r.u64()?,
            max_session_bytes: r.u64()?,
            wire_delivered_bytes: r.u64()?,
        })
    } else {
        None
    };
    let interarrival = if r.bool()? {
        let fraction_within_20ms = r.f64()?;
        let has_slope = r.bool()?;
        let slope = r.f64()?;
        let samples = r.u64()?;
        let n_rows = r.u32()? as usize;
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            rows.push((r.f64()?, r.f64()?, r.f64()?));
        }
        Some(InterarrivalSummary {
            fraction_within_20ms,
            tail_slope: has_slope.then_some(slope),
            samples,
            rows,
        })
    } else {
        None
    };
    if r.remaining() != 0 {
        return None;
    }
    Some(SweepResult {
        scenario: scenario.clone(),
        matrix: matrix_name.to_string(),
        queue,
        cell_seed,
        metrics,
        flows,
        fairness,
        series,
        interarrival,
        serve,
        cell_series: None,
        wall_ms: 0.0,
    })
}

/// Encode the time-series attachment. `None` writes an explicit marker:
/// a cell whose workload produces no series (probe, serve) still stores
/// a valid artifact, so its hits never demote for a series that never
/// existed.
fn encode_series(series: Option<&CellSeries>) -> Vec<u8> {
    let n = series.map_or(0, |s| s.delays.len() + s.bins.len());
    let mut w = ByteWriter::with_capacity(16 + 34 * n);
    w.bool(series.is_some());
    if let Some(s) = series {
        w.u64(s.bin_us);
        w.u32(s.delays.len() as u32);
        for &(t_s, delay_ms) in &s.delays {
            w.f64(t_s).f64(delay_ms);
        }
        w.u32(s.bins.len() as u32);
        for b in &s.bins {
            w.f64(b.t_s)
                .f64(b.capacity_kbps)
                .f64(b.throughput_kbps)
                .u64(b.queue_depth);
        }
    }
    w.finish()
}

/// Decode a time-series artifact. The outer `Option` is decode success;
/// the inner one mirrors [`SweepResult::cell_series`].
fn decode_series(bytes: &[u8]) -> Option<Option<CellSeries>> {
    let mut r = ByteReader::new(bytes);
    let series = if r.bool()? {
        let bin_us = r.u64()?;
        let n_delays = r.u32()? as usize;
        let mut delays = Vec::with_capacity(n_delays);
        for _ in 0..n_delays {
            delays.push((r.f64()?, r.f64()?));
        }
        let n_bins = r.u32()? as usize;
        let mut bins = Vec::with_capacity(n_bins);
        for _ in 0..n_bins {
            bins.push(CellSeriesBin {
                t_s: r.f64()?,
                capacity_kbps: r.f64()?,
                throughput_kbps: r.f64()?,
                queue_depth: r.u64()?,
            });
        }
        Some(CellSeries {
            bin_us,
            delays,
            bins,
        })
    } else {
        None
    };
    (r.remaining() == 0).then_some(series)
}

/// Load the cached result of one cell, if present and intact. A payload
/// that passed the file-level integrity checks but fails to *decode*
/// (schema drift inside one engine version, bit rot the checksum missed)
/// is quarantined — the entry is renamed to `*.corrupt` — and the hit is
/// demoted to a miss, so the sweep re-executes the cell instead of
/// failing.
pub fn load_cell(
    matrix_name: &str,
    matrix_fingerprint: u64,
    scenario: &Scenario,
    master_seed: u64,
) -> Option<SweepResult> {
    let key = cell_key(matrix_name, matrix_fingerprint, scenario, master_seed);
    let payload = CELL_ARTIFACT.load(&key)?;
    let mut decoded = match decode_result(scenario, matrix_name, &payload) {
        Some(r) => r,
        None => {
            CELL_ARTIFACT.quarantine(&key);
            CELL_ARTIFACT.demote_hit();
            return None;
        }
    };
    if scenario.cell_series_bin.is_some() {
        // The scenario requests a time series, so a hit must supply the
        // series artifact too; anything less demotes the whole cell to
        // a miss (re-execute), never a series-less stale hit.
        match CELL_SERIES_ARTIFACT.load(&key) {
            None => {
                CELL_ARTIFACT.demote_hit();
                return None;
            }
            Some(bytes) => match decode_series(&bytes) {
                Some(series) => decoded.cell_series = series,
                None => {
                    CELL_SERIES_ARTIFACT.quarantine(&key);
                    CELL_SERIES_ARTIFACT.demote_hit();
                    CELL_ARTIFACT.demote_hit();
                    return None;
                }
            },
        }
    }
    Some(decoded)
}

/// Persist one executed cell (best-effort; a disabled cache is a no-op).
pub fn store_cell(matrix_fingerprint: u64, master_seed: u64, result: &SweepResult) -> bool {
    let key = cell_key(
        &result.matrix,
        matrix_fingerprint,
        &result.scenario,
        master_seed,
    );
    let stored = CELL_ARTIFACT.store(&key, &encode_result(result));
    if result.scenario.cell_series_bin.is_some() {
        CELL_SERIES_ARTIFACT.store(&key, &encode_series(result.cell_series.as_ref()));
    }
    stored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Workload;
    use crate::schemes::Scheme;
    use sprout_trace::{Duration, NetProfile};

    /// Serializes the tests that mutate the process-global cache-dir
    /// override (and read the process-global traffic counters).
    static CACHE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn sample_scenario() -> Scenario {
        Scenario {
            id: 3,
            label: "t/vz-lte-down/sprout".into(),
            workload: Workload::Scheme(Scheme::Sprout),
            link: NetProfile::VerizonLteDown.into(),
            queue: crate::scenario::QueueSpec::Auto,
            prop_delay: Duration::from_millis(20),
            loss_rate: 0.05,
            confidence_pct: Some(75.0),
            duration: Duration::from_secs(30),
            warmup: Duration::from_secs(5),
            series_bin: Some(Duration::from_millis(500)),
            impairment: sprout_trace::Impairment::preset("burst").expect("known preset"),
            cell_series_bin: None,
        }
    }

    fn sample_series() -> CellSeries {
        CellSeries {
            bin_us: 500_000,
            delays: vec![(0.25, 12.5), (0.75, 80.0)],
            bins: vec![CellSeriesBin {
                t_s: 0.0,
                capacity_kbps: 1000.0,
                throughput_kbps: 900.0,
                queue_depth: 3,
            }],
        }
    }

    fn sample_result() -> SweepResult {
        SweepResult {
            scenario: sample_scenario(),
            matrix: "t".into(),
            queue: ResolvedQueue::DropTail,
            cell_seed: 0xdead_beef,
            metrics: Some(SchemeResult {
                throughput_kbps: 1234.5,
                p95_delay_ms: f64::NAN, // NaN must survive the round trip
                self_inflicted_ms: 42.0,
                omniscient_ms: 20.0,
                utilization: 0.93,
                outages: 2,
                recovery_ms: 350.0,
                degraded_delivery: f64::NAN, // NaN → null must round-trip too
            }),
            flows: vec![FlowSummary {
                flow: 1,
                throughput_kbps: 100.0,
                p95_delay_ms: 17.0,
            }],
            fairness: Some(0.75),
            series: vec![SeriesRow {
                t_s: 0.5,
                capacity_kbps: 5000.0,
                throughput_kbps: 4500.0,
                worst_delay_ms: 12.0,
            }],
            interarrival: Some(InterarrivalSummary {
                fraction_within_20ms: 0.9999,
                tail_slope: None,
                samples: 7,
                rows: vec![(0.0, 10.0, 99.0)],
            }),
            serve: Some(ServeStats {
                sessions: 16,
                delivered_bytes: 1_000_000,
                min_session_bytes: 50_000,
                max_session_bytes: 70_000,
                wire_delivered_bytes: 1_200_000,
            }),
            cell_series: None,
            wall_ms: 123.0,
        }
    }

    #[test]
    fn result_encoding_round_trips_excluding_wall_time() {
        let r = sample_result();
        let bytes = encode_result(&r);
        let back = decode_result(&r.scenario, "t", &bytes).expect("decodes");
        let mut expect = r.clone();
        expect.wall_ms = 0.0; // wall time is per-execution, not cached
                              // NaN != NaN, so compare through the canonical JSON rendering,
                              // which is the representation the bit-identity guarantee is about.
        assert_eq!(
            crate::sweep::result_to_json(&back),
            crate::sweep::result_to_json(&expect)
        );
        assert_eq!(back.wall_ms, 0.0);
    }

    #[test]
    fn truncated_payload_decodes_to_none() {
        let r = sample_result();
        let bytes = encode_result(&r);
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_result(&r.scenario, "t", &bytes[..cut]).is_none(),
                "truncation at {cut} must not decode"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(
            decode_result(&r.scenario, "t", &padded).is_none(),
            "trailing bytes must not decode"
        );
    }

    #[test]
    fn pre_bump_engine_versions_are_cache_misses_not_stale_hits() {
        // Cells persisted by an older engine must be *missed* (and thus
        // re-executed by a resume/merge), never served: the key leads
        // with ENGINE_VERSION, so the bump retires every old cell.
        let _g = CACHE_LOCK.lock().unwrap();
        let dir =
            std::env::temp_dir().join(format!("sprout-engine-version-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        sprout_cache::set_dir(&dir);

        let r = sample_result();
        let (fp, seed) = (0xfeed, 7);
        for old_version in [0, ENGINE_VERSION - 1] {
            let old_key = cell_key_versioned(old_version, "t", fp, &r.scenario, seed);
            assert!(
                CELL_ARTIFACT.store(&old_key, &encode_result(&r)),
                "storing under engine version {old_version}"
            );
        }
        assert!(
            load_cell("t", fp, &r.scenario, seed).is_none(),
            "cells keyed under a pre-bump engine version must be misses"
        );
        assert!(store_cell(fp, seed, &r));
        assert!(
            load_cell("t", fp, &r.scenario, seed).is_some(),
            "the current engine version serves its own cells"
        );

        sprout_cache::reset_override();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn undecodable_payload_is_quarantined_and_demoted_to_a_miss() {
        // A file that passes the cache's magic/checksum checks but whose
        // payload no longer decodes (e.g. bit rot the checksum missed, or
        // schema drift inside one engine version) must not fail the sweep:
        // the entry is pushed aside to *.corrupt and the cell re-executes.
        let _g = CACHE_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!(
            "sprout-cell-quarantine-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        sprout_cache::set_dir(&dir);

        let r = sample_result();
        let (fp, seed) = (0xabad, 11);
        let key = cell_key("t", fp, &r.scenario, seed);
        assert!(
            CELL_ARTIFACT.store(&key, b"not a cell payload"),
            "a checksum-valid file with a garbage payload"
        );

        let before = cell_cache_counters();
        assert!(
            load_cell("t", fp, &r.scenario, seed).is_none(),
            "an undecodable payload must demote to a miss"
        );
        let traffic = cell_cache_counters().since(before);
        assert_eq!(
            (traffic.hits, traffic.misses, traffic.quarantined),
            (0, 1, 1),
            "the file-level hit is reclassified and the entry quarantined"
        );
        // The poisoned name is free: a fresh store then serves normally.
        assert!(store_cell(fp, seed, &r));
        assert!(load_cell("t", fp, &r.scenario, seed).is_some());

        sprout_cache::reset_override();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn series_payload_round_trips_and_none_is_an_explicit_marker() {
        let s = sample_series();
        let bytes = encode_series(Some(&s));
        assert_eq!(decode_series(&bytes), Some(Some(s)));
        assert_eq!(
            decode_series(&encode_series(None)),
            Some(None),
            "a workload without a series stores a valid 'none' artifact"
        );
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            decode_series(&padded),
            None,
            "trailing bytes must not decode"
        );
        assert_eq!(decode_series(&bytes[..bytes.len() - 1]), None);
        assert_eq!(decode_series(b""), None);
    }

    #[test]
    fn series_requesting_cells_round_trip_and_demote_without_their_series() {
        let _g = CACHE_LOCK.lock().unwrap();
        let dir =
            std::env::temp_dir().join(format!("sprout-cell-series-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        sprout_cache::set_dir(&dir);

        let mut r = sample_result();
        r.scenario.cell_series_bin = Some(Duration::from_millis(500));
        r.cell_series = Some(sample_series());
        let (fp, seed) = (0xc0de, 13);
        assert!(store_cell(fp, seed, &r));
        let back = load_cell("t", fp, &r.scenario, seed).expect("hit serves both artifacts");
        assert_eq!(back.cell_series, r.cell_series);

        // A result entry without its requested series artifact (stored
        // directly, bypassing store_cell) must demote to a miss.
        let (fp2, seed2) = (0xc0df, 14);
        let key2 = cell_key("t", fp2, &r.scenario, seed2);
        assert!(CELL_ARTIFACT.store(&key2, &encode_result(&r)));
        let before = cell_cache_counters();
        assert!(
            load_cell("t", fp2, &r.scenario, seed2).is_none(),
            "a series-requesting hit without its series re-executes"
        );
        let traffic = cell_cache_counters().since(before);
        assert_eq!((traffic.hits, traffic.misses), (0, 1));

        // An undecodable series payload quarantines and demotes too.
        assert!(CELL_SERIES_ARTIFACT.store(&key2, b"not a series payload"));
        let s_before = cell_series_cache_counters();
        assert!(load_cell("t", fp2, &r.scenario, seed2).is_none());
        let s_traffic = cell_series_cache_counters().since(s_before);
        assert_eq!((s_traffic.hits, s_traffic.quarantined), (0, 1));

        sprout_cache::reset_override();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_separate_matrices_seeds_and_cells() {
        let s = sample_scenario();
        let base = cell_key("t", 1, &s, 7);
        assert_eq!(base, cell_key("t", 1, &s, 7));
        assert_ne!(base, cell_key("u", 1, &s, 7));
        assert_ne!(base, cell_key("t", 2, &s, 7));
        assert_ne!(base, cell_key("t", 1, &s, 8));
        let mut other = s.clone();
        other.loss_rate = 0.10;
        assert_ne!(base, cell_key("t", 1, &other, 7));
    }
}
