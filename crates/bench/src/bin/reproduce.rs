//! Regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce <experiment> [--secs N] [--warmup N] [--seed N] [--out DIR]
//!                        [--threads N] [--batch on|off] [--quick] [--json]
//!                        [--cache-dir DIR] [--no-cache] [--cell-timeout SECS]
//!                        [--shard I/N] [--merge] [--resume] [--controlled]
//!                        [--bench] [--bench-baseline FILE]
//!
//! experiments:
//!   fig1       Skype vs Sprout time series (Verizon LTE downlink)
//!   fig2       saturated-link interarrival distribution
//!   fig7       full comparative sweep (9 schemes x 8 links) + intro tables
//!   fig8       average utilization vs delay (needs the fig7 sweep; runs it)
//!   fig9       forecast-confidence sweep (T-Mobile 3G uplink)
//!   loss       s5.6 loss-resilience table
//!   tunnel     s5.7 SproutTunnel isolation table
//!   contention N flows sharing one bottleneck queue: per-flow
//!              throughput/delay plus Jain's fairness index per cell
//!              (--flows N sizes the default workload set, --contend
//!              declares an explicit flow list; not part of `all`)
//!   soak       long-horizon matrix: all schemes + app workloads x links x
//!              queue depths x propagation delays at paper-length (17 min)
//!              runs; defaults to --secs 1020 and is sized for --shard
//!              workers sharing a cache directory (not part of `all`)
//!   impair     fault-injection matrix: schemes x impairment presets
//!              (Gilbert-Elliott burst loss, link outages/flaps, delay
//!              jitter, packet reordering) with graceful-degradation
//!              metrics — outage count, post-outage recovery time,
//!              delivered fraction while degraded (--impairments trims
//!              the preset axis; not part of `all`)
//!   serve      multi-session server capacity: one SproutServer drives N
//!              independent sessions over a shared forecast table and a
//!              shared event loop; reports per-cell delivered bytes,
//!              per-session min/max, and Jain fairness (--sessions sets
//!              the session-count axis, default 1,16,128,1024; defaults
//!              to --secs 60; not part of `all`)
//!   replay     measured-trace comparative sweep: the scheme roster over
//!              Saturator captures replayed as the link (--trace FILE
//!              per capture, default the committed corpus excerpts;
//!              --schemes trims the roster; cells key on the capture's
//!              content fingerprint, never its path; defaults to
//!              --secs 30; not part of `all`)
//!   all        everything above except contention, soak, impair,
//!              serve, and replay
//!
//! flags:
//!   --secs N     virtual seconds per run (default 300)
//!   --warmup N   warm-up skipped before measurement (default 60)
//!   --seed N     master seed; all randomness derives from it (default 20130401)
//!   --out DIR    artifact directory (default results/)
//!   --threads N  sweep worker threads (default: one per core)
//!   --batch on|off  batched cell execution (default on): group cells
//!                sharing a link/duration stripe onto one worker so
//!                traces, forecast tables, and scratch arenas stay warm;
//!                off restores the per-cell schedule. Results are
//!                bit-identical either way
//!   --quick      shorthand for --secs 90 --warmup 20 (explicit --secs /
//!                --warmup flags win regardless of order)
//!   --json       after running, print the sweep JSON artifact(s) to stdout
//!   --cache-dir DIR  artifact cache location (default .sprout-cache,
//!                    or the SPROUT_CACHE_DIR environment variable)
//!   --no-cache   disable the artifact cache for this run
//!   --cell-timeout SECS  per-cell watchdog budget (default 600): a cell
//!                still running after SECS wall-clock seconds is
//!                abandoned and reported as a named failure instead of
//!                wedging the sweep; --resume re-executes only the
//!                timed-out/failed cells
//!   --shard I/N  execute only cells with scenario id ≡ I (mod N),
//!                depositing results in the shared cell cache; no
//!                figures or sweep artifacts are rendered
//!   --merge      serve every cell from the cell cache (error naming any
//!                absent cell) and render the full figures/artifacts —
//!                byte-identical to a single-process run
//!   --resume     like --merge, but execute whatever the cache is
//!                missing instead of failing (restart a killed sweep)
//!   --controlled run as a sprout-control worker: print a flushed
//!                heartbeat line (`CONTROL hb <seq> abandoned=<n>`) to
//!                stdout every 500 ms so the daemon can distinguish a
//!                slow worker from a dead one
//!   --bench      run the perf-trajectory mode instead of an experiment:
//!                execute the canonical bench matrix + hot-path
//!                microbenchmarks and write BENCH_sweep.json
//!   --bench-baseline FILE  compare the --bench report against FILE;
//!                exit 1 on >20% timing regression or any metric drift
//!
//! axis flags (comma-separated lists):
//!   --links LIST        link ids, e.g. vz-lte-down,tmo-3g-up
//!                       (soak, contention, impair, and serve)
//!   --prop-delays LIST  one-way propagation delays in ms, e.g. 10,25,50
//!                       (soak only)
//!   --queues LIST       queue specs: auto, droptail, codel, bytes:N
//!                       (soak only)
//!   --flows N           contending flows per default contention cell,
//!                       2..=16 (contention only)
//!   --contend LIST      explicit contention flow list by scheme tag,
//!                       e.g. sprout,cubic,cubic; app flows as
//!                       skype-over-sprout ride their own tunnel
//!                       (contention only; replaces the default workloads)
//!   --impairments LIST  fault-injection presets, e.g. none,burst,storm
//!                       from none, burst, outage, flap, jitter,
//!                       reorder, storm (impair only; replaces the
//!                       default full preset axis)
//!   --sessions LIST     session counts for the serve matrix, e.g.
//!                       1,64,1024, each in 1..=4096 (serve only;
//!                       replaces the default 1,16,128,1024 axis)
//!   --trace FILE        a Saturator capture for the replay matrix; give
//!                       the flag once per capture (replay only;
//!                       replaces the committed default corpus)
//!   --schemes LIST      scheme tags for the replay roster, e.g.
//!                       sprout,cubic,skype (replay only; replaces the
//!                       nine-scheme Figure-7 roster)
//!   --timeseries        emit per-cell time-series TSVs next to the
//!                       sweep JSON: <matrix>_<id>_delay.tsv (delay vs
//!                       time) and <matrix>_<id>_series.tsv (binned
//!                       capacity/throughput/queue depth); changes cell
//!                       identity (replay, impair, and soak only)
//! ```
//!
//! Every experiment writes TSV artifacts plus a canonical
//! `<experiment>_sweep.json` record of the scenario matrix it ran; with
//! the same seed the JSON is bit-identical for any `--threads` value,
//! identical whether the artifact cache is cold, warm, or disabled, and
//! identical whether the sweep ran in one process or as `--shard` slices
//! merged afterwards.

use std::path::PathBuf;
use std::time::Instant;

use sprout_bench::cli;
use sprout_bench::figures::{self, ExperimentConfig};
use sprout_bench::{perf, summary_table, CellCachePolicy, Scheme, ShardSpec};

const USAGE: &str = "usage: reproduce <experiment> [--secs N] [--warmup N] [--seed N] [--out DIR] [--threads N] [--batch on|off] [--quick] [--json] [--cache-dir DIR] [--no-cache] [--cell-timeout SECS] [--shard I/N] [--merge] [--resume] [--controlled] [--bench] [--bench-baseline FILE] [--links LIST] [--prop-delays LIST] [--queues LIST] [--flows N] [--contend LIST] [--impairments LIST] [--sessions LIST] [--trace FILE]... [--schemes LIST] [--timeseries]
experiments: fig1 fig2 fig7 fig8 fig9 loss tunnel contention soak impair serve replay all (contention, soak, impair, serve, and replay are not part of all)
axis flags: --links vz-lte-down,... (soak+contention+impair+serve) | --prop-delays 10,25,... (one-way ms, soak) | --queues auto|droptail|codel|bytes:N,... (soak) | --flows N (contention) | --contend sprout,cubic,... (contention) | --impairments none,burst,storm,... (impair) | --sessions 1,64,1024,... (serve) | --trace capture.trace, once per capture (replay) | --schemes sprout,cubic,... (replay) | --timeseries (replay+impair+soak)";

struct Options {
    cmd: String,
    cfg: ExperimentConfig,
    json: bool,
    bench: bool,
    bench_baseline: Option<PathBuf>,
    controlled: bool,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("reproduce: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut cfg = ExperimentConfig::default();
    let mut cmd: Option<String> = None;
    let mut json = false;
    let mut bench = false;
    let mut bench_baseline = None;
    let mut merge = false;
    let mut resume = false;
    let mut no_cache = false;
    let mut controlled = false;
    // Worker-safe flags (timing, seeding, axis trims) are collected in
    // argv order and applied by the shared parser in `sprout_bench::cli`
    // — the same code path the control daemon runs at submit time, so a
    // flag vector means the same matrix here and there.
    let mut worker_args: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(arity) = cli::worker_flag_arity(&arg) {
            let flag = arg;
            worker_args.push(flag.clone());
            for _ in 0..arity {
                match args.next() {
                    Some(v) => worker_args.push(v),
                    None => usage_error(&format!("{flag} expects a value")),
                }
            }
            continue;
        }
        match arg.as_str() {
            "--out" => match args.next() {
                Some(dir) => cfg.out_dir = dir.into(),
                None => usage_error("--out expects a directory"),
            },
            "--json" => json = true,
            "--bench" => bench = true,
            "--bench-baseline" => match args.next() {
                Some(path) => bench_baseline = Some(PathBuf::from(path)),
                None => usage_error("--bench-baseline expects a file"),
            },
            "--cache-dir" => match args.next() {
                Some(dir) => sprout_cache::set_dir(dir),
                None => usage_error("--cache-dir expects a directory"),
            },
            "--no-cache" => {
                no_cache = true;
                sprout_cache::disable();
            }
            "--shard" => match args.next() {
                Some(spec) => match ShardSpec::parse(&spec) {
                    Some(shard) => cfg.shard = shard,
                    None => usage_error(&format!(
                        "--shard expects I/N with I < N (e.g. 0/2), got {spec:?}"
                    )),
                },
                None => usage_error("--shard expects a spec like 0/2"),
            },
            "--merge" => merge = true,
            "--resume" => resume = true,
            "--controlled" => controlled = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                usage_error(&format!("unknown flag {other:?}"));
            }
            other if cmd.is_none() => {
                if !cli::is_experiment(other) {
                    usage_error(&format!("unknown experiment {other:?}"));
                }
                cmd = Some(other.to_string());
            }
            other => usage_error(&format!("unexpected argument {other:?}")),
        }
    }
    let explicit_cmd = cmd.is_some();
    let cmd = cmd.unwrap_or_else(|| "all".to_string());
    if let Err(msg) = cli::apply_worker_args(&mut cfg, &cmd, &worker_args) {
        usage_error(&msg);
    }
    if bench_baseline.is_some() && !bench {
        usage_error("--bench-baseline requires --bench");
    }
    if bench && explicit_cmd {
        usage_error("--bench runs its own matrix; drop the experiment name");
    }
    if merge && resume {
        usage_error("--merge and --resume are mutually exclusive");
    }
    if bench && (merge || resume || !cfg.shard.is_full()) {
        usage_error("--bench measures execution; it cannot combine with --shard/--merge/--resume");
    }
    if merge && !cfg.shard.is_full() {
        usage_error("--merge reassembles the whole matrix; drop --shard");
    }
    if no_cache && (merge || resume || !cfg.shard.is_full()) {
        usage_error("--shard/--merge/--resume need the artifact cache; drop --no-cache");
    }
    if json && !cfg.shard.is_full() {
        usage_error("--shard runs write no sweep artifacts; --json has nothing to print");
    }
    cfg.cell_policy = if merge {
        CellCachePolicy::Merge
    } else if resume {
        CellCachePolicy::Resume
    } else {
        CellCachePolicy::Execute
    };
    Options {
        cmd,
        cfg,
        json,
        bench,
        bench_baseline,
        controlled,
    }
}

/// `--controlled`: announce liveness to a supervising `sprout-control`
/// daemon. A detached thread prints one heartbeat line per interval to
/// stdout — explicitly flushed, because a piped stdout is block-buffered
/// and an unflushed heartbeat is indistinguishable from a wedged worker.
/// The line carries the abandoned-thread gauge so the daemon can alarm
/// on a worker whose watchdog is abandoning cells.
fn start_heartbeat() {
    std::thread::spawn(|| {
        use std::io::Write;
        let mut seq: u64 = 0;
        loop {
            {
                let mut out = std::io::stdout().lock();
                let _ = writeln!(
                    out,
                    "CONTROL hb {seq} abandoned={}",
                    sprout_bench::abandoned_cell_threads()
                );
                let _ = out.flush();
            }
            seq += 1;
            std::thread::sleep(std::time::Duration::from_millis(500));
        }
    });
}

fn print_json_artifacts(cfg: &ExperimentConfig, cmd: &str) -> std::io::Result<()> {
    for name in cli::artifacts_of(cmd) {
        let path = cfg.sweep_json_path(name);
        print!("{}", std::fs::read_to_string(path)?);
    }
    Ok(())
}

fn print_fig7_and_tables(cfg: &ExperimentConfig) -> std::io::Result<sprout_bench::Fig7Results> {
    let t0 = Instant::now();
    let results = figures::fig7(cfg)?;
    println!(
        "\n== Figure 7: throughput vs self-inflicted delay ({:.0?}) ==",
        t0.elapsed()
    );
    for link in sprout_trace::NetProfile::all() {
        println!("\n--- {} ---", link.name());
        for scheme in figures::fig7_schemes() {
            if let Some(r) = results.get(link, scheme) {
                println!("  {}", figures::fmt_result(scheme.name(), r));
            }
        }
    }

    // Intro table 1: vs Sprout.
    let t1_rows = summary_table(
        &results,
        Scheme::Sprout,
        &[
            Scheme::Skype,
            Scheme::Hangout,
            Scheme::Facetime,
            Scheme::Compound,
            Scheme::Vegas,
            Scheme::Ledbat,
            Scheme::Cubic,
            Scheme::CubicCodel,
        ],
    );
    println!("\n== Intro table 1 (reference: Sprout; paper values in brackets) ==");
    let paper: &[(&str, &str, &str)] = &[
        ("Skype", "2.2x", "7.9x (2.52s)"),
        ("Google Hangout", "4.4x", "7.2x (2.28s)"),
        ("Facetime", "1.9x", "8.7x (2.75s)"),
        ("Compound TCP", "1.3x", "4.8x (1.53s)"),
        ("Vegas", "1.1x", "2.1x (0.67s)"),
        ("LEDBAT", "1.0x", "2.8x (0.89s)"),
        ("Cubic", "0.91x", "79x (25s)"),
        ("Cubic-CoDel", "0.70x", "1.6x (0.50s)"),
    ];
    for (row, (pn, ps, pd)) in t1_rows.iter().zip(paper) {
        assert_eq!(row.scheme.name(), *pn, "paper row order");
        println!(
            "  {:16} speedup {:>5.2}x [paper {:>5}]   delay {:>6.1}x ({:.2}s) [paper {}]",
            row.scheme.name(),
            row.avg_speedup,
            ps,
            row.delay_reduction,
            row.avg_delay_s,
            pd
        );
    }
    figures::write_summary(cfg, "table1_summary.tsv", &t1_rows)?;

    // Intro table 2: vs Sprout-EWMA.
    let t2_rows = summary_table(
        &results,
        Scheme::SproutEwma,
        &[Scheme::Sprout, Scheme::Cubic, Scheme::CubicCodel],
    );
    println!("\n== Intro table 2 (reference: Sprout-EWMA) ==");
    for row in &t2_rows {
        println!(
            "  {:16} speedup {:>6.2}x  delay reduction {:>6.2}x (avg {:.2}s)",
            row.scheme.name(),
            row.avg_speedup,
            row.delay_reduction,
            row.avg_delay_s
        );
    }
    figures::write_summary(cfg, "table2_ewma.tsv", &t2_rows)?;
    Ok(results)
}

/// `--bench`: run the canonical bench matrix plus microbenchmarks,
/// record `BENCH_sweep.json` (and the matrix's canonical sweep JSON),
/// optionally enforcing a baseline.
fn run_bench(cfg: &ExperimentConfig, baseline: Option<&std::path::Path>) -> std::io::Result<()> {
    sprout_core::reset_table_cache_counters();
    sprout_trace::reset_trace_cache_counters();
    sprout_bench::reset_cell_cache_counters();
    let matrix = perf::bench_matrix(cfg);
    let (results, stats) = cfg.engine().run_with_stats(&matrix);
    let mut canonical = std::fs::File::create(cfg.sweep_json_path(matrix.name()))?;
    sprout_bench::write_json(&mut canonical, matrix.name(), cfg.seed, &results)?;

    println!("== bench matrix ({} cells) ==", results.len());
    for r in &results {
        println!("  {:32} {:>8.1} ms", r.scenario.label, r.wall_ms);
    }
    println!(
        "  total {:.1} ms | table cache {}h/{}m | trace cache {}h/{}m",
        stats.total_wall_ms,
        stats.table_cache.hits,
        stats.table_cache.misses,
        stats.trace_cache.hits,
        stats.trace_cache.misses,
    );
    let micro = perf::run_micro_benches();
    println!("== microbenches ==");
    for m in &micro {
        println!("  {:24} {:>12.0} ns/iter", m.key, m.ns_per_iter);
    }
    let serve = perf::run_serve_capacity(cfg.seed);
    println!(
        "== serve capacity ({} sessions) ==\n  {:.0} sessions/sec | {:.0} bytes/session | tick p99 {:.0} ns",
        serve.sessions, serve.sessions_per_sec, serve.per_session_bytes, serve.tick_p99_ns
    );

    let report = sprout_bench::BenchReport {
        seed: cfg.seed,
        results,
        stats,
        micro,
        serve,
    };
    let rendered = sprout_bench::bench_report_to_json(&report);
    let path = cfg.out_dir.join("BENCH_sweep.json");
    // The trajectory is additive-only: a fresh report may introduce new
    // fields but must carry every key the baseline it replaces (or is
    // compared against) already records — dropping one would silently
    // sever the perf history. Refuse the overwrite instead (exit 2).
    let mut priors: Vec<(String, String)> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        priors.push((format!("{path:?}"), existing));
    }
    if let Some(baseline_path) = baseline {
        if let Ok(b) = std::fs::read_to_string(baseline_path) {
            priors.push((format!("{baseline_path:?}"), b));
        }
    }
    for (source, old) in &priors {
        let missing = sprout_bench::missing_keys(old, &rendered);
        if let Some(key) = missing.first() {
            eprintln!(
                "refusing to overwrite {path:?}: fresh report drops key {key:?} \
present in {source} ({} missing in total) — BENCH_sweep.json is additive-only",
                missing.len()
            );
            std::process::exit(2);
        }
    }
    std::fs::write(&path, rendered)?;
    println!("bench trajectory written to {path:?}");

    if let Some(baseline_path) = baseline {
        let baseline_json = std::fs::read_to_string(baseline_path)?;
        let violations = sprout_bench::check_regression(&report, &baseline_json, 0.20);
        if !violations.is_empty() {
            eprintln!("regression against {baseline_path:?}:");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
        println!("within 20% of baseline {baseline_path:?}");
    }
    Ok(())
}

/// `--shard I/N`: execute this process's slice of each matrix the
/// experiment declares, depositing finished cells in the shared cell
/// cache. Renders no figures and writes no sweep artifacts — a later
/// `--merge` (or `--resume`) run assembles those from the cache.
fn run_shard(cfg: &ExperimentConfig, cmd: &str) -> std::io::Result<()> {
    let engine = cfg.engine();
    for matrix in figures::matrices_for(cfg, cmd) {
        let t0 = Instant::now();
        let results = engine
            .try_run(&matrix)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        println!(
            "{}: shard {}/{} finished {} of {} cells in {:.0?}",
            matrix.name(),
            cfg.shard.index,
            cfg.shard.count,
            results.len(),
            matrix.len(),
            t0.elapsed()
        );
    }
    Ok(())
}

/// A snapshot of the process-global cell-cache and cell-failure
/// counters, taken together so `all` can attribute per-experiment deltas
/// of both.
type TrafficMark = (
    sprout_cache::CacheCounters,
    sprout_bench::CellFailureCounters,
);

fn traffic_now() -> TrafficMark {
    (
        sprout_bench::cell_cache_counters(),
        sprout_bench::cell_failure_counters(),
    )
}

/// The stable cell-cache summary line (CI greps it to assert a resumed
/// run executed nothing). Names the experiment; single-experiment runs
/// print it once with the process totals, and `all` prints one line per
/// experiment (the delta since `mark`) so the traffic of each sweep is
/// attributable, plus a final `[all]` total.
fn print_cell_cache_line(experiment: &str) {
    print_cell_cache_delta(experiment, TrafficMark::default());
}

/// Print the cell-cache traffic and cell failures since `mark` under
/// `experiment`'s name and return the current counters (the next
/// experiment's `mark`).
fn print_cell_cache_delta(experiment: &str, mark: TrafficMark) -> TrafficMark {
    let now = traffic_now();
    let c = now.0.since(mark.0);
    let f = now.1.since(mark.1);
    let (workers, batches) = sprout_bench::last_batch_layout();
    println!(
        "cell cache [{experiment}]: {} hits, {} misses, {} stores, {} quarantined | cells: {} failed, {} timed out | layout: {} workers, {} batches",
        c.hits, c.misses, c.stores, c.quarantined, f.failed, f.timed_out, workers, batches
    );
    now
}

fn main() {
    if let Err(e) = run() {
        // One readable message (merge misses span several lines), not
        // the Debug dump `Termination` would produce.
        eprintln!("reproduce: {e}");
        std::process::exit(1);
    }
}

fn run() -> std::io::Result<()> {
    let Options {
        cmd,
        cfg,
        json,
        bench,
        bench_baseline,
        controlled,
    } = parse_args();
    figures::ensure_out_dir(&cfg.out_dir)?;
    if controlled {
        start_heartbeat();
    }
    if bench {
        return run_bench(&cfg, bench_baseline.as_deref());
    }
    if !cfg.shard.is_full() {
        let r = run_shard(&cfg, &cmd);
        print_cell_cache_line(&cmd);
        return r;
    }
    let effective_secs = cli::effective_secs(&cfg, &cmd);
    println!(
        "reproduce: {cmd} (runs {}s, warmup {}s, seed {}, threads {}, out {:?})",
        effective_secs,
        cfg.warmup_secs,
        cfg.seed,
        if cfg.threads == 0 {
            "auto".to_string()
        } else {
            cfg.threads.to_string()
        },
        cfg.out_dir
    );

    match cmd.as_str() {
        "fig1" => {
            let r = figures::fig1(&cfg)?;
            println!(
                "fig1: {} bins written to fig1_timeseries.tsv",
                r.throughput_rows.len()
            );
            let avg =
                |sel: fn(&(f64, f64, f64, f64)) -> f64, rows: &[(f64, f64, f64, f64)]| -> f64 {
                    rows.iter().map(sel).sum::<f64>() / rows.len().max(1) as f64
                };
            println!(
                "  mean capacity {:.0} kbps | skype {:.0} kbps | sprout {:.0} kbps",
                avg(|r| r.1, &r.throughput_rows),
                avg(|r| r.2, &r.throughput_rows),
                avg(|r| r.3, &r.throughput_rows),
            );
        }
        "fig2" => {
            let r = figures::fig2(&cfg)?;
            println!(
                "fig2: {} interarrivals; {:.3}% within 20 ms [paper: 99.99%]; tail slope {:?} [paper: -3.27]",
                r.samples,
                r.fraction_within_20ms * 100.0,
                r.tail_slope
            );
        }
        "fig7" => {
            print_fig7_and_tables(&cfg)?;
        }
        "fig8" => {
            let results = print_fig7_and_tables(&cfg)?;
            let rows = figures::fig8(&cfg, &results)?;
            println!("\n== Figure 8: average utilization vs delay ==");
            for r in rows {
                println!(
                    "  {:12} {:>5.1}% utilization at {:>7.0} ms self-inflicted delay",
                    r.scheme.name(),
                    r.avg_utilization_pct,
                    r.avg_delay_ms
                );
            }
        }
        "fig9" => {
            let rows = figures::fig9(&cfg)?;
            println!("\n== Figure 9: confidence sweep (T-Mobile 3G uplink) ==");
            for r in rows {
                println!(
                    "  {:>3.0}% confidence: {:>6.0} kbps at {:>6.0} ms",
                    r.confidence, r.result.throughput_kbps, r.result.self_inflicted_ms
                );
            }
        }
        "loss" => {
            let rows = figures::loss_table(&cfg)?;
            println!("\n== s5.6 loss resilience (Sprout) ==");
            println!("  paper (downlink): 0% 4741kbps/73ms, 5% 3971/60, 10% 2768/58");
            println!("  paper (uplink):   0% 3703kbps/332ms, 5% 2598/378, 10% 1163/314");
            for r in rows {
                println!(
                    "  {:12} {:>3.0}% loss: {:>6.0} kbps at {:>6.0} ms",
                    r.link.id(),
                    r.loss_rate * 100.0,
                    r.result.throughput_kbps,
                    r.result.self_inflicted_ms
                );
            }
        }
        "tunnel" => {
            let r = figures::tunnel_comparison(&cfg)?;
            println!("\n== s5.7 SproutTunnel isolation (Verizon LTE downlink) ==");
            println!("  paper: cubic 8336->3776 kbps (-55%), skype 78->490 kbps (+528%), skype delay 6.0->0.17 s (-97%)");
            println!(
                "  cubic throughput {:>7.0} -> {:>7.0} kbps ({:+.0}%)",
                r.cubic_direct_kbps,
                r.cubic_tunnel_kbps,
                100.0 * (r.cubic_tunnel_kbps / r.cubic_direct_kbps - 1.0)
            );
            println!(
                "  skype throughput {:>7.0} -> {:>7.0} kbps ({:+.0}%)",
                r.skype_direct_kbps,
                r.skype_tunnel_kbps,
                100.0 * (r.skype_tunnel_kbps / r.skype_direct_kbps - 1.0)
            );
            println!(
                "  skype 95% delay  {:>7.2} -> {:>7.2} s ({:+.0}%)",
                r.skype_direct_delay_s,
                r.skype_tunnel_delay_s,
                100.0 * (r.skype_tunnel_delay_s / r.skype_direct_delay_s - 1.0)
            );
        }
        "contention" => {
            let t0 = Instant::now();
            let rows = figures::contention(&cfg)?;
            println!(
                "\n== contention: {} cells, per-flow shares of one bottleneck queue ({:.0?}) ==",
                rows.len(),
                t0.elapsed()
            );
            for r in rows {
                println!(
                    "  {} (util {:.2}, Jain {:.3})",
                    r.label, r.utilization, r.fairness
                );
                for (spec, flow) in &r.flows {
                    println!(
                        "    flow {} {:20} {:>8.0} kbps  p95 {:>9.0} ms",
                        flow.flow, spec, flow.throughput_kbps, flow.p95_delay_ms
                    );
                }
            }
        }
        "soak" => {
            let t0 = Instant::now();
            let matrix_len = figures::soak_matrix(&cfg).len();
            println!(
                "soak: {matrix_len} cells ({} links x {} delays x {} queues; kill/resume with --resume, farm out with --shard I/N)",
                cfg.soak.links.len(),
                cfg.soak.prop_delays_ms.len(),
                cfg.soak.queues.len()
            );
            let rows = figures::soak(&cfg)?;
            println!(
                "\n== soak: per-workload means over {matrix_len} cells ({:.0?}) ==",
                t0.elapsed()
            );
            for r in rows {
                println!(
                    "  {:24} {:>4} cells  {:>7.0} kbps  self-inflicted {:>8.0} ms",
                    r.workload, r.cells, r.mean_throughput_kbps, r.mean_self_inflicted_ms
                );
            }
        }
        "impair" => {
            let t0 = Instant::now();
            let rows = figures::impair(&cfg)?;
            println!(
                "\n== impair: graceful degradation under injected faults ({} schemes x {} links x {} presets, {:.0?}) ==",
                figures::IMPAIR_SCHEMES.len(),
                cfg.impair.links.len(),
                cfg.impair.impairments.len(),
                t0.elapsed()
            );
            for r in rows {
                let fmt_or_na = |v: f64, unit: &str| {
                    if v.is_finite() {
                        format!("{v:.0}{unit}")
                    } else {
                        "n/a".to_string()
                    }
                };
                println!(
                    "  {:44} {:>7.0} kbps  p95 {:>7.0} ms  outages {:>2}  recovery {:>8}  degraded-delivery {:>5}",
                    r.label,
                    r.result.throughput_kbps,
                    r.result.p95_delay_ms,
                    r.result.outages,
                    fmt_or_na(r.result.recovery_ms, " ms"),
                    if r.result.degraded_delivery.is_finite() {
                        format!("{:.2}", r.result.degraded_delivery)
                    } else {
                        "n/a".to_string()
                    }
                );
            }
        }
        "serve" => {
            let t0 = Instant::now();
            let rows = figures::serve(&cfg)?;
            println!(
                "\n== serve: multi-session server capacity ({} session counts x {} links, {:.0?}) ==",
                cfg.serve.sessions.len(),
                cfg.serve.links.len(),
                t0.elapsed()
            );
            for r in rows {
                println!(
                    "  {:28} {:>5} sessions  {:>12} bytes delivered  per-session {:>9}..{:>9}  Jain {:.4}",
                    r.label,
                    r.sessions,
                    r.delivered_bytes,
                    r.min_session_bytes,
                    r.max_session_bytes,
                    r.fairness
                );
            }
        }
        "replay" => {
            let t0 = Instant::now();
            let rows = figures::replay(&cfg)?;
            println!(
                "\n== replay: schemes over measured captures ({} schemes x {} captures, {:.0?}) ==",
                cfg.replay.schemes.len(),
                cfg.replay.traces.len(),
                t0.elapsed()
            );
            for r in rows {
                println!("  {}", figures::fmt_result(&r.label, &r.result));
            }
            if cfg.timeseries {
                println!("per-cell time-series TSVs written next to replay_sweep.json");
            }
        }
        "all" => {
            let t0 = Instant::now();
            let mut mark = traffic_now();
            let r1 = figures::fig1(&cfg)?;
            println!("fig1 done: {} bins", r1.throughput_rows.len());
            mark = print_cell_cache_delta("fig1", mark);
            let r2 = figures::fig2(&cfg)?;
            println!(
                "fig2 done: {:.3}% within 20 ms, tail slope {:?}",
                r2.fraction_within_20ms * 100.0,
                r2.tail_slope
            );
            mark = print_cell_cache_delta("fig2", mark);
            let results = print_fig7_and_tables(&cfg)?;
            mark = print_cell_cache_delta("fig7", mark);
            // fig8 derives from the fig7 sweep: no cells of its own.
            let rows = figures::fig8(&cfg, &results)?;
            println!("\n== Figure 8 ==");
            for r in rows {
                println!(
                    "  {:12} {:>5.1}% util at {:>7.0} ms",
                    r.scheme.name(),
                    r.avg_utilization_pct,
                    r.avg_delay_ms
                );
            }
            let rows = figures::fig9(&cfg)?;
            println!("\n== Figure 9 ==");
            for r in rows {
                println!(
                    "  {:>3.0}%: {:>6.0} kbps at {:>6.0} ms",
                    r.confidence, r.result.throughput_kbps, r.result.self_inflicted_ms
                );
            }
            mark = print_cell_cache_delta("fig9", mark);
            let rows = figures::loss_table(&cfg)?;
            println!("\n== s5.6 loss ==");
            for r in rows {
                println!(
                    "  {:12} {:>3.0}%: {:>6.0} kbps at {:>6.0} ms",
                    r.link.id(),
                    r.loss_rate * 100.0,
                    r.result.throughput_kbps,
                    r.result.self_inflicted_ms
                );
            }
            mark = print_cell_cache_delta("loss", mark);
            let r = figures::tunnel_comparison(&cfg)?;
            println!("\n== s5.7 tunnel ==");
            println!(
                "  cubic {:>6.0}->{:>6.0} kbps | skype {:>5.0}->{:>5.0} kbps | skype delay {:.2}->{:.2} s",
                r.cubic_direct_kbps,
                r.cubic_tunnel_kbps,
                r.skype_direct_kbps,
                r.skype_tunnel_kbps,
                r.skype_direct_delay_s,
                r.skype_tunnel_delay_s
            );
            let _ = print_cell_cache_delta("tunnel", mark);
            println!("\nall experiments done in {:.0?}", t0.elapsed());
        }
        other => unreachable!("experiment {other:?} validated in parse_args"),
    }
    print_cell_cache_line(&cmd);
    if json {
        print_json_artifacts(&cfg, &cmd)?;
    }
    Ok(())
}
