//! The shared command-line vocabulary of the reproduction harness.
//!
//! Both the `reproduce` binary and the `sprout-control` daemon speak
//! the same experiment names and axis flags: `reproduce` parses them
//! from its own argv, while the daemon receives them as an opaque
//! argument vector attached to a submitted sweep, validates them at
//! submit time (rejecting a bad sweep *before* any worker is spawned),
//! and forwards them verbatim to every worker and to the final merge
//! run. Keeping one parser here is what makes the daemon's determinism
//! contract cheap to state: a worker and the merge see byte-identical
//! axis flags, so they build byte-identical scenario matrices.

use crate::figures::ExperimentConfig;
use crate::scenario::{FlowSpec, QueueSpec, MAX_CONTENTION_FLOWS, MAX_SERVE_SESSIONS};
use crate::schemes::Scheme;
use sprout_trace::{Impairment, NetProfile, IMPAIRMENT_PRESETS};

/// Every experiment the harness can run, in help-text order.
pub const EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig2",
    "fig7",
    "fig8",
    "fig9",
    "loss",
    "tunnel",
    "contention",
    "soak",
    "impair",
    "serve",
    "replay",
    "all",
];

/// True when `name` is a runnable experiment.
pub fn is_experiment(name: &str) -> bool {
    EXPERIMENTS.contains(&name)
}

/// The sweep JSON artifacts each experiment records (basenames of the
/// `<name>_sweep.json` files a full run writes).
pub fn artifacts_of(cmd: &str) -> &'static [&'static str] {
    match cmd {
        "fig1" => &["fig1"],
        "fig2" => &["fig2"],
        "fig7" | "fig8" => &["fig7"],
        "fig9" => &["fig9"],
        "loss" => &["loss"],
        "tunnel" => &["tunnel"],
        "contention" => &["contention"],
        "soak" => &["soak"],
        "impair" => &["impair"],
        "serve" => &["serve"],
        "replay" => &["replay"],
        "all" => &["fig1", "fig2", "fig7", "fig9", "loss", "tunnel"],
        _ => &[],
    }
}

/// Flags the control daemon reserves for itself when it assembles a
/// worker command line. A submitted sweep naming one of these is
/// rejected at submit time: the daemon owns sharding, cache placement,
/// artifact output, and the worker handshake.
pub const CONTROL_RESERVED_FLAGS: &[&str] = &[
    "--shard",
    "--merge",
    "--resume",
    "--out",
    "--cache-dir",
    "--no-cache",
    "--json",
    "--bench",
    "--bench-baseline",
    "--controlled",
];

/// How many values a worker-safe flag consumes: `Some(0)` for bare
/// flags, `Some(1)` for flags taking one value, `None` for flags this
/// module does not own (binary-specific flags like `--out`).
pub fn worker_flag_arity(flag: &str) -> Option<usize> {
    match flag {
        "--quick" | "--timeseries" => Some(0),
        "--secs" | "--warmup" | "--seed" | "--threads" | "--batch" | "--cell-timeout"
        | "--links" | "--prop-delays" | "--queues" | "--flows" | "--contend" | "--impairments"
        | "--sessions" | "--trace" | "--schemes" => Some(1),
        _ => None,
    }
}

/// `Some(values)` only when every value is distinct: a duplicated axis
/// value would cross into duplicate cells with identical labels, each
/// simulated and cached separately.
pub fn all_distinct<T: PartialEq>(values: Vec<T>) -> Option<Vec<T>> {
    let distinct = values
        .iter()
        .enumerate()
        .all(|(i, v)| !values[..i].contains(v));
    distinct.then_some(values)
}

/// Parse `--links`: a comma-separated list of distinct link ids.
pub fn parse_links(spec: &str) -> Option<Vec<NetProfile>> {
    spec.split(',')
        .map(|part| NetProfile::all().into_iter().find(|p| p.id() == part))
        .collect::<Option<Vec<_>>>()
        .and_then(all_distinct)
}

/// Parse `--prop-delays`: comma-separated distinct one-way delays in
/// whole ms, each in [1, 10_000].
pub fn parse_prop_delays(spec: &str) -> Option<Vec<u64>> {
    spec.split(',')
        .map(|part| match part.parse::<u64>() {
            Ok(ms) if (1..=10_000).contains(&ms) => Some(ms),
            _ => None,
        })
        .collect::<Option<Vec<_>>>()
        .and_then(all_distinct)
}

/// Parse `--queues`: comma-separated distinct specs from `auto`,
/// `droptail`, `codel`, or `bytes:N` (a DropTail byte cap, N ≥ 1).
pub fn parse_queues(spec: &str) -> Option<Vec<QueueSpec>> {
    spec.split(',')
        .map(|part| match part {
            "auto" => Some(QueueSpec::Auto),
            "droptail" => Some(QueueSpec::DropTail),
            "codel" => Some(QueueSpec::CoDel),
            _ => match part.strip_prefix("bytes:")?.parse::<u64>() {
                Ok(cap) if cap >= 1 => Some(QueueSpec::DropTailBytes(cap)),
                _ => None,
            },
        })
        .collect::<Option<Vec<_>>>()
        .and_then(all_distinct)
}

/// Parse one `--contend` entry: a scheme tag (`cubic`, `sprout-ewma`,
/// `skype`, …; never `omniscient`) or a tunneled app flow in the
/// `app-over-carrier` form (`skype-over-sprout`).
pub fn parse_flow_spec(part: &str) -> Option<FlowSpec> {
    if let Some((app_tag, carrier_tag)) = part.split_once("-over-") {
        let app = sprout_baselines::VideoApp::all()
            .into_iter()
            .find(|a| a.id() == app_tag)?;
        let over = Scheme::from_tag(carrier_tag)?;
        over.tunnels_apps().then_some(FlowSpec::App { app, over })
    } else {
        let scheme = Scheme::from_tag(part)?;
        (scheme != Scheme::Omniscient).then_some(FlowSpec::Scheme(scheme))
    }
}

/// Parse `--contend`: 2..=[`MAX_CONTENTION_FLOWS`] comma-separated flow
/// specs (duplicates are the point — `cubic,cubic,cubic` is a
/// homogeneous contention cell).
pub fn parse_contend(spec: &str) -> Option<Vec<FlowSpec>> {
    let flows = spec
        .split(',')
        .map(parse_flow_spec)
        .collect::<Option<Vec<_>>>()?;
    (2..=MAX_CONTENTION_FLOWS)
        .contains(&flows.len())
        .then_some(flows)
}

/// Parse `--impairments`: comma-separated distinct preset names from
/// [`IMPAIRMENT_PRESETS`], kept as `(name, spec)` pairs so artifacts can
/// report the human-readable preset name alongside the canonical id.
pub fn parse_impairments(spec: &str) -> Option<Vec<(String, Impairment)>> {
    spec.split(',')
        .map(|part| Impairment::preset(part).map(|imp| (part.to_string(), imp)))
        .collect::<Option<Vec<_>>>()
        .and_then(all_distinct)
}

/// Parse `--schemes`: comma-separated distinct scheme tags (the replay
/// roster).
pub fn parse_schemes(spec: &str) -> Option<Vec<Scheme>> {
    spec.split(',')
        .map(Scheme::from_tag)
        .collect::<Option<Vec<_>>>()
        .and_then(all_distinct)
}

/// Parse `--sessions`: comma-separated distinct session counts, each in
/// 1..=[`MAX_SERVE_SESSIONS`].
pub fn parse_sessions(spec: &str) -> Option<Vec<u32>> {
    spec.split(',')
        .map(|part| match part.parse::<u32>() {
            Ok(n) if (1..=MAX_SERVE_SESSIONS).contains(&n) => Some(n),
            _ => None,
        })
        .collect::<Option<Vec<_>>>()
        .and_then(all_distinct)
}

/// Apply the worker-safe flags in `args` to `cfg`, with the same
/// validation matrix the `reproduce` binary enforces: axis flags must
/// match `experiment`, `--quick` fills only what `--secs`/`--warmup`
/// left unset, an explicit run length hands soak/serve/replay timing
/// back to the global knobs, and the warmup must leave a non-empty
/// measurement window. Returns a one-line usage message on the first
/// violation. `--trace` registers each capture as it parses, so a
/// malformed file is reported to its submitter here — before any worker
/// is spawned.
///
/// Only flags [`worker_flag_arity`] recognizes are accepted; anything
/// else (including every [`CONTROL_RESERVED_FLAGS`] entry) is an error,
/// which is exactly the submit-time screen the control daemon needs.
pub fn apply_worker_args(
    cfg: &mut ExperimentConfig,
    experiment: &str,
    args: &[String],
) -> Result<(), String> {
    if !is_experiment(experiment) {
        return Err(format!("unknown experiment {experiment:?}"));
    }
    let mut quick = false;
    let mut explicit_secs = false;
    let mut explicit_warmup = false;
    let mut links_flag = false;
    let mut soak_axis_flags = false;
    let mut explicit_flows = false;
    let mut explicit_contend = false;
    let mut explicit_impairments = false;
    let mut explicit_sessions = false;
    let mut explicit_schemes = false;
    let mut timeseries = false;
    let mut traces: Vec<u64> = Vec::new();
    fn value<'a>(iter: &mut std::slice::Iter<'a, String>, name: &str) -> Result<&'a str, String> {
        iter.next()
            .map(String::as_str)
            .ok_or_else(|| format!("{name} expects a value"))
    }
    fn numeric(iter: &mut std::slice::Iter<'_, String>, name: &str) -> Result<u64, String> {
        match iter.next().map(|v| v.parse::<u64>()) {
            Some(Ok(v)) => Ok(v),
            Some(Err(_)) => Err(format!("{name} expects a number")),
            None => Err(format!("{name} expects a value")),
        }
    }
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--secs" => {
                cfg.run_secs = numeric(&mut iter, "--secs")?;
                explicit_secs = true;
            }
            "--warmup" => {
                cfg.warmup_secs = numeric(&mut iter, "--warmup")?;
                explicit_warmup = true;
            }
            "--seed" => cfg.seed = numeric(&mut iter, "--seed")?,
            "--threads" => cfg.threads = numeric(&mut iter, "--threads")? as usize,
            "--batch" => match value(&mut iter, arg)? {
                "on" => cfg.batch = true,
                "off" => cfg.batch = false,
                _ => return Err("--batch expects on or off".to_string()),
            },
            "--quick" => quick = true,
            "--cell-timeout" => {
                let secs = numeric(&mut iter, "--cell-timeout")?;
                if secs == 0 {
                    return Err("--cell-timeout expects a positive number of seconds".to_string());
                }
                cfg.cell_timeout_secs = secs;
            }
            "--links" => match parse_links(value(&mut iter, arg)?) {
                Some(links) => {
                    cfg.soak.links = links.clone();
                    cfg.contention.links = links.clone();
                    cfg.impair.links = links.clone();
                    cfg.serve.links = links;
                    links_flag = true;
                }
                None => {
                    return Err(
                        "--links expects a comma-separated list of distinct link ids (e.g. vz-lte-down,tmo-3g-up)"
                            .to_string(),
                    )
                }
            },
            "--prop-delays" => match parse_prop_delays(value(&mut iter, arg)?) {
                Some(ms) => {
                    cfg.soak.prop_delays_ms = ms;
                    soak_axis_flags = true;
                }
                None => {
                    return Err(
                        "--prop-delays expects comma-separated distinct one-way delays in ms, each in 1..=10000 (e.g. 10,25,50)"
                            .to_string(),
                    )
                }
            },
            "--queues" => match parse_queues(value(&mut iter, arg)?) {
                Some(queues) => {
                    cfg.soak.queues = queues;
                    soak_axis_flags = true;
                }
                None => {
                    return Err(
                        "--queues expects comma-separated distinct specs from auto|droptail|codel|bytes:N (e.g. auto,bytes:75000)"
                            .to_string(),
                    )
                }
            },
            "--flows" => {
                let n = numeric(&mut iter, "--flows")? as usize;
                if !(2..=MAX_CONTENTION_FLOWS).contains(&n) {
                    return Err(format!(
                        "--flows expects a flow count in 2..={MAX_CONTENTION_FLOWS}, got {n}"
                    ));
                }
                cfg.contention.flows = n;
                explicit_flows = true;
            }
            "--contend" => match parse_contend(value(&mut iter, arg)?) {
                Some(flows) => {
                    cfg.contention.contenders = Some(flows);
                    explicit_contend = true;
                }
                None => {
                    return Err(
                        "--contend expects 2..=16 comma-separated flow specs: scheme tags (sprout, sprout-ewma, cubic, cubic-codel, reno, vegas, compound, ledbat, skype, facetime, google-hangout) or tunneled app flows like skype-over-sprout; omniscient cannot contend"
                            .to_string(),
                    )
                }
            },
            "--impairments" => match parse_impairments(value(&mut iter, arg)?) {
                Some(impairments) => {
                    cfg.impair.impairments = impairments;
                    explicit_impairments = true;
                }
                None => {
                    return Err(format!(
                        "--impairments expects comma-separated distinct preset names from {}",
                        IMPAIRMENT_PRESETS.join(", ")
                    ))
                }
            },
            "--sessions" => match parse_sessions(value(&mut iter, arg)?) {
                Some(sessions) => {
                    cfg.serve.sessions = sessions;
                    explicit_sessions = true;
                }
                None => {
                    return Err(format!(
                        "--sessions expects comma-separated distinct session counts, each in 1..={MAX_SERVE_SESSIONS} (e.g. 1,64,1024)"
                    ))
                }
            },
            "--trace" => {
                let path = value(&mut iter, arg)?;
                // Registration validates the capture (a malformed file is
                // reported here, at submit/parse time) and is what makes
                // the fingerprint resolvable in *this* process.
                match sprout_trace::register_trace_file(path) {
                    Ok(fp) => traces.push(fp),
                    Err(e) => return Err(format!("--trace {path}: {e}")),
                }
            }
            "--schemes" => match parse_schemes(value(&mut iter, arg)?) {
                Some(schemes) => {
                    cfg.replay.schemes = schemes;
                    explicit_schemes = true;
                }
                None => {
                    return Err(
                        "--schemes expects comma-separated distinct scheme tags (sprout, sprout-ewma, cubic, cubic-codel, reno, vegas, compound, ledbat, skype, facetime, google-hangout, omniscient)"
                            .to_string(),
                    )
                }
            },
            "--timeseries" => timeseries = true,
            other => return Err(format!("unknown worker flag {other:?}")),
        }
    }
    let explicit_traces = !traces.is_empty();
    if explicit_traces {
        // Duplicate captures (same bytes under any path) would cross into
        // duplicate cells with identical labels and cache keys.
        match all_distinct(traces) {
            Some(fps) => cfg.replay.traces = fps,
            None => return Err(
                "--trace captures must be distinct (two of the given files have identical bytes)"
                    .to_string(),
            ),
        }
    }
    // --quick fills in whatever the user did not set explicitly, so
    // `--warmup 100 --quick` is the contradiction it looks like (and is
    // rejected below) rather than being silently clobbered to 20 s.
    if quick {
        if !explicit_secs {
            cfg.run_secs = 90;
        }
        if !explicit_warmup {
            cfg.warmup_secs = 20;
        }
    }
    if soak_axis_flags && experiment != "soak" {
        return Err(
            "--prop-delays/--queues configure the soak matrix; they require the soak experiment"
                .to_string(),
        );
    }
    if links_flag
        && experiment != "soak"
        && experiment != "contention"
        && experiment != "impair"
        && experiment != "serve"
    {
        return Err(
            "--links trims the soak/contention/impair/serve link axis; it requires one of those experiments"
                .to_string(),
        );
    }
    if (explicit_flows || explicit_contend) && experiment != "contention" {
        return Err(
            "--flows/--contend configure the contention matrix; they require the contention experiment"
                .to_string(),
        );
    }
    if explicit_impairments && experiment != "impair" {
        return Err(
            "--impairments configures the impair matrix; it requires the impair experiment"
                .to_string(),
        );
    }
    if explicit_sessions && experiment != "serve" {
        return Err(
            "--sessions configures the serve matrix; it requires the serve experiment".to_string(),
        );
    }
    if (explicit_traces || explicit_schemes) && experiment != "replay" {
        return Err(
            "--trace/--schemes configure the replay matrix; they require the replay experiment"
                .to_string(),
        );
    }
    if timeseries {
        if !matches!(experiment, "replay" | "impair" | "soak") {
            return Err(
                "--timeseries emits per-cell series for the replay, impair, and soak matrices; it requires one of those experiments"
                    .to_string(),
            );
        }
        cfg.timeseries = true;
    }
    if explicit_flows && explicit_contend {
        return Err(
            "--flows sizes the default contention workloads and --contend replaces them; pick one"
                .to_string(),
        );
    }
    // The paper-length soak default (and the short serve default) live
    // on their axes structs (so the library builds the identical
    // matrix); an explicit --secs or --quick hands timing back to the
    // global knobs.
    if explicit_secs || quick {
        cfg.soak.secs = None;
        cfg.serve.secs = None;
        cfg.replay.secs = None;
    }
    // Validate against the run length the experiment will actually use
    // (soak defaults to SOAK_SECS, serve to SERVE_SECS, replay to
    // REPLAY_SECS, independently of --secs). Serve and replay derive
    // their warmup from the run length (one sixth) instead of --warmup,
    // so their windows can never be empty.
    let effective_secs = effective_secs(cfg, experiment);
    if experiment != "serve" && experiment != "replay" && cfg.warmup_secs >= effective_secs {
        return Err(format!(
            "warmup ({}s) must be shorter than the run ({}s): the measurement window would be empty",
            cfg.warmup_secs, effective_secs
        ));
    }
    Ok(())
}

/// The run length `experiment` will actually use under `cfg` (soak,
/// serve, and replay carry their own defaults independently of
/// `--secs`).
pub fn effective_secs(cfg: &ExperimentConfig, experiment: &str) -> u64 {
    match experiment {
        "soak" => cfg.soak.secs.unwrap_or(cfg.run_secs),
        "serve" => cfg.serve.secs.unwrap_or(cfg.run_secs),
        "replay" => cfg.replay.secs.unwrap_or(cfg.run_secs),
        _ => cfg.run_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(experiment: &str, args: &[&str]) -> Result<ExperimentConfig, String> {
        let mut cfg = ExperimentConfig::default();
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        apply_worker_args(&mut cfg, experiment, &args).map(|()| cfg)
    }

    #[test]
    fn worker_args_apply_and_validate() {
        let cfg = apply("soak", &["--secs", "40", "--warmup", "8"]).unwrap();
        assert_eq!((cfg.run_secs, cfg.warmup_secs), (40, 8));
        // Explicit --secs hands soak timing back to the global knob.
        assert_eq!(cfg.soak.secs, None);

        let cfg = apply("fig1", &["--quick", "--seed", "7"]).unwrap();
        assert_eq!((cfg.run_secs, cfg.warmup_secs, cfg.seed), (90, 20, 7));

        // The validation matrix carries over from the binary.
        assert!(apply("fig1", &["--links", "vz-lte-down"]).is_err());
        assert!(apply("soak", &["--secs", "30", "--warmup", "30"]).is_err());
        assert!(apply("contention", &["--flows", "1"]).is_err());
        assert!(apply("soak", &["--queues", "bogus"]).is_err());
        assert!(apply("nope", &[]).is_err());

        // Reserved control-plane flags are not worker flags.
        for flag in CONTROL_RESERVED_FLAGS {
            assert!(
                apply("soak", &[flag]).is_err(),
                "{flag} must be rejected as a worker flag"
            );
        }
    }

    #[test]
    fn arity_covers_every_worker_flag() {
        assert_eq!(worker_flag_arity("--quick"), Some(0));
        assert_eq!(worker_flag_arity("--timeseries"), Some(0));
        assert_eq!(worker_flag_arity("--links"), Some(1));
        assert_eq!(worker_flag_arity("--trace"), Some(1));
        assert_eq!(worker_flag_arity("--schemes"), Some(1));
        assert_eq!(worker_flag_arity("--out"), None);
        assert_eq!(worker_flag_arity("--shard"), None);
    }

    fn corpus(file: &str) -> String {
        format!("{}/../trace/tests/data/{file}", env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn replay_flags_apply_and_validate() {
        // Defaults: the embedded corpus, the fig-7 roster, short timing.
        let dflt = apply("replay", &[]).unwrap();
        assert_eq!(
            dflt.replay.traces,
            crate::figures::default_corpus_fingerprints()
        );
        assert_eq!(dflt.replay.schemes, Scheme::fig7().to_vec());
        assert_eq!(dflt.replay.secs, Some(crate::figures::REPLAY_SECS));
        assert!(!dflt.timeseries);

        // --trace replaces the default corpus; the fingerprint comes from
        // the file's bytes, and the capture is now registered.
        let cfg = apply("replay", &["--trace", &corpus("uplink-excerpt.trace")]).unwrap();
        assert_eq!(cfg.replay.traces.len(), 1);
        assert!(sprout_trace::lookup_trace(cfg.replay.traces[0]).is_some());

        // A malformed capture is rejected here, naming its bad line.
        let err = apply("replay", &["--trace", &corpus("backwards.trace")]).unwrap_err();
        assert!(err.contains("line 4"), "{err}");

        // Two paths to identical bytes are one capture, not two cells.
        let dup = corpus("downlink-excerpt.trace");
        let err = apply("replay", &["--trace", &dup, "--trace", &dup]).unwrap_err();
        assert!(err.contains("distinct"), "{err}");

        // --schemes trims the roster (order preserved, duplicates refused).
        let cfg = apply("replay", &["--schemes", "sprout,cubic"]).unwrap();
        assert_eq!(cfg.replay.schemes, vec![Scheme::Sprout, Scheme::Cubic]);
        assert!(apply("replay", &["--schemes", "cubic,cubic"]).is_err());
        assert!(apply("replay", &["--schemes", "bogus"]).is_err());

        // The replay axes are replay-only; --timeseries also covers the
        // impair and soak matrices.
        assert!(apply("fig1", &["--schemes", "sprout"]).is_err());
        assert!(apply("soak", &["--trace", &dup]).is_err());
        assert!(apply("fig1", &["--timeseries"]).is_err());
        assert!(apply("impair", &["--timeseries"]).unwrap().timeseries);
        assert!(apply("soak", &["--timeseries"]).unwrap().timeseries);
        assert!(apply("replay", &["--timeseries"]).unwrap().timeseries);

        // Explicit timing hands replay back to the global knobs (and the
        // warmup is derived, so a paper-default 60 s warmup with the
        // short 30 s replay default is fine).
        assert_eq!(apply("replay", &[]).unwrap().warmup_secs, 60);
        let cfg = apply("replay", &["--secs", "40", "--warmup", "8"]).unwrap();
        assert_eq!(cfg.replay.secs, None);
        assert_eq!(effective_secs(&cfg, "replay"), 40);
        assert_eq!(effective_secs(&apply("replay", &[]).unwrap(), "replay"), 30);
    }
}
