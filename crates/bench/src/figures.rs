//! Regeneration of every table and figure in the paper's evaluation
//! (§5).
//!
//! Each figure **declares** its experiment as a [`ScenarioMatrix`]
//! cross-product, hands it to the shared [`SweepEngine`] (parallel,
//! deterministically seeded), and **renders** the returned
//! [`SweepResult`] rows: machine-readable TSV plus a canonical
//! `<figure>_sweep.json` record into the output directory, and a
//! structured summary for display. No figure runs its own scheme×link
//! loops.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use sprout_baselines::VideoApp;
use sprout_trace::{Duration, Impairment, NetProfile, Trace, IMPAIRMENT_PRESETS};

use crate::scenario::{FlowSpec, LinkSpec, QueueSpec, ScenarioMatrix, Workload};
use crate::schemes::{RunConfig, Scheme, SchemeResult};
use crate::sweep::{self, CellCachePolicy, FlowSummary, ShardSpec, SweepEngine, SweepResult};

pub use crate::scenario::{paired, paired_profile};

/// The shallow per-user buffer of the soak matrix's queue axis: 50 MTU
/// (≈ one RTT of a few Mbit/s), the thin-buffered carrier end of the
/// bufferbloat spectrum the per-user buffer-depth literature (C2TCP)
/// sweeps.
pub const SHALLOW_QUEUE_BYTES: u64 = 75_000;

/// The axes of the long-horizon soak matrix that are overridable from
/// the CLI (`--links`, `--prop-delays`, `--queues`).
#[derive(Clone, Debug)]
pub struct SoakAxes {
    /// Link directions under test.
    pub links: Vec<NetProfile>,
    /// One-way propagation delays, ms (min-RTT is 2× each).
    pub prop_delays_ms: Vec<u64>,
    /// Queue disciplines.
    pub queues: Vec<QueueSpec>,
    /// Soak run length override, seconds. Defaults to the paper-length
    /// [`SOAK_SECS`] so *every* soak entry point — CLI, library,
    /// `matrices_for` shard workers — declares the identical matrix
    /// (and therefore the identical cache keys); `None` inherits the
    /// global `ExperimentConfig` timing (`--secs`/`--quick` set this).
    pub secs: Option<u64>,
}

impl Default for SoakAxes {
    fn default() -> Self {
        SoakAxes {
            links: NetProfile::all().to_vec(),
            prop_delays_ms: vec![10, 25, 50, 100],
            queues: vec![
                QueueSpec::Auto,
                QueueSpec::DropTailBytes(SHALLOW_QUEUE_BYTES),
                QueueSpec::CoDel,
            ],
            secs: Some(SOAK_SECS),
        }
    }
}

/// The axes of the `impair` experiment that are overridable from the
/// CLI (`--impairments`, `--links`).
#[derive(Clone, Debug)]
pub struct ImpairAxes {
    /// Fault-injection presets under test, as `(preset name, spec)`
    /// pairs in declaration order (`--impairments none,burst,...`).
    pub impairments: Vec<(String, Impairment)>,
    /// Link directions under test (`--links`).
    pub links: Vec<NetProfile>,
}

impl Default for ImpairAxes {
    fn default() -> Self {
        ImpairAxes {
            impairments: IMPAIRMENT_PRESETS
                .iter()
                .map(|&name| {
                    (
                        name.to_string(),
                        Impairment::preset(name).expect("built-in preset"),
                    )
                })
                .collect(),
            // The paper's headline downlink: the fault axes are the
            // experiment's variable, one well-understood link is the
            // control.
            links: vec![NetProfile::VerizonLteDown],
        }
    }
}

/// The default run length of a `serve` cell, virtual seconds. Much
/// shorter than the 300 s figures: a serve cell simulates `2 N` paths
/// and `N + 1` endpoints, so at N = 1024 one minute of virtual time is
/// already ~2000 path-minutes of work; capacity and fairness converge
/// well before that on the slow 3G uplink the matrix defaults to.
pub const SERVE_SECS: u64 = 60;

/// The default session counts of the `serve` capacity sweep.
pub const SERVE_SESSIONS: [u32; 4] = [1, 16, 128, 1024];

/// The axes of the `serve` experiment that are overridable from the
/// CLI (`--sessions`, `--links`).
#[derive(Clone, Debug)]
pub struct ServeAxes {
    /// Session counts under test (`--sessions 1,16,128,1024`).
    pub sessions: Vec<u32>,
    /// Link directions under test (`--links`).
    pub links: Vec<NetProfile>,
    /// Serve run length override, seconds. Defaults to the short
    /// [`SERVE_SECS`] so every serve entry point declares the identical
    /// matrix (and cache keys); `None` inherits the global
    /// `ExperimentConfig` timing (`--secs`/`--quick` set this).
    pub secs: Option<u64>,
}

impl Default for ServeAxes {
    fn default() -> Self {
        ServeAxes {
            sessions: SERVE_SESSIONS.to_vec(),
            // A slow 3G uplink: per-session packet rates stay low, so
            // the N = 1024 cell measures session-pool overhead rather
            // than raw packet-forwarding throughput.
            links: vec![NetProfile::TmobileUmtsUp],
            secs: Some(SERVE_SECS),
        }
    }
}

/// The default run length of a `replay` cell, virtual seconds. The
/// committed corpus excerpts are ~40 s of capture; 30 s keeps every
/// measured cell inside the shortest excerpt so no scheme ever runs past
/// the last recorded delivery opportunity.
pub const REPLAY_SECS: u64 = 30;

/// The bin width of the per-cell time-series artifacts (`--timeseries`):
/// 500 ms, matching the Figure-1 series the paper plots.
pub const CELL_SERIES_BIN: Duration = Duration::from_millis(500);

/// The committed Saturator captures the `replay` experiment runs when no
/// `--trace` flags are given, embedded so the default corpus is
/// available offline in every process (shard workers, the control
/// daemon) without a path dependency.
const DEFAULT_CORPUS: [&str; 2] = [
    include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../trace/tests/data/downlink-excerpt.trace"
    )),
    include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../trace/tests/data/uplink-excerpt.trace"
    )),
];

/// Register the embedded default corpus and return its fingerprints, in
/// declaration order (downlink, uplink). Registration is idempotent, so
/// calling this from every `ReplayAxes::default()` is free after the
/// first.
pub fn default_corpus_fingerprints() -> Vec<u64> {
    DEFAULT_CORPUS
        .iter()
        .map(|text| {
            sprout_trace::register_trace_bytes(text.as_bytes())
                .expect("the committed corpus parses (pinned by sprout-trace's tests)")
        })
        .collect()
}

/// The axes of the `replay` experiment that are overridable from the
/// CLI (`--trace`, `--schemes`).
#[derive(Clone, Debug)]
pub struct ReplayAxes {
    /// Content fingerprints of the measured captures under replay, in
    /// declaration order (`--trace FILE` per capture; defaults to the
    /// embedded corpus). Every fingerprint must be registered in this
    /// process — `--trace` registers as it parses.
    pub traces: Vec<u64>,
    /// Schemes run over each capture (`--schemes sprout,cubic,...`;
    /// defaults to the nine Figure-7 schemes).
    pub schemes: Vec<Scheme>,
    /// Replay run length override, seconds. Defaults to the short
    /// [`REPLAY_SECS`] so every replay entry point declares the
    /// identical matrix (and cache keys); `None` inherits the global
    /// `ExperimentConfig` timing (`--secs`/`--quick` set this).
    pub secs: Option<u64>,
}

impl Default for ReplayAxes {
    fn default() -> Self {
        ReplayAxes {
            traces: default_corpus_fingerprints(),
            schemes: Scheme::fig7().to_vec(),
            secs: Some(REPLAY_SECS),
        }
    }
}

/// The default number of contending flows per contention cell.
pub const DEFAULT_CONTENTION_FLOWS: usize = 3;

/// The axes of the `contention` experiment that are overridable from the
/// CLI (`--flows`, `--contend`, `--links`).
#[derive(Clone, Debug)]
pub struct ContentionAxes {
    /// Flows per cell for the default workload set (`--flows N`).
    pub flows: usize,
    /// Explicit flow list replacing the default workload set
    /// (`--contend sprout,cubic,cubic`); the matrix then holds this one
    /// contention workload per link.
    pub contenders: Option<Vec<FlowSpec>>,
    /// Link directions under test (`--links`).
    pub links: Vec<NetProfile>,
}

impl Default for ContentionAxes {
    fn default() -> Self {
        ContentionAxes {
            flows: DEFAULT_CONTENTION_FLOWS,
            contenders: None,
            // The paper's headline downlink plus a lean 3G uplink: one
            // deep fast buffer, one slow one — the two ends of the
            // shared-queue contention regime.
            links: vec![NetProfile::VerizonLteDown, NetProfile::TmobileUmtsUp],
        }
    }
}

/// Global experiment knobs (trace length, warm-up, seed, output dir).
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Virtual seconds per run (the paper's traces are ~17 min; 300 s
    /// keeps the full sweep tractable while well past convergence).
    pub run_secs: u64,
    /// Warm-up skipped before measurement (§5.1: one minute).
    pub warmup_secs: u64,
    /// Master seed: every stochastic input of every sweep derives from it.
    pub seed: u64,
    /// Worker threads for the sweep engine (0 = one per core).
    pub threads: usize,
    /// The slice of each matrix this process runs (`--shard I/N`).
    pub shard: ShardSpec,
    /// Cell-result cache policy (`--resume` / `--merge`).
    pub cell_policy: CellCachePolicy,
    /// Batched cell execution (`--batch on|off`, default on).
    pub batch: bool,
    /// Per-cell watchdog budget in seconds (`--cell-timeout SECS`).
    pub cell_timeout_secs: u64,
    /// Output directory for TSV/JSON artifacts.
    pub out_dir: PathBuf,
    /// Axes of the `soak` experiment (CLI-overridable).
    pub soak: SoakAxes,
    /// Axes of the `contention` experiment (CLI-overridable).
    pub contention: ContentionAxes,
    /// Axes of the `impair` experiment (CLI-overridable).
    pub impair: ImpairAxes,
    /// Axes of the `serve` experiment (CLI-overridable).
    pub serve: ServeAxes,
    /// Axes of the `replay` experiment (CLI-overridable).
    pub replay: ReplayAxes,
    /// Emit per-cell time-series artifacts (`--timeseries`): delay
    /// vs. time plus binned capacity/throughput/queue-depth TSVs next
    /// to the sweep JSON, for the `replay`, `impair`, and `soak`
    /// matrices. Changes cell identity (the series rides the cell's
    /// cache entry), so it is part of the matrix declaration, not a
    /// render-time toggle.
    pub timeseries: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            run_secs: 300,
            warmup_secs: 60,
            seed: 20130401, // NSDI 2013
            threads: 0,
            shard: ShardSpec::FULL,
            cell_policy: CellCachePolicy::Execute,
            batch: true,
            cell_timeout_secs: crate::sweep::DEFAULT_CELL_TIMEOUT.as_secs(),
            out_dir: PathBuf::from("results"),
            soak: SoakAxes::default(),
            contention: ContentionAxes::default(),
            impair: ImpairAxes::default(),
            serve: ServeAxes::default(),
            replay: ReplayAxes::default(),
            timeseries: false,
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for smoke tests and criterion benches.
    pub fn quick() -> Self {
        ExperimentConfig {
            run_secs: 90,
            warmup_secs: 20,
            ..Default::default()
        }
    }

    fn duration(&self) -> Duration {
        Duration::from_secs(self.run_secs)
    }

    fn warmup(&self) -> Duration {
        Duration::from_secs(self.warmup_secs)
    }

    /// The sweep engine configured by these knobs.
    pub fn engine(&self) -> SweepEngine {
        SweepEngine::new(self.seed)
            .with_threads(self.threads)
            .with_shard(self.shard)
            .with_policy(self.cell_policy)
            .with_batch(self.batch)
            .with_cell_timeout(std::time::Duration::from_secs(self.cell_timeout_secs))
    }

    /// Start declaring a matrix with this config's timing.
    pub fn matrix(&self, name: &str) -> crate::scenario::MatrixBuilder {
        ScenarioMatrix::builder(name).timing(self.duration(), self.warmup())
    }

    /// Apply the `--timeseries` request to a matrix under declaration:
    /// a no-op unless enabled, so the default matrices (and their cache
    /// keys) are untouched.
    fn with_timeseries(&self, b: crate::scenario::MatrixBuilder) -> crate::scenario::MatrixBuilder {
        if self.timeseries {
            b.cell_series(CELL_SERIES_BIN)
        } else {
            b
        }
    }

    /// The synthetic stand-in for one measured link (deterministic in the
    /// master seed).
    pub fn trace_for(&self, profile: NetProfile) -> Trace {
        profile.generate(self.duration(), self.seed)
    }

    /// Data/feedback trace pair for a link under test: the feedback path
    /// is the same network's other direction. (Standalone-cell helper for
    /// benches and tests; sweeps derive this internally.)
    pub fn run_config(&self, profile: NetProfile) -> RunConfig {
        let data = self.trace_for(profile);
        let feedback = self.trace_for(crate::scenario::paired_profile(profile));
        RunConfig {
            duration: self.duration(),
            warmup: self.warmup(),
            ..RunConfig::new(data, feedback)
        }
    }

    fn tsv(&self, name: &str) -> std::io::Result<fs::File> {
        fs::create_dir_all(&self.out_dir)?;
        fs::File::create(self.out_dir.join(name))
    }

    /// Run `matrix` on the shared engine and record its canonical JSON
    /// artifact (`<matrix>_sweep.json`). Refuses to run with a partial
    /// shard — a shard's results would masquerade as the whole sweep;
    /// shard runs go through [`SweepEngine::try_run`] directly and rely
    /// on the cell cache (then a merge) for assembly.
    pub fn run_matrix(&self, matrix: &ScenarioMatrix) -> std::io::Result<Vec<SweepResult>> {
        if !self.shard.is_full() {
            return Err(std::io::Error::other(
                "partial shard runs cannot write canonical sweep artifacts",
            ));
        }
        let results = self
            .engine()
            .try_run(matrix)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        fs::create_dir_all(&self.out_dir)?;
        let mut f = fs::File::create(self.sweep_json_path(matrix.name()))?;
        sweep::write_json(&mut f, matrix.name(), self.seed, &results)?;
        Ok(results)
    }

    /// Path of the JSON artifact for matrix `name`.
    pub fn sweep_json_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(format!("{name}_sweep.json"))
    }
}

// ---------------------------------------------------------------- fig 1

/// Figure 1: Skype vs Sprout time series on the Verizon LTE downlink.
pub struct Fig1Result {
    /// (time s, capacity kbps, skype kbps, sprout kbps) per 500 ms bin.
    pub throughput_rows: Vec<(f64, f64, f64, f64)>,
    /// Worst per-arrival delay per 500 ms bin: (time s, skype ms, sprout ms).
    pub delay_rows: Vec<(f64, f64, f64)>,
}

/// The Figure 1 matrix: Skype vs Sprout with 500 ms series collection.
pub fn fig1_matrix(cfg: &ExperimentConfig) -> ScenarioMatrix {
    cfg.matrix("fig1")
        .schemes([Scheme::Skype, Scheme::Sprout])
        .links([NetProfile::VerizonLteDown])
        .series_bin(Duration::from_millis(500))
        .build()
}

/// Run Figure 1.
pub fn fig1(cfg: &ExperimentConfig) -> std::io::Result<Fig1Result> {
    let matrix = fig1_matrix(cfg);
    let results = cfg.run_matrix(&matrix)?;
    let (skype, sprout) = (&results[0], &results[1]);

    let n = skype.series.len().min(sprout.series.len());
    let mut throughput_rows = Vec::with_capacity(n);
    let mut delay_rows = Vec::with_capacity(n);
    for i in 0..n {
        let (sk, sp) = (&skype.series[i], &sprout.series[i]);
        // Both cells replay the identical link trace, so either capacity
        // column works.
        throughput_rows.push((
            sk.t_s,
            sk.capacity_kbps,
            sk.throughput_kbps,
            sp.throughput_kbps,
        ));
        delay_rows.push((sk.t_s, sk.worst_delay_ms, sp.worst_delay_ms));
    }

    let mut f = cfg.tsv("fig1_timeseries.tsv")?;
    writeln!(
        f,
        "time_s\tcapacity_kbps\tskype_kbps\tsprout_kbps\tskype_delay_ms\tsprout_delay_ms"
    )?;
    for (i, row) in throughput_rows.iter().enumerate() {
        writeln!(
            f,
            "{:.1}\t{:.0}\t{:.0}\t{:.0}\t{:.0}\t{:.0}",
            row.0, row.1, row.2, row.3, delay_rows[i].1, delay_rows[i].2
        )?;
    }
    Ok(Fig1Result {
        throughput_rows,
        delay_rows,
    })
}

// ---------------------------------------------------------------- fig 2

/// Figure 2: interarrival distribution of a saturated downlink.
pub struct Fig2Result {
    /// Fraction of interarrivals within 20 ms (paper: 99.99%).
    pub fraction_within_20ms: f64,
    /// Power-law slope of the 20 ms–5 s tail (paper: −3.27).
    pub tail_slope: Option<f64>,
    /// Total interarrivals measured.
    pub samples: u64,
}

/// The Figure 2 matrix: a saturated-link interarrival probe. The paper's
/// sample is 1.2 M packets; at ~420 packets/s that is ~48 min of
/// saturation, so the probe scales with `run_secs` but keeps ≥ 10 min.
pub fn fig2_matrix(cfg: &ExperimentConfig) -> ScenarioMatrix {
    let secs = (cfg.run_secs * 10).max(600);
    ScenarioMatrix::builder("fig2")
        .workloads([Workload::InterarrivalProbe])
        .links([NetProfile::VerizonLteDown])
        .timing(Duration::from_secs(secs), Duration::ZERO)
        .build()
}

/// Run Figure 2 on a long saturated Verizon LTE downlink.
pub fn fig2(cfg: &ExperimentConfig) -> std::io::Result<Fig2Result> {
    let matrix = fig2_matrix(cfg);
    let results = cfg.run_matrix(&matrix)?;
    let ia = results[0]
        .interarrival
        .as_ref()
        .expect("probe cells produce interarrival stats");

    let mut f = cfg.tsv("fig2_interarrival.tsv")?;
    writeln!(f, "bin_start_ms\tbin_end_ms\tpercent")?;
    for &(lo, hi, pct) in &ia.rows {
        writeln!(f, "{lo:.3}\t{hi:.3}\t{pct:.6}")?;
    }
    Ok(Fig2Result {
        fraction_within_20ms: ia.fraction_within_20ms,
        tail_slope: ia.tail_slope,
        samples: ia.samples,
    })
}

// ---------------------------------------------------------------- fig 7

/// All Figure 7 cells (plus Cubic-CoDel for the intro tables / Fig. 8).
pub struct Fig7Results {
    /// (link, scheme, result) for every cell.
    pub cells: Vec<(NetProfile, Scheme, SchemeResult)>,
}

impl Fig7Results {
    /// The result of one cell.
    pub fn get(&self, link: NetProfile, scheme: Scheme) -> Option<&SchemeResult> {
        self.cells
            .iter()
            .find(|(l, s, _)| *l == link && *s == scheme)
            .map(|(_, _, r)| r)
    }

    /// Mean over all links of a per-cell metric for one scheme.
    pub fn mean_over_links(&self, scheme: Scheme, f: impl Fn(&SchemeResult) -> f64) -> f64 {
        let vals: Vec<f64> = self
            .cells
            .iter()
            .filter(|(_, s, _)| *s == scheme)
            .map(|(_, _, r)| f(r))
            .filter(|v| v.is_finite())
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }
}

/// The schemes of the Figure 7 sweep: the paper's nine plus Cubic-CoDel
/// (the intro tables and Figure 8 need it).
pub fn fig7_schemes() -> Vec<Scheme> {
    let mut schemes = Scheme::fig7().to_vec();
    schemes.push(Scheme::CubicCodel);
    schemes
}

/// The Figure 7 matrix: every scheme on every link direction.
pub fn fig7_matrix(cfg: &ExperimentConfig) -> ScenarioMatrix {
    cfg.matrix("fig7")
        .schemes(fig7_schemes())
        .links(NetProfile::all())
        .build()
}

/// Run the full Figure 7 sweep: every scheme on every link direction.
pub fn fig7(cfg: &ExperimentConfig) -> std::io::Result<Fig7Results> {
    let matrix = fig7_matrix(cfg);
    let results = cfg.run_matrix(&matrix)?;

    let mut f = cfg.tsv("fig7_comparative.tsv")?;
    writeln!(
        f,
        "link\tscheme\tthroughput_kbps\tp95_delay_ms\tself_inflicted_ms\tomniscient_ms\tutilization"
    )?;
    let mut cells = Vec::with_capacity(results.len());
    for r in &results {
        let scheme = r.scenario.workload.scheme().expect("scheme matrix");
        let m = r.metrics.expect("scheme cells produce metrics");
        writeln!(
            f,
            "{}\t{}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.4}",
            r.scenario.link.id(),
            scheme.name(),
            m.throughput_kbps,
            m.p95_delay_ms,
            m.self_inflicted_ms,
            m.omniscient_ms,
            m.utilization
        )?;
        let link = r
            .scenario
            .link
            .profile()
            .expect("fig7 sweeps synthetic links");
        cells.push((link, scheme, m));
    }
    Ok(Fig7Results { cells })
}

/// One row of the intro comparison tables.
pub struct SummaryRow {
    /// Scheme being compared against the reference.
    pub scheme: Scheme,
    /// Mean over links of (reference throughput / scheme throughput).
    pub avg_speedup: f64,
    /// (scheme mean self-inflicted delay) / (reference mean delay).
    pub delay_reduction: f64,
    /// Scheme mean self-inflicted delay, seconds.
    pub avg_delay_s: f64,
}

/// Intro table 1 (reference = Sprout) or table 2 (reference =
/// Sprout-EWMA), §1.
pub fn summary_table(results: &Fig7Results, reference: Scheme, rows: &[Scheme]) -> Vec<SummaryRow> {
    let ref_delay = results.mean_over_links(reference, |r| r.self_inflicted_ms) / 1e3;
    rows.iter()
        .map(|&scheme| {
            // Mean of per-link speedups (ratio of throughputs per link).
            let mut ratios = Vec::new();
            for link in NetProfile::all() {
                if let (Some(a), Some(b)) =
                    (results.get(link, reference), results.get(link, scheme))
                {
                    if b.throughput_kbps > 0.0 {
                        ratios.push(a.throughput_kbps / b.throughput_kbps);
                    }
                }
            }
            let avg_speedup = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
            let avg_delay_s = results.mean_over_links(scheme, |r| r.self_inflicted_ms) / 1e3;
            SummaryRow {
                scheme,
                avg_speedup,
                delay_reduction: avg_delay_s / ref_delay.max(1e-9),
                avg_delay_s,
            }
        })
        .collect()
}

/// Write an intro summary table as TSV.
pub fn write_summary(
    cfg: &ExperimentConfig,
    name: &str,
    rows: &[SummaryRow],
) -> std::io::Result<()> {
    let mut f = cfg.tsv(name)?;
    writeln!(
        f,
        "scheme\tavg_speedup_vs_ref\tdelay_reduction\tavg_delay_s"
    )?;
    for r in rows {
        writeln!(
            f,
            "{}\t{:.2}\t{:.2}\t{:.2}",
            r.scheme.name(),
            r.avg_speedup,
            r.delay_reduction,
            r.avg_delay_s
        )?;
    }
    Ok(())
}

// ---------------------------------------------------------------- fig 8

/// Figure 8: average utilization vs average self-inflicted delay.
pub struct Fig8Row {
    /// Scheme.
    pub scheme: Scheme,
    /// Mean utilization across the eight links, percent.
    pub avg_utilization_pct: f64,
    /// Mean self-inflicted delay across links, ms.
    pub avg_delay_ms: f64,
}

/// Derive Figure 8 from the Figure 7 sweep.
pub fn fig8(cfg: &ExperimentConfig, results: &Fig7Results) -> std::io::Result<Vec<Fig8Row>> {
    let schemes = [
        Scheme::Sprout,
        Scheme::SproutEwma,
        Scheme::Cubic,
        Scheme::CubicCodel,
    ];
    let rows: Vec<Fig8Row> = schemes
        .iter()
        .map(|&s| Fig8Row {
            scheme: s,
            avg_utilization_pct: results.mean_over_links(s, |r| r.utilization) * 100.0,
            avg_delay_ms: results.mean_over_links(s, |r| r.self_inflicted_ms),
        })
        .collect();
    let mut f = cfg.tsv("fig8_utilization.tsv")?;
    writeln!(f, "scheme\tavg_utilization_pct\tavg_self_inflicted_ms")?;
    for r in &rows {
        writeln!(
            f,
            "{}\t{:.1}\t{:.0}",
            r.scheme.name(),
            r.avg_utilization_pct,
            r.avg_delay_ms
        )?;
    }
    Ok(rows)
}

// ---------------------------------------------------------------- fig 9

/// Figure 9: the confidence-parameter sweep on the T-Mobile 3G uplink.
pub struct Fig9Row {
    /// Forecast confidence percent (95 = paper default).
    pub confidence: f64,
    /// Result at that confidence.
    pub result: SchemeResult,
}

/// The confidence axis of Figure 9, in the paper's order.
pub const FIG9_CONFIDENCES: [f64; 5] = [95.0, 75.0, 50.0, 25.0, 5.0];

/// The Figure 9 matrix: Sprout across the confidence axis.
pub fn fig9_matrix(cfg: &ExperimentConfig) -> ScenarioMatrix {
    cfg.matrix("fig9")
        .schemes([Scheme::Sprout])
        .links([NetProfile::TmobileUmtsUp])
        .confidences_pct(FIG9_CONFIDENCES)
        .build()
}

/// Run Figure 9.
pub fn fig9(cfg: &ExperimentConfig) -> std::io::Result<Vec<Fig9Row>> {
    let matrix = fig9_matrix(cfg);
    let results = cfg.run_matrix(&matrix)?;

    let mut f = cfg.tsv("fig9_confidence.tsv")?;
    writeln!(f, "confidence_pct\tthroughput_kbps\tself_inflicted_ms")?;
    let mut rows = Vec::with_capacity(results.len());
    for r in &results {
        let confidence = r.scenario.confidence_pct.expect("confidence axis");
        let m = r.metrics.expect("scheme cells produce metrics");
        writeln!(
            f,
            "{confidence:.0}\t{:.1}\t{:.1}",
            m.throughput_kbps, m.self_inflicted_ms
        )?;
        rows.push(Fig9Row {
            confidence,
            result: m,
        });
    }
    Ok(rows)
}

// ----------------------------------------------------------- §5.6 loss

/// One row of the §5.6 loss-resilience table.
pub struct LossRow {
    /// Link under test.
    pub link: NetProfile,
    /// Bernoulli per-direction loss probability.
    pub loss_rate: f64,
    /// Result.
    pub result: SchemeResult,
}

/// The §5.6 loss matrix (Verizon LTE, both directions, 0/5/10%).
pub fn loss_matrix(cfg: &ExperimentConfig) -> ScenarioMatrix {
    cfg.matrix("loss")
        .schemes([Scheme::Sprout])
        .links([NetProfile::VerizonLteDown, NetProfile::VerizonLteUp])
        .loss_rates([0.0, 0.05, 0.10])
        .build()
}

/// Run the §5.6 loss table (Verizon LTE, both directions, 0/5/10%).
pub fn loss_table(cfg: &ExperimentConfig) -> std::io::Result<Vec<LossRow>> {
    let matrix = loss_matrix(cfg);
    let results = cfg.run_matrix(&matrix)?;

    let mut f = cfg.tsv("loss_resilience.tsv")?;
    writeln!(f, "link\tloss_pct\tthroughput_kbps\tself_inflicted_ms")?;
    let mut rows = Vec::with_capacity(results.len());
    for r in &results {
        let m = r.metrics.expect("scheme cells produce metrics");
        writeln!(
            f,
            "{}\t{:.0}\t{:.1}\t{:.1}",
            r.scenario.link.id(),
            r.scenario.loss_rate * 100.0,
            m.throughput_kbps,
            m.self_inflicted_ms
        )?;
        rows.push(LossRow {
            link: r
                .scenario
                .link
                .profile()
                .expect("loss sweeps synthetic links"),
            loss_rate: r.scenario.loss_rate,
            result: m,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------- §5.7 tunnel

/// §5.7: Cubic bulk + Skype, direct vs through SproutTunnel.
pub struct TunnelComparison {
    /// Cubic throughput, direct, kbps.
    pub cubic_direct_kbps: f64,
    /// Cubic throughput through the tunnel, kbps.
    pub cubic_tunnel_kbps: f64,
    /// Skype throughput, direct, kbps.
    pub skype_direct_kbps: f64,
    /// Skype throughput through the tunnel, kbps.
    pub skype_tunnel_kbps: f64,
    /// Skype 95% end-to-end delay, direct, s.
    pub skype_direct_delay_s: f64,
    /// Skype 95% end-to-end delay through the tunnel, s.
    pub skype_tunnel_delay_s: f64,
}

/// The §5.7 tunnel matrix: mux'd flows direct vs through SproutTunnel.
pub fn tunnel_matrix(cfg: &ExperimentConfig) -> ScenarioMatrix {
    cfg.matrix("tunnel")
        .workloads([Workload::MuxDirect, Workload::MuxTunneled])
        .links([NetProfile::VerizonLteDown])
        .build()
}

/// Run the §5.7 comparison on the Verizon LTE downlink.
pub fn tunnel_comparison(cfg: &ExperimentConfig) -> std::io::Result<TunnelComparison> {
    let matrix = tunnel_matrix(cfg);
    let results = cfg.run_matrix(&matrix)?;

    let flow = |r: &SweepResult, id: u32| -> sweep::FlowSummary {
        *r.flows
            .iter()
            .find(|f| f.flow == id)
            .expect("mux cells report both flows")
    };
    let (direct, tunneled) = (&results[0], &results[1]);
    let result = TunnelComparison {
        cubic_direct_kbps: flow(direct, sweep::BULK_FLOW.0).throughput_kbps,
        cubic_tunnel_kbps: flow(tunneled, sweep::BULK_FLOW.0).throughput_kbps,
        skype_direct_kbps: flow(direct, sweep::INTERACTIVE_FLOW.0).throughput_kbps,
        skype_tunnel_kbps: flow(tunneled, sweep::INTERACTIVE_FLOW.0).throughput_kbps,
        skype_direct_delay_s: flow(direct, sweep::INTERACTIVE_FLOW.0).p95_delay_ms / 1e3,
        skype_tunnel_delay_s: flow(tunneled, sweep::INTERACTIVE_FLOW.0).p95_delay_ms / 1e3,
    };

    let mut f = cfg.tsv("tunnel_isolation.tsv")?;
    writeln!(f, "metric\tdirect\tvia_sprout")?;
    writeln!(
        f,
        "cubic_throughput_kbps\t{:.0}\t{:.0}",
        result.cubic_direct_kbps, result.cubic_tunnel_kbps
    )?;
    writeln!(
        f,
        "skype_throughput_kbps\t{:.0}\t{:.0}",
        result.skype_direct_kbps, result.skype_tunnel_kbps
    )?;
    writeln!(
        f,
        "skype_p95_delay_s\t{:.2}\t{:.2}",
        result.skype_direct_delay_s, result.skype_tunnel_delay_s
    )?;
    Ok(result)
}

// ----------------------------------------------------------- contention

/// The default contention workload set for `n` flows per cell: the
/// homogeneous baselines (all-Cubic, all-Sprout), a lone Sprout or
/// Skype flow against `n − 1` Cubic bulk flows (the regime where a deep
/// shared buffer collapses the delay-sensitive flow), and a tunneled
/// Skype flow against the same bulk mix (§5.7 isolation, N-flow
/// generalized).
pub fn default_contention_workloads(n: usize) -> Vec<Vec<FlowSpec>> {
    assert!(
        (2..=crate::scenario::MAX_CONTENTION_FLOWS).contains(&n),
        "contention cells need 2..={} flows, got {n}",
        crate::scenario::MAX_CONTENTION_FLOWS
    );
    let versus_bulk = |lead: FlowSpec| {
        let mut flows = vec![lead];
        flows.extend(vec![FlowSpec::Scheme(Scheme::Cubic); n - 1]);
        flows
    };
    vec![
        vec![FlowSpec::Scheme(Scheme::Cubic); n],
        vec![FlowSpec::Scheme(Scheme::Sprout); n],
        versus_bulk(FlowSpec::Scheme(Scheme::Sprout)),
        versus_bulk(FlowSpec::Scheme(Scheme::Skype)),
        versus_bulk(FlowSpec::App {
            app: VideoApp::Skype,
            over: Scheme::Sprout,
        }),
    ]
}

/// The contention matrix: the default workload set (or the explicit
/// `--contend` flow list) across the configured links, every cell
/// sharing one deep per-user DropTail queue per direction.
pub fn contention_matrix(cfg: &ExperimentConfig) -> ScenarioMatrix {
    let workloads = match &cfg.contention.contenders {
        Some(flows) => vec![flows.clone()],
        None => default_contention_workloads(cfg.contention.flows),
    };
    cfg.matrix("contention")
        .contention(workloads)
        .links(cfg.contention.links.iter().copied())
        .build()
}

/// One contention cell's summary, flattened for display.
pub struct ContentionRow {
    /// The cell label.
    pub label: String,
    /// `+`-joined flow tags, in flow order.
    pub workload: String,
    /// Jain's fairness index over the flow throughputs.
    pub fairness: f64,
    /// Aggregate link utilization of the cell.
    pub utilization: f64,
    /// Per-flow tag + metrics, in flow order.
    pub flows: Vec<(String, FlowSummary)>,
}

/// Run the contention matrix and render `contention_fairness.tsv` (one
/// row per flow, with the cell's fairness index and aggregate
/// utilization repeated on each).
pub fn contention(cfg: &ExperimentConfig) -> std::io::Result<Vec<ContentionRow>> {
    let matrix = contention_matrix(cfg);
    let results = cfg.run_matrix(&matrix)?;

    let mut f = cfg.tsv("contention_fairness.tsv")?;
    writeln!(
        f,
        "label\tlink\tqueue\tflow\tspec\tthroughput_kbps\tp95_delay_ms\tjain_fairness\tutilization"
    )?;
    let mut rows = Vec::with_capacity(results.len());
    for r in &results {
        let specs = r
            .scenario
            .workload
            .contention_flows()
            .expect("contention matrix cells are contention workloads");
        let m = r.metrics.expect("contention cells produce metrics");
        let fairness = r.fairness.expect("contention cells report fairness");
        let mut flows = Vec::with_capacity(specs.len());
        for (spec, flow) in specs.iter().zip(&r.flows) {
            writeln!(
                f,
                "{}\t{}\t{}\t{}\t{}\t{:.1}\t{:.1}\t{:.4}\t{:.4}",
                r.scenario.label,
                r.scenario.link.id(),
                r.queue.id(),
                flow.flow,
                spec.tag(),
                flow.throughput_kbps,
                flow.p95_delay_ms,
                fairness,
                m.utilization,
            )?;
            flows.push((spec.tag(), *flow));
        }
        rows.push(ContentionRow {
            label: r.scenario.label.clone(),
            workload: r.scenario.workload.canonical_detail(),
            fairness,
            utilization: m.utilization,
            flows,
        });
    }
    Ok(rows)
}

// ----------------------------------------------------------------- soak

/// The paper's trace length: ~17 minutes of virtual time (§4.1). The
/// `soak` experiment defaults to this where the other figures use 300 s.
pub const SOAK_SECS: u64 = 1_020;

/// The carriers the soak matrix runs each video app over: Sprout (the
/// §4.3 tunnel) and Cubic (the §5.7 "direct" commingling, generalized).
pub const SOAK_APP_CARRIERS: [Scheme; 2] = [Scheme::Sprout, Scheme::Cubic];

/// The long-horizon soak matrix: the nine Figure-7 schemes plus every
/// video app over Sprout and Cubic, crossed with links × queue depths ×
/// propagation delays at paper-length runs. Cubic-CoDel is deliberately
/// *not* a tenth scheme here: its endpoints are Cubic's, so the
/// explicit `Cubic × CoDel` cells of the queue axis already are its
/// soak representation, and listing it would re-simulate every
/// `Auto`-resolved-to-CoDel cell the axis produces. Far too large for
/// one sitting by design — run it as `--shard I/N` workers sharing one
/// cache directory, then `--merge`.
pub fn soak_matrix(cfg: &ExperimentConfig) -> ScenarioMatrix {
    cfg.with_timeseries(
        ScenarioMatrix::builder("soak")
            .timing(
                Duration::from_secs(cfg.soak.secs.unwrap_or(cfg.run_secs)),
                Duration::from_secs(cfg.warmup_secs),
            )
            .schemes(Scheme::fig7())
            .apps(VideoApp::all(), SOAK_APP_CARRIERS)
            .links(cfg.soak.links.iter().copied())
            .queues(cfg.soak.queues.iter().copied())
            .prop_delays_ms(cfg.soak.prop_delays_ms.iter().copied()),
    )
    .build()
}

/// Aggregate view of one workload across every soak cell it appears in.
pub struct SoakRow {
    /// The workload's label tag (scheme or `app-over-carrier`).
    pub workload: String,
    /// Cells aggregated.
    pub cells: usize,
    /// Mean throughput across the workload's cells, kbps.
    pub mean_throughput_kbps: f64,
    /// Mean self-inflicted delay across the workload's cells, ms.
    pub mean_self_inflicted_ms: f64,
}

/// Run the soak matrix and render `soak_matrix.tsv` (one row per cell,
/// every axis spelled out) plus a per-workload aggregate summary.
pub fn soak(cfg: &ExperimentConfig) -> std::io::Result<Vec<SoakRow>> {
    let matrix = soak_matrix(cfg);
    let results = cfg.run_matrix(&matrix)?;
    write_cell_series(cfg, &results)?;

    let mut f = cfg.tsv("soak_matrix.tsv")?;
    writeln!(
        f,
        "label\tworkload\tlink\tqueue\tprop_delay_ms\tthroughput_kbps\tp95_delay_ms\tself_inflicted_ms\tutilization\tapp_kbps\tapp_p95_ms"
    )?;
    for r in &results {
        let m = r.metrics.expect("soak cells produce direction metrics");
        let app = r
            .flows
            .iter()
            .find(|fl| fl.flow == sweep::INTERACTIVE_FLOW.0);
        writeln!(
            f,
            "{}\t{}\t{}\t{}\t{}\t{:.1}\t{:.1}\t{:.1}\t{:.4}\t{:.1}\t{:.1}",
            r.scenario.label,
            r.scenario.workload.canonical_detail(),
            r.scenario.link.id(),
            r.queue.id(),
            r.scenario.prop_delay.as_micros() / 1_000,
            m.throughput_kbps,
            m.p95_delay_ms,
            m.self_inflicted_ms,
            m.utilization,
            app.map(|fl| fl.throughput_kbps).unwrap_or(f64::NAN),
            app.map(|fl| fl.p95_delay_ms).unwrap_or(f64::NAN),
        )?;
    }

    // Aggregate per workload, in matrix declaration order. The
    // self-inflicted mean averages the *finite* samples only — a cell
    // whose measurement window saw no deliveries (NaN p95) must not be
    // counted as a zero-delay sample.
    struct Acc {
        workload: String,
        cells: usize,
        throughput_sum: f64,
        self_inflicted_sum: f64,
        self_inflicted_samples: usize,
    }
    let mut accs: Vec<Acc> = Vec::new();
    for r in &results {
        let tag = r.scenario.workload.canonical_detail();
        let m = r.metrics.expect("soak cells produce direction metrics");
        let acc = match accs.iter_mut().find(|a| a.workload == tag) {
            Some(a) => a,
            None => {
                accs.push(Acc {
                    workload: tag,
                    cells: 0,
                    throughput_sum: 0.0,
                    self_inflicted_sum: 0.0,
                    self_inflicted_samples: 0,
                });
                accs.last_mut().expect("just pushed")
            }
        };
        acc.cells += 1;
        acc.throughput_sum += m.throughput_kbps;
        if m.self_inflicted_ms.is_finite() {
            acc.self_inflicted_sum += m.self_inflicted_ms;
            acc.self_inflicted_samples += 1;
        }
    }
    Ok(accs
        .into_iter()
        .map(|a| SoakRow {
            cells: a.cells,
            mean_throughput_kbps: a.throughput_sum / a.cells as f64,
            mean_self_inflicted_ms: if a.self_inflicted_samples == 0 {
                // No cell of this workload produced a valid delay:
                // surface NaN (like the per-cell TSV), not a fake 0 ms.
                f64::NAN
            } else {
                a.self_inflicted_sum / a.self_inflicted_samples as f64
            },
            workload: a.workload,
        })
        .collect())
}

// --------------------------------------------------------------- impair

/// The schemes of the `impair` experiment: both Sprout variants against
/// the loss-based and open-loop baselines whose degradation behavior the
/// robustness story contrasts.
pub const IMPAIR_SCHEMES: [Scheme; 4] = [
    Scheme::Sprout,
    Scheme::SproutEwma,
    Scheme::Cubic,
    Scheme::Skype,
];

/// The fault-injection matrix: the impair scheme set crossed with the
/// configured links and impairment presets (burst loss, outages, flaps,
/// jitter, reordering, the all-at-once storm — plus the clean-link
/// control).
pub fn impair_matrix(cfg: &ExperimentConfig) -> ScenarioMatrix {
    cfg.with_timeseries(
        cfg.matrix("impair")
            .schemes(IMPAIR_SCHEMES)
            .links(cfg.impair.links.iter().copied())
            .impairments(cfg.impair.impairments.iter().map(|(_, imp)| *imp)),
    )
    .build()
}

/// One `impair` cell's summary, flattened for display.
pub struct ImpairRow {
    /// The cell label.
    pub label: String,
    /// Scheme under test.
    pub scheme: Scheme,
    /// Link under test.
    pub link: NetProfile,
    /// The impairment preset name (`none`, `burst`, ...), or the raw
    /// impairment id when the cell's spec matches no configured preset.
    pub impairment: String,
    /// The cell's metrics, including the degradation columns.
    pub result: SchemeResult,
}

/// Run the fault-injection matrix and render `impair_degradation.tsv`:
/// one row per cell with the degradation metrics (outage count, worst
/// post-outage recovery time, delivered fraction while degraded)
/// alongside the standard throughput/delay columns.
pub fn impair(cfg: &ExperimentConfig) -> std::io::Result<Vec<ImpairRow>> {
    let matrix = impair_matrix(cfg);
    let results = cfg.run_matrix(&matrix)?;
    write_cell_series(cfg, &results)?;

    let preset_name = |imp: &Impairment| -> String {
        let id = imp.id();
        cfg.impair
            .impairments
            .iter()
            .find(|(_, spec)| spec.id() == id)
            .map(|(name, _)| name.clone())
            .unwrap_or(id)
    };

    let mut f = cfg.tsv("impair_degradation.tsv")?;
    writeln!(
        f,
        "label\tlink\tscheme\timpairment\tthroughput_kbps\tp95_delay_ms\tself_inflicted_ms\tutilization\toutages\trecovery_ms\tdegraded_delivery"
    )?;
    let mut rows = Vec::with_capacity(results.len());
    for r in &results {
        let scheme = r.scenario.workload.scheme().expect("scheme matrix");
        let m = r.metrics.expect("scheme cells produce metrics");
        let impairment = preset_name(&r.scenario.impairment);
        writeln!(
            f,
            "{}\t{}\t{}\t{}\t{:.1}\t{:.1}\t{:.1}\t{:.4}\t{}\t{:.1}\t{:.4}",
            r.scenario.label,
            r.scenario.link.id(),
            scheme.name(),
            impairment,
            m.throughput_kbps,
            m.p95_delay_ms,
            m.self_inflicted_ms,
            m.utilization,
            m.outages,
            m.recovery_ms,
            m.degraded_delivery,
        )?;
        rows.push(ImpairRow {
            label: r.scenario.label.clone(),
            scheme,
            link: r
                .scenario
                .link
                .profile()
                .expect("impair sweeps synthetic links"),
            impairment,
            result: m,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------- serve

/// One `serve` cell's deterministic summary, flattened for display.
/// (The wall-clock capacity numbers — sessions/sec, per-session heap,
/// p99 tick latency — are *not* here: they belong to the perf harness,
/// which re-times a serve cell on the bench host. This row is the
/// virtual-time side: bytes delivered and fairness, bit-identical
/// across thread counts.)
pub struct ServeRow {
    /// The cell label.
    pub label: String,
    /// Link under test.
    pub link: NetProfile,
    /// Sessions in the cell.
    pub sessions: u32,
    /// Sum of per-session uplink bytes delivered inside the
    /// measurement window.
    pub delivered_bytes: u64,
    /// Smallest per-session window byte count (fairness floor).
    pub min_session_bytes: u64,
    /// Largest per-session window byte count (fairness ceiling).
    pub max_session_bytes: u64,
    /// Full-run wire bytes the server accepted — equals the sum of the
    /// per-path full-run deliveries (the conservation property).
    pub wire_delivered_bytes: u64,
    /// Jain's fairness index over per-session throughputs.
    pub fairness: f64,
}

/// The `serve` matrix: the multi-session server across the configured
/// session counts and links. Timing follows its own short default
/// ([`SERVE_SECS`], warmup = one sixth of the run) because each cell
/// costs ~`2 N` path-simulations of work.
pub fn serve_matrix(cfg: &ExperimentConfig) -> ScenarioMatrix {
    let secs = cfg.serve.secs.unwrap_or(cfg.run_secs);
    ScenarioMatrix::builder("serve")
        .timing(Duration::from_secs(secs), Duration::from_secs(secs / 6))
        .serve(cfg.serve.sessions.iter().copied())
        .links(cfg.serve.links.iter().copied())
        .build()
}

/// Run the serve capacity matrix and render `serve_capacity.tsv` (one
/// row per cell).
pub fn serve(cfg: &ExperimentConfig) -> std::io::Result<Vec<ServeRow>> {
    let matrix = serve_matrix(cfg);
    let results = cfg.run_matrix(&matrix)?;

    let mut f = cfg.tsv("serve_capacity.tsv")?;
    writeln!(
        f,
        "label\tlink\tsessions\tdelivered_bytes\tmin_session_bytes\tmax_session_bytes\twire_delivered_bytes\tjain_fairness"
    )?;
    let mut rows = Vec::with_capacity(results.len());
    for r in &results {
        let s = r.serve.expect("serve cells produce serve stats");
        let fairness = r.fairness.expect("serve cells report fairness");
        writeln!(
            f,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.4}",
            r.scenario.label,
            r.scenario.link.id(),
            s.sessions,
            s.delivered_bytes,
            s.min_session_bytes,
            s.max_session_bytes,
            s.wire_delivered_bytes,
            fairness,
        )?;
        rows.push(ServeRow {
            label: r.scenario.label.clone(),
            link: r
                .scenario
                .link
                .profile()
                .expect("serve sweeps synthetic links"),
            sessions: s.sessions,
            delivered_bytes: s.delivered_bytes,
            min_session_bytes: s.min_session_bytes,
            max_session_bytes: s.max_session_bytes,
            wire_delivered_bytes: s.wire_delivered_bytes,
            fairness,
        });
    }
    Ok(rows)
}

// --------------------------------------------------------------- replay

/// One `replay` cell's summary, flattened for display.
pub struct ReplayRow {
    /// The cell label.
    pub label: String,
    /// The measured capture's id (`m<fingerprint:016x>`).
    pub trace: String,
    /// Scheme under test.
    pub scheme: Scheme,
    /// The cell's metrics.
    pub result: SchemeResult,
}

/// The `replay` matrix: the configured scheme roster over each measured
/// capture (`LinkSpec::Measured`, identified by content fingerprint).
/// Timing follows its own short default ([`REPLAY_SECS`], warmup = one
/// sixth of the run) because the committed corpus excerpts are only
/// ~40 s long.
pub fn replay_matrix(cfg: &ExperimentConfig) -> ScenarioMatrix {
    let secs = cfg.replay.secs.unwrap_or(cfg.run_secs);
    cfg.with_timeseries(
        ScenarioMatrix::builder("replay")
            .timing(Duration::from_secs(secs), Duration::from_secs(secs / 6))
            .schemes(cfg.replay.schemes.iter().copied())
            .links(
                cfg.replay
                    .traces
                    .iter()
                    .map(|&fp| LinkSpec::Measured { fingerprint: fp }),
            ),
    )
    .build()
}

/// Run the measured-trace replay matrix and render
/// `replay_comparative.tsv` (one row per cell), plus the per-cell
/// time-series TSVs when `--timeseries` is set.
pub fn replay(cfg: &ExperimentConfig) -> std::io::Result<Vec<ReplayRow>> {
    let matrix = replay_matrix(cfg);
    let results = cfg.run_matrix(&matrix)?;
    write_cell_series(cfg, &results)?;

    let mut f = cfg.tsv("replay_comparative.tsv")?;
    writeln!(
        f,
        "label\ttrace\tscheme\tthroughput_kbps\tp95_delay_ms\tself_inflicted_ms\tutilization"
    )?;
    let mut rows = Vec::with_capacity(results.len());
    for r in &results {
        let scheme = r.scenario.workload.scheme().expect("scheme matrix");
        let m = r.metrics.expect("scheme cells produce metrics");
        writeln!(
            f,
            "{}\t{}\t{}\t{:.1}\t{:.1}\t{:.1}\t{:.4}",
            r.scenario.label,
            r.scenario.link.id(),
            scheme.name(),
            m.throughput_kbps,
            m.p95_delay_ms,
            m.self_inflicted_ms,
            m.utilization,
        )?;
        rows.push(ReplayRow {
            label: r.scenario.label.clone(),
            trace: r.scenario.link.id(),
            scheme,
            result: m,
        });
    }
    Ok(rows)
}

/// Write the per-cell time-series artifacts for every result that
/// carries one (the `--timeseries` flag): `<matrix>_<id>_delay.tsv`
/// (per-delivery delay vs. time) and `<matrix>_<id>_series.tsv` (binned
/// capacity/throughput/queue-depth), deterministic byte for byte, next
/// to the matrix's sweep JSON. Returns the number of cells rendered.
pub fn write_cell_series(
    cfg: &ExperimentConfig,
    results: &[SweepResult],
) -> std::io::Result<usize> {
    let mut written = 0;
    for r in results {
        let Some(series) = &r.cell_series else {
            continue;
        };
        let stem = format!("{}_{:03}", r.matrix, r.scenario.id);

        let mut f = cfg.tsv(&format!("{stem}_delay.tsv"))?;
        writeln!(f, "# {}", r.scenario.label)?;
        writeln!(f, "t_s\tdelay_ms")?;
        for &(t_s, delay_ms) in &series.delays {
            writeln!(f, "{t_s:.6}\t{delay_ms:.3}")?;
        }

        let mut f = cfg.tsv(&format!("{stem}_series.tsv"))?;
        writeln!(f, "# {}", r.scenario.label)?;
        writeln!(f, "t_s\tcapacity_kbps\tthroughput_kbps\tqueue_depth")?;
        for b in &series.bins {
            writeln!(
                f,
                "{:.3}\t{:.3}\t{:.3}\t{}",
                b.t_s, b.capacity_kbps, b.throughput_kbps, b.queue_depth
            )?;
        }
        written += 1;
    }
    Ok(written)
}

// -------------------------------------------------------------- helpers

/// The matrices one `reproduce` experiment runs (fig8 derives from the
/// fig7 sweep; `all` is every distinct matrix). Shard workers iterate
/// this to execute their slice of each matrix without rendering figures.
pub fn matrices_for(cfg: &ExperimentConfig, experiment: &str) -> Vec<ScenarioMatrix> {
    match experiment {
        "fig1" => vec![fig1_matrix(cfg)],
        "fig2" => vec![fig2_matrix(cfg)],
        "fig7" | "fig8" => vec![fig7_matrix(cfg)],
        "fig9" => vec![fig9_matrix(cfg)],
        "loss" => vec![loss_matrix(cfg)],
        "tunnel" => vec![tunnel_matrix(cfg)],
        "contention" => vec![contention_matrix(cfg)],
        "soak" => vec![soak_matrix(cfg)],
        "impair" => vec![impair_matrix(cfg)],
        "serve" => vec![serve_matrix(cfg)],
        "replay" => vec![replay_matrix(cfg)],
        // "all" deliberately excludes soak (sized for sharded, resumable
        // execution, not a single sitting) and
        // contention/impair/serve/replay (their matrices are
        // CLI-parameterized — axis flags would silently change what
        // "all" means).
        "all" => vec![
            fig1_matrix(cfg),
            fig2_matrix(cfg),
            fig7_matrix(cfg),
            fig9_matrix(cfg),
            loss_matrix(cfg),
            tunnel_matrix(cfg),
        ],
        other => panic!("unknown experiment {other:?}"),
    }
}

/// Render a `SchemeResult` row for console output.
pub fn fmt_result(name: &str, r: &SchemeResult) -> String {
    format!(
        "{name:16} {:>8.0} kbps  p95 {:>9.0} ms  self-inflicted {:>9.0} ms  util {:>5.2}",
        r.throughput_kbps, r.p95_delay_ms, r.self_inflicted_ms, r.utilization
    )
}

/// Ensure the output directory exists (used by the binary).
pub fn ensure_out_dir(path: &Path) -> std::io::Result<()> {
    fs::create_dir_all(path)
}
