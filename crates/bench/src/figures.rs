//! Regeneration of every table and figure in the paper's evaluation
//! (§5). Each function runs the relevant experiment in virtual time,
//! writes machine-readable TSV into the output directory, and returns a
//! structured summary for display.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use sprout_baselines::{AppProfile, Cubic, TcpReceiver, TcpSender, VideoAppReceiver, VideoAppSender};
use sprout_core::{SproutConfig, SproutEndpoint};
use sprout_sim::{Endpoint, FlowId, MuxEndpoint, PathConfig, Simulation};
use sprout_trace::{
    Duration, InterarrivalHistogram, NetProfile, Timestamp, Trace,
};
use sprout_tunnel::{TunnelEndpoint, TunnelHost};

use crate::schemes::{run_scheme, RunConfig, Scheme, SchemeResult};

/// Global experiment knobs (trace length, warm-up, seed, output dir).
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Virtual seconds per run (the paper's traces are ~17 min; 300 s
    /// keeps the full sweep tractable while well past convergence).
    pub run_secs: u64,
    /// Warm-up skipped before measurement (§5.1: one minute).
    pub warmup_secs: u64,
    /// Master seed for trace synthesis.
    pub seed: u64,
    /// Output directory for TSV artifacts.
    pub out_dir: PathBuf,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            run_secs: 300,
            warmup_secs: 60,
            seed: 20130401, // NSDI 2013
            out_dir: PathBuf::from("results"),
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for smoke tests and criterion benches.
    pub fn quick() -> Self {
        ExperimentConfig {
            run_secs: 90,
            warmup_secs: 20,
            ..Default::default()
        }
    }

    fn duration(&self) -> Duration {
        Duration::from_secs(self.run_secs)
    }

    fn warmup(&self) -> Duration {
        Duration::from_secs(self.warmup_secs)
    }

    /// The synthetic stand-in for one measured link (deterministic in the
    /// master seed).
    pub fn trace_for(&self, profile: NetProfile) -> Trace {
        profile.generate(self.duration(), self.seed)
    }

    /// Data/feedback trace pair for a link under test: the feedback path
    /// is the same network's other direction.
    pub fn run_config(&self, profile: NetProfile) -> RunConfig {
        let data = self.trace_for(profile);
        let feedback = self.trace_for(paired(profile));
        RunConfig {
            duration: self.duration(),
            warmup: self.warmup(),
            ..RunConfig::new(data, feedback)
        }
    }

    fn tsv(&self, name: &str) -> std::io::Result<fs::File> {
        fs::create_dir_all(&self.out_dir)?;
        fs::File::create(self.out_dir.join(name))
    }
}

/// The opposite direction of the same network.
pub fn paired(profile: NetProfile) -> NetProfile {
    match profile {
        NetProfile::VerizonLteDown => NetProfile::VerizonLteUp,
        NetProfile::VerizonLteUp => NetProfile::VerizonLteDown,
        NetProfile::Verizon3gDown => NetProfile::Verizon3gUp,
        NetProfile::Verizon3gUp => NetProfile::Verizon3gDown,
        NetProfile::AttLteDown => NetProfile::AttLteUp,
        NetProfile::AttLteUp => NetProfile::AttLteDown,
        NetProfile::TmobileUmtsDown => NetProfile::TmobileUmtsUp,
        NetProfile::TmobileUmtsUp => NetProfile::TmobileUmtsDown,
    }
}

// ---------------------------------------------------------------- fig 1

/// Figure 1: Skype vs Sprout time series on the Verizon LTE downlink.
pub struct Fig1Result {
    /// (time s, capacity kbps, skype kbps, sprout kbps) per 500 ms bin.
    pub throughput_rows: Vec<(f64, f64, f64, f64)>,
    /// Worst per-arrival delay per 500 ms bin: (time s, skype ms, sprout ms).
    pub delay_rows: Vec<(f64, f64, f64)>,
}

/// Run Figure 1.
pub fn fig1(cfg: &ExperimentConfig) -> std::io::Result<Fig1Result> {
    let bin = Duration::from_millis(500);
    let run = |scheme: Scheme| {
        let rc = cfg.run_config(NetProfile::VerizonLteDown);
        let (a, b) = crate::schemes::build_endpoints(scheme, &rc);
        let mut sim = Simulation::new(
            a,
            b,
            PathConfig::standard(rc.data_trace.clone()),
            PathConfig::standard(rc.feedback_trace.clone()),
        );
        let end = Timestamp::ZERO + rc.duration;
        sim.run_until(end);
        let from = Timestamp::ZERO + rc.warmup;
        let tput = sim.ab_metrics().throughput_series_kbps(bin, from, end);
        // Per-bin worst arrival delay.
        let mut delays: BTreeMap<u64, f64> = BTreeMap::new();
        for (at, d) in sim.ab_metrics().delay_series() {
            if at < from {
                continue;
            }
            let key = (at.as_micros() - from.as_micros()) / bin.as_micros();
            let ms = d.as_micros() as f64 / 1e3;
            let e = delays.entry(key).or_insert(0.0);
            if ms > *e {
                *e = ms;
            }
        }
        (tput, delays, rc.data_trace)
    };
    let (skype_tput, skype_delay, trace) = run(Scheme::Skype);
    let (sprout_tput, sprout_delay, _) = run(Scheme::Sprout);
    let from = Timestamp::ZERO + cfg.warmup();
    let capacity: Vec<f64> = trace
        .window(from, Timestamp::ZERO + cfg.duration())
        .capacity_series_kbps(bin);

    let mut throughput_rows = Vec::new();
    let mut delay_rows = Vec::new();
    for i in 0..skype_tput.len().min(sprout_tput.len()).min(capacity.len()) {
        let t = i as f64 * 0.5;
        throughput_rows.push((t, capacity[i], skype_tput[i].1, sprout_tput[i].1));
        delay_rows.push((
            t,
            skype_delay.get(&(i as u64)).copied().unwrap_or(0.0),
            sprout_delay.get(&(i as u64)).copied().unwrap_or(0.0),
        ));
    }
    let mut f = cfg.tsv("fig1_timeseries.tsv")?;
    writeln!(f, "time_s\tcapacity_kbps\tskype_kbps\tsprout_kbps\tskype_delay_ms\tsprout_delay_ms")?;
    for (i, row) in throughput_rows.iter().enumerate() {
        writeln!(
            f,
            "{:.1}\t{:.0}\t{:.0}\t{:.0}\t{:.0}\t{:.0}",
            row.0, row.1, row.2, row.3, delay_rows[i].1, delay_rows[i].2
        )?;
    }
    Ok(Fig1Result {
        throughput_rows,
        delay_rows,
    })
}

// ---------------------------------------------------------------- fig 2

/// Figure 2: interarrival distribution of a saturated downlink.
pub struct Fig2Result {
    /// Fraction of interarrivals within 20 ms (paper: 99.99%).
    pub fraction_within_20ms: f64,
    /// Power-law slope of the 20 ms–5 s tail (paper: −3.27).
    pub tail_slope: Option<f64>,
    /// Total interarrivals measured.
    pub samples: u64,
}

/// Run Figure 2 on a long saturated Verizon LTE downlink.
pub fn fig2(cfg: &ExperimentConfig) -> std::io::Result<Fig2Result> {
    // The paper's sample is 1.2 M packets; at ~420 packets/s that is
    // ~48 min of saturation. Scale with run_secs but keep ≥ 10 min.
    let secs = (cfg.run_secs * 10).max(600);
    let trace = NetProfile::VerizonLteDown.generate(Duration::from_secs(secs), cfg.seed ^ 0xf16);
    let hist = InterarrivalHistogram::from_trace(&trace, 10, 10_000.0);
    let mut f = cfg.tsv("fig2_interarrival.tsv")?;
    writeln!(f, "bin_start_ms\tbin_end_ms\tpercent")?;
    for (lo, hi, pct) in hist.rows() {
        if pct > 0.0 {
            writeln!(f, "{lo:.3}\t{hi:.3}\t{pct:.6}")?;
        }
    }
    Ok(Fig2Result {
        fraction_within_20ms: hist.fraction_within_ms(20.0),
        tail_slope: hist.tail_power_law_slope(20.0, 5_000.0),
        samples: hist.total(),
    })
}

// ---------------------------------------------------------------- fig 7

/// All Figure 7 cells (plus Cubic-CoDel for the intro tables / Fig. 8).
pub struct Fig7Results {
    /// (link, scheme, result) for every cell.
    pub cells: Vec<(NetProfile, Scheme, SchemeResult)>,
}

impl Fig7Results {
    /// The result of one cell.
    pub fn get(&self, link: NetProfile, scheme: Scheme) -> Option<&SchemeResult> {
        self.cells
            .iter()
            .find(|(l, s, _)| *l == link && *s == scheme)
            .map(|(_, _, r)| r)
    }

    /// Mean over all links of a per-cell metric for one scheme.
    pub fn mean_over_links(&self, scheme: Scheme, f: impl Fn(&SchemeResult) -> f64) -> f64 {
        let vals: Vec<f64> = self
            .cells
            .iter()
            .filter(|(_, s, _)| *s == scheme)
            .map(|(_, _, r)| f(r))
            .filter(|v| v.is_finite())
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }
}

/// Run the full Figure 7 sweep: every scheme on every link direction.
pub fn fig7(cfg: &ExperimentConfig) -> std::io::Result<Fig7Results> {
    let mut schemes = Scheme::fig7().to_vec();
    schemes.push(Scheme::CubicCodel); // intro table & Fig. 8 need it
    let mut cells = Vec::new();
    let mut f = cfg.tsv("fig7_comparative.tsv")?;
    writeln!(
        f,
        "link\tscheme\tthroughput_kbps\tp95_delay_ms\tself_inflicted_ms\tomniscient_ms\tutilization"
    )?;
    for link in NetProfile::all() {
        let rc = cfg.run_config(link);
        for &scheme in &schemes {
            let r = run_scheme(scheme, &rc);
            writeln!(
                f,
                "{}\t{}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.4}",
                link.id(),
                scheme.name(),
                r.throughput_kbps,
                r.p95_delay_ms,
                r.self_inflicted_ms,
                r.omniscient_ms,
                r.utilization
            )?;
            cells.push((link, scheme, r));
        }
    }
    Ok(Fig7Results { cells })
}

/// One row of the intro comparison tables.
pub struct SummaryRow {
    /// Scheme being compared against the reference.
    pub scheme: Scheme,
    /// Mean over links of (reference throughput / scheme throughput).
    pub avg_speedup: f64,
    /// (scheme mean self-inflicted delay) / (reference mean delay).
    pub delay_reduction: f64,
    /// Scheme mean self-inflicted delay, seconds.
    pub avg_delay_s: f64,
}

/// Intro table 1 (reference = Sprout) or table 2 (reference =
/// Sprout-EWMA), §1.
pub fn summary_table(results: &Fig7Results, reference: Scheme, rows: &[Scheme]) -> Vec<SummaryRow> {
    let ref_delay = results.mean_over_links(reference, |r| r.self_inflicted_ms) / 1e3;
    rows.iter()
        .map(|&scheme| {
            // Mean of per-link speedups (ratio of throughputs per link).
            let mut ratios = Vec::new();
            for link in NetProfile::all() {
                if let (Some(a), Some(b)) = (
                    results.get(link, reference),
                    results.get(link, scheme),
                ) {
                    if b.throughput_kbps > 0.0 {
                        ratios.push(a.throughput_kbps / b.throughput_kbps);
                    }
                }
            }
            let avg_speedup = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
            let avg_delay_s = results.mean_over_links(scheme, |r| r.self_inflicted_ms) / 1e3;
            SummaryRow {
                scheme,
                avg_speedup,
                delay_reduction: avg_delay_s / ref_delay.max(1e-9),
                avg_delay_s,
            }
        })
        .collect()
}

/// Write an intro summary table as TSV.
pub fn write_summary(
    cfg: &ExperimentConfig,
    name: &str,
    rows: &[SummaryRow],
) -> std::io::Result<()> {
    let mut f = cfg.tsv(name)?;
    writeln!(f, "scheme\tavg_speedup_vs_ref\tdelay_reduction\tavg_delay_s")?;
    for r in rows {
        writeln!(
            f,
            "{}\t{:.2}\t{:.2}\t{:.2}",
            r.scheme.name(),
            r.avg_speedup,
            r.delay_reduction,
            r.avg_delay_s
        )?;
    }
    Ok(())
}

// ---------------------------------------------------------------- fig 8

/// Figure 8: average utilization vs average self-inflicted delay.
pub struct Fig8Row {
    /// Scheme.
    pub scheme: Scheme,
    /// Mean utilization across the eight links, percent.
    pub avg_utilization_pct: f64,
    /// Mean self-inflicted delay across links, ms.
    pub avg_delay_ms: f64,
}

/// Derive Figure 8 from the Figure 7 sweep.
pub fn fig8(cfg: &ExperimentConfig, results: &Fig7Results) -> std::io::Result<Vec<Fig8Row>> {
    let schemes = [
        Scheme::Sprout,
        Scheme::SproutEwma,
        Scheme::Cubic,
        Scheme::CubicCodel,
    ];
    let rows: Vec<Fig8Row> = schemes
        .iter()
        .map(|&s| Fig8Row {
            scheme: s,
            avg_utilization_pct: results.mean_over_links(s, |r| r.utilization) * 100.0,
            avg_delay_ms: results.mean_over_links(s, |r| r.self_inflicted_ms),
        })
        .collect();
    let mut f = cfg.tsv("fig8_utilization.tsv")?;
    writeln!(f, "scheme\tavg_utilization_pct\tavg_self_inflicted_ms")?;
    for r in &rows {
        writeln!(
            f,
            "{}\t{:.1}\t{:.0}",
            r.scheme.name(),
            r.avg_utilization_pct,
            r.avg_delay_ms
        )?;
    }
    Ok(rows)
}

// ---------------------------------------------------------------- fig 9

/// Figure 9: the confidence-parameter sweep on the T-Mobile 3G uplink.
pub struct Fig9Row {
    /// Forecast confidence percent (95 = paper default).
    pub confidence: f64,
    /// Result at that confidence.
    pub result: SchemeResult,
}

/// Run Figure 9.
pub fn fig9(cfg: &ExperimentConfig) -> std::io::Result<Vec<Fig9Row>> {
    let mut rows = Vec::new();
    let mut f = cfg.tsv("fig9_confidence.tsv")?;
    writeln!(f, "confidence_pct\tthroughput_kbps\tself_inflicted_ms")?;
    for confidence in [95.0, 75.0, 50.0, 25.0, 5.0] {
        let mut rc = cfg.run_config(NetProfile::TmobileUmtsUp);
        rc.sprout = SproutConfig::with_confidence_percent(confidence);
        let result = run_scheme(Scheme::Sprout, &rc);
        writeln!(
            f,
            "{confidence:.0}\t{:.1}\t{:.1}",
            result.throughput_kbps, result.self_inflicted_ms
        )?;
        rows.push(Fig9Row { confidence, result });
    }
    Ok(rows)
}

// ----------------------------------------------------------- §5.6 loss

/// One row of the §5.6 loss-resilience table.
pub struct LossRow {
    /// Link under test.
    pub link: NetProfile,
    /// Bernoulli per-direction loss probability.
    pub loss_rate: f64,
    /// Result.
    pub result: SchemeResult,
}

/// Run the §5.6 loss table (Verizon LTE, both directions, 0/5/10%).
pub fn loss_table(cfg: &ExperimentConfig) -> std::io::Result<Vec<LossRow>> {
    let mut rows = Vec::new();
    let mut f = cfg.tsv("loss_resilience.tsv")?;
    writeln!(f, "link\tloss_pct\tthroughput_kbps\tself_inflicted_ms")?;
    for link in [NetProfile::VerizonLteDown, NetProfile::VerizonLteUp] {
        for loss in [0.0, 0.05, 0.10] {
            let mut rc = cfg.run_config(link);
            rc.loss_rate = loss;
            let result = run_scheme(Scheme::Sprout, &rc);
            writeln!(
                f,
                "{}\t{:.0}\t{:.1}\t{:.1}",
                link.id(),
                loss * 100.0,
                result.throughput_kbps,
                result.self_inflicted_ms
            )?;
            rows.push(LossRow {
                link,
                loss_rate: loss,
                result,
            });
        }
    }
    Ok(rows)
}

// ---------------------------------------------------------- §5.7 tunnel

/// §5.7: Cubic bulk + Skype, direct vs through SproutTunnel.
pub struct TunnelComparison {
    /// Cubic throughput, direct, kbps.
    pub cubic_direct_kbps: f64,
    /// Cubic throughput through the tunnel, kbps.
    pub cubic_tunnel_kbps: f64,
    /// Skype throughput, direct, kbps.
    pub skype_direct_kbps: f64,
    /// Skype throughput through the tunnel, kbps.
    pub skype_tunnel_kbps: f64,
    /// Skype 95% end-to-end delay, direct, s.
    pub skype_direct_delay_s: f64,
    /// Skype 95% end-to-end delay through the tunnel, s.
    pub skype_tunnel_delay_s: f64,
}

const CUBIC_FLOW: FlowId = FlowId(1);
const SKYPE_FLOW: FlowId = FlowId(2);

fn make_clients_a() -> Vec<(FlowId, Box<dyn Endpoint>)> {
    vec![
        (
            CUBIC_FLOW,
            Box::new(TcpSender::new(Box::new(Cubic::new()))) as Box<dyn Endpoint>,
        ),
        (
            SKYPE_FLOW,
            Box::new(VideoAppSender::new(AppProfile::skype())) as Box<dyn Endpoint>,
        ),
    ]
}

fn make_clients_b() -> Vec<(FlowId, Box<dyn Endpoint>)> {
    vec![
        (
            CUBIC_FLOW,
            Box::new(TcpReceiver::new()) as Box<dyn Endpoint>,
        ),
        (
            SKYPE_FLOW,
            Box::new(VideoAppReceiver::new()) as Box<dyn Endpoint>,
        ),
    ]
}

/// Run the §5.7 comparison on the Verizon LTE downlink.
pub fn tunnel_comparison(cfg: &ExperimentConfig) -> std::io::Result<TunnelComparison> {
    let rc = cfg.run_config(NetProfile::VerizonLteDown);
    let from = Timestamp::ZERO + rc.warmup;
    let end = Timestamp::ZERO + rc.duration;

    // --- direct: both flows share the cellular queue ---
    let (cubic_direct_kbps, skype_direct_kbps, skype_direct_delay_s) = {
        let mut a = MuxEndpoint::new();
        for (flow, ep) in make_clients_a() {
            a.add(flow, ep);
        }
        let mut b = MuxEndpoint::new();
        for (flow, ep) in make_clients_b() {
            b.add(flow, ep);
        }
        let mut sim = Simulation::new(
            a,
            b,
            PathConfig::standard(rc.data_trace.clone()),
            PathConfig::standard(rc.feedback_trace.clone()),
        );
        sim.run_until(end);
        let m = sim.ab_metrics();
        (
            m.flow_throughput_kbps(CUBIC_FLOW, from, end),
            m.flow_throughput_kbps(SKYPE_FLOW, from, end),
            m.flow_p95_delay(SKYPE_FLOW, from, end)
                .map(|d| d.as_secs_f64())
                .unwrap_or(f64::NAN),
        )
    };

    // --- tunneled: flows isolated inside a Sprout session ---
    let (cubic_tunnel_kbps, skype_tunnel_kbps, skype_tunnel_delay_s) = {
        let mut host_a = TunnelHost::new(TunnelEndpoint::new(SproutEndpoint::new(
            rc.sprout.clone(),
        )));
        for (flow, ep) in make_clients_a() {
            host_a.add_client(flow, ep);
        }
        let mut host_b = TunnelHost::new(TunnelEndpoint::new(SproutEndpoint::new(
            rc.sprout.clone(),
        )));
        for (flow, ep) in make_clients_b() {
            host_b.add_client(flow, ep);
        }
        let mut sim = Simulation::new(
            host_a,
            host_b,
            PathConfig::standard(rc.data_trace.clone()),
            PathConfig::standard(rc.feedback_trace.clone()),
        );
        sim.run_until(end);
        let m = sim.b.deliveries();
        (
            m.flow_throughput_kbps(CUBIC_FLOW, from, end),
            m.flow_throughput_kbps(SKYPE_FLOW, from, end),
            m.flow_p95_delay(SKYPE_FLOW, from, end)
                .map(|d| d.as_secs_f64())
                .unwrap_or(f64::NAN),
        )
    };

    let result = TunnelComparison {
        cubic_direct_kbps,
        cubic_tunnel_kbps,
        skype_direct_kbps,
        skype_tunnel_kbps,
        skype_direct_delay_s,
        skype_tunnel_delay_s,
    };
    let mut f = cfg.tsv("tunnel_isolation.tsv")?;
    writeln!(f, "metric\tdirect\tvia_sprout")?;
    writeln!(
        f,
        "cubic_throughput_kbps\t{:.0}\t{:.0}",
        result.cubic_direct_kbps, result.cubic_tunnel_kbps
    )?;
    writeln!(
        f,
        "skype_throughput_kbps\t{:.0}\t{:.0}",
        result.skype_direct_kbps, result.skype_tunnel_kbps
    )?;
    writeln!(
        f,
        "skype_p95_delay_s\t{:.2}\t{:.2}",
        result.skype_direct_delay_s, result.skype_tunnel_delay_s
    )?;
    Ok(result)
}

// -------------------------------------------------------------- helpers

/// Render a `SchemeResult` row for console output.
pub fn fmt_result(name: &str, r: &SchemeResult) -> String {
    format!(
        "{name:16} {:>8.0} kbps  p95 {:>9.0} ms  self-inflicted {:>9.0} ms  util {:>5.2}",
        r.throughput_kbps, r.p95_delay_ms, r.self_inflicted_ms, r.utilization
    )
}

/// Ensure the output directory exists (used by the binary).
pub fn ensure_out_dir(path: &Path) -> std::io::Result<()> {
    fs::create_dir_all(path)
}
