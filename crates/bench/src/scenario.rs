//! Declarative experiment cells.
//!
//! The paper's evaluation (§5) is a cross-product: schemes × link
//! directions × queue disciplines × loss rates × forecast-confidence
//! settings. A [`Scenario`] names one cell of that product as plain data —
//! no endpoints, no traces, nothing stateful — so cells can be enumerated,
//! hashed, serialized, and shipped to worker threads. A
//! [`ScenarioMatrix`] is the declared cross-product of one experiment
//! (one per figure/table), built through [`MatrixBuilder`].
//!
//! Identity and determinism: every scenario carries a stable `id` (its
//! position in the matrix declaration order). The sweep engine
//! (`crate::sweep`) derives all per-cell randomness from
//! `(master_seed, id)` via [`sprout_trace::derive_seed`], so a matrix
//! replays bit-identically regardless of thread count or execution order.

use sprout_trace::{Duration, NetProfile};

use crate::schemes::Scheme;

/// The opposite direction of the same network: the feedback path of every
/// cell is the link's paired reverse direction.
pub fn paired(profile: NetProfile) -> NetProfile {
    match profile {
        NetProfile::VerizonLteDown => NetProfile::VerizonLteUp,
        NetProfile::VerizonLteUp => NetProfile::VerizonLteDown,
        NetProfile::Verizon3gDown => NetProfile::Verizon3gUp,
        NetProfile::Verizon3gUp => NetProfile::Verizon3gDown,
        NetProfile::AttLteDown => NetProfile::AttLteUp,
        NetProfile::AttLteUp => NetProfile::AttLteDown,
        NetProfile::TmobileUmtsDown => NetProfile::TmobileUmtsUp,
        NetProfile::TmobileUmtsUp => NetProfile::TmobileUmtsDown,
    }
}

/// What runs inside a cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Workload {
    /// One scheme saturating the link under test (Figure 7 style).
    Scheme(Scheme),
    /// Cubic bulk + Skype commingled in the carrier queue (§5.7 "direct").
    MuxDirect,
    /// Cubic bulk + Skype isolated inside a SproutTunnel session (§5.7).
    MuxTunneled,
    /// No endpoints: synthesize a saturated trace and analyse its
    /// interarrival distribution (Figure 2).
    InterarrivalProbe,
}

impl Workload {
    /// Machine-friendly identifier (labels, JSON rows).
    pub fn id(self) -> &'static str {
        match self {
            Workload::Scheme(_) => "scheme",
            Workload::MuxDirect => "mux-direct",
            Workload::MuxTunneled => "mux-tunneled",
            Workload::InterarrivalProbe => "interarrival-probe",
        }
    }

    /// The scheme, when the workload is a scheme cell.
    pub fn scheme(self) -> Option<Scheme> {
        match self {
            Workload::Scheme(s) => Some(s),
            _ => None,
        }
    }
}

/// Bottleneck queue discipline of a cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueSpec {
    /// Let the scheme decide: CoDel iff [`Scheme::needs_codel`] (the
    /// paper runs Cubic-CoDel behind CoDel, everything else behind the
    /// carrier's deep DropTail queue).
    #[default]
    Auto,
    /// Force unbounded DropTail.
    DropTail,
    /// Force CoDel at the bottleneck.
    CoDel,
}

impl QueueSpec {
    /// Machine-friendly identifier (canonical encodings).
    pub fn id(self) -> &'static str {
        match self {
            QueueSpec::Auto => "auto",
            QueueSpec::DropTail => "droptail",
            QueueSpec::CoDel => "codel",
        }
    }

    /// Resolve to a concrete discipline for `workload`.
    pub fn resolve(self, workload: Workload) -> ResolvedQueue {
        match self {
            QueueSpec::DropTail => ResolvedQueue::DropTail,
            QueueSpec::CoDel => ResolvedQueue::CoDel,
            QueueSpec::Auto => match workload.scheme() {
                Some(s) if s.needs_codel() => ResolvedQueue::CoDel,
                _ => ResolvedQueue::DropTail,
            },
        }
    }
}

/// A concrete queue discipline after [`QueueSpec::resolve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolvedQueue {
    /// Unbounded DropTail.
    DropTail,
    /// CoDel AQM.
    CoDel,
}

impl ResolvedQueue {
    /// Machine-friendly identifier.
    pub fn id(self) -> &'static str {
        match self {
            ResolvedQueue::DropTail => "droptail",
            ResolvedQueue::CoDel => "codel",
        }
    }
}

/// One cell of an experiment matrix: pure data describing what to run.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Stable identity: position in the matrix declaration order. All
    /// per-cell randomness derives from `(master_seed, id)`.
    pub id: u64,
    /// Human/machine-readable cell label, e.g.
    /// `fig7/vz-lte-down/cubic-codel`.
    pub label: String,
    /// What runs in the cell.
    pub workload: Workload,
    /// Link direction under test (the feedback path is the paired
    /// opposite direction of the same network).
    pub link: NetProfile,
    /// Bottleneck queue discipline.
    pub queue: QueueSpec,
    /// Bernoulli per-direction loss probability (§5.6).
    pub loss_rate: f64,
    /// Forecast confidence percent override (None = the paper's 95%).
    pub confidence_pct: Option<f64>,
    /// Virtual run time.
    pub duration: Duration,
    /// Warm-up skipped before measurement.
    pub warmup: Duration,
    /// When set, collect per-bin throughput/delay/capacity series at this
    /// bin width (Figure 1).
    pub series_bin: Option<Duration>,
}

impl Scenario {
    /// Append this cell's canonical encoding to `w`: every field, in
    /// declaration order, with floats as raw bits. This byte string is
    /// the cell's *identity* — the cell-result cache keys on it — so it
    /// must change whenever any field that can influence results changes.
    /// Extend it in lockstep when `Scenario` grows fields.
    pub fn canonical_bytes(&self, w: &mut sprout_cache::ByteWriter) {
        w.u64(self.id);
        w.str(&self.label);
        w.str(self.workload.id());
        w.str(self.workload.scheme().map(|s| s.name()).unwrap_or(""));
        w.str(self.link.id());
        w.str(self.queue.id());
        w.f64(self.loss_rate);
        w.bool(self.confidence_pct.is_some());
        w.f64(self.confidence_pct.unwrap_or(0.0));
        w.u64(self.duration.as_micros());
        w.u64(self.warmup.as_micros());
        w.bool(self.series_bin.is_some());
        w.u64(self.series_bin.map(|b| b.as_micros()).unwrap_or(0));
    }

    /// Stable 64-bit fingerprint of [`Self::canonical_bytes`].
    pub fn fingerprint(&self) -> u64 {
        let mut w = sprout_cache::ByteWriter::with_capacity(96);
        self.canonical_bytes(&mut w);
        sprout_cache::fingerprint64(&w.finish())
    }
}

/// A named, ordered set of scenarios — the declared form of one
/// experiment.
#[derive(Clone, Debug)]
pub struct ScenarioMatrix {
    name: String,
    cells: Vec<Scenario>,
}

impl ScenarioMatrix {
    /// Start declaring a matrix.
    pub fn builder(name: impl Into<String>) -> MatrixBuilder {
        MatrixBuilder::new(name)
    }

    /// Assemble a matrix from explicit cells (shard tooling and tests).
    /// Preserves the builder's invariant that `cells()[i].id == i`.
    pub fn from_cells(name: impl Into<String>, cells: Vec<Scenario>) -> Self {
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(
                cell.id, i as u64,
                "cell ids must equal their position in the matrix"
            );
        }
        ScenarioMatrix {
            name: name.into(),
            cells,
        }
    }

    /// The matrix name (figure/table identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stable fingerprint of the whole declaration: the name plus every
    /// cell's canonical encoding. Two matrices share a fingerprint only
    /// if they would run exactly the same sweep.
    pub fn fingerprint(&self) -> u64 {
        let mut w = sprout_cache::ByteWriter::with_capacity(64 + 96 * self.cells.len());
        w.str(&self.name);
        w.u64(self.cells.len() as u64);
        for cell in &self.cells {
            cell.canonical_bytes(&mut w);
        }
        sprout_cache::fingerprint64(&w.finish())
    }

    /// The cells, in declaration order (`cells()[i].id == i`).
    pub fn cells(&self) -> &[Scenario] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Builder for [`ScenarioMatrix`]: declare axes, take the cross-product.
///
/// Cell order — and therefore scenario identity — is the deterministic
/// nesting `workload × link × loss_rate × confidence`, each axis in its
/// declared order.
#[derive(Clone, Debug)]
pub struct MatrixBuilder {
    name: String,
    workloads: Vec<Workload>,
    links: Vec<NetProfile>,
    loss_rates: Vec<f64>,
    confidences: Vec<Option<f64>>,
    queue: QueueSpec,
    duration: Duration,
    warmup: Duration,
    series_bin: Option<Duration>,
}

impl MatrixBuilder {
    fn new(name: impl Into<String>) -> Self {
        MatrixBuilder {
            name: name.into(),
            workloads: Vec::new(),
            links: Vec::new(),
            loss_rates: vec![0.0],
            confidences: vec![None],
            queue: QueueSpec::Auto,
            duration: Duration::from_secs(300),
            warmup: Duration::from_secs(60),
            series_bin: None,
        }
    }

    /// Add scheme workloads.
    pub fn schemes(mut self, schemes: impl IntoIterator<Item = Scheme>) -> Self {
        self.workloads
            .extend(schemes.into_iter().map(Workload::Scheme));
        self
    }

    /// Add arbitrary workloads (mux/tunnel/probe cells).
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = Workload>) -> Self {
        self.workloads.extend(workloads);
        self
    }

    /// Set the link axis.
    pub fn links(mut self, links: impl IntoIterator<Item = NetProfile>) -> Self {
        self.links.extend(links);
        self
    }

    /// Set the loss-rate axis (replaces the default `[0.0]`).
    pub fn loss_rates(mut self, rates: impl IntoIterator<Item = f64>) -> Self {
        self.loss_rates = rates.into_iter().collect();
        assert!(!self.loss_rates.is_empty(), "loss axis must be non-empty");
        self
    }

    /// Set the forecast-confidence axis in percent (replaces the default
    /// "paper 95%").
    pub fn confidences_pct(mut self, pct: impl IntoIterator<Item = f64>) -> Self {
        self.confidences = pct.into_iter().map(Some).collect();
        assert!(
            !self.confidences.is_empty(),
            "confidence axis must be non-empty"
        );
        self
    }

    /// Force a queue discipline for every cell (default: per-scheme Auto).
    pub fn queue(mut self, queue: QueueSpec) -> Self {
        self.queue = queue;
        self
    }

    /// Set run and warm-up durations.
    pub fn timing(mut self, duration: Duration, warmup: Duration) -> Self {
        assert!(warmup < duration, "warmup must be shorter than the run");
        self.duration = duration;
        self.warmup = warmup;
        self
    }

    /// Collect per-bin time series at this bin width.
    pub fn series_bin(mut self, bin: Duration) -> Self {
        self.series_bin = Some(bin);
        self
    }

    /// Take the cross-product.
    pub fn build(self) -> ScenarioMatrix {
        assert!(
            !self.workloads.is_empty(),
            "matrix needs at least one workload"
        );
        assert!(!self.links.is_empty(), "matrix needs at least one link");
        let mut cells = Vec::with_capacity(
            self.workloads.len()
                * self.links.len()
                * self.loss_rates.len()
                * self.confidences.len(),
        );
        for &workload in &self.workloads {
            for &link in &self.links {
                for &loss_rate in &self.loss_rates {
                    for &confidence_pct in &self.confidences {
                        let id = cells.len() as u64;
                        let mut label =
                            format!("{}/{}/{}", self.name, link.id(), workload_tag(workload));
                        if self.loss_rates.len() > 1 {
                            label.push_str(&format!("/loss{:.0}", loss_rate * 100.0));
                        }
                        if let (Some(pct), true) = (confidence_pct, self.confidences.len() > 1) {
                            label.push_str(&format!("/conf{pct:.0}"));
                        }
                        cells.push(Scenario {
                            id,
                            label,
                            workload,
                            link,
                            queue: self.queue,
                            loss_rate,
                            confidence_pct,
                            duration: self.duration,
                            warmup: self.warmup,
                            series_bin: self.series_bin,
                        });
                    }
                }
            }
        }
        ScenarioMatrix {
            name: self.name,
            cells,
        }
    }
}

fn workload_tag(workload: Workload) -> String {
    match workload {
        Workload::Scheme(s) => s
            .name()
            .to_ascii_lowercase()
            .replace(' ', "-")
            .replace("tcp", "")
            .trim_matches('-')
            .to_string(),
        other => other.id().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_declaration_order() {
        let m = ScenarioMatrix::builder("t")
            .schemes([Scheme::Sprout, Scheme::Cubic])
            .links(NetProfile::all())
            .build();
        assert_eq!(m.len(), 16);
        for (i, cell) in m.cells().iter().enumerate() {
            assert_eq!(cell.id, i as u64);
        }
        // First axis varies slowest.
        assert_eq!(m.cells()[0].workload, Workload::Scheme(Scheme::Sprout));
        assert_eq!(m.cells()[8].workload, Workload::Scheme(Scheme::Cubic));
    }

    #[test]
    fn cross_product_covers_all_axes() {
        let m = ScenarioMatrix::builder("t")
            .schemes([Scheme::Sprout])
            .links([NetProfile::VerizonLteDown, NetProfile::VerizonLteUp])
            .loss_rates([0.0, 0.05, 0.10])
            .build();
        assert_eq!(m.len(), 6);
        let rates: Vec<f64> = m.cells().iter().map(|c| c.loss_rate).collect();
        assert_eq!(rates, vec![0.0, 0.05, 0.10, 0.0, 0.05, 0.10]);
    }

    #[test]
    fn auto_queue_follows_needs_codel() {
        for scheme in Scheme::fig7().into_iter().chain([Scheme::CubicCodel]) {
            let resolved = QueueSpec::Auto.resolve(Workload::Scheme(scheme));
            let expect = if scheme.needs_codel() {
                ResolvedQueue::CoDel
            } else {
                ResolvedQueue::DropTail
            };
            assert_eq!(resolved, expect, "{}", scheme.name());
        }
    }

    #[test]
    fn fingerprints_are_stable_and_distinguish_cells() {
        let m = ScenarioMatrix::builder("t")
            .schemes([Scheme::Sprout, Scheme::Cubic])
            .links([NetProfile::VerizonLteDown])
            .loss_rates([0.0, 0.05])
            .build();
        assert_eq!(m.fingerprint(), m.fingerprint());
        let mut prints: Vec<u64> = m.cells().iter().map(|c| c.fingerprint()).collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), m.len(), "cell fingerprints must not collide");

        // Any field change moves the fingerprint.
        let mut cell = m.cells()[0].clone();
        let base = cell.fingerprint();
        cell.loss_rate = 0.07;
        assert_ne!(cell.fingerprint(), base);
        cell.loss_rate = m.cells()[0].loss_rate;
        cell.confidence_pct = Some(0.0);
        assert_ne!(
            cell.fingerprint(),
            base,
            "Some(0.0) must differ from None despite the 0.0 sentinel"
        );

        // A different matrix declaration has a different fingerprint.
        let other = ScenarioMatrix::builder("t")
            .schemes([Scheme::Sprout, Scheme::Cubic])
            .links([NetProfile::VerizonLteDown])
            .loss_rates([0.0, 0.06])
            .build();
        assert_ne!(m.fingerprint(), other.fingerprint());
    }

    #[test]
    fn from_cells_preserves_position_ids() {
        let m = ScenarioMatrix::builder("t")
            .schemes([Scheme::Sprout])
            .links([NetProfile::VerizonLteDown, NetProfile::VerizonLteUp])
            .build();
        let rebuilt = ScenarioMatrix::from_cells("t", m.cells().to_vec());
        assert_eq!(rebuilt.fingerprint(), m.fingerprint());
    }

    #[test]
    #[should_panic(expected = "cell ids must equal their position")]
    fn from_cells_rejects_misnumbered_cells() {
        let m = ScenarioMatrix::builder("t")
            .schemes([Scheme::Sprout])
            .links([NetProfile::VerizonLteDown, NetProfile::VerizonLteUp])
            .build();
        let mut cells = m.cells().to_vec();
        cells.swap(0, 1);
        ScenarioMatrix::from_cells("t", cells);
    }

    #[test]
    fn labels_are_unique_within_a_matrix() {
        let m = ScenarioMatrix::builder("fig7")
            .schemes(Scheme::fig7())
            .links(NetProfile::all())
            .loss_rates([0.0, 0.05])
            .build();
        let mut labels: Vec<&str> = m.cells().iter().map(|c| c.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), m.len());
    }
}
