//! Declarative experiment cells.
//!
//! The paper's evaluation (§5) is a cross-product: schemes × link
//! directions × queue disciplines × loss rates × forecast-confidence
//! settings. A [`Scenario`] names one cell of that product as plain data —
//! no endpoints, no traces, nothing stateful — so cells can be enumerated,
//! hashed, serialized, and shipped to worker threads. A
//! [`ScenarioMatrix`] is the declared cross-product of one experiment
//! (one per figure/table), built through [`MatrixBuilder`].
//!
//! Identity and determinism: every scenario carries a stable `id` (its
//! position in the matrix declaration order). The sweep engine
//! (`crate::sweep`) derives all per-cell randomness from
//! `(master_seed, id)` via [`sprout_trace::derive_seed`], so a matrix
//! replays bit-identically regardless of thread count or execution order.

use sprout_baselines::VideoApp;
use sprout_trace::{Duration, Impairment, NetProfile};

use crate::schemes::Scheme;

/// The opposite direction of the same network: the feedback path of every
/// cell is the link's paired reverse direction. A measured capture has no
/// recorded reverse direction, so a measured cell replays the *same*
/// capture on the feedback path — a deliberate, documented substitute
/// (feedback traffic is tiny, so what matters is that the path is
/// deterministic and cellular-shaped, not its exact direction).
pub fn paired(link: LinkSpec) -> LinkSpec {
    match link {
        LinkSpec::Profile(profile) => LinkSpec::Profile(paired_profile(profile)),
        measured @ LinkSpec::Measured { .. } => measured,
    }
}

/// The synthetic other direction of one network ([`paired`] for the
/// profile-only callers that build standalone `RunConfig`s).
pub fn paired_profile(profile: NetProfile) -> NetProfile {
    match profile {
        NetProfile::VerizonLteDown => NetProfile::VerizonLteUp,
        NetProfile::VerizonLteUp => NetProfile::VerizonLteDown,
        NetProfile::Verizon3gDown => NetProfile::Verizon3gUp,
        NetProfile::Verizon3gUp => NetProfile::Verizon3gDown,
        NetProfile::AttLteDown => NetProfile::AttLteUp,
        NetProfile::AttLteUp => NetProfile::AttLteDown,
        NetProfile::TmobileUmtsDown => NetProfile::TmobileUmtsUp,
        NetProfile::TmobileUmtsUp => NetProfile::TmobileUmtsDown,
    }
}

/// The link axis of a cell: either a synthesized [`NetProfile`] (the
/// paper's fitted link models) or a *measured* Saturator capture,
/// identified by the content fingerprint of its file bytes.
///
/// A measured link never carries a path: paths differ between machines
/// and shard workers, fingerprints do not. The capture itself lives in
/// the process-global [`sprout_trace::registry`], where every process
/// re-registers its `--trace` files; the scenario only names the bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkSpec {
    /// A synthesized link from the paper's fitted stochastic models.
    Profile(NetProfile),
    /// A measured Saturator capture, content-addressed by
    /// [`sprout_cache::fingerprint64`] over its raw file bytes.
    Measured {
        /// Fingerprint of the capture's file bytes.
        fingerprint: u64,
    },
}

impl LinkSpec {
    /// Machine-friendly identifier, used in labels, canonical encodings,
    /// and JSON rows. Profile links keep their historical ids
    /// (`vz-lte-down`, …); measured links render as `m<16-hex-digit
    /// fingerprint>` — derived from content, never from a path, so two
    /// copies of one capture produce identical labels and identical cell
    /// identities.
    pub fn id(&self) -> String {
        match self {
            LinkSpec::Profile(p) => p.id().to_string(),
            LinkSpec::Measured { fingerprint } => format!("m{fingerprint:016x}"),
        }
    }

    /// The synthesized profile, when this is a profile link.
    pub fn profile(&self) -> Option<NetProfile> {
        match self {
            LinkSpec::Profile(p) => Some(*p),
            LinkSpec::Measured { .. } => None,
        }
    }

    /// The capture fingerprint, when this is a measured link.
    pub fn measured_fingerprint(&self) -> Option<u64> {
        match self {
            LinkSpec::Profile(_) => None,
            LinkSpec::Measured { fingerprint } => Some(*fingerprint),
        }
    }
}

impl From<NetProfile> for LinkSpec {
    fn from(profile: NetProfile) -> Self {
        LinkSpec::Profile(profile)
    }
}

/// Most sessions one serve cell may declare: 4× the capacity sweep's top
/// point, a guard against a typo'd `--sessions` allocating millions of
/// endpoints in one cell.
pub const MAX_SERVE_SESSIONS: u32 = 4096;

/// Most flows one contention cell may declare. Generous for the
/// contention regime the literature sweeps (a handful of flows per user
/// queue), and a guard against accidentally declaring a thousand-endpoint
/// simulation in one cell.
pub const MAX_CONTENTION_FLOWS: usize = 16;

/// One contending flow of a [`Workload::Contention`] cell.
///
/// A flow is either a whole scheme — a bulk transport saturating its
/// share of the queue, or an open-loop app model — or a video app
/// isolated inside its own SproutTunnel session (§4.3) while the other
/// flows commingle around it. Per-flow metrics are attributed at the
/// bottleneck by [`sprout_sim::FlowId`], so a tunneled flow's numbers
/// describe its Sprout *wire* traffic (what the shared queue actually
/// carried for it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlowSpec {
    /// One endpoint pair of this scheme (any scheme except the
    /// omniscient reference, which presumes sole ownership of the link).
    Scheme(Scheme),
    /// A video app inside its own SproutTunnel session. `over` must be a
    /// tunneling carrier ([`Scheme::tunnels_apps`]); an app flow over
    /// anything else is just `FlowSpec::Scheme(app scheme)` next to an
    /// explicit bulk flow.
    App {
        /// The modeled application riding the tunnel.
        app: VideoApp,
        /// The tunneling transport (Sprout or Sprout-EWMA).
        over: Scheme,
    },
}

impl FlowSpec {
    /// The lowercase, hyphenated tag used in labels and canonical
    /// encodings, e.g. `cubic` or `skype-over-sprout`.
    pub fn tag(&self) -> String {
        match self {
            FlowSpec::Scheme(s) => s.tag(),
            FlowSpec::App { app, over } => format!("{}-over-{}", app.id(), over.tag()),
        }
    }

    /// Panic unless this spec is a valid contention flow (no omniscient
    /// flows; app flows must ride a tunneling carrier).
    fn validate(&self) {
        match self {
            FlowSpec::Scheme(s) => assert!(
                *s != Scheme::Omniscient,
                "the omniscient reference presumes sole ownership of the link; \
                 it cannot be a contention flow"
            ),
            FlowSpec::App { over, .. } => assert!(
                over.tunnels_apps(),
                "a contention app flow must ride a tunneling carrier \
                 (Sprout/Sprout-EWMA), got {}; declare a bare app flow as \
                 FlowSpec::Scheme instead",
                over.name()
            ),
        }
    }
}

/// What runs inside a cell.
#[derive(Clone, Debug, PartialEq)]
pub enum Workload {
    /// One scheme saturating the link under test (Figure 7 style).
    Scheme(Scheme),
    /// A video application carried over a transport scheme (the §5.2
    /// apps as first-class matrix citizens). Over Sprout/Sprout-EWMA the
    /// app rides inside a SproutTunnel session (§4.3); over any other
    /// transport the app's open-loop flow shares the carrier queue with
    /// a bulk flow of that scheme (§5.7 "direct", generalized).
    App {
        /// The modeled application.
        app: VideoApp,
        /// The transport carrying (or competing with) the app's flow.
        /// Must itself be a transport — not an app model, not the
        /// omniscient protocol.
        over: Scheme,
    },
    /// N ≥ 2 independent flows sharing one bottleneck link and queue —
    /// the multi-flow generalization of the §5.7 mux pair, the regime
    /// where a deep per-user buffer makes delay collapse under
    /// contention. Flow `i` of the spec list runs as
    /// `FlowId(i + 1)`, and the cell reports per-flow throughput/delay
    /// plus Jain's fairness index over the flow throughputs.
    Contention {
        /// The contending flows, in [`sprout_sim::FlowId`] order.
        flows: Vec<FlowSpec>,
    },
    /// N independent Sprout sessions served by *one* shared-event-loop
    /// server process — the capacity workload. Unlike
    /// [`Workload::Contention`], the sessions do not share a bottleneck:
    /// each gets its own pair of directed paths (same link profile, its
    /// own [`sprout_trace::session_seed`]-derived loss streams), and the
    /// server side multiplexes all of them over one
    /// [`sprout_core::SessionPool`] with a single shared forecast-table
    /// build. Session `i` runs as `FlowId(i + 1)`.
    Serve {
        /// Number of concurrent sessions (≥ 1).
        sessions: u32,
    },
    /// Cubic bulk + Skype commingled in the carrier queue (§5.7 "direct").
    MuxDirect,
    /// Cubic bulk + Skype isolated inside a SproutTunnel session (§5.7).
    MuxTunneled,
    /// No endpoints: synthesize a saturated trace and analyse its
    /// interarrival distribution (Figure 2).
    InterarrivalProbe,
}

impl Workload {
    /// Machine-friendly identifier (labels, JSON rows).
    pub fn id(&self) -> &'static str {
        match self {
            Workload::Scheme(_) => "scheme",
            Workload::App { .. } => "app",
            Workload::Contention { .. } => "contention",
            Workload::Serve { .. } => "serve",
            Workload::MuxDirect => "mux-direct",
            Workload::MuxTunneled => "mux-tunneled",
            Workload::InterarrivalProbe => "interarrival-probe",
        }
    }

    /// The scheme, when the workload is a scheme cell.
    pub fn scheme(&self) -> Option<Scheme> {
        match self {
            Workload::Scheme(s) => Some(*s),
            _ => None,
        }
    }

    /// The app and its carrier, when the workload is an app cell.
    pub fn app(&self) -> Option<(VideoApp, Scheme)> {
        match self {
            Workload::App { app, over } => Some((*app, *over)),
            _ => None,
        }
    }

    /// The contending flows, when the workload is a contention cell.
    pub fn contention_flows(&self) -> Option<&[FlowSpec]> {
        match self {
            Workload::Contention { flows } => Some(flows),
            _ => None,
        }
    }

    /// The session count, when the workload is a serve cell.
    pub fn serve_sessions(&self) -> Option<u32> {
        match self {
            Workload::Serve { sessions } => Some(*sessions),
            _ => None,
        }
    }

    /// The transport scheme whose queue preference governs
    /// [`QueueSpec::Auto`]: the scheme itself for scheme cells, the
    /// carrier for app cells. Contention cells have no single carrier —
    /// `Auto` resolves to the deep DropTail default, the shared per-user
    /// buffer the contention regime is about.
    pub fn carrier_scheme(&self) -> Option<Scheme> {
        match self {
            Workload::Scheme(s) => Some(*s),
            Workload::App { over, .. } => Some(*over),
            _ => None,
        }
    }

    /// The workload's contribution to a cell's canonical identity beyond
    /// the variant tag: the scheme name, `app+carrier` for app cells, or
    /// the `+`-joined flow tags (in flow order) for contention cells.
    pub fn canonical_detail(&self) -> String {
        match self {
            Workload::Scheme(s) => s.name().to_string(),
            Workload::App { app, over } => format!("{}+{}", app.id(), over.name()),
            Workload::Contention { flows } => flows
                .iter()
                .map(FlowSpec::tag)
                .collect::<Vec<_>>()
                .join("+"),
            Workload::Serve { sessions } => format!("n{sessions}"),
            _ => String::new(),
        }
    }
}

/// Bottleneck queue discipline of a cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum QueueSpec {
    /// Let the scheme decide: CoDel iff the carrier scheme's
    /// [`Scheme::needs_codel`] (the paper runs Cubic-CoDel behind CoDel,
    /// everything else behind the carrier's deep DropTail queue).
    #[default]
    Auto,
    /// Force the deep default DropTail
    /// ([`sprout_sim::DEEP_QUEUE_BYTES`] — explicit capacity, behaves as
    /// unbounded for every real scheme).
    DropTail,
    /// Force DropTail bounded at this byte capacity (the per-user
    /// buffer-depth axis: shallow caps emulate thin-buffered carriers,
    /// deep caps bufferbloat).
    DropTailBytes(u64),
    /// Force CoDel at the bottleneck.
    CoDel,
}

impl QueueSpec {
    /// Machine-friendly identifier (labels, canonical encodings).
    pub fn id(self) -> String {
        match self {
            QueueSpec::Auto => "auto".to_string(),
            QueueSpec::DropTail => "droptail".to_string(),
            QueueSpec::DropTailBytes(cap) => format!("droptail-{cap}b"),
            QueueSpec::CoDel => "codel".to_string(),
        }
    }

    /// Resolve to a concrete discipline for `workload`. `Auto` and
    /// `DropTail` both land on the *explicit* deep default capacity —
    /// never an unbounded queue — so the byte-cap path is the only
    /// DropTail path sweeps exercise.
    pub fn resolve(self, workload: &Workload) -> ResolvedQueue {
        match self {
            QueueSpec::DropTail => ResolvedQueue::DropTail,
            QueueSpec::DropTailBytes(cap) => ResolvedQueue::DropTailBytes(cap),
            QueueSpec::CoDel => ResolvedQueue::CoDel,
            QueueSpec::Auto => match workload.carrier_scheme() {
                Some(s) if s.needs_codel() => ResolvedQueue::CoDel,
                _ => ResolvedQueue::DropTail,
            },
        }
    }
}

/// A concrete queue discipline after [`QueueSpec::resolve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolvedQueue {
    /// The deep default DropTail: capacity
    /// [`sprout_sim::DEEP_QUEUE_BYTES`], indistinguishable from
    /// unbounded for real schemes but explicit and finite.
    DropTail,
    /// DropTail bounded at this byte capacity.
    DropTailBytes(u64),
    /// CoDel AQM.
    CoDel,
}

impl ResolvedQueue {
    /// Machine-friendly identifier.
    pub fn id(self) -> String {
        match self {
            ResolvedQueue::DropTail => "droptail".to_string(),
            ResolvedQueue::DropTailBytes(cap) => format!("droptail-{cap}b"),
            ResolvedQueue::CoDel => "codel".to_string(),
        }
    }
}

/// One cell of an experiment matrix: pure data describing what to run.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Stable identity: position in the matrix declaration order. All
    /// per-cell randomness derives from `(master_seed, id)`.
    pub id: u64,
    /// Human/machine-readable cell label, e.g.
    /// `fig7/vz-lte-down/cubic-codel`.
    pub label: String,
    /// What runs in the cell.
    pub workload: Workload,
    /// Link under test: a synthesized profile (the feedback path is the
    /// paired opposite direction of the same network) or a measured
    /// capture (replayed on both directions).
    pub link: LinkSpec,
    /// Bottleneck queue discipline.
    pub queue: QueueSpec,
    /// One-way propagation delay of each direction (the paper's
    /// standard condition is 20 ms each way; min-RTT = 2× this).
    pub prop_delay: Duration,
    /// Bernoulli per-direction loss probability (§5.6).
    pub loss_rate: f64,
    /// Forecast confidence percent override (None = the paper's 95%).
    pub confidence_pct: Option<f64>,
    /// Virtual run time.
    pub duration: Duration,
    /// Warm-up skipped before measurement.
    pub warmup: Duration,
    /// When set, collect per-bin throughput/delay/capacity series at this
    /// bin width (Figure 1).
    pub series_bin: Option<Duration>,
    /// Deterministic fault injection applied to both directions of the
    /// path ([`Impairment::none()`] for the classic clean-link cell).
    pub impairment: Impairment,
    /// When set, the cell additionally emits a **cell-series** artifact —
    /// per-delivery delay-vs-time plus per-bin capacity / throughput /
    /// queue-depth series at this bin width — persisted in the artifact
    /// cache next to the cell result (the `--timeseries` flag). Part of
    /// cell identity: a cached cell either has its series or was never
    /// asked for one.
    pub cell_series_bin: Option<Duration>,
}

impl Scenario {
    /// Append this cell's canonical encoding to `w`: every field, in
    /// declaration order, with floats as raw bits. This byte string is
    /// the cell's *identity* — the cell-result cache keys on it — so it
    /// must change whenever any field that can influence results changes.
    /// Extend it in lockstep when `Scenario` grows fields.
    pub fn canonical_bytes(&self, w: &mut sprout_cache::ByteWriter) {
        w.u64(self.id);
        w.str(&self.label);
        w.str(self.workload.id());
        w.str(&self.workload.canonical_detail());
        w.str(&self.link.id());
        w.str(&self.queue.id());
        w.u64(self.prop_delay.as_micros());
        w.f64(self.loss_rate);
        w.bool(self.confidence_pct.is_some());
        w.f64(self.confidence_pct.unwrap_or(0.0));
        w.u64(self.duration.as_micros());
        w.u64(self.warmup.as_micros());
        w.bool(self.series_bin.is_some());
        w.u64(self.series_bin.map(|b| b.as_micros()).unwrap_or(0));
        // Fault-injection components, each as presence flag + parameters
        // (zeros when absent, mirroring the confidence/series encodings).
        let imp = &self.impairment;
        w.bool(imp.burst_loss.is_some());
        w.f64(imp.burst_loss.map(|g| g.p_good_to_bad).unwrap_or(0.0));
        w.f64(imp.burst_loss.map(|g| g.p_bad_to_good).unwrap_or(0.0));
        w.f64(imp.burst_loss.map(|g| g.loss_good).unwrap_or(0.0));
        w.f64(imp.burst_loss.map(|g| g.loss_bad).unwrap_or(0.0));
        w.bool(imp.outage.is_some());
        w.u64(imp.outage.map(|o| o.duration.as_micros()).unwrap_or(0));
        w.u64(imp.outage.map(|o| o.spacing.as_micros()).unwrap_or(0));
        w.bool(imp.jitter.is_some());
        w.u64(imp.jitter.map(|j| j.max.as_micros()).unwrap_or(0));
        w.bool(imp.reorder.is_some());
        w.f64(imp.reorder.map(|r| r.probability).unwrap_or(0.0));
        w.u64(imp.reorder.map(|r| r.extra_delay.as_micros()).unwrap_or(0));
        // The cell-series request is a *conditional tail*: appended only
        // when present, so every pre-existing scenario keeps its exact
        // historical canonical bytes (the golden-fingerprint snapshot
        // regenerates strictly additively). Safe because the tail only
        // ever extends the encoding — a scenario with the tail is never
        // byte-equal to one without it.
        if let Some(bin) = self.cell_series_bin {
            w.bool(true);
            w.u64(bin.as_micros());
        }
    }

    /// Stable 64-bit fingerprint of [`Self::canonical_bytes`].
    pub fn fingerprint(&self) -> u64 {
        let mut w = sprout_cache::ByteWriter::with_capacity(96);
        self.canonical_bytes(&mut w);
        sprout_cache::fingerprint64(&w.finish())
    }
}

/// A named, ordered set of scenarios — the declared form of one
/// experiment.
#[derive(Clone, Debug)]
pub struct ScenarioMatrix {
    name: String,
    cells: Vec<Scenario>,
}

impl ScenarioMatrix {
    /// Start declaring a matrix.
    pub fn builder(name: impl Into<String>) -> MatrixBuilder {
        MatrixBuilder::new(name)
    }

    /// Assemble a matrix from explicit cells (shard tooling and tests).
    /// Preserves the builder's invariant that `cells()[i].id == i`.
    pub fn from_cells(name: impl Into<String>, cells: Vec<Scenario>) -> Self {
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(
                cell.id, i as u64,
                "cell ids must equal their position in the matrix"
            );
        }
        ScenarioMatrix {
            name: name.into(),
            cells,
        }
    }

    /// The matrix name (figure/table identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stable fingerprint of the whole declaration: the name plus every
    /// cell's canonical encoding. Two matrices share a fingerprint only
    /// if they would run exactly the same sweep.
    pub fn fingerprint(&self) -> u64 {
        let mut w = sprout_cache::ByteWriter::with_capacity(64 + 96 * self.cells.len());
        w.str(&self.name);
        w.u64(self.cells.len() as u64);
        for cell in &self.cells {
            cell.canonical_bytes(&mut w);
        }
        sprout_cache::fingerprint64(&w.finish())
    }

    /// The cells, in declaration order (`cells()[i].id == i`).
    pub fn cells(&self) -> &[Scenario] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Builder for [`ScenarioMatrix`]: declare axes, take the cross-product.
///
/// Cell order — and therefore scenario identity — is the deterministic
/// nesting `workload × link × queue × prop_delay × loss_rate ×
/// confidence × impairment`, each axis in its declared order.
/// Single-valued axes add no label component, so matrices that don't use
/// an axis keep their historical labels.
#[derive(Clone, Debug)]
pub struct MatrixBuilder {
    name: String,
    workloads: Vec<Workload>,
    links: Vec<LinkSpec>,
    queues: Vec<QueueSpec>,
    prop_delays: Vec<Duration>,
    loss_rates: Vec<f64>,
    confidences: Vec<Option<f64>>,
    impairments: Vec<Impairment>,
    duration: Duration,
    warmup: Duration,
    series_bin: Option<Duration>,
    cell_series_bin: Option<Duration>,
}

impl MatrixBuilder {
    fn new(name: impl Into<String>) -> Self {
        MatrixBuilder {
            name: name.into(),
            workloads: Vec::new(),
            links: Vec::new(),
            queues: vec![QueueSpec::Auto],
            prop_delays: vec![Duration::from_millis(20)],
            loss_rates: vec![0.0],
            confidences: vec![None],
            impairments: vec![Impairment::none()],
            duration: Duration::from_secs(300),
            warmup: Duration::from_secs(60),
            series_bin: None,
            cell_series_bin: None,
        }
    }

    /// Add scheme workloads.
    pub fn schemes(mut self, schemes: impl IntoIterator<Item = Scheme>) -> Self {
        self.workloads
            .extend(schemes.into_iter().map(Workload::Scheme));
        self
    }

    /// Add app-over-transport workloads: the cross-product of `apps` and
    /// `carriers` (§5.2 apps riding §4.3 tunnels or sharing a §5.7
    /// carrier queue). Carriers must be transports.
    pub fn apps(
        mut self,
        apps: impl IntoIterator<Item = sprout_baselines::VideoApp>,
        carriers: impl IntoIterator<Item = Scheme>,
    ) -> Self {
        let carriers: Vec<Scheme> = carriers.into_iter().collect();
        for over in &carriers {
            assert!(
                over.is_transport(),
                "app carrier must be a transport scheme, got {}",
                over.name()
            );
        }
        for app in apps {
            self.workloads
                .extend(carriers.iter().map(|&over| Workload::App { app, over }));
        }
        self
    }

    /// Add contention workloads: each item is the flow list of one
    /// multi-flow cell (≥ 2 flows sharing the bottleneck queue). Flow
    /// order is [`sprout_sim::FlowId`] order and part of cell identity.
    /// Flows must be real protocols (no omniscient) and app flows must
    /// ride a tunneling carrier — see [`FlowSpec`].
    pub fn contention(mut self, cells: impl IntoIterator<Item = Vec<FlowSpec>>) -> Self {
        for flows in cells {
            assert!(
                flows.len() >= 2,
                "a contention cell needs at least two flows, got {}",
                flows.len()
            );
            assert!(
                flows.len() <= MAX_CONTENTION_FLOWS,
                "a contention cell is capped at {MAX_CONTENTION_FLOWS} flows, got {}",
                flows.len()
            );
            for spec in &flows {
                spec.validate();
            }
            self.workloads.push(Workload::Contention { flows });
        }
        self
    }

    /// Add serve workloads: each item is the session count of one
    /// multi-session capacity cell (the N axis of the serve experiment).
    pub fn serve(mut self, session_counts: impl IntoIterator<Item = u32>) -> Self {
        for sessions in session_counts {
            assert!(sessions >= 1, "a serve cell needs at least one session");
            assert!(
                sessions <= MAX_SERVE_SESSIONS,
                "a serve cell is capped at {MAX_SERVE_SESSIONS} sessions, got {sessions}"
            );
            self.workloads.push(Workload::Serve { sessions });
        }
        self
    }

    /// Add arbitrary workloads (mux/tunnel/probe cells).
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = Workload>) -> Self {
        self.workloads.extend(workloads);
        self
    }

    /// Set the link axis: synthesized [`NetProfile`]s and/or measured
    /// [`LinkSpec::Measured`] captures.
    pub fn links<L: Into<LinkSpec>>(mut self, links: impl IntoIterator<Item = L>) -> Self {
        self.links.extend(links.into_iter().map(Into::into));
        self
    }

    /// Set the loss-rate axis (replaces the default `[0.0]`).
    pub fn loss_rates(mut self, rates: impl IntoIterator<Item = f64>) -> Self {
        self.loss_rates = rates.into_iter().collect();
        assert!(!self.loss_rates.is_empty(), "loss axis must be non-empty");
        self
    }

    /// Set the forecast-confidence axis in percent (replaces the default
    /// "paper 95%").
    pub fn confidences_pct(mut self, pct: impl IntoIterator<Item = f64>) -> Self {
        self.confidences = pct.into_iter().map(Some).collect();
        assert!(
            !self.confidences.is_empty(),
            "confidence axis must be non-empty"
        );
        self
    }

    /// Set the fault-injection axis (replaces the default
    /// `[Impairment::none()]`). Each impairment is applied to both
    /// directions of the path; every process it carries is validated at
    /// declaration time so an invalid cell fails before any sweep runs.
    pub fn impairments(mut self, impairments: impl IntoIterator<Item = Impairment>) -> Self {
        self.impairments = impairments.into_iter().collect();
        assert!(
            !self.impairments.is_empty(),
            "impairment axis must be non-empty"
        );
        for imp in &self.impairments {
            imp.validate();
        }
        self
    }

    /// Force a queue discipline for every cell (default: per-scheme Auto).
    pub fn queue(mut self, queue: QueueSpec) -> Self {
        self.queues = vec![queue];
        self
    }

    /// Set the queue-discipline axis (replaces the default `[Auto]`):
    /// deep-vs-shallow bufferbloat comparisons cross `Auto`,
    /// `DropTailBytes(..)` caps, and `CoDel` here.
    pub fn queues(mut self, queues: impl IntoIterator<Item = QueueSpec>) -> Self {
        self.queues = queues.into_iter().collect();
        assert!(!self.queues.is_empty(), "queue axis must be non-empty");
        self
    }

    /// Set the one-way propagation-delay axis in milliseconds (replaces
    /// the default `[20]`, the paper's standard condition; min-RTT is 2×
    /// each value).
    pub fn prop_delays_ms(mut self, ms: impl IntoIterator<Item = u64>) -> Self {
        self.prop_delays = ms.into_iter().map(Duration::from_millis).collect();
        assert!(
            !self.prop_delays.is_empty(),
            "prop-delay axis must be non-empty"
        );
        self
    }

    /// Set run and warm-up durations.
    pub fn timing(mut self, duration: Duration, warmup: Duration) -> Self {
        assert!(warmup < duration, "warmup must be shorter than the run");
        self.duration = duration;
        self.warmup = warmup;
        self
    }

    /// Collect per-bin time series at this bin width.
    pub fn series_bin(mut self, bin: Duration) -> Self {
        self.series_bin = Some(bin);
        self
    }

    /// Emit per-cell **cell-series** artifacts (delay-vs-time plus
    /// binned capacity/throughput/queue-depth) at this bin width — the
    /// `--timeseries` flag. Changes cell identity (see
    /// [`Scenario::cell_series_bin`]).
    pub fn cell_series(mut self, bin: Duration) -> Self {
        assert!(bin > Duration::ZERO, "cell-series bin must be positive");
        self.cell_series_bin = Some(bin);
        self
    }

    /// Take the cross-product.
    pub fn build(self) -> ScenarioMatrix {
        assert!(
            !self.workloads.is_empty(),
            "matrix needs at least one workload"
        );
        assert!(!self.links.is_empty(), "matrix needs at least one link");
        let mut cells = Vec::with_capacity(
            self.workloads.len()
                * self.links.len()
                * self.queues.len()
                * self.prop_delays.len()
                * self.loss_rates.len()
                * self.confidences.len()
                * self.impairments.len(),
        );
        for workload in &self.workloads {
            for &link in &self.links {
                for &queue in &self.queues {
                    for &prop_delay in &self.prop_delays {
                        for &loss_rate in &self.loss_rates {
                            for &confidence_pct in &self.confidences {
                                for &impairment in &self.impairments {
                                    let id = cells.len() as u64;
                                    let mut label = format!(
                                        "{}/{}/{}",
                                        self.name,
                                        link.id(),
                                        workload_tag(workload)
                                    );
                                    if self.queues.len() > 1 {
                                        label.push_str(&format!("/q-{}", queue.id()));
                                    }
                                    if self.prop_delays.len() > 1 {
                                        label.push_str(&format!(
                                            "/d{}ms",
                                            prop_delay.as_micros() / 1_000
                                        ));
                                    }
                                    if self.loss_rates.len() > 1 {
                                        label.push_str(&format!("/loss{:.0}", loss_rate * 100.0));
                                    }
                                    if let (Some(pct), true) =
                                        (confidence_pct, self.confidences.len() > 1)
                                    {
                                        label.push_str(&format!("/conf{pct:.0}"));
                                    }
                                    if self.impairments.len() > 1 {
                                        label.push_str(&format!("/i-{}", impairment.id()));
                                    }
                                    cells.push(Scenario {
                                        id,
                                        label,
                                        workload: workload.clone(),
                                        link,
                                        queue,
                                        prop_delay,
                                        loss_rate,
                                        confidence_pct,
                                        duration: self.duration,
                                        warmup: self.warmup,
                                        series_bin: self.series_bin,
                                        impairment,
                                        cell_series_bin: self.cell_series_bin,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        ScenarioMatrix {
            name: self.name,
            cells,
        }
    }
}

fn workload_tag(workload: &Workload) -> String {
    match workload {
        Workload::Scheme(s) => s.tag(),
        Workload::App { app, over } => format!("{}-over-{}", app.id(), over.tag()),
        Workload::Contention { .. } => workload.canonical_detail(),
        Workload::Serve { sessions } => format!("serve-n{sessions}"),
        other => other.id().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_declaration_order() {
        let m = ScenarioMatrix::builder("t")
            .schemes([Scheme::Sprout, Scheme::Cubic])
            .links(NetProfile::all())
            .build();
        assert_eq!(m.len(), 16);
        for (i, cell) in m.cells().iter().enumerate() {
            assert_eq!(cell.id, i as u64);
        }
        // First axis varies slowest.
        assert_eq!(m.cells()[0].workload, Workload::Scheme(Scheme::Sprout));
        assert_eq!(m.cells()[8].workload, Workload::Scheme(Scheme::Cubic));
    }

    #[test]
    fn cross_product_covers_all_axes() {
        let m = ScenarioMatrix::builder("t")
            .schemes([Scheme::Sprout])
            .links([NetProfile::VerizonLteDown, NetProfile::VerizonLteUp])
            .loss_rates([0.0, 0.05, 0.10])
            .build();
        assert_eq!(m.len(), 6);
        let rates: Vec<f64> = m.cells().iter().map(|c| c.loss_rate).collect();
        assert_eq!(rates, vec![0.0, 0.05, 0.10, 0.0, 0.05, 0.10]);
    }

    #[test]
    fn auto_queue_follows_needs_codel() {
        for scheme in Scheme::fig7().into_iter().chain([Scheme::CubicCodel]) {
            let resolved = QueueSpec::Auto.resolve(&Workload::Scheme(scheme));
            let expect = if scheme.needs_codel() {
                ResolvedQueue::CoDel
            } else {
                ResolvedQueue::DropTail
            };
            assert_eq!(resolved, expect, "{}", scheme.name());
        }
    }

    #[test]
    fn fingerprints_are_stable_and_distinguish_cells() {
        let m = ScenarioMatrix::builder("t")
            .schemes([Scheme::Sprout, Scheme::Cubic])
            .links([NetProfile::VerizonLteDown])
            .loss_rates([0.0, 0.05])
            .build();
        assert_eq!(m.fingerprint(), m.fingerprint());
        let mut prints: Vec<u64> = m.cells().iter().map(|c| c.fingerprint()).collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), m.len(), "cell fingerprints must not collide");

        // Any field change moves the fingerprint.
        let mut cell = m.cells()[0].clone();
        let base = cell.fingerprint();
        cell.loss_rate = 0.07;
        assert_ne!(cell.fingerprint(), base);
        cell.loss_rate = m.cells()[0].loss_rate;
        cell.confidence_pct = Some(0.0);
        assert_ne!(
            cell.fingerprint(),
            base,
            "Some(0.0) must differ from None despite the 0.0 sentinel"
        );

        // A different matrix declaration has a different fingerprint.
        let other = ScenarioMatrix::builder("t")
            .schemes([Scheme::Sprout, Scheme::Cubic])
            .links([NetProfile::VerizonLteDown])
            .loss_rates([0.0, 0.06])
            .build();
        assert_ne!(m.fingerprint(), other.fingerprint());
    }

    #[test]
    fn from_cells_preserves_position_ids() {
        let m = ScenarioMatrix::builder("t")
            .schemes([Scheme::Sprout])
            .links([NetProfile::VerizonLteDown, NetProfile::VerizonLteUp])
            .build();
        let rebuilt = ScenarioMatrix::from_cells("t", m.cells().to_vec());
        assert_eq!(rebuilt.fingerprint(), m.fingerprint());
    }

    #[test]
    #[should_panic(expected = "cell ids must equal their position")]
    fn from_cells_rejects_misnumbered_cells() {
        let m = ScenarioMatrix::builder("t")
            .schemes([Scheme::Sprout])
            .links([NetProfile::VerizonLteDown, NetProfile::VerizonLteUp])
            .build();
        let mut cells = m.cells().to_vec();
        cells.swap(0, 1);
        ScenarioMatrix::from_cells("t", cells);
    }

    #[test]
    fn new_axes_cross_and_fingerprint_distinctly() {
        let m = ScenarioMatrix::builder("t")
            .schemes([Scheme::Sprout])
            .apps([VideoApp::Skype], [Scheme::Sprout, Scheme::Cubic])
            .links([NetProfile::VerizonLteDown])
            .queues([
                QueueSpec::Auto,
                QueueSpec::DropTailBytes(75_000),
                QueueSpec::CoDel,
            ])
            .prop_delays_ms([10, 50])
            .build();
        // 3 workloads × 1 link × 3 queues × 2 delays.
        assert_eq!(m.len(), 18);
        let mut prints: Vec<u64> = m.cells().iter().map(|c| c.fingerprint()).collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), m.len(), "axis values must not collide");
        let mut labels: Vec<&str> = m.cells().iter().map(|c| c.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), m.len(), "axis labels must be unique");
        assert!(
            m.cells()
                .iter()
                .any(|c| c.label == "t/vz-lte-down/skype-over-cubic/q-droptail-75000b/d10ms"),
            "app/queue/delay label layout"
        );
        // A prop-delay change alone moves the fingerprint.
        let mut cell = m.cells()[0].clone();
        let base = cell.fingerprint();
        cell.prop_delay = Duration::from_millis(21);
        assert_ne!(cell.fingerprint(), base);
    }

    #[test]
    fn auto_queue_for_app_cells_follows_the_carrier() {
        let over_codel = Workload::App {
            app: VideoApp::Skype,
            over: Scheme::CubicCodel,
        };
        assert_eq!(QueueSpec::Auto.resolve(&over_codel), ResolvedQueue::CoDel);
        let over_cubic = Workload::App {
            app: VideoApp::Skype,
            over: Scheme::Cubic,
        };
        assert_eq!(
            QueueSpec::Auto.resolve(&over_cubic),
            ResolvedQueue::DropTail
        );
    }

    #[test]
    fn contention_cells_cross_links_and_fingerprint_distinctly() {
        let m = ScenarioMatrix::builder("t")
            .contention([
                vec![FlowSpec::Scheme(Scheme::Cubic); 3],
                vec![
                    FlowSpec::Scheme(Scheme::Sprout),
                    FlowSpec::Scheme(Scheme::Cubic),
                    FlowSpec::Scheme(Scheme::Cubic),
                ],
                vec![
                    FlowSpec::App {
                        app: VideoApp::Skype,
                        over: Scheme::Sprout,
                    },
                    FlowSpec::Scheme(Scheme::Cubic),
                ],
            ])
            .links([NetProfile::VerizonLteDown, NetProfile::TmobileUmtsUp])
            .build();
        assert_eq!(m.len(), 6);
        let mut prints: Vec<u64> = m.cells().iter().map(|c| c.fingerprint()).collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), m.len(), "contention cells must not collide");
        assert_eq!(
            m.cells()[0].label,
            "t/vz-lte-down/cubic+cubic+cubic",
            "contention labels list the flows in FlowId order"
        );
        assert_eq!(m.cells()[4].label, "t/vz-lte-down/skype-over-sprout+cubic");
        // Flow order is identity: [sprout, cubic] != [cubic, sprout].
        let ab = Workload::Contention {
            flows: vec![
                FlowSpec::Scheme(Scheme::Sprout),
                FlowSpec::Scheme(Scheme::Cubic),
            ],
        };
        let ba = Workload::Contention {
            flows: vec![
                FlowSpec::Scheme(Scheme::Cubic),
                FlowSpec::Scheme(Scheme::Sprout),
            ],
        };
        assert_ne!(ab.canonical_detail(), ba.canonical_detail());
        // Auto resolves to the deep shared DropTail buffer.
        assert_eq!(QueueSpec::Auto.resolve(&ab), ResolvedQueue::DropTail);
    }

    #[test]
    #[should_panic(expected = "at least two flows")]
    fn contention_rejects_single_flow_cells() {
        let _ = ScenarioMatrix::builder("t").contention([vec![FlowSpec::Scheme(Scheme::Cubic)]]);
    }

    #[test]
    #[should_panic(expected = "omniscient")]
    fn contention_rejects_omniscient_flows() {
        let _ = ScenarioMatrix::builder("t").contention([vec![
            FlowSpec::Scheme(Scheme::Omniscient),
            FlowSpec::Scheme(Scheme::Cubic),
        ]]);
    }

    #[test]
    #[should_panic(expected = "tunneling carrier")]
    fn contention_app_flows_must_ride_a_tunnel() {
        let _ = ScenarioMatrix::builder("t").contention([vec![
            FlowSpec::App {
                app: VideoApp::Skype,
                over: Scheme::Cubic,
            },
            FlowSpec::Scheme(Scheme::Cubic),
        ]]);
    }

    #[test]
    #[should_panic(expected = "app carrier must be a transport")]
    fn app_carriers_cannot_be_apps() {
        let _ = ScenarioMatrix::builder("t").apps([VideoApp::Skype], [Scheme::Facetime]);
    }

    #[test]
    fn labels_are_unique_within_a_matrix() {
        let m = ScenarioMatrix::builder("fig7")
            .schemes(Scheme::fig7())
            .links(NetProfile::all())
            .loss_rates([0.0, 0.05])
            .build();
        let mut labels: Vec<&str> = m.cells().iter().map(|c| c.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), m.len());
    }
}
