//! The reproduction harness: a scheme zoo, the scenario-matrix sweep
//! engine, and regeneration functions for every table and figure in the
//! paper's evaluation (see ARCHITECTURE.md for the layering and the
//! scenario → sweep → cellcache → figures pipeline).
//!
//! Architecture: each figure **declares** its cross-product as a
//! [`ScenarioMatrix`] (schemes × links × loss rates × confidences), the
//! [`SweepEngine`] executes the cells in parallel with deterministic
//! per-cell seeding, and the figure functions only **render** the
//! resulting [`SweepResult`] rows into TSV/JSON artifacts.

#![warn(missing_docs)]

pub mod cellcache;
pub mod cli;
pub mod figures;
pub mod perf;
pub mod scenario;
pub mod schemes;
pub mod sweep;

pub use cellcache::{
    cell_cache_counters, cell_series_cache_counters, reset_cell_cache_counters, ENGINE_VERSION,
};
pub use figures::{
    contention, contention_matrix, default_contention_workloads, default_corpus_fingerprints, fig1,
    fig2, fig7, fig8, fig9, impair, impair_matrix, loss_table, replay, replay_matrix, serve,
    serve_matrix, soak, soak_matrix, summary_table, tunnel_comparison, write_cell_series,
    ContentionAxes, ContentionRow, ExperimentConfig, Fig7Results, ImpairAxes, ImpairRow,
    ReplayAxes, ReplayRow, ServeAxes, ServeRow, SoakAxes, CELL_SERIES_BIN,
    DEFAULT_CONTENTION_FLOWS, REPLAY_SECS, SERVE_SECS, SERVE_SESSIONS, SHALLOW_QUEUE_BYTES,
    SOAK_SECS,
};
pub use perf::{
    bench_report_to_json, check_regression, missing_keys, run_serve_capacity, BenchReport,
    MicroBench, ServeCapacity,
};
pub use scenario::{
    FlowSpec, LinkSpec, MatrixBuilder, QueueSpec, ResolvedQueue, Scenario, ScenarioMatrix,
    Workload, MAX_CONTENTION_FLOWS, MAX_SERVE_SESSIONS,
};
pub use schemes::{build_endpoints, run_scheme, RunConfig, Scheme, SchemeResult};
pub use sprout_baselines::VideoApp;
pub use sweep::{
    abandoned_cell_threads, cell_failure_counters, last_batch_layout, sweep_to_json,
    trace_memo_occupancy, trace_memory_counters, write_json, BatchStats, CellCachePolicy,
    CellFailure, CellFailureCounters, CellScratch, CellSeries, CellSeriesBin, FlowSummary,
    InterarrivalSummary, SeriesRow, ServeStats, ShardSpec, SweepEngine, SweepError, SweepResult,
    SweepStats, DEFAULT_CELL_TIMEOUT,
};
