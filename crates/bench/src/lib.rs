//! The reproduction harness: a scheme zoo, a uniform experiment runner,
//! and regeneration functions for every table and figure in the paper's
//! evaluation (see DESIGN.md §3 for the experiment index).

#![warn(missing_docs)]

pub mod figures;
pub mod schemes;

pub use figures::{
    fig1, fig2, fig7, fig8, fig9, loss_table, summary_table, tunnel_comparison, ExperimentConfig,
    Fig7Results,
};
pub use schemes::{build_endpoints, run_scheme, RunConfig, Scheme, SchemeResult};
