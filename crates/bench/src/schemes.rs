//! The scheme zoo of the evaluation (§5) and a uniform way to run any of
//! them over any emulated link.

use sprout_baselines::{
    AppProfile, Compound, Cubic, Ledbat, OmniscientSender, Reno, TcpReceiver, TcpSender, Vegas,
    VideoAppReceiver, VideoAppSender,
};
use sprout_core::{SproutConfig, SproutEndpoint};
use sprout_sim::{Endpoint, SinkEndpoint};
use sprout_trace::{Duration, Impairment, Trace};

/// Every transport/application evaluated in the paper, plus Reno.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Sprout with the Bayesian 95%-confidence forecast.
    Sprout,
    /// Sprout-EWMA (§5.3).
    SproutEwma,
    /// TCP Cubic (Linux default).
    Cubic,
    /// TCP Cubic over CoDel at the bottleneck (§5.4).
    CubicCodel,
    /// TCP Reno (extra context; not in the paper's figures).
    Reno,
    /// TCP Vegas.
    Vegas,
    /// Compound TCP (Windows default of the era).
    Compound,
    /// LEDBAT / µTP.
    Ledbat,
    /// Skype model.
    Skype,
    /// FaceTime model.
    Facetime,
    /// Google Hangout model.
    Hangout,
    /// The omniscient protocol (§5.1).
    Omniscient,
}

impl Scheme {
    /// The nine schemes of Figure 7, in the paper's legend order.
    pub fn fig7() -> [Scheme; 9] {
        [
            Scheme::Sprout,
            Scheme::SproutEwma,
            Scheme::Cubic,
            Scheme::Compound,
            Scheme::Vegas,
            Scheme::Ledbat,
            Scheme::Skype,
            Scheme::Facetime,
            Scheme::Hangout,
        ]
    }

    /// Every scheme, in declaration order (CLI parsing and docs).
    pub fn all() -> [Scheme; 12] {
        [
            Scheme::Sprout,
            Scheme::SproutEwma,
            Scheme::Cubic,
            Scheme::CubicCodel,
            Scheme::Reno,
            Scheme::Vegas,
            Scheme::Compound,
            Scheme::Ledbat,
            Scheme::Skype,
            Scheme::Facetime,
            Scheme::Hangout,
            Scheme::Omniscient,
        ]
    }

    /// The lowercase, hyphenated tag used in cell labels and on the CLI
    /// (`sprout`, `sprout-ewma`, `cubic-codel`, `compound`, …).
    pub fn tag(self) -> String {
        self.name()
            .to_ascii_lowercase()
            .replace(' ', "-")
            .replace("tcp", "")
            .trim_matches('-')
            .to_string()
    }

    /// Parse a [`Scheme::tag`] back to its scheme (`None` for unknown
    /// tags).
    pub fn from_tag(tag: &str) -> Option<Scheme> {
        Scheme::all().into_iter().find(|s| s.tag() == tag)
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Sprout => "Sprout",
            Scheme::SproutEwma => "Sprout-EWMA",
            Scheme::Cubic => "Cubic",
            Scheme::CubicCodel => "Cubic-CoDel",
            Scheme::Reno => "Reno",
            Scheme::Vegas => "Vegas",
            Scheme::Compound => "Compound TCP",
            Scheme::Ledbat => "LEDBAT",
            Scheme::Skype => "Skype",
            Scheme::Facetime => "Facetime",
            Scheme::Hangout => "Google Hangout",
            Scheme::Omniscient => "Omniscient",
        }
    }

    /// Whether the scheme requires CoDel at the bottleneck.
    pub fn needs_codel(self) -> bool {
        matches!(self, Scheme::CubicCodel)
    }

    /// Whether the scheme is a transport that can carry (or contend
    /// with) other traffic — as opposed to an application model or the
    /// omniscient reference. Only transports are valid app-workload
    /// carriers.
    pub fn is_transport(self) -> bool {
        !matches!(
            self,
            Scheme::Skype | Scheme::Facetime | Scheme::Hangout | Scheme::Omniscient
        )
    }

    /// Whether an app workload over this scheme rides inside a
    /// SproutTunnel session (§4.3); apps over any other transport share
    /// the carrier queue with a bulk flow of it (§5.7 "direct").
    pub fn tunnels_apps(self) -> bool {
        matches!(self, Scheme::Sprout | Scheme::SproutEwma)
    }
}

/// One experiment cell: a scheme over one link direction.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Delivery schedule of the data direction under test.
    pub data_trace: Trace,
    /// Delivery schedule of the reverse (feedback) direction.
    pub feedback_trace: Trace,
    /// Total virtual run time.
    pub duration: Duration,
    /// Warm-up skipped before measuring (§5.1 skips the first minute).
    pub warmup: Duration,
    /// One-way propagation delay of each direction (the paper's ~20 ms).
    pub prop_delay: Duration,
    /// Bernoulli loss probability on both directions (§5.6).
    pub loss_rate: f64,
    /// Seed of the data-direction loss process (the sweep engine derives
    /// it from the cell seed; standalone callers get a fixed default).
    pub loss_seed_data: u64,
    /// Seed of the feedback-direction loss process.
    pub loss_seed_feedback: u64,
    /// Fault injection applied to both directions
    /// ([`Impairment::none()`] keeps the classic clean link).
    pub impairment: Impairment,
    /// Seed of the data-direction impairment processes (burst loss,
    /// jitter, reordering).
    pub impair_seed_data: u64,
    /// Seed of the feedback-direction impairment processes.
    pub impair_seed_feedback: u64,
    /// Seed of the outage schedule, which is generated once per cell and
    /// shared by both directions (a dead radio link is dead both ways).
    pub outage_seed: u64,
    /// Root of the per-session seed sub-streams of serve cells (the
    /// sweep engine passes the cell seed; standalone callers get a fixed
    /// default). Each session derives its own loss/impairment seeds via
    /// [`sprout_trace::session_seed`].
    pub serve_seed: u64,
    /// Sprout configuration (confidence sweeps override this).
    pub sprout: SproutConfig,
}

impl RunConfig {
    /// Standard conditions for a data/feedback trace pair.
    pub fn new(data_trace: Trace, feedback_trace: Trace) -> Self {
        RunConfig {
            data_trace,
            feedback_trace,
            duration: Duration::from_secs(300),
            warmup: Duration::from_secs(60),
            prop_delay: Duration::from_millis(20),
            loss_rate: 0.0,
            loss_seed_data: 1_111,
            loss_seed_feedback: 2_222,
            impairment: Impairment::none(),
            impair_seed_data: 3_333,
            impair_seed_feedback: 4_444,
            outage_seed: 5_555,
            serve_seed: 6_666,
            sprout: SproutConfig::paper(),
        }
    }
}

/// Outcome of one experiment cell (the quantities of Figure 7/8 and the
/// intro tables).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchemeResult {
    /// Average throughput in the measurement window, kbps.
    pub throughput_kbps: f64,
    /// 95% end-to-end delay, ms.
    pub p95_delay_ms: f64,
    /// Self-inflicted delay (p95 − omniscient p95), ms.
    pub self_inflicted_ms: f64,
    /// The omniscient floor, ms.
    pub omniscient_ms: f64,
    /// Fraction of link capacity used.
    pub utilization: f64,
    /// Injected link outages intersecting the measurement window.
    pub outages: u32,
    /// Worst post-outage recovery time, ms: how long after an outage
    /// ended before delay re-entered the cell's own 95th-percentile
    /// envelope (NaN when the window saw no completed outage).
    pub recovery_ms: f64,
    /// Fraction of available link capacity actually delivered while
    /// degraded (outage + recovery intervals; NaN when never degraded).
    pub degraded_delivery: f64,
}

impl SchemeResult {
    /// Convert a direction's raw stats into the paper's reporting units.
    pub fn from_stats(stats: &sprout_sim::DirectionStats) -> Self {
        let ms = |d: Option<Duration>| d.map(|d| d.as_micros() as f64 / 1e3).unwrap_or(f64::NAN);
        SchemeResult {
            throughput_kbps: stats.throughput_kbps,
            p95_delay_ms: ms(stats.p95_delay),
            self_inflicted_ms: ms(stats.self_inflicted),
            omniscient_ms: ms(stats.omniscient_p95),
            utilization: stats.utilization,
            outages: stats.degradation.outage_count,
            recovery_ms: ms(stats.degradation.recovery),
            degraded_delivery: stats
                .degradation
                .degraded_delivered_fraction
                .unwrap_or(f64::NAN),
        }
    }
}

/// Construct the (sender, receiver) endpoint pair for a scheme.
pub fn build_endpoints(scheme: Scheme, cfg: &RunConfig) -> (Box<dyn Endpoint>, Box<dyn Endpoint>) {
    match scheme {
        Scheme::Sprout => {
            let mut a = SproutEndpoint::new(cfg.sprout.clone());
            a.set_saturating();
            let b = SproutEndpoint::new(cfg.sprout.clone());
            (Box::new(a), Box::new(b))
        }
        Scheme::SproutEwma => {
            let mut a = SproutEndpoint::new_ewma(cfg.sprout.clone());
            a.set_saturating();
            let b = SproutEndpoint::new_ewma(cfg.sprout.clone());
            (Box::new(a), Box::new(b))
        }
        Scheme::Cubic | Scheme::CubicCodel => (
            Box::new(TcpSender::new(Box::new(Cubic::new()))),
            Box::new(TcpReceiver::new()),
        ),
        Scheme::Reno => (
            Box::new(TcpSender::new(Box::new(Reno::new()))),
            Box::new(TcpReceiver::new()),
        ),
        Scheme::Vegas => (
            Box::new(TcpSender::new(Box::new(Vegas::new()))),
            Box::new(TcpReceiver::new()),
        ),
        Scheme::Compound => (
            Box::new(TcpSender::new(Box::new(Compound::new()))),
            Box::new(TcpReceiver::new()),
        ),
        Scheme::Ledbat => (
            Box::new(TcpSender::new(Box::new(Ledbat::new()))),
            Box::new(TcpReceiver::new()),
        ),
        Scheme::Skype => (
            Box::new(VideoAppSender::new(AppProfile::skype())),
            Box::new(VideoAppReceiver::new()),
        ),
        Scheme::Facetime => (
            Box::new(VideoAppSender::new(AppProfile::facetime())),
            Box::new(VideoAppReceiver::new()),
        ),
        Scheme::Hangout => (
            Box::new(VideoAppSender::new(AppProfile::hangout())),
            Box::new(VideoAppReceiver::new()),
        ),
        Scheme::Omniscient => (
            Box::new(OmniscientSender::new(&cfg.data_trace, cfg.prop_delay)),
            Box::new(SinkEndpoint::new()),
        ),
    }
}

/// Run one scheme over one link and collect the standard metrics.
///
/// This is a thin wrapper over the sweep engine's single-cell executor
/// ([`crate::sweep::run_cell`]); full matrices should go through
/// [`crate::sweep::SweepEngine`] instead.
pub fn run_scheme(scheme: Scheme, cfg: &RunConfig) -> SchemeResult {
    let workload = crate::scenario::Workload::Scheme(scheme);
    let queue = crate::scenario::QueueSpec::Auto.resolve(&workload);
    crate::sweep::run_cell(&workload, cfg, queue, None, None)
        .metrics
        .expect("scheme cells always produce direction metrics")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_trace::NetProfile;

    fn quick_cfg() -> RunConfig {
        let down = NetProfile::TmobileUmtsDown.generate(Duration::from_secs(60), 5);
        let up = NetProfile::TmobileUmtsUp.generate(Duration::from_secs(60), 6);
        RunConfig {
            duration: Duration::from_secs(60),
            warmup: Duration::from_secs(10),
            ..RunConfig::new(down, up)
        }
    }

    #[test]
    fn every_scheme_runs_and_produces_sane_metrics() {
        let cfg = quick_cfg();
        for scheme in [
            Scheme::SproutEwma,
            Scheme::Cubic,
            Scheme::CubicCodel,
            Scheme::Reno,
            Scheme::Vegas,
            Scheme::Compound,
            Scheme::Ledbat,
            Scheme::Skype,
            Scheme::Facetime,
            Scheme::Hangout,
            Scheme::Omniscient,
        ] {
            let r = run_scheme(scheme, &cfg);
            assert!(r.throughput_kbps > 0.0, "{}: no throughput", scheme.name());
            assert!(
                r.p95_delay_ms.is_finite() && r.p95_delay_ms >= 20.0,
                "{}: p95 {:?} must include propagation",
                scheme.name(),
                r.p95_delay_ms
            );
            assert!(r.utilization > 0.0 && r.utilization <= 1.001);
        }
    }

    #[test]
    fn scheme_tags_round_trip_and_are_unique() {
        let mut tags: Vec<String> = Scheme::all().iter().map(|s| s.tag()).collect();
        for scheme in Scheme::all() {
            assert_eq!(
                Scheme::from_tag(&scheme.tag()),
                Some(scheme),
                "{} tag must parse back",
                scheme.name()
            );
        }
        assert_eq!(Scheme::from_tag("sprout-ewma"), Some(Scheme::SproutEwma));
        assert_eq!(Scheme::from_tag("compound"), Some(Scheme::Compound));
        assert_eq!(Scheme::from_tag("bogus"), None);
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), Scheme::all().len(), "tags must be unique");
    }

    #[test]
    fn omniscient_has_zero_self_inflicted_delay() {
        let r = run_scheme(Scheme::Omniscient, &quick_cfg());
        assert!(r.self_inflicted_ms.abs() < 1e-6);
        assert!(r.utilization > 0.999);
    }
}
