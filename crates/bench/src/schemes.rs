//! The scheme zoo of the evaluation (§5) and a uniform way to run any of
//! them over any emulated link.

use sprout_baselines::{
    AppProfile, Compound, Cubic, Ledbat, OmniscientSender, Reno, TcpReceiver, TcpSender,
    VideoAppReceiver, VideoAppSender, Vegas,
};
use sprout_core::{SproutConfig, SproutEndpoint};
use sprout_sim::{
    direction_stats, CoDelConfig, Endpoint, PathConfig, QueueConfig, Simulation, SinkEndpoint,
};
use sprout_trace::{Duration, Timestamp, Trace};

/// Every transport/application evaluated in the paper, plus Reno.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Sprout with the Bayesian 95%-confidence forecast.
    Sprout,
    /// Sprout-EWMA (§5.3).
    SproutEwma,
    /// TCP Cubic (Linux default).
    Cubic,
    /// TCP Cubic over CoDel at the bottleneck (§5.4).
    CubicCodel,
    /// TCP Reno (extra context; not in the paper's figures).
    Reno,
    /// TCP Vegas.
    Vegas,
    /// Compound TCP (Windows default of the era).
    Compound,
    /// LEDBAT / µTP.
    Ledbat,
    /// Skype model.
    Skype,
    /// FaceTime model.
    Facetime,
    /// Google Hangout model.
    Hangout,
    /// The omniscient protocol (§5.1).
    Omniscient,
}

impl Scheme {
    /// The nine schemes of Figure 7, in the paper's legend order.
    pub fn fig7() -> [Scheme; 9] {
        [
            Scheme::Sprout,
            Scheme::SproutEwma,
            Scheme::Cubic,
            Scheme::Compound,
            Scheme::Vegas,
            Scheme::Ledbat,
            Scheme::Skype,
            Scheme::Facetime,
            Scheme::Hangout,
        ]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Sprout => "Sprout",
            Scheme::SproutEwma => "Sprout-EWMA",
            Scheme::Cubic => "Cubic",
            Scheme::CubicCodel => "Cubic-CoDel",
            Scheme::Reno => "Reno",
            Scheme::Vegas => "Vegas",
            Scheme::Compound => "Compound TCP",
            Scheme::Ledbat => "LEDBAT",
            Scheme::Skype => "Skype",
            Scheme::Facetime => "Facetime",
            Scheme::Hangout => "Google Hangout",
            Scheme::Omniscient => "Omniscient",
        }
    }

    /// Whether the scheme requires CoDel at the bottleneck.
    pub fn needs_codel(self) -> bool {
        matches!(self, Scheme::CubicCodel)
    }
}

/// One experiment cell: a scheme over one link direction.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Delivery schedule of the data direction under test.
    pub data_trace: Trace,
    /// Delivery schedule of the reverse (feedback) direction.
    pub feedback_trace: Trace,
    /// Total virtual run time.
    pub duration: Duration,
    /// Warm-up skipped before measuring (§5.1 skips the first minute).
    pub warmup: Duration,
    /// Bernoulli loss probability on both directions (§5.6).
    pub loss_rate: f64,
    /// Sprout configuration (confidence sweeps override this).
    pub sprout: SproutConfig,
}

impl RunConfig {
    /// Standard conditions for a data/feedback trace pair.
    pub fn new(data_trace: Trace, feedback_trace: Trace) -> Self {
        RunConfig {
            data_trace,
            feedback_trace,
            duration: Duration::from_secs(300),
            warmup: Duration::from_secs(60),
            loss_rate: 0.0,
            sprout: SproutConfig::paper(),
        }
    }
}

/// Outcome of one experiment cell (the quantities of Figure 7/8 and the
/// intro tables).
#[derive(Clone, Copy, Debug)]
pub struct SchemeResult {
    /// Average throughput in the measurement window, kbps.
    pub throughput_kbps: f64,
    /// 95% end-to-end delay, ms.
    pub p95_delay_ms: f64,
    /// Self-inflicted delay (p95 − omniscient p95), ms.
    pub self_inflicted_ms: f64,
    /// The omniscient floor, ms.
    pub omniscient_ms: f64,
    /// Fraction of link capacity used.
    pub utilization: f64,
}

/// Construct the (sender, receiver) endpoint pair for a scheme.
pub fn build_endpoints(
    scheme: Scheme,
    cfg: &RunConfig,
) -> (Box<dyn Endpoint>, Box<dyn Endpoint>) {
    match scheme {
        Scheme::Sprout => {
            let mut a = SproutEndpoint::new(cfg.sprout.clone());
            a.set_saturating();
            let b = SproutEndpoint::new(cfg.sprout.clone());
            (Box::new(a), Box::new(b))
        }
        Scheme::SproutEwma => {
            let mut a = SproutEndpoint::new_ewma(cfg.sprout.clone());
            a.set_saturating();
            let b = SproutEndpoint::new_ewma(cfg.sprout.clone());
            (Box::new(a), Box::new(b))
        }
        Scheme::Cubic | Scheme::CubicCodel => (
            Box::new(TcpSender::new(Box::new(Cubic::new()))),
            Box::new(TcpReceiver::new()),
        ),
        Scheme::Reno => (
            Box::new(TcpSender::new(Box::new(Reno::new()))),
            Box::new(TcpReceiver::new()),
        ),
        Scheme::Vegas => (
            Box::new(TcpSender::new(Box::new(Vegas::new()))),
            Box::new(TcpReceiver::new()),
        ),
        Scheme::Compound => (
            Box::new(TcpSender::new(Box::new(Compound::new()))),
            Box::new(TcpReceiver::new()),
        ),
        Scheme::Ledbat => (
            Box::new(TcpSender::new(Box::new(Ledbat::new()))),
            Box::new(TcpReceiver::new()),
        ),
        Scheme::Skype => (
            Box::new(VideoAppSender::new(AppProfile::skype())),
            Box::new(VideoAppReceiver::new()),
        ),
        Scheme::Facetime => (
            Box::new(VideoAppSender::new(AppProfile::facetime())),
            Box::new(VideoAppReceiver::new()),
        ),
        Scheme::Hangout => (
            Box::new(VideoAppSender::new(AppProfile::hangout())),
            Box::new(VideoAppReceiver::new()),
        ),
        Scheme::Omniscient => (
            Box::new(OmniscientSender::new(
                &cfg.data_trace,
                Duration::from_millis(20),
            )),
            Box::new(SinkEndpoint::new()),
        ),
    }
}

/// Run one scheme over one link and collect the standard metrics.
pub fn run_scheme(scheme: Scheme, cfg: &RunConfig) -> SchemeResult {
    let (a, b) = build_endpoints(scheme, cfg);
    let mut data_path = PathConfig::standard(cfg.data_trace.clone());
    let mut feedback_path = PathConfig::standard(cfg.feedback_trace.clone());
    if scheme.needs_codel() {
        data_path.link.queue = QueueConfig::CoDel(CoDelConfig::default());
        feedback_path.link.queue = QueueConfig::CoDel(CoDelConfig::default());
    }
    if cfg.loss_rate > 0.0 {
        data_path.link.loss_rate = cfg.loss_rate;
        data_path.link.loss_seed = 1_111;
        feedback_path.link.loss_rate = cfg.loss_rate;
        feedback_path.link.loss_seed = 2_222;
    }
    let mut sim = Simulation::new(a, b, data_path, feedback_path);
    let end = Timestamp::ZERO + cfg.duration;
    sim.run_until(end);
    let stats = direction_stats(sim.ab_path(), Timestamp::ZERO + cfg.warmup, end);
    SchemeResult {
        throughput_kbps: stats.throughput_kbps,
        p95_delay_ms: stats
            .p95_delay
            .map(|d| d.as_micros() as f64 / 1e3)
            .unwrap_or(f64::NAN),
        self_inflicted_ms: stats
            .self_inflicted
            .map(|d| d.as_micros() as f64 / 1e3)
            .unwrap_or(f64::NAN),
        omniscient_ms: stats
            .omniscient_p95
            .map(|d| d.as_micros() as f64 / 1e3)
            .unwrap_or(f64::NAN),
        utilization: stats.utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_trace::NetProfile;

    fn quick_cfg() -> RunConfig {
        let down = NetProfile::TmobileUmtsDown.generate(Duration::from_secs(60), 5);
        let up = NetProfile::TmobileUmtsUp.generate(Duration::from_secs(60), 6);
        RunConfig {
            duration: Duration::from_secs(60),
            warmup: Duration::from_secs(10),
            ..RunConfig::new(down, up)
        }
    }

    #[test]
    fn every_scheme_runs_and_produces_sane_metrics() {
        let cfg = quick_cfg();
        for scheme in [
            Scheme::SproutEwma,
            Scheme::Cubic,
            Scheme::CubicCodel,
            Scheme::Reno,
            Scheme::Vegas,
            Scheme::Compound,
            Scheme::Ledbat,
            Scheme::Skype,
            Scheme::Facetime,
            Scheme::Hangout,
            Scheme::Omniscient,
        ] {
            let r = run_scheme(scheme, &cfg);
            assert!(
                r.throughput_kbps > 0.0,
                "{}: no throughput",
                scheme.name()
            );
            assert!(
                r.p95_delay_ms.is_finite() && r.p95_delay_ms >= 20.0,
                "{}: p95 {:?} must include propagation",
                scheme.name(),
                r.p95_delay_ms
            );
            assert!(r.utilization > 0.0 && r.utilization <= 1.001);
        }
    }

    #[test]
    fn omniscient_has_zero_self_inflicted_delay() {
        let r = run_scheme(Scheme::Omniscient, &quick_cfg());
        assert!(r.self_inflicted_ms.abs() < 1e-6);
        assert!(r.utilization > 0.999);
    }
}
