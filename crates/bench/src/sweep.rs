//! The scenario-matrix sweep engine.
//!
//! [`SweepEngine`] executes every cell of a [`ScenarioMatrix`] and returns
//! one [`SweepResult`] per cell, in matrix order. Cells fan out across a
//! small worker pool ([`SweepEngine::threads`]); every stochastic input of
//! a cell — the link traces, the Bernoulli loss processes — is seeded
//! deterministically:
//!
//! * **link traces** derive from the master seed and the link profile
//!   alone, so every cell on one link sees *identical* link conditions
//!   (the controlled variable of Figure 7's scheme comparison);
//! * **per-cell randomness** (the loss processes) derives from
//!   `(master_seed, scenario.id)` via [`sprout_trace::derive_seed`], so
//!   cells are mutually independent but individually reproducible.
//!
//! Consequently a sweep is bit-identical for any thread count or
//! execution order, and [`write_json`] emits a canonical, diffable record
//! of the whole matrix (the `BENCH_*.json` trajectory format).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use sprout_baselines::{
    AppProfile, Cubic, TcpReceiver, TcpSender, VideoAppReceiver, VideoAppSender,
};
use sprout_core::{SproutConfig, SproutEndpoint};
use sprout_sim::{
    direction_stats, CoDelConfig, Endpoint, FlowId, MetricsCollector, MuxEndpoint, PathConfig,
    QueueConfig, Simulation,
};
use sprout_trace::{
    derive_labeled_seed, Duration, InterarrivalHistogram, NetProfile, Timestamp, Trace,
};
use sprout_tunnel::{TunnelEndpoint, TunnelHost};

use crate::scenario::{paired, ResolvedQueue, Scenario, ScenarioMatrix, Workload};
use crate::schemes::{build_endpoints, RunConfig, SchemeResult};

/// The bulk flow of the §5.7 mux/tunnel cells.
pub const BULK_FLOW: FlowId = FlowId(1);
/// The interactive flow of the §5.7 mux/tunnel cells.
pub const INTERACTIVE_FLOW: FlowId = FlowId(2);

/// Per-flow summary of a mux/tunnel cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowSummary {
    /// Flow identifier.
    pub flow: u32,
    /// Average throughput in the measurement window, kbps.
    pub throughput_kbps: f64,
    /// 95% end-to-end delay, ms (NaN when the flow never delivered).
    pub p95_delay_ms: f64,
}

/// One bin of a collected time series (Figure 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesRow {
    /// Bin start relative to the measurement window, seconds.
    pub t_s: f64,
    /// Link capacity in the bin, kbps.
    pub capacity_kbps: f64,
    /// Achieved throughput in the bin, kbps.
    pub throughput_kbps: f64,
    /// Worst per-arrival delay in the bin, ms (0 when nothing arrived).
    pub worst_delay_ms: f64,
}

/// Interarrival statistics of a saturated link (Figure 2).
#[derive(Clone, Debug, PartialEq)]
pub struct InterarrivalSummary {
    /// Fraction of interarrivals within 20 ms (paper: 99.99%).
    pub fraction_within_20ms: f64,
    /// Power-law slope of the 20 ms–5 s tail (paper: −3.27).
    pub tail_slope: Option<f64>,
    /// Total interarrivals measured.
    pub samples: u64,
    /// Non-empty histogram bins: (bin start ms, bin end ms, percent).
    pub rows: Vec<(f64, f64, f64)>,
}

/// The structured outcome of one scenario cell.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepResult {
    /// The cell that produced this row.
    pub scenario: Scenario,
    /// The matrix this cell belongs to.
    pub matrix: String,
    /// Queue discipline the cell actually ran behind.
    pub queue: ResolvedQueue,
    /// The derived per-cell seed (all cell-local randomness stems from it).
    pub cell_seed: u64,
    /// Standard direction metrics (absent for the interarrival probe).
    pub metrics: Option<SchemeResult>,
    /// Per-flow metrics (mux/tunnel cells only).
    pub flows: Vec<FlowSummary>,
    /// Per-bin series (only when the scenario requested one).
    pub series: Vec<SeriesRow>,
    /// Interarrival statistics (probe cells only).
    pub interarrival: Option<InterarrivalSummary>,
    /// Wall-clock execution time of this cell, milliseconds. Measured,
    /// not simulated — deliberately **excluded** from the canonical
    /// sweep JSON (which must stay bit-identical across machines and
    /// thread counts); the `BENCH_sweep.json` trajectory records it.
    pub wall_ms: f64,
}

/// Execution statistics of one sweep run: wall time plus the disk-cache
/// traffic the run generated. Cache counters are process-global deltas,
/// so run sweeps one at a time when attributing traffic to a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepStats {
    /// Wall-clock time of the whole `run` call, milliseconds.
    pub total_wall_ms: f64,
    /// Forecast-table disk-cache traffic during the run.
    pub table_cache: sprout_cache::CacheCounters,
    /// Trace-synthesis disk-cache traffic during the run.
    pub trace_cache: sprout_cache::CacheCounters,
}

/// Executes scenario matrices over a worker pool.
#[derive(Clone, Copy, Debug)]
pub struct SweepEngine {
    /// Master seed; every stochastic input of the sweep derives from it.
    pub master_seed: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

impl SweepEngine {
    /// An engine with the given master seed and automatic thread count.
    pub fn new(master_seed: u64) -> Self {
        SweepEngine {
            master_seed,
            threads: 0,
        }
    }

    /// Override the worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn effective_threads(&self, cells: usize) -> usize {
        let auto = || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let n = if self.threads == 0 {
            auto()
        } else {
            self.threads
        };
        n.clamp(1, cells.max(1))
    }

    /// Run every cell of `matrix` and report execution statistics
    /// alongside the results: per-cell wall time lands in each
    /// [`SweepResult::wall_ms`], sweep-level wall time and disk-cache
    /// traffic in the returned [`SweepStats`].
    pub fn run_with_stats(&self, matrix: &ScenarioMatrix) -> (Vec<SweepResult>, SweepStats) {
        let table0 = sprout_core::table_cache_counters();
        let trace0 = sprout_trace::trace_cache_counters();
        let t0 = std::time::Instant::now();
        let results = self.run(matrix);
        let stats = SweepStats {
            total_wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            table_cache: sprout_core::table_cache_counters().since(table0),
            trace_cache: sprout_trace::trace_cache_counters().since(trace0),
        };
        (results, stats)
    }

    /// Run every cell of `matrix`; `results[i]` corresponds to
    /// `matrix.cells()[i]` regardless of thread interleaving.
    pub fn run(&self, matrix: &ScenarioMatrix) -> Vec<SweepResult> {
        let cells = matrix.cells();
        let threads = self.effective_threads(cells.len());
        let slots: Vec<Mutex<Option<SweepResult>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        // Traces depend only on (master_seed, profile, duration), so all
        // cells sharing a link replay one synthesis instead of each
        // regenerating it (fig7: 80 cells but only 8 links × 2 directions).
        let memo = TraceMemo::for_matrix(matrix, self.master_seed);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let result =
                        execute_with_memo(matrix.name(), &cells[i], self.master_seed, &memo);
                    *slots[i].lock().unwrap() = Some(result);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("every cell executed"))
            .collect()
    }
}

/// Pre-synthesized link traces shared by every cell of one sweep. Keyed
/// by `(profile, duration)`; values are byte-identical to what
/// [`NetProfile::generate`] would produce cell-locally, so memoization
/// cannot change results.
struct TraceMemo {
    traces: std::collections::HashMap<(NetProfile, Duration), Trace>,
}

impl TraceMemo {
    fn for_matrix(matrix: &ScenarioMatrix, master_seed: u64) -> Self {
        let mut traces = std::collections::HashMap::new();
        for cell in matrix.cells() {
            if cell.workload == Workload::InterarrivalProbe {
                continue; // probes use their own derived sub-stream
            }
            for profile in [cell.link, paired(cell.link)] {
                traces
                    .entry((profile, cell.duration))
                    .or_insert_with(|| profile.generate(cell.duration, master_seed));
            }
        }
        TraceMemo { traces }
    }

    fn get(&self, profile: NetProfile, duration: Duration) -> Option<Trace> {
        self.traces.get(&(profile, duration)).cloned()
    }
}

/// Execute one cell. Public so single-cell callers (benches, `run_scheme`)
/// share the exact code path of full sweeps.
pub fn execute_scenario(matrix: &str, scenario: &Scenario, master_seed: u64) -> SweepResult {
    let memo = TraceMemo {
        traces: std::collections::HashMap::new(),
    };
    execute_with_memo(matrix, scenario, master_seed, &memo)
}

fn execute_with_memo(
    matrix: &str,
    scenario: &Scenario,
    master_seed: u64,
    memo: &TraceMemo,
) -> SweepResult {
    let started = std::time::Instant::now();
    let cell_seed = derive_labeled_seed(master_seed, "cell", scenario.id);
    let queue = scenario.queue.resolve(scenario.workload);

    if scenario.workload == Workload::InterarrivalProbe {
        // No endpoints: analyse the saturated link's own delivery process.
        let trace_seed = derive_labeled_seed(master_seed, "interarrival-probe", 0);
        let trace = scenario.link.generate(scenario.duration, trace_seed);
        let hist = InterarrivalHistogram::from_trace(&trace, 10, 10_000.0);
        return SweepResult {
            scenario: scenario.clone(),
            matrix: matrix.to_string(),
            queue,
            cell_seed,
            metrics: None,
            flows: Vec::new(),
            series: Vec::new(),
            interarrival: Some(InterarrivalSummary {
                fraction_within_20ms: hist.fraction_within_ms(20.0),
                tail_slope: hist.tail_power_law_slope(20.0, 5_000.0),
                samples: hist.total(),
                rows: hist.rows().filter(|&(_, _, pct)| pct > 0.0).collect(),
            }),
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        };
    }

    // Link traces derive from the master seed and profile only: every cell
    // on this link sees the same conditions (the controlled variable).
    let synth = |profile: NetProfile| {
        memo.get(profile, scenario.duration)
            .unwrap_or_else(|| profile.generate(scenario.duration, master_seed))
    };
    let data_trace = synth(scenario.link);
    let feedback_trace = synth(paired(scenario.link));
    let sprout = match scenario.confidence_pct {
        Some(pct) => SproutConfig::with_confidence_percent(pct),
        None => SproutConfig::paper(),
    };
    let rc = RunConfig {
        duration: scenario.duration,
        warmup: scenario.warmup,
        loss_rate: scenario.loss_rate,
        sprout,
        loss_seed_data: derive_labeled_seed(cell_seed, "loss-data", 0),
        loss_seed_feedback: derive_labeled_seed(cell_seed, "loss-feedback", 0),
        ..RunConfig::new(data_trace, feedback_trace)
    };

    let outcome = run_cell(scenario.workload, &rc, queue, scenario.series_bin);
    SweepResult {
        scenario: scenario.clone(),
        matrix: matrix.to_string(),
        queue,
        cell_seed,
        metrics: outcome.metrics,
        flows: outcome.flows,
        series: outcome.series,
        interarrival: None,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// The raw outcome of [`run_cell`].
#[derive(Clone, Debug, Default)]
pub struct CellOutcome {
    /// Standard direction metrics.
    pub metrics: Option<SchemeResult>,
    /// Per-flow metrics (mux/tunnel cells).
    pub flows: Vec<FlowSummary>,
    /// Collected series (when requested).
    pub series: Vec<SeriesRow>,
}

fn path_configs(rc: &RunConfig, queue: ResolvedQueue) -> (PathConfig, PathConfig) {
    let mut data = PathConfig::standard(rc.data_trace.clone());
    let mut feedback = PathConfig::standard(rc.feedback_trace.clone());
    if queue == ResolvedQueue::CoDel {
        data.link.queue = QueueConfig::CoDel(CoDelConfig::default());
        feedback.link.queue = QueueConfig::CoDel(CoDelConfig::default());
    }
    if rc.loss_rate > 0.0 {
        data.link.loss_rate = rc.loss_rate;
        data.link.loss_seed = rc.loss_seed_data;
        feedback.link.loss_rate = rc.loss_rate;
        feedback.link.loss_seed = rc.loss_seed_feedback;
    }
    (data, feedback)
}

fn mux_clients_a() -> Vec<(FlowId, Box<dyn Endpoint>)> {
    vec![
        (
            BULK_FLOW,
            Box::new(TcpSender::new(Box::new(Cubic::new()))) as Box<dyn Endpoint>,
        ),
        (
            INTERACTIVE_FLOW,
            Box::new(VideoAppSender::new(AppProfile::skype())) as Box<dyn Endpoint>,
        ),
    ]
}

fn mux_clients_b() -> Vec<(FlowId, Box<dyn Endpoint>)> {
    vec![
        (BULK_FLOW, Box::new(TcpReceiver::new()) as Box<dyn Endpoint>),
        (
            INTERACTIVE_FLOW,
            Box::new(VideoAppReceiver::new()) as Box<dyn Endpoint>,
        ),
    ]
}

fn flow_summaries(m: &MetricsCollector, from: Timestamp, to: Timestamp) -> Vec<FlowSummary> {
    [BULK_FLOW, INTERACTIVE_FLOW]
        .into_iter()
        .map(|flow| FlowSummary {
            flow: flow.0,
            throughput_kbps: m.flow_throughput_kbps(flow, from, to),
            p95_delay_ms: m
                .flow_p95_delay(flow, from, to)
                .map(|d| d.as_micros() as f64 / 1e3)
                .unwrap_or(f64::NAN),
        })
        .collect()
}

fn collect_series(
    m: &MetricsCollector,
    trace: &Trace,
    bin: Duration,
    from: Timestamp,
    to: Timestamp,
) -> Vec<SeriesRow> {
    let tput = m.throughput_series_kbps(bin, from, to);
    let capacity = trace.window(from, to).capacity_series_kbps(bin);
    // Worst per-arrival delay per bin.
    let mut worst: Vec<f64> = vec![0.0; tput.len().max(capacity.len())];
    for (at, d) in m.delay_series() {
        if at < from || at >= to {
            continue;
        }
        let key = ((at.as_micros() - from.as_micros()) / bin.as_micros()) as usize;
        if key < worst.len() {
            worst[key] = worst[key].max(d.as_micros() as f64 / 1e3);
        }
    }
    let n = tput.len().min(capacity.len());
    let bin_s = bin.as_secs_f64();
    (0..n)
        .map(|i| SeriesRow {
            t_s: i as f64 * bin_s,
            capacity_kbps: capacity[i],
            throughput_kbps: tput[i].1,
            worst_delay_ms: worst[i],
        })
        .collect()
}

/// Run one workload over prepared traces. This is the single execution
/// path shared by the sweep engine, `run_scheme`, and the benches.
pub fn run_cell(
    workload: Workload,
    rc: &RunConfig,
    queue: ResolvedQueue,
    series_bin: Option<Duration>,
) -> CellOutcome {
    let from = Timestamp::ZERO + rc.warmup;
    let end = Timestamp::ZERO + rc.duration;
    let (data_path, feedback_path) = path_configs(rc, queue);

    match workload {
        Workload::InterarrivalProbe => {
            unreachable!("probe cells are handled by execute_scenario")
        }
        Workload::Scheme(scheme) => {
            let (a, b) = build_endpoints(scheme, rc);
            let mut sim = Simulation::new(a, b, data_path, feedback_path);
            sim.run_until(end);
            let stats = direction_stats(sim.ab_path(), from, end);
            let series = series_bin
                .map(|bin| collect_series(sim.ab_metrics(), &rc.data_trace, bin, from, end))
                .unwrap_or_default();
            CellOutcome {
                metrics: Some(SchemeResult::from_stats(&stats)),
                flows: Vec::new(),
                series,
            }
        }
        Workload::MuxDirect => {
            let mut a = MuxEndpoint::new();
            for (flow, ep) in mux_clients_a() {
                a.add(flow, ep);
            }
            let mut b = MuxEndpoint::new();
            for (flow, ep) in mux_clients_b() {
                b.add(flow, ep);
            }
            let mut sim = Simulation::new(a, b, data_path, feedback_path);
            sim.run_until(end);
            let stats = direction_stats(sim.ab_path(), from, end);
            CellOutcome {
                metrics: Some(SchemeResult::from_stats(&stats)),
                flows: flow_summaries(sim.ab_metrics(), from, end),
                series: Vec::new(),
            }
        }
        Workload::MuxTunneled => {
            let mut host_a =
                TunnelHost::new(TunnelEndpoint::new(SproutEndpoint::new(rc.sprout.clone())));
            for (flow, ep) in mux_clients_a() {
                host_a.add_client(flow, ep);
            }
            let mut host_b =
                TunnelHost::new(TunnelEndpoint::new(SproutEndpoint::new(rc.sprout.clone())));
            for (flow, ep) in mux_clients_b() {
                host_b.add_client(flow, ep);
            }
            let mut sim = Simulation::new(host_a, host_b, data_path, feedback_path);
            sim.run_until(end);
            let stats = direction_stats(sim.ab_path(), from, end);
            // Flow metrics come from the far host's post-decapsulation
            // delivery log: the tunnel's own wire packets are what the
            // path sees, the clients' packets are what it delivers.
            CellOutcome {
                metrics: Some(SchemeResult::from_stats(&stats)),
                flows: flow_summaries(sim.b.deliveries(), from, end),
                series: Vec::new(),
            }
        }
    }
}

// ------------------------------------------------------------------ JSON

pub(crate) fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display is deterministic, giving
        // bit-identical files for identical results.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

pub(crate) fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render one result as a single-line JSON object with a stable key order.
pub fn result_to_json(r: &SweepResult) -> String {
    let mut o = String::with_capacity(256);
    o.push_str("{\"id\":");
    o.push_str(&r.scenario.id.to_string());
    o.push_str(",\"label\":");
    json_str(&mut o, &r.scenario.label);
    o.push_str(",\"matrix\":");
    json_str(&mut o, &r.matrix);
    o.push_str(",\"workload\":");
    json_str(&mut o, r.scenario.workload.id());
    o.push_str(",\"scheme\":");
    match r.scenario.workload.scheme() {
        Some(s) => json_str(&mut o, s.name()),
        None => o.push_str("null"),
    }
    o.push_str(",\"link\":");
    json_str(&mut o, r.scenario.link.id());
    o.push_str(",\"queue\":");
    json_str(&mut o, r.queue.id());
    o.push_str(",\"loss_rate\":");
    json_f64(&mut o, r.scenario.loss_rate);
    o.push_str(",\"confidence_pct\":");
    match r.scenario.confidence_pct {
        Some(p) => json_f64(&mut o, p),
        None => o.push_str("null"),
    }
    o.push_str(",\"duration_s\":");
    json_f64(&mut o, r.scenario.duration.as_secs_f64());
    o.push_str(",\"warmup_s\":");
    json_f64(&mut o, r.scenario.warmup.as_secs_f64());
    o.push_str(",\"cell_seed\":");
    o.push_str(&r.cell_seed.to_string());
    o.push_str(",\"metrics\":");
    match &r.metrics {
        None => o.push_str("null"),
        Some(m) => {
            o.push_str("{\"throughput_kbps\":");
            json_f64(&mut o, m.throughput_kbps);
            o.push_str(",\"p95_delay_ms\":");
            json_f64(&mut o, m.p95_delay_ms);
            o.push_str(",\"self_inflicted_ms\":");
            json_f64(&mut o, m.self_inflicted_ms);
            o.push_str(",\"omniscient_ms\":");
            json_f64(&mut o, m.omniscient_ms);
            o.push_str(",\"utilization\":");
            json_f64(&mut o, m.utilization);
            o.push('}');
        }
    }
    o.push_str(",\"flows\":[");
    for (i, f) in r.flows.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str("{\"flow\":");
        o.push_str(&f.flow.to_string());
        o.push_str(",\"throughput_kbps\":");
        json_f64(&mut o, f.throughput_kbps);
        o.push_str(",\"p95_delay_ms\":");
        json_f64(&mut o, f.p95_delay_ms);
        o.push('}');
    }
    o.push_str("],\"series\":[");
    for (i, s) in r.series.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push('[');
        json_f64(&mut o, s.t_s);
        o.push(',');
        json_f64(&mut o, s.capacity_kbps);
        o.push(',');
        json_f64(&mut o, s.throughput_kbps);
        o.push(',');
        json_f64(&mut o, s.worst_delay_ms);
        o.push(']');
    }
    o.push(']');
    o.push_str(",\"interarrival\":");
    match &r.interarrival {
        None => o.push_str("null"),
        Some(ia) => {
            o.push_str("{\"fraction_within_20ms\":");
            json_f64(&mut o, ia.fraction_within_20ms);
            o.push_str(",\"tail_slope\":");
            match ia.tail_slope {
                Some(s) => json_f64(&mut o, s),
                None => o.push_str("null"),
            }
            o.push_str(",\"samples\":");
            o.push_str(&ia.samples.to_string());
            o.push_str(",\"histogram\":[");
            for (i, &(lo, hi, pct)) in ia.rows.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                o.push('[');
                json_f64(&mut o, lo);
                o.push(',');
                json_f64(&mut o, hi);
                o.push(',');
                json_f64(&mut o, pct);
                o.push(']');
            }
            o.push_str("]}");
        }
    }
    o.push('}');
    o
}

/// Render a whole sweep as a canonical JSON document: header line, then
/// one line per cell (diffable; bit-identical for identical results).
pub fn sweep_to_json(matrix_name: &str, master_seed: u64, results: &[SweepResult]) -> String {
    let mut o = String::new();
    o.push_str("{\"matrix\":");
    json_str(&mut o, matrix_name);
    o.push_str(",\"master_seed\":");
    o.push_str(&master_seed.to_string());
    o.push_str(",\"cells\":[\n");
    for (i, r) in results.iter().enumerate() {
        o.push_str(&result_to_json(r));
        if i + 1 < results.len() {
            o.push(',');
        }
        o.push('\n');
    }
    o.push_str("]}\n");
    o
}

/// Write a sweep's canonical JSON to `writer`.
pub fn write_json(
    writer: &mut impl std::io::Write,
    matrix_name: &str,
    master_seed: u64,
    results: &[SweepResult],
) -> std::io::Result<()> {
    writer.write_all(sweep_to_json(matrix_name, master_seed, results).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioMatrix;
    use crate::schemes::Scheme;
    use sprout_trace::NetProfile;

    fn tiny_matrix() -> ScenarioMatrix {
        ScenarioMatrix::builder("tiny")
            .schemes([Scheme::SproutEwma, Scheme::Cubic])
            .links([NetProfile::TmobileUmtsDown])
            .timing(Duration::from_secs(30), Duration::from_secs(5))
            .build()
    }

    #[test]
    fn results_are_in_matrix_order() {
        let m = tiny_matrix();
        let results = SweepEngine::new(7).with_threads(2).run(&m);
        assert_eq!(results.len(), m.len());
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.scenario.id, i as u64);
            assert_eq!(r.scenario, m.cells()[i]);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let m = tiny_matrix();
        let one = SweepEngine::new(11).with_threads(1).run(&m);
        let four = SweepEngine::new(11).with_threads(4).run(&m);
        assert_eq!(
            sweep_to_json(m.name(), 11, &one),
            sweep_to_json(m.name(), 11, &four)
        );
    }

    #[test]
    fn simulations_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Simulation<Box<dyn Endpoint>, Box<dyn Endpoint>>>();
        assert_send::<Scenario>();
    }

    #[test]
    fn json_escapes_and_nan() {
        let mut s = String::new();
        json_str(&mut s, "a\"b\\c\n");
        assert_eq!(s, "\"a\\\"b\\\\c\\u000a\"");
        let mut f = String::new();
        json_f64(&mut f, f64::NAN);
        assert_eq!(f, "null");
    }
}
