//! The scenario-matrix sweep engine.
//!
//! [`SweepEngine`] executes every cell of a [`ScenarioMatrix`] and returns
//! one [`SweepResult`] per cell, in matrix order. Cells fan out across a
//! small worker pool ([`SweepEngine::threads`]); every stochastic input of
//! a cell — the link traces, the Bernoulli loss processes — is seeded
//! deterministically:
//!
//! * **link traces** derive from the master seed and the link profile
//!   alone, so every cell on one link sees *identical* link conditions
//!   (the controlled variable of Figure 7's scheme comparison);
//! * **per-cell randomness** (the loss processes) derives from
//!   `(master_seed, scenario.id)` via [`sprout_trace::derive_seed`], so
//!   cells are mutually independent but individually reproducible.
//!
//! Consequently a sweep is bit-identical for any thread count or
//! execution order, and [`write_json`] emits a canonical, diffable record
//! of the whole matrix (the `BENCH_*.json` trajectory format).
//!
//! **Sharding and resumption.** Because every cell is a pure function of
//! `(engine version, matrix, scenario, master_seed)`, the engine can
//! split one matrix across processes ([`ShardSpec`]) and persist each
//! finished cell in the shared artifact cache (`crate::cellcache`). A
//! [`CellCachePolicy::Resume`] run serves cached cells and executes only
//! the rest; [`CellCachePolicy::Merge`] reassembles a complete sweep from
//! the cache alone, bit-identical to a single-shot run. Panicking cells
//! are isolated per cell: survivors finish (and are cached), and the
//! failure names every offending `scenario.id` instead of poisoning the
//! whole sweep. A per-cell wall-clock watchdog
//! ([`SweepEngine::cell_timeout`]) turns a wedged cell into the same
//! kind of named failure: each cell runs on an abandonable thread, so a
//! hang costs one timeout instead of the sweep.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use sprout_baselines::{
    AppProfile, Cubic, TcpReceiver, TcpSender, VideoAppReceiver, VideoAppSender,
};
use sprout_core::{SproutConfig, SproutEndpoint};
use sprout_sim::{
    direction_stats, jain_fairness_index, CoDelConfig, Endpoint, FlowId, LinkImpairment,
    MetricsCollector, MuxEndpoint, PathConfig, QueueConfig, ServeSim, Simulation, DEEP_QUEUE_BYTES,
};
use sprout_trace::{
    cancel, derive_labeled_seed, session_seed, Duration, InterarrivalHistogram, OutageSchedule,
    Timestamp, Trace,
};
use sprout_tunnel::{SproutServer, TunnelEndpoint, TunnelHost};

use crate::scenario::{
    paired, FlowSpec, LinkSpec, ResolvedQueue, Scenario, ScenarioMatrix, Workload,
};
use crate::schemes::{build_endpoints, RunConfig, Scheme, SchemeResult};

/// The bulk flow of the §5.7 mux/tunnel cells.
pub const BULK_FLOW: FlowId = FlowId(1);
/// The interactive flow of the §5.7 mux/tunnel cells.
pub const INTERACTIVE_FLOW: FlowId = FlowId(2);

/// Per-flow summary of a mux/tunnel cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowSummary {
    /// Flow identifier.
    pub flow: u32,
    /// Average throughput in the measurement window, kbps.
    pub throughput_kbps: f64,
    /// 95% end-to-end delay, ms (NaN when the flow never delivered).
    pub p95_delay_ms: f64,
}

/// One bin of a collected time series (Figure 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesRow {
    /// Bin start relative to the measurement window, seconds.
    pub t_s: f64,
    /// Link capacity in the bin, kbps.
    pub capacity_kbps: f64,
    /// Achieved throughput in the bin, kbps.
    pub throughput_kbps: f64,
    /// Worst per-arrival delay in the bin, ms (0 when nothing arrived).
    pub worst_delay_ms: f64,
}

/// Per-cell time-series payload of the "cell-series" artifact
/// (`reproduce --timeseries`): every per-arrival delay sample plus
/// per-bin capacity/throughput/queue-depth rows over the measurement
/// window. Collected for scheme workloads (the replay, impair, and soak
/// matrices); workloads without a single metered direction (probe,
/// serve) ignore the request.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CellSeries {
    /// Bin width of [`Self::bins`], microseconds (a [`Duration`] tick
    /// count; kept integral so the artifact encoding is exact).
    pub bin_us: u64,
    /// Per-arrival samples `(seconds since window start, delay ms)`.
    pub delays: Vec<(f64, f64)>,
    /// Per-bin rows covering the whole measurement window.
    pub bins: Vec<CellSeriesBin>,
}

/// One bin of a [`CellSeries`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellSeriesBin {
    /// Bin start, seconds since the measurement window opened.
    pub t_s: f64,
    /// Link capacity in the bin, kbps.
    pub capacity_kbps: f64,
    /// Achieved throughput in the bin, kbps.
    pub throughput_kbps: f64,
    /// Packets in flight (sent but not yet delivered) at the bin start.
    pub queue_depth: u64,
}

/// Interarrival statistics of a saturated link (Figure 2).
#[derive(Clone, Debug, PartialEq)]
pub struct InterarrivalSummary {
    /// Fraction of interarrivals within 20 ms (paper: 99.99%).
    pub fraction_within_20ms: f64,
    /// Power-law slope of the 20 ms–5 s tail (paper: −3.27).
    pub tail_slope: Option<f64>,
    /// Total interarrivals measured.
    pub samples: u64,
    /// Non-empty histogram bins: (bin start ms, bin end ms, percent).
    pub rows: Vec<(f64, f64, f64)>,
}

/// Deterministic summary of one multi-session serve cell. Wall-clock
/// capacity numbers (sessions/sec, per-session heap, tick latency) are
/// deliberately *not* here — they live in the `BENCH_sweep.json`
/// trajectory (`crate::perf`) — so this payload stays bit-identical
/// across machines, thread counts, and batch modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeStats {
    /// Number of concurrent sessions the cell served.
    pub sessions: u32,
    /// Sum of per-session uplink wire bytes delivered to the server in
    /// the measurement window.
    pub delivered_bytes: u64,
    /// Smallest per-session delivered-byte count in the window (a
    /// starving session shows up here, not hidden in the average).
    pub min_session_bytes: u64,
    /// Largest per-session delivered-byte count in the window.
    pub max_session_bytes: u64,
    /// Full-run wire bytes the event loop handed to the server, counted
    /// by the loop itself. The conservation property: this equals the
    /// sum over sessions of full-run per-path delivered bytes (the serve
    /// arm asserts it on every run).
    pub wire_delivered_bytes: u64,
}

/// The structured outcome of one scenario cell.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepResult {
    /// The cell that produced this row.
    pub scenario: Scenario,
    /// The matrix this cell belongs to.
    pub matrix: String,
    /// Queue discipline the cell actually ran behind.
    pub queue: ResolvedQueue,
    /// The derived per-cell seed (all cell-local randomness stems from it).
    pub cell_seed: u64,
    /// Standard direction metrics (absent for the interarrival probe).
    pub metrics: Option<SchemeResult>,
    /// Per-flow metrics (mux/tunnel/contention cells only). For
    /// contention cells, `flows[i]` is the cell's i-th declared
    /// [`FlowSpec`] (`FlowId(i + 1)`).
    pub flows: Vec<FlowSummary>,
    /// Jain's fairness index over the per-flow throughputs (contention
    /// cells only; `None` elsewhere).
    pub fairness: Option<f64>,
    /// Per-bin series (only when the scenario requested one).
    pub series: Vec<SeriesRow>,
    /// Interarrival statistics (probe cells only).
    pub interarrival: Option<InterarrivalSummary>,
    /// Multi-session capacity summary (serve cells only).
    pub serve: Option<ServeStats>,
    /// Per-cell time series (only when the scenario requested one via
    /// [`Scenario::cell_series_bin`] and the workload produces one —
    /// scheme workloads do, probe/serve cells don't). Persisted as its
    /// own "cell-series" artifact and **excluded** from the canonical
    /// sweep JSON; the TSV renderings are the deliverable.
    pub cell_series: Option<CellSeries>,
    /// Wall-clock execution time of this cell, milliseconds. Measured,
    /// not simulated — deliberately **excluded** from the canonical
    /// sweep JSON (which must stay bit-identical across machines and
    /// thread counts); the `BENCH_sweep.json` trajectory records it.
    pub wall_ms: f64,
}

/// Execution statistics of one sweep run: wall time plus the disk-cache
/// traffic the run generated. Cache counters are process-global deltas,
/// so run sweeps one at a time when attributing traffic to a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepStats {
    /// Wall-clock time of the whole `run` call, milliseconds.
    pub total_wall_ms: f64,
    /// Forecast-table disk-cache traffic during the run.
    pub table_cache: sprout_cache::CacheCounters,
    /// Trace-synthesis disk-cache traffic during the run.
    pub trace_cache: sprout_cache::CacheCounters,
    /// Cell-result disk-cache traffic during the run (hits mean whole
    /// cells were served without simulating).
    pub cell_cache: sprout_cache::CacheCounters,
    /// Batch-executor layout and in-memory amortization during the run.
    pub batch: BatchStats,
}

/// How the batch executor laid out one sweep and how well the in-memory
/// shared resources amortized across its cells. Unlike the disk-cache
/// counters in [`SweepStats`], a "reuse" here means a live in-memory
/// handle was served — no disk I/O, no decode, no rebuild.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchStats {
    /// Whether batched execution was enabled ([`SweepEngine::batch`]).
    pub enabled: bool,
    /// Worker threads the executed phase actually spawned (0 when every
    /// cell was served from the result cache).
    pub workers: usize,
    /// Cell batches the pending work was grouped into (0 when nothing
    /// executed; equals the pending-cell count when batching is off).
    pub batches: usize,
    /// Forecast-table in-memory amortization (process-global delta).
    pub tables: sprout_core::MemCounters,
    /// Link-trace in-memory amortization (process-global delta).
    pub traces: sprout_core::MemCounters,
}

static TRACES_BUILT: AtomicU64 = AtomicU64::new(0);
static TRACES_REUSED: AtomicU64 = AtomicU64::new(0);
static TRACES_EVICTED: AtomicU64 = AtomicU64::new(0);
static TRACE_MEMO_LEN: AtomicU64 = AtomicU64::new(0);
static LAST_WORKERS: AtomicUsize = AtomicUsize::new(0);
static LAST_BATCHES: AtomicUsize = AtomicUsize::new(0);
static CELLS_PANICKED: AtomicU64 = AtomicU64::new(0);
static CELLS_TIMED_OUT: AtomicU64 = AtomicU64::new(0);
/// Gauge (not a counter): cell threads the watchdog has abandoned that
/// have not yet honored their cancellation and exited.
static ABANDONED_LIVE: AtomicU64 = AtomicU64::new(0);

/// Cumulative process-wide counts of cells that did not finish: `failed`
/// counts panics, `timed_out` counts watchdog kills. Like the cache
/// counters these only ever grow; attribute them to one sweep by taking
/// deltas with [`CellFailureCounters::since`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CellFailureCounters {
    /// Cells whose execution panicked.
    pub failed: u64,
    /// Cells killed by the per-cell watchdog ([`SweepEngine::cell_timeout`]).
    pub timed_out: u64,
}

impl CellFailureCounters {
    /// The delta accumulated since an `earlier` snapshot.
    pub fn since(self, earlier: Self) -> Self {
        CellFailureCounters {
            failed: self.failed - earlier.failed,
            timed_out: self.timed_out - earlier.timed_out,
        }
    }
}

/// Process-wide cell-failure counters (cumulative).
pub fn cell_failure_counters() -> CellFailureCounters {
    CellFailureCounters {
        failed: CELLS_PANICKED.load(Ordering::Relaxed),
        timed_out: CELLS_TIMED_OUT.load(Ordering::Relaxed),
    }
}

/// Process-wide in-memory trace amortization counters: `built` counts
/// link-trace syntheses actually performed, `reused` counts requests
/// served by an already-synthesized in-memory trace (the sweep memo).
pub fn trace_memory_counters() -> sprout_core::MemCounters {
    sprout_core::MemCounters {
        built: TRACES_BUILT.load(Ordering::Relaxed),
        reused: TRACES_REUSED.load(Ordering::Relaxed),
    }
}

/// Live abandoned cell threads: cells the watchdog timed out whose
/// threads have not yet honored the cooperative cancellation and exited.
/// Transiently nonzero right after a timeout; a value that *stays*
/// nonzero means a cell is wedged somewhere without a cancellation
/// checkpoint — a long-running daemon alarms on exactly that.
pub fn abandoned_cell_threads() -> u64 {
    ABANDONED_LIVE.load(Ordering::Acquire)
}

/// Occupancy of the most recent sweep's trace memo: `(live_entries,
/// evictions_total)`. Live entries never exceed the memo's LRU cap, so a
/// daemon sweeping many disjoint `(link, duration)` geometries holds a
/// bounded number of synthesized traces in memory at once.
pub fn trace_memo_occupancy() -> (usize, u64) {
    (
        TRACE_MEMO_LEN.load(Ordering::Relaxed) as usize,
        TRACES_EVICTED.load(Ordering::Relaxed),
    )
}

/// The worker/batch layout of the most recent sweep execution in this
/// process: `(workers, batches)`, both 0 when the last sweep executed
/// nothing (fully cache-served).
pub fn last_batch_layout() -> (usize, usize) {
    (
        LAST_WORKERS.load(Ordering::Relaxed),
        LAST_BATCHES.load(Ordering::Relaxed),
    )
}

/// Which slice of a matrix one process owns. Cells are dealt round-robin
/// by scenario id (`id % count == index`), so every shard gets a
/// near-equal share of each workload/link stripe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// This process's shard, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl ShardSpec {
    /// The whole matrix in one process (the default).
    pub const FULL: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// Shard `index` of `count`.
    pub fn new(index: usize, count: usize) -> Self {
        assert!(count > 0, "shard count must be positive");
        assert!(index < count, "shard index must be < count");
        ShardSpec { index, count }
    }

    /// Parse the CLI form `I/N` (e.g. `0/2`). `None` on any malformed or
    /// out-of-range spec.
    pub fn parse(spec: &str) -> Option<Self> {
        let (i, n) = spec.split_once('/')?;
        let index: usize = i.parse().ok()?;
        let count: usize = n.parse().ok()?;
        (count > 0 && index < count).then(|| ShardSpec::new(index, count))
    }

    /// Whether this shard owns scenario `id`.
    pub fn owns(&self, id: u64) -> bool {
        id % self.count as u64 == self.index as u64
    }

    /// Whether this spec covers the whole matrix.
    pub fn is_full(&self) -> bool {
        self.count == 1
    }
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec::FULL
    }
}

/// How a sweep uses the per-cell result cache. Executed cells are always
/// *stored* (best-effort, no-op when the cache is disabled); the policy
/// governs *loading*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CellCachePolicy {
    /// Execute every owned cell (the default — recomputation is itself
    /// the determinism check the CI smoke relies on).
    #[default]
    Execute,
    /// Serve cells already in the cache, execute the rest (`--resume`).
    Resume,
    /// Serve every owned cell from the cache; any miss is an error
    /// naming the absent cells (`--merge`).
    Merge,
}

/// One cell that panicked — or exceeded the watchdog timeout — during
/// execution.
#[derive(Clone, Debug)]
pub struct CellFailure {
    /// The failing cell's stable identity.
    pub scenario_id: u64,
    /// Its human-readable label.
    pub label: String,
    /// The panic message (or the watchdog's timeout description).
    pub message: String,
    /// Whether the cell was killed by the watchdog rather than
    /// panicking. Timed-out cells are never cached, so a `--resume`
    /// rerun re-executes exactly them (plus any panics).
    pub timed_out: bool,
}

/// Why a sweep could not produce a complete result set. Every variant
/// names the matrix (experiment) it belongs to, so a multi-experiment
/// invocation (`reproduce all`) reports *which* sweep failed, not just
/// scenario ids that are only unique within one matrix.
#[derive(Clone, Debug)]
pub enum SweepError {
    /// One or more cells panicked or exceeded the watchdog timeout.
    /// Surviving cells finished and were persisted to the cell cache,
    /// so a `Resume` rerun only redoes the failures.
    CellsPanicked {
        /// The matrix whose cells failed.
        matrix: String,
        /// Every failing cell, in scenario-id order.
        failures: Vec<CellFailure>,
    },
    /// A [`CellCachePolicy::Merge`] run found cells absent from the
    /// cache (a shard has not run yet, or the cache was keyed under a
    /// different matrix/seed/engine version).
    MissingCells {
        /// The matrix being merged.
        matrix: String,
        /// Labels of every absent cell.
        labels: Vec<String>,
    },
}

impl SweepError {
    /// The matrix (experiment) the failure belongs to.
    pub fn matrix(&self) -> &str {
        match self {
            SweepError::CellsPanicked { matrix, .. } => matrix,
            SweepError::MissingCells { matrix, .. } => matrix,
        }
    }
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::CellsPanicked { matrix, failures } => {
                writeln!(f, "{} cell(s) of {matrix:?} failed:", failures.len())?;
                for c in failures {
                    writeln!(
                        f,
                        "  scenario {} ({}): {}",
                        c.scenario_id, c.label, c.message
                    )?;
                }
                write!(
                    f,
                    "surviving cells were cached; rerun with resume to redo only the failures"
                )
            }
            SweepError::MissingCells { matrix, labels } => {
                writeln!(
                    f,
                    "merge of {matrix:?}: {} cell(s) absent from the result cache:",
                    labels.len()
                )?;
                for l in labels {
                    writeln!(f, "  {l}")?;
                }
                write!(
                    f,
                    "run the missing shard(s) against this cache directory, or resume instead of merging"
                )
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// Executes scenario matrices over a worker pool.
#[derive(Clone, Copy, Debug)]
pub struct SweepEngine {
    /// Master seed; every stochastic input of the sweep derives from it.
    pub master_seed: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// The slice of each matrix this engine owns.
    pub shard: ShardSpec,
    /// How the per-cell result cache is consulted.
    pub policy: CellCachePolicy,
    /// Batched execution (the default): pending cells are grouped by
    /// shared trace/table key and dealt to workers a batch at a time, so
    /// cells sharing heavy precomputed inputs run consecutively on one
    /// worker (warm in-memory handles, recycled scratch arenas). Off,
    /// every cell is its own batch — the pre-batching schedule. Either
    /// way results are bit-identical; only the execution order differs.
    pub batch: bool,
    /// Per-cell watchdog: a cell still running after this wall-clock
    /// budget is abandoned and reported as a named [`CellFailure`]
    /// (with [`CellFailure::timed_out`] set) instead of wedging the
    /// sweep. The default is generous — orders of magnitude above any
    /// real cell — so it only ever fires on genuine hangs. Timed-out
    /// cells are never cached, so a `Resume` rerun redoes exactly them.
    pub cell_timeout: std::time::Duration,
}

/// The default per-cell watchdog budget ([`SweepEngine::cell_timeout`]).
pub const DEFAULT_CELL_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(600);

impl SweepEngine {
    /// An engine with the given master seed and automatic thread count.
    pub fn new(master_seed: u64) -> Self {
        SweepEngine {
            master_seed,
            threads: 0,
            shard: ShardSpec::FULL,
            policy: CellCachePolicy::Execute,
            batch: true,
            cell_timeout: DEFAULT_CELL_TIMEOUT,
        }
    }

    /// Override the worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Restrict the engine to one shard of each matrix.
    pub fn with_shard(mut self, shard: ShardSpec) -> Self {
        self.shard = shard;
        self
    }

    /// Set the cell-result cache policy.
    pub fn with_policy(mut self, policy: CellCachePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enable or disable batched cell execution.
    pub fn with_batch(mut self, batch: bool) -> Self {
        self.batch = batch;
        self
    }

    /// Override the per-cell watchdog budget. Must be nonzero.
    pub fn with_cell_timeout(mut self, timeout: std::time::Duration) -> Self {
        assert!(
            !timeout.is_zero(),
            "the cell watchdog timeout must be nonzero"
        );
        self.cell_timeout = timeout;
        self
    }

    fn effective_threads(&self, cells: usize) -> usize {
        // `available_parallelism` probes the OS (cgroups, affinity masks)
        // on every call; one probe per process is plenty — the answer
        // cannot change in ways this engine should react to mid-run.
        static AUTO: OnceLock<usize> = OnceLock::new();
        let n = if self.threads == 0 {
            *AUTO.get_or_init(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
        } else {
            self.threads
        };
        n.clamp(1, cells.max(1))
    }

    /// Run every cell of `matrix` and report execution statistics
    /// alongside the results: per-cell wall time lands in each
    /// [`SweepResult::wall_ms`], sweep-level wall time and disk-cache
    /// traffic in the returned [`SweepStats`].
    pub fn run_with_stats(&self, matrix: &ScenarioMatrix) -> (Vec<SweepResult>, SweepStats) {
        let table0 = sprout_core::table_cache_counters();
        let trace0 = sprout_trace::trace_cache_counters();
        let cell0 = crate::cellcache::cell_cache_counters();
        let tmem0 = sprout_core::table_memory_counters();
        let trmem0 = trace_memory_counters();
        let t0 = std::time::Instant::now();
        let results = self.run(matrix);
        let (workers, batches) = last_batch_layout();
        let stats = SweepStats {
            total_wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            table_cache: sprout_core::table_cache_counters().since(table0),
            trace_cache: sprout_trace::trace_cache_counters().since(trace0),
            cell_cache: crate::cellcache::cell_cache_counters().since(cell0),
            batch: BatchStats {
                enabled: self.batch,
                workers,
                batches,
                tables: sprout_core::table_memory_counters().since(tmem0),
                traces: trace_memory_counters().since(trmem0),
            },
        };
        (results, stats)
    }

    /// Run every owned cell of `matrix`; panics with the aggregated
    /// [`SweepError`] on failure. Library callers that want to keep
    /// surviving results should use [`Self::try_run`].
    pub fn run(&self, matrix: &ScenarioMatrix) -> Vec<SweepResult> {
        self.try_run(matrix).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run every cell of `matrix` this engine's shard owns, in matrix
    /// order: `results[k]` corresponds to the k-th owned cell regardless
    /// of thread interleaving (for the default full shard, `results[i]`
    /// is `matrix.cells()[i]`).
    ///
    /// Depending on [`Self::policy`], cells may be served from the
    /// per-cell result cache instead of executing; every *executed* cell
    /// is persisted there (best-effort). A panicking cell does not take
    /// the sweep down: the other cells complete (and are cached) and the
    /// returned [`SweepError::CellsPanicked`] names each failure.
    pub fn try_run(&self, matrix: &ScenarioMatrix) -> Result<Vec<SweepResult>, SweepError> {
        let matrix_fp = matrix.fingerprint();
        let owned: Vec<&Scenario> = matrix
            .cells()
            .iter()
            .filter(|c| self.shard.owns(c.id))
            .collect();

        // Phase 1: serve what the cache already holds (policy permitting).
        let mut results: Vec<Option<SweepResult>> = vec![None; owned.len()];
        let mut pending: Vec<usize> = Vec::new();
        for (k, cell) in owned.iter().enumerate() {
            let cached = match self.policy {
                CellCachePolicy::Execute => None,
                CellCachePolicy::Resume | CellCachePolicy::Merge => {
                    crate::cellcache::load_cell(matrix.name(), matrix_fp, cell, self.master_seed)
                }
            };
            match cached {
                Some(r) => results[k] = Some(r),
                None => pending.push(k),
            }
        }
        if self.policy == CellCachePolicy::Merge && !pending.is_empty() {
            return Err(SweepError::MissingCells {
                matrix: matrix.name().to_string(),
                labels: pending.iter().map(|&k| owned[k].label.clone()).collect(),
            });
        }

        // Phase 2: execute the rest over the worker pool. Traces depend
        // only on (master_seed, link, duration) — synthetic links
        // generate from the seed, measured links resolve from the
        // registry — so all pending cells sharing a link replay one
        // resolution instead of each redoing it (fig7: 80 cells but only
        // 8 links × 2 directions); fully-cached sweeps build nothing at
        // all.
        //
        // Batched execution deals cells to workers one *batch* at a time:
        // pending cells are grouped by their shared-input key (link
        // profile and duration — the trace key, which also covers the
        // forecast-table geometry, since every cell of one link/duration
        // stripe shares a [`sprout_core::SproutConfig`] table geometry)
        // and a worker claims a whole group, running its cells
        // consecutively with one recycled [`CellScratch`] arena. Cells
        // are pure functions of their scenario, so the schedule cannot
        // change results — only locality.
        let mut failures: Vec<CellFailure> = Vec::new();
        if pending.is_empty() {
            LAST_WORKERS.store(0, Ordering::Relaxed);
            LAST_BATCHES.store(0, Ordering::Relaxed);
        } else {
            let memo = std::sync::Arc::new(TraceMemo::new(self.master_seed));
            let groups = batch_groups(&pending, |j| owned[pending[j]], self.batch);
            let threads = self.effective_threads(groups.len());
            LAST_WORKERS.store(threads, Ordering::Relaxed);
            LAST_BATCHES.store(groups.len(), Ordering::Relaxed);
            let slots: Vec<Mutex<Option<Result<SweepResult, CellFailure>>>> =
                pending.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);

            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        let mut scratch = CellScratch::default();
                        loop {
                            let g = next.fetch_add(1, Ordering::Relaxed);
                            if g >= groups.len() {
                                break;
                            }
                            for &j in &groups[g] {
                                let cell = owned[pending[j]];
                                let entry = match run_watchdogged(
                                    matrix.name(),
                                    cell,
                                    self.master_seed,
                                    &memo,
                                    std::mem::take(&mut scratch),
                                    self.cell_timeout,
                                ) {
                                    Ok((result, returned)) => {
                                        scratch = returned;
                                        crate::cellcache::store_cell(
                                            matrix_fp,
                                            self.master_seed,
                                            &result,
                                        );
                                        Ok(result)
                                    }
                                    Err(failure) => Err(failure),
                                };
                                *slots[j].lock().unwrap() = Some(entry);
                            }
                        }
                    });
                }
            });

            for (j, slot) in slots.into_iter().enumerate() {
                // Worker panics were caught per cell, so the slot mutex
                // cannot be poisoned and every slot was filled.
                match slot
                    .into_inner()
                    .unwrap()
                    .expect("every pending cell visited")
                {
                    Ok(r) => results[pending[j]] = Some(r),
                    Err(failure) => failures.push(failure),
                }
            }
        }

        if !failures.is_empty() {
            failures.sort_by_key(|f| f.scenario_id);
            for f in &failures {
                let counter = if f.timed_out {
                    &CELLS_TIMED_OUT
                } else {
                    &CELLS_PANICKED
                };
                counter.fetch_add(1, Ordering::Relaxed);
            }
            return Err(SweepError::CellsPanicked {
                matrix: matrix.name().to_string(),
                failures,
            });
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every owned cell resolved"))
            .collect())
    }
}

/// Execute one cell on a dedicated (non-scoped) thread under a
/// wall-clock watchdog. The cell thread owns clones of everything it
/// needs, so a wedged cell can be *abandoned* — the worker stops
/// waiting, reports a named timeout failure, and moves on — without
/// wedging the sweep's scope join. On success the recycled scratch
/// arena rides back with the result; a panic or timeout forfeits it
/// (mid-panic state is unknown, and an abandoned thread still owns its
/// arena), so the worker starts the next cell from a fresh one.
///
/// Abandonment is not fire-and-forget: the watchdog arms the cell's
/// [`cancel::CancelToken`] on timeout, the simulation/synthesis loops
/// honor it at their next checkpoint, and the [`abandoned_cell_threads`]
/// gauge tracks threads between abandonment and their cooperative exit —
/// so a timed-out cell costs milliseconds of extra CPU, not the rest of
/// its virtual duration at wall speed.
fn run_watchdogged(
    matrix: &str,
    cell: &Scenario,
    master_seed: u64,
    memo: &std::sync::Arc<TraceMemo>,
    scratch: CellScratch,
    timeout: std::time::Duration,
) -> Result<(SweepResult, CellScratch), CellFailure> {
    cancel::silence_cancelled_panics();
    let (tx, rx) = std::sync::mpsc::channel();
    let name = matrix.to_string();
    let scenario = cell.clone();
    let memo = std::sync::Arc::clone(memo);
    let token = cancel::CancelToken::new();
    // Cell-thread lifecycle, shared with the watchdog: 0 = running,
    // 1 = exited, 2 = abandoned. Whoever transitions *second* across the
    // abandon/exit race settles the [`ABANDONED_LIVE`] gauge.
    let state = std::sync::Arc::new(std::sync::atomic::AtomicU8::new(0));
    let cell_token = token.clone();
    let cell_state = std::sync::Arc::clone(&state);
    std::thread::spawn(move || {
        let mut scratch = scratch;
        let guard = cancel::CancelGuard::install(cell_token);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            execute_with_memo(&name, &scenario, master_seed, &memo, &mut scratch)
        }));
        drop(guard);
        let scratch = match &outcome {
            Ok(_) => scratch,
            Err(_) => CellScratch::default(),
        };
        // Send fails only when the watchdog already gave up on us; the
        // late (or cancellation-unwound) result is deliberately dropped
        // and never cached.
        let _ = tx.send((outcome, scratch));
        if cell_state.swap(1, Ordering::AcqRel) == 2 {
            // The watchdog abandoned us and we just exited: settle the
            // live-abandoned gauge back down.
            ABANDONED_LIVE.fetch_sub(1, Ordering::AcqRel);
        }
    });
    match rx.recv_timeout(timeout) {
        Ok((Ok(result), scratch)) => Ok((result, scratch)),
        Ok((Err(payload), _)) => Err(CellFailure {
            scenario_id: cell.id,
            label: cell.label.clone(),
            message: panic_message(payload.as_ref()),
            timed_out: false,
        }),
        // Timeout — or the cell thread dying without reporting, which
        // the per-cell catch_unwind makes unreachable in practice.
        Err(_) => {
            ABANDONED_LIVE.fetch_add(1, Ordering::AcqRel);
            if state.swap(2, Ordering::AcqRel) == 1 {
                // Lost the race: the thread exited between the timeout
                // and the abandonment mark. Undo the gauge bump.
                ABANDONED_LIVE.fetch_sub(1, Ordering::AcqRel);
            }
            token.cancel();
            Err(CellFailure {
                scenario_id: cell.id,
                label: cell.label.clone(),
                message: format!("exceeded the {}s cell watchdog timeout", timeout.as_secs()),
                timed_out: true,
            })
        }
    }
}

/// Best-effort rendering of a panic payload (the common `&str`/`String`
/// payloads; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Group pending-cell indices (`0..pending_len`) into batches of cells
/// sharing one `(link, duration)` stripe — the key under which both the
/// synthesized traces and the forecast-table geometry are shared. Groups
/// preserve first-occurrence order and cells stay in matrix order within
/// a group, so the schedule is deterministic. With batching off, every
/// cell is its own (singleton) group.
fn batch_groups<'a>(
    pending: &[usize],
    cell_of: impl Fn(usize) -> &'a Scenario,
    batch: bool,
) -> Vec<Vec<usize>> {
    if !batch {
        return (0..pending.len()).map(|j| vec![j]).collect();
    }
    let mut index: std::collections::HashMap<(LinkSpec, Duration), usize> =
        std::collections::HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for j in 0..pending.len() {
        let cell = cell_of(j);
        let key = (cell.link, cell.duration);
        let g = *index.entry(key).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(j);
    }
    groups
}

/// Per-worker arena recycled across the cells of a batch: buffers whose
/// capacity is worth keeping warm between simulations. Contents never
/// carry over — each cell clears before use — so recycling is invisible
/// to results.
#[derive(Default)]
pub struct CellScratch {
    /// The event-loop packet buffer ([`Simulation::into_scratch`]).
    packets: Vec<sprout_sim::Packet>,
}

/// How many synthesized traces one sweep's memo keeps live at once.
/// Covers the widest matrix the experiments declare (8 link profiles ×
/// 2 directions at one duration) so in practice nothing evicts; a
/// daemon-submitted matrix crossing many `(link, duration)` geometries
/// recycles slots instead of holding every trace to the end of the
/// sweep.
const TRACE_MEMO_CAP: usize = 16;

/// Lazily resolved link traces shared by every cell of one sweep,
/// bounded by an LRU over `(link, duration)` keys. Values are
/// byte-identical to what a cell would build locally: synthetic links
/// depend only on `(master_seed, profile, duration)`, measured links
/// only on `(capture bytes, duration)` — so neither memoization nor
/// eviction can change results. Synthesis happens inside the requesting
/// cell's thread (under its watchdog), first-come: concurrent
/// requesters of one key share a per-key `OnceLock` build slot and
/// block only on that key.
struct TraceMemo {
    master_seed: u64,
    slots: Mutex<sprout_core::LruCache<(LinkSpec, Duration), TraceSlot>>,
}

/// A per-key build slot (see [`TraceMemo`]).
type TraceSlot = std::sync::Arc<OnceLock<Trace>>;

impl TraceMemo {
    fn new(master_seed: u64) -> Self {
        TraceMemo {
            master_seed,
            slots: Mutex::new(sprout_core::LruCache::new(TRACE_MEMO_CAP)),
        }
    }

    /// The trace for `(link, duration)`, resolving on first use:
    /// synthetic links generate, measured links come from the registry
    /// truncated to the cell duration.
    fn get_or_build(&self, link: LinkSpec, duration: Duration) -> Trace {
        let slot = {
            let mut slots = self
                .slots
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let (slot, _) = slots.get_or_insert_with(&(link, duration), TraceSlot::default);
            let slot = std::sync::Arc::clone(slot);
            TRACES_EVICTED.store(slots.evictions(), Ordering::Relaxed);
            TRACE_MEMO_LEN.store(slots.len() as u64, Ordering::Relaxed);
            slot
        };
        let mut built_now = false;
        let trace = slot
            .get_or_init(|| {
                built_now = true;
                match link {
                    LinkSpec::Profile(profile) => profile.generate(duration, self.master_seed),
                    LinkSpec::Measured { fingerprint } => measured_trace(fingerprint, duration),
                }
            })
            .clone();
        if built_now {
            TRACES_BUILT.fetch_add(1, Ordering::Relaxed);
        } else {
            TRACES_REUSED.fetch_add(1, Ordering::Relaxed);
        }
        trace
    }
}

/// Resolve a measured link for one cell: the capture must already be
/// registered in this process (`--trace FILE` re-registers it in every
/// shard worker), and the replay is truncated to the cell's duration so
/// the trace key stays `(link, duration)`.
fn measured_trace(fingerprint: u64, duration: Duration) -> Trace {
    let full = sprout_trace::lookup_trace(fingerprint).unwrap_or_else(|| {
        panic!(
            "measured trace m{fingerprint:016x} is not registered in this \
             process — pass its capture file via --trace FILE"
        )
    });
    full.truncated(Timestamp::ZERO + duration)
}

/// Execute one cell. Public so single-cell callers (benches, `run_scheme`)
/// share the exact code path of full sweeps.
pub fn execute_scenario(matrix: &str, scenario: &Scenario, master_seed: u64) -> SweepResult {
    let memo = TraceMemo::new(master_seed);
    execute_with_memo(
        matrix,
        scenario,
        master_seed,
        &memo,
        &mut CellScratch::default(),
    )
}

fn execute_with_memo(
    matrix: &str,
    scenario: &Scenario,
    master_seed: u64,
    memo: &TraceMemo,
    scratch: &mut CellScratch,
) -> SweepResult {
    let started = std::time::Instant::now();
    let cell_seed = derive_labeled_seed(master_seed, "cell", scenario.id);
    let queue = scenario.queue.resolve(&scenario.workload);

    if scenario.workload == Workload::InterarrivalProbe {
        // No endpoints: analyse the saturated link's own delivery process.
        let trace = match scenario.link {
            LinkSpec::Profile(profile) => {
                let trace_seed = derive_labeled_seed(master_seed, "interarrival-probe", 0);
                profile.generate(scenario.duration, trace_seed)
            }
            LinkSpec::Measured { fingerprint } => measured_trace(fingerprint, scenario.duration),
        };
        let hist = InterarrivalHistogram::from_trace(&trace, 10, 10_000.0);
        return SweepResult {
            scenario: scenario.clone(),
            matrix: matrix.to_string(),
            queue,
            cell_seed,
            metrics: None,
            flows: Vec::new(),
            fairness: None,
            series: Vec::new(),
            interarrival: Some(InterarrivalSummary {
                fraction_within_20ms: hist.fraction_within_ms(20.0),
                tail_slope: hist.tail_power_law_slope(20.0, 5_000.0),
                samples: hist.total(),
                rows: hist.rows().filter(|&(_, _, pct)| pct > 0.0).collect(),
            }),
            serve: None,
            cell_series: None,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        };
    }

    // Link traces derive from the master seed and link spec only: every
    // cell on this link sees the same conditions (the controlled
    // variable). Measured links resolve from the process-global registry.
    let synth = |link: LinkSpec| memo.get_or_build(link, scenario.duration);
    let data_trace = synth(scenario.link);
    let feedback_trace = synth(paired(scenario.link));
    let sprout = match scenario.confidence_pct {
        Some(pct) => SproutConfig::with_confidence_percent(pct),
        None => SproutConfig::paper(),
    };
    let rc = RunConfig {
        duration: scenario.duration,
        warmup: scenario.warmup,
        prop_delay: scenario.prop_delay,
        loss_rate: scenario.loss_rate,
        sprout,
        loss_seed_data: derive_labeled_seed(cell_seed, "loss-data", 0),
        loss_seed_feedback: derive_labeled_seed(cell_seed, "loss-feedback", 0),
        impairment: scenario.impairment,
        impair_seed_data: derive_labeled_seed(cell_seed, "impair-data", 0),
        impair_seed_feedback: derive_labeled_seed(cell_seed, "impair-feedback", 0),
        outage_seed: derive_labeled_seed(cell_seed, "impair-outage", 0),
        serve_seed: cell_seed,
        ..RunConfig::new(data_trace, feedback_trace)
    };

    let outcome = run_cell_scratch(
        &scenario.workload,
        &rc,
        queue,
        scenario.series_bin,
        scenario.cell_series_bin,
        scratch,
    );
    // Diagnostic knob for perf work: per-cell wall times on stderr
    // (canonical stdout/JSON are untouched).
    if std::env::var_os("SPROUT_CELL_TIMES").is_some() {
        eprintln!(
            "CELLTIME {} {:.1}",
            scenario.label,
            started.elapsed().as_secs_f64() * 1e3
        );
    }
    SweepResult {
        scenario: scenario.clone(),
        matrix: matrix.to_string(),
        queue,
        cell_seed,
        metrics: outcome.metrics,
        flows: outcome.flows,
        fairness: outcome.fairness,
        series: outcome.series,
        interarrival: None,
        serve: outcome.serve,
        cell_series: outcome.cell_series,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// The raw outcome of [`run_cell`].
#[derive(Clone, Debug, Default)]
pub struct CellOutcome {
    /// Standard direction metrics.
    pub metrics: Option<SchemeResult>,
    /// Per-flow metrics (mux/tunnel/contention cells).
    pub flows: Vec<FlowSummary>,
    /// Jain's fairness index over the flow throughputs (contention
    /// cells).
    pub fairness: Option<f64>,
    /// Collected series (when requested).
    pub series: Vec<SeriesRow>,
    /// Multi-session capacity summary (serve cells).
    pub serve: Option<ServeStats>,
    /// Per-cell time series (when requested; scheme workloads only).
    pub cell_series: Option<CellSeries>,
}

fn path_configs(rc: &RunConfig, queue: ResolvedQueue) -> (PathConfig, PathConfig) {
    let mut data = PathConfig::standard(rc.data_trace.clone()).with_prop_delay(rc.prop_delay);
    let mut feedback =
        PathConfig::standard(rc.feedback_trace.clone()).with_prop_delay(rc.prop_delay);
    // Both directions run the resolved discipline: the paper's carriers
    // keep one (deep) per-user queue in each direction, and the queue
    // axis models that per-user buffer depth symmetrically.
    let queue_config = || match queue {
        ResolvedQueue::DropTail => QueueConfig::DropTailBytes(DEEP_QUEUE_BYTES),
        ResolvedQueue::DropTailBytes(cap) => QueueConfig::DropTailBytes(cap),
        ResolvedQueue::CoDel => QueueConfig::CoDel(CoDelConfig::default()),
    };
    data.link.queue = queue_config();
    feedback.link.queue = queue_config();
    if rc.loss_rate > 0.0 {
        data.link.loss_rate = rc.loss_rate;
        data.link.loss_seed = rc.loss_seed_data;
        feedback.link.loss_rate = rc.loss_rate;
        feedback.link.loss_seed = rc.loss_seed_feedback;
    }
    if !rc.impairment.is_none() {
        // One outage schedule per cell, shared by both directions: the
        // radio link goes dark as one. Burst loss, jitter and reordering
        // are per-direction processes with their own seeds.
        let outages = rc
            .impairment
            .outage
            .map(|spec| OutageSchedule::generate(&spec, rc.outage_seed, rc.duration))
            .unwrap_or_default();
        data.link.impair =
            LinkImpairment::from_spec(&rc.impairment, rc.impair_seed_data, outages.clone());
        feedback.link.impair =
            LinkImpairment::from_spec(&rc.impairment, rc.impair_seed_feedback, outages);
    }
    (data, feedback)
}

fn mux_clients_a() -> Vec<(FlowId, Box<dyn Endpoint>)> {
    vec![
        (
            BULK_FLOW,
            Box::new(TcpSender::new(Box::new(Cubic::new()))) as Box<dyn Endpoint>,
        ),
        (
            INTERACTIVE_FLOW,
            Box::new(VideoAppSender::new(AppProfile::skype())) as Box<dyn Endpoint>,
        ),
    ]
}

fn mux_clients_b() -> Vec<(FlowId, Box<dyn Endpoint>)> {
    vec![
        (BULK_FLOW, Box::new(TcpReceiver::new()) as Box<dyn Endpoint>),
        (
            INTERACTIVE_FLOW,
            Box::new(VideoAppReceiver::new()) as Box<dyn Endpoint>,
        ),
    ]
}

fn flow_summaries(
    flows: &[FlowId],
    m: &MetricsCollector,
    from: Timestamp,
    to: Timestamp,
) -> Vec<FlowSummary> {
    flows
        .iter()
        .copied()
        .map(|flow| FlowSummary {
            flow: flow.0,
            throughput_kbps: m.flow_throughput_kbps(flow, from, to),
            p95_delay_ms: m
                .flow_p95_delay(flow, from, to)
                .map(|d| d.as_micros() as f64 / 1e3)
                .unwrap_or(f64::NAN),
        })
        .collect()
}

fn collect_series(
    m: &MetricsCollector,
    trace: &Trace,
    bin: Duration,
    from: Timestamp,
    to: Timestamp,
) -> Vec<SeriesRow> {
    let tput = m.throughput_series_kbps(bin, from, to);
    let mut capacity = trace.window(from, to).capacity_series_kbps(bin);
    // The throughput series covers every bin of [from, to); the capacity
    // series ends at the window's last delivery opportunity and so can
    // fall short. Reconcile to the full measurement window — trailing
    // opportunity-free bins carry zero capacity — so no bin (and no
    // worst-delay sample landing in one) is silently dropped.
    let n = tput.len();
    debug_assert!(
        capacity.len() <= n,
        "capacity series ({} bins) outran the measurement window ({} bins)",
        capacity.len(),
        n
    );
    capacity.truncate(n);
    capacity.resize(n, 0.0);
    // Worst per-arrival delay per bin.
    let mut worst: Vec<f64> = vec![0.0; n];
    for (at, d) in m.delay_series() {
        if at < from || at >= to {
            continue;
        }
        let key = ((at.as_micros() - from.as_micros()) / bin.as_micros()) as usize;
        if key < worst.len() {
            worst[key] = worst[key].max(d.as_micros() as f64 / 1e3);
        }
    }
    let bin_s = bin.as_secs_f64();
    (0..n)
        .map(|i| SeriesRow {
            t_s: i as f64 * bin_s,
            capacity_kbps: capacity[i],
            throughput_kbps: tput[i].1,
            worst_delay_ms: worst[i],
        })
        .collect()
}

/// Collect the per-cell time series: every per-arrival delay sample in
/// the measurement window plus per-bin capacity/throughput/queue-depth
/// rows. Queue depth is reconstructed from the delivery log alone —
/// each delivered packet was in flight from `delivered_at − delay` to
/// `delivered_at` — so cache hits can replay the artifact without the
/// trace or the simulation.
fn collect_cell_series(
    m: &MetricsCollector,
    trace: &Trace,
    bin: Duration,
    from: Timestamp,
    to: Timestamp,
) -> CellSeries {
    let tput = m.throughput_series_kbps(bin, from, to);
    let n = tput.len();
    let mut capacity = trace.window(from, to).capacity_series_kbps(bin);
    capacity.truncate(n);
    capacity.resize(n, 0.0);

    let mut delays: Vec<(f64, f64)> = Vec::new();
    // Flight events in absolute microseconds: +1 when a packet enters
    // the link, −1 when it is delivered.
    let mut events: Vec<(u64, i64)> = Vec::new();
    for (at, d) in m.delay_series() {
        if at < from || at >= to {
            continue;
        }
        let rel_us = at.as_micros() - from.as_micros();
        delays.push((rel_us as f64 / 1e6, d.as_micros() as f64 / 1e3));
        events.push((at.as_micros().saturating_sub(d.as_micros()), 1));
        events.push((at.as_micros(), -1));
    }
    events.sort_unstable();

    let bin_s = bin.as_secs_f64();
    let mut depth: i64 = 0;
    let mut next_event = 0;
    let bins = (0..n)
        .map(|i| {
            // Sample in-flight depth at the bin start: a packet counts
            // while `sent <= t < delivered`.
            let t = from.as_micros() + i as u64 * bin.as_micros();
            while next_event < events.len() && events[next_event].0 <= t {
                depth += events[next_event].1;
                next_event += 1;
            }
            CellSeriesBin {
                t_s: i as f64 * bin_s,
                capacity_kbps: capacity[i],
                throughput_kbps: tput[i].1,
                queue_depth: depth.max(0) as u64,
            }
        })
        .collect();
    CellSeries {
        bin_us: bin.as_micros(),
        delays,
        bins,
    }
}

/// Build the (sender-side, receiver-side) endpoints of one contention
/// flow. Scheme flows reuse the standard scheme zoo pair; app flows ride
/// their own single-client SproutTunnel session (§4.3), so the shared
/// queue carries that flow's Sprout wire packets.
fn contention_children(spec: &FlowSpec, rc: &RunConfig) -> (Box<dyn Endpoint>, Box<dyn Endpoint>) {
    match spec {
        FlowSpec::Scheme(s) => build_endpoints(*s, rc),
        FlowSpec::App { app, over } => {
            let tunnel = || {
                let sprout = if *over == Scheme::SproutEwma {
                    SproutEndpoint::new_ewma(rc.sprout.clone())
                } else {
                    SproutEndpoint::new(rc.sprout.clone())
                };
                TunnelHost::new(TunnelEndpoint::new(sprout))
            };
            let mut host_a = tunnel();
            host_a.add_client(
                INTERACTIVE_FLOW,
                Box::new(VideoAppSender::new(app.profile())),
            );
            let mut host_b = tunnel();
            host_b.add_client(INTERACTIVE_FLOW, Box::new(VideoAppReceiver::new()));
            (Box::new(host_a), Box::new(host_b))
        }
    }
}

/// Run one workload over prepared traces. This is the single execution
/// path shared by the sweep engine, `run_scheme`, and the benches.
pub fn run_cell(
    workload: &Workload,
    rc: &RunConfig,
    queue: ResolvedQueue,
    series_bin: Option<Duration>,
    cell_series_bin: Option<Duration>,
) -> CellOutcome {
    run_cell_scratch(
        workload,
        rc,
        queue,
        series_bin,
        cell_series_bin,
        &mut CellScratch::default(),
    )
}

/// [`run_cell`] with a caller-provided scratch arena: the simulation's
/// recycled buffers are taken from (and returned to) `scratch`, so a
/// batch of cells run back-to-back reuses one set of allocations.
pub fn run_cell_scratch(
    workload: &Workload,
    rc: &RunConfig,
    queue: ResolvedQueue,
    series_bin: Option<Duration>,
    cell_series_bin: Option<Duration>,
    scratch: &mut CellScratch,
) -> CellOutcome {
    let from = Timestamp::ZERO + rc.warmup;
    let end = Timestamp::ZERO + rc.duration;
    let (data_path, feedback_path) = path_configs(rc, queue);

    // Every workload arm builds its simulation from the arena's recycled
    // buffers and returns them on the way out.
    fn new_sim<A: Endpoint, B: Endpoint>(
        a: A,
        b: B,
        ab: PathConfig,
        ba: PathConfig,
        scratch: &mut CellScratch,
    ) -> Simulation<A, B> {
        Simulation::with_scratch(a, b, ab, ba, std::mem::take(&mut scratch.packets))
    }
    fn reclaim<A: Endpoint, B: Endpoint>(sim: Simulation<A, B>, scratch: &mut CellScratch) {
        scratch.packets = sim.into_scratch();
    }

    match workload {
        Workload::InterarrivalProbe => {
            unreachable!("probe cells are handled by execute_scenario")
        }
        Workload::Scheme(scheme) => {
            let (a, b) = build_endpoints(*scheme, rc);
            let mut sim = new_sim(a, b, data_path, feedback_path, scratch);
            sim.run_until(end);
            let stats = direction_stats(sim.ab_path(), from, end);
            let series = series_bin
                .map(|bin| collect_series(sim.ab_metrics(), &rc.data_trace, bin, from, end))
                .unwrap_or_default();
            let cell_series = cell_series_bin
                .map(|bin| collect_cell_series(sim.ab_metrics(), &rc.data_trace, bin, from, end));
            let outcome = CellOutcome {
                metrics: Some(SchemeResult::from_stats(&stats)),
                series,
                cell_series,
                ..CellOutcome::default()
            };
            reclaim(sim, scratch);
            outcome
        }
        Workload::App { app, over } => {
            assert!(
                over.is_transport(),
                "app carrier must be a transport scheme, got {}",
                over.name()
            );
            if over.tunnels_apps() {
                // Over Sprout the app rides inside a SproutTunnel
                // session (§4.3): the path carries Sprout wire packets,
                // the far host decapsulates the app's flow.
                let tunnel = |rc: &RunConfig| {
                    let sprout = if *over == Scheme::SproutEwma {
                        SproutEndpoint::new_ewma(rc.sprout.clone())
                    } else {
                        SproutEndpoint::new(rc.sprout.clone())
                    };
                    TunnelHost::new(TunnelEndpoint::new(sprout))
                };
                let mut host_a = tunnel(rc);
                host_a.add_client(
                    INTERACTIVE_FLOW,
                    Box::new(VideoAppSender::new(app.profile())),
                );
                let mut host_b = tunnel(rc);
                host_b.add_client(INTERACTIVE_FLOW, Box::new(VideoAppReceiver::new()));
                let mut sim = new_sim(host_a, host_b, data_path, feedback_path, scratch);
                sim.run_until(end);
                let stats = direction_stats(sim.ab_path(), from, end);
                let outcome = CellOutcome {
                    metrics: Some(SchemeResult::from_stats(&stats)),
                    flows: flow_summaries(&[INTERACTIVE_FLOW], sim.b.deliveries(), from, end),
                    ..CellOutcome::default()
                };
                reclaim(sim, scratch);
                outcome
            } else {
                // Over any other transport the app's open-loop flow
                // shares the carrier queue with a bulk flow of that
                // scheme (§5.7 "direct", generalized from Cubic+Skype).
                let (bulk_a, bulk_b) = build_endpoints(*over, rc);
                let mut a = MuxEndpoint::new();
                a.add(BULK_FLOW, bulk_a);
                a.add(
                    INTERACTIVE_FLOW,
                    Box::new(VideoAppSender::new(app.profile())),
                );
                let mut b = MuxEndpoint::new();
                b.add(BULK_FLOW, bulk_b);
                b.add(INTERACTIVE_FLOW, Box::new(VideoAppReceiver::new()));
                let mut sim = new_sim(a, b, data_path, feedback_path, scratch);
                sim.run_until(end);
                let stats = direction_stats(sim.ab_path(), from, end);
                let outcome = CellOutcome {
                    metrics: Some(SchemeResult::from_stats(&stats)),
                    flows: flow_summaries(
                        &[BULK_FLOW, INTERACTIVE_FLOW],
                        sim.ab_metrics(),
                        from,
                        end,
                    ),
                    ..CellOutcome::default()
                };
                reclaim(sim, scratch);
                outcome
            }
        }
        Workload::Contention { flows } => {
            // N independent endpoint pairs multiplexed over one shared
            // bottleneck path: the per-user buffer regime where N flows
            // contend for one queue. Flow i runs as FlowId(i + 1); the
            // path's delivery log attributes every packet to its flow,
            // so per-flow metrics come straight from the shared link.
            let mut a = MuxEndpoint::new();
            let mut b = MuxEndpoint::new();
            let mut ids = Vec::with_capacity(flows.len());
            for (i, spec) in flows.iter().enumerate() {
                let flow = FlowId(i as u32 + 1);
                let (child_a, child_b) = contention_children(spec, rc);
                a.add(flow, child_a);
                b.add(flow, child_b);
                ids.push(flow);
            }
            let mut sim = new_sim(a, b, data_path, feedback_path, scratch);
            sim.run_until(end);
            let stats = direction_stats(sim.ab_path(), from, end);
            let flow_rows = flow_summaries(&ids, sim.ab_metrics(), from, end);
            let throughputs: Vec<f64> = flow_rows.iter().map(|f| f.throughput_kbps).collect();
            let outcome = CellOutcome {
                metrics: Some(SchemeResult::from_stats(&stats)),
                fairness: jain_fairness_index(&throughputs),
                flows: flow_rows,
                ..CellOutcome::default()
            };
            reclaim(sim, scratch);
            outcome
        }
        Workload::Serve { sessions } => {
            // N independent Sprout sessions, each with its own path pair
            // over the *same* link conditions (the controlled variable),
            // served by one shared-event-loop SproutServer. Clients are
            // the saturating data senders (EWMA forecaster — no table
            // fetch), server halves are the Bayesian receivers, so the
            // pool performs exactly N table lookups: 1 build + N−1
            // reuses per link group. Session i runs as FlowId(i + 1),
            // with per-session loss/impairment streams derived from
            // session_seed(cell_seed, i + 1).
            let n = *sessions;
            let mut server = SproutServer::new(rc.sprout.clone(), rc.serve_seed);
            for i in 0..n {
                server.add_session(i + 1);
            }
            let mut sim = ServeSim::with_scratch(server, std::mem::take(&mut scratch.packets));
            for i in 0..n {
                let sid = i + 1;
                let s_seed = session_seed(rc.serve_seed, sid);
                let mut src = rc.clone();
                src.loss_seed_data = derive_labeled_seed(s_seed, "loss-data", 0);
                src.loss_seed_feedback = derive_labeled_seed(s_seed, "loss-feedback", 0);
                src.impair_seed_data = derive_labeled_seed(s_seed, "impair-data", 0);
                src.impair_seed_feedback = derive_labeled_seed(s_seed, "impair-feedback", 0);
                src.outage_seed = derive_labeled_seed(s_seed, "impair-outage", 0);
                let (up, down) = path_configs(&src, queue);
                let mut client = SproutEndpoint::new_ewma(rc.sprout.clone());
                client.set_saturating();
                client.set_flow(FlowId(sid));
                sim.add_session(FlowId(sid), client, up, down);
            }
            sim.run_until(end);

            let mut window_bytes = Vec::with_capacity(n as usize);
            let mut throughputs = Vec::with_capacity(n as usize);
            let mut full_run_sum: u64 = 0;
            for i in 0..n as usize {
                let m = sim.up_path(i).metrics();
                window_bytes.push(m.delivered_bytes(from, end, None));
                throughputs.push(m.throughput_kbps(from, end));
                full_run_sum += m.delivered_bytes(Timestamp::ZERO, Timestamp::FAR_FUTURE, None);
            }
            assert_eq!(
                full_run_sum,
                sim.delivered_to_server_bytes(),
                "conservation: per-session delivered bytes must sum to the \
                 link-level bytes the event loop handed to the server"
            );
            let serve = ServeStats {
                sessions: n,
                delivered_bytes: window_bytes.iter().sum(),
                min_session_bytes: window_bytes.iter().copied().min().unwrap_or(0),
                max_session_bytes: window_bytes.iter().copied().max().unwrap_or(0),
                wire_delivered_bytes: sim.delivered_to_server_bytes(),
            };
            let outcome = CellOutcome {
                fairness: jain_fairness_index(&throughputs),
                serve: Some(serve),
                ..CellOutcome::default()
            };
            scratch.packets = sim.into_scratch();
            outcome
        }
        Workload::MuxDirect => {
            let mut a = MuxEndpoint::new();
            for (flow, ep) in mux_clients_a() {
                a.add(flow, ep);
            }
            let mut b = MuxEndpoint::new();
            for (flow, ep) in mux_clients_b() {
                b.add(flow, ep);
            }
            let mut sim = new_sim(a, b, data_path, feedback_path, scratch);
            sim.run_until(end);
            let stats = direction_stats(sim.ab_path(), from, end);
            let outcome = CellOutcome {
                metrics: Some(SchemeResult::from_stats(&stats)),
                flows: flow_summaries(&[BULK_FLOW, INTERACTIVE_FLOW], sim.ab_metrics(), from, end),
                ..CellOutcome::default()
            };
            reclaim(sim, scratch);
            outcome
        }
        Workload::MuxTunneled => {
            let mut host_a =
                TunnelHost::new(TunnelEndpoint::new(SproutEndpoint::new(rc.sprout.clone())));
            for (flow, ep) in mux_clients_a() {
                host_a.add_client(flow, ep);
            }
            let mut host_b =
                TunnelHost::new(TunnelEndpoint::new(SproutEndpoint::new(rc.sprout.clone())));
            for (flow, ep) in mux_clients_b() {
                host_b.add_client(flow, ep);
            }
            let mut sim = new_sim(host_a, host_b, data_path, feedback_path, scratch);
            sim.run_until(end);
            let stats = direction_stats(sim.ab_path(), from, end);
            // Flow metrics come from the far host's post-decapsulation
            // delivery log: the tunnel's own wire packets are what the
            // path sees, the clients' packets are what it delivers.
            let outcome = CellOutcome {
                metrics: Some(SchemeResult::from_stats(&stats)),
                flows: flow_summaries(
                    &[BULK_FLOW, INTERACTIVE_FLOW],
                    sim.b.deliveries(),
                    from,
                    end,
                ),
                ..CellOutcome::default()
            };
            reclaim(sim, scratch);
            outcome
        }
    }
}

// ------------------------------------------------------------------ JSON

pub(crate) fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display is deterministic, giving
        // bit-identical files for identical results.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

pub(crate) fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render one result as a single-line JSON object with a stable key order.
pub fn result_to_json(r: &SweepResult) -> String {
    let mut o = String::with_capacity(256);
    o.push_str("{\"id\":");
    o.push_str(&r.scenario.id.to_string());
    o.push_str(",\"label\":");
    json_str(&mut o, &r.scenario.label);
    o.push_str(",\"matrix\":");
    json_str(&mut o, &r.matrix);
    o.push_str(",\"workload\":");
    json_str(&mut o, r.scenario.workload.id());
    o.push_str(",\"scheme\":");
    match r.scenario.workload.scheme() {
        Some(s) => json_str(&mut o, s.name()),
        None => o.push_str("null"),
    }
    o.push_str(",\"app\":");
    match r.scenario.workload.app() {
        Some((app, _)) => json_str(&mut o, app.id()),
        None => o.push_str("null"),
    }
    o.push_str(",\"over\":");
    match r.scenario.workload.app() {
        Some((_, over)) => json_str(&mut o, over.name()),
        None => o.push_str("null"),
    }
    o.push_str(",\"link\":");
    json_str(&mut o, &r.scenario.link.id());
    o.push_str(",\"queue\":");
    json_str(&mut o, &r.queue.id());
    o.push_str(",\"prop_delay_ms\":");
    json_f64(&mut o, r.scenario.prop_delay.as_micros() as f64 / 1e3);
    o.push_str(",\"loss_rate\":");
    json_f64(&mut o, r.scenario.loss_rate);
    o.push_str(",\"impairment\":");
    json_str(&mut o, &r.scenario.impairment.id());
    o.push_str(",\"confidence_pct\":");
    match r.scenario.confidence_pct {
        Some(p) => json_f64(&mut o, p),
        None => o.push_str("null"),
    }
    o.push_str(",\"duration_s\":");
    json_f64(&mut o, r.scenario.duration.as_secs_f64());
    o.push_str(",\"warmup_s\":");
    json_f64(&mut o, r.scenario.warmup.as_secs_f64());
    o.push_str(",\"cell_seed\":");
    o.push_str(&r.cell_seed.to_string());
    o.push_str(",\"metrics\":");
    match &r.metrics {
        None => o.push_str("null"),
        Some(m) => {
            o.push_str("{\"throughput_kbps\":");
            json_f64(&mut o, m.throughput_kbps);
            o.push_str(",\"p95_delay_ms\":");
            json_f64(&mut o, m.p95_delay_ms);
            o.push_str(",\"self_inflicted_ms\":");
            json_f64(&mut o, m.self_inflicted_ms);
            o.push_str(",\"omniscient_ms\":");
            json_f64(&mut o, m.omniscient_ms);
            o.push_str(",\"utilization\":");
            json_f64(&mut o, m.utilization);
            o.push_str(",\"outages\":");
            o.push_str(&m.outages.to_string());
            o.push_str(",\"recovery_ms\":");
            json_f64(&mut o, m.recovery_ms);
            o.push_str(",\"degraded_delivery\":");
            json_f64(&mut o, m.degraded_delivery);
            o.push('}');
        }
    }
    o.push_str(",\"fairness\":");
    match r.fairness {
        Some(j) => json_f64(&mut o, j),
        None => o.push_str("null"),
    }
    o.push_str(",\"flows\":[");
    for (i, f) in r.flows.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str("{\"flow\":");
        o.push_str(&f.flow.to_string());
        o.push_str(",\"throughput_kbps\":");
        json_f64(&mut o, f.throughput_kbps);
        o.push_str(",\"p95_delay_ms\":");
        json_f64(&mut o, f.p95_delay_ms);
        o.push('}');
    }
    o.push_str("],\"series\":[");
    for (i, s) in r.series.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push('[');
        json_f64(&mut o, s.t_s);
        o.push(',');
        json_f64(&mut o, s.capacity_kbps);
        o.push(',');
        json_f64(&mut o, s.throughput_kbps);
        o.push(',');
        json_f64(&mut o, s.worst_delay_ms);
        o.push(']');
    }
    o.push(']');
    o.push_str(",\"serve\":");
    match &r.serve {
        None => o.push_str("null"),
        Some(s) => {
            o.push_str("{\"sessions\":");
            o.push_str(&s.sessions.to_string());
            o.push_str(",\"delivered_bytes\":");
            o.push_str(&s.delivered_bytes.to_string());
            o.push_str(",\"min_session_bytes\":");
            o.push_str(&s.min_session_bytes.to_string());
            o.push_str(",\"max_session_bytes\":");
            o.push_str(&s.max_session_bytes.to_string());
            o.push_str(",\"wire_delivered_bytes\":");
            o.push_str(&s.wire_delivered_bytes.to_string());
            o.push('}');
        }
    }
    o.push_str(",\"interarrival\":");
    match &r.interarrival {
        None => o.push_str("null"),
        Some(ia) => {
            o.push_str("{\"fraction_within_20ms\":");
            json_f64(&mut o, ia.fraction_within_20ms);
            o.push_str(",\"tail_slope\":");
            match ia.tail_slope {
                Some(s) => json_f64(&mut o, s),
                None => o.push_str("null"),
            }
            o.push_str(",\"samples\":");
            o.push_str(&ia.samples.to_string());
            o.push_str(",\"histogram\":[");
            for (i, &(lo, hi, pct)) in ia.rows.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                o.push('[');
                json_f64(&mut o, lo);
                o.push(',');
                json_f64(&mut o, hi);
                o.push(',');
                json_f64(&mut o, pct);
                o.push(']');
            }
            o.push_str("]}");
        }
    }
    o.push('}');
    o
}

/// Render a whole sweep as a canonical JSON document: header line, then
/// one line per cell (diffable; bit-identical for identical results).
pub fn sweep_to_json(matrix_name: &str, master_seed: u64, results: &[SweepResult]) -> String {
    let mut o = String::new();
    o.push_str("{\"matrix\":");
    json_str(&mut o, matrix_name);
    o.push_str(",\"master_seed\":");
    o.push_str(&master_seed.to_string());
    o.push_str(",\"cells\":[\n");
    for (i, r) in results.iter().enumerate() {
        o.push_str(&result_to_json(r));
        if i + 1 < results.len() {
            o.push(',');
        }
        o.push('\n');
    }
    o.push_str("]}\n");
    o
}

/// Write a sweep's canonical JSON to `writer`.
pub fn write_json(
    writer: &mut impl std::io::Write,
    matrix_name: &str,
    master_seed: u64,
    results: &[SweepResult],
) -> std::io::Result<()> {
    writer.write_all(sweep_to_json(matrix_name, master_seed, results).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioMatrix;
    use crate::schemes::Scheme;
    use sprout_trace::NetProfile;

    fn tiny_matrix() -> ScenarioMatrix {
        ScenarioMatrix::builder("tiny")
            .schemes([Scheme::SproutEwma, Scheme::Cubic])
            .links([NetProfile::TmobileUmtsDown])
            .timing(Duration::from_secs(30), Duration::from_secs(5))
            .build()
    }

    #[test]
    fn results_are_in_matrix_order() {
        let m = tiny_matrix();
        let results = SweepEngine::new(7).with_threads(2).run(&m);
        assert_eq!(results.len(), m.len());
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.scenario.id, i as u64);
            assert_eq!(r.scenario, m.cells()[i]);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let m = tiny_matrix();
        let one = SweepEngine::new(11).with_threads(1).run(&m);
        let four = SweepEngine::new(11).with_threads(4).run(&m);
        assert_eq!(
            sweep_to_json(m.name(), 11, &one),
            sweep_to_json(m.name(), 11, &four)
        );
    }

    #[test]
    fn series_covers_every_bin_of_the_measurement_window() {
        // 21 s run − 5 s warmup over 500 ms bins ⇒ exactly 32 rows; the
        // capacity series may end at the link's last delivery opportunity
        // but must be padded, not truncate the throughput/delay rows.
        let m = ScenarioMatrix::builder("series")
            .schemes([Scheme::Cubic])
            .links([NetProfile::TmobileUmtsDown])
            .timing(Duration::from_secs(21), Duration::from_secs(5))
            .series_bin(Duration::from_millis(500))
            .build();
        let results = SweepEngine::new(13).run(&m);
        assert_eq!(results[0].series.len(), 32);
        for (i, row) in results[0].series.iter().enumerate() {
            assert_eq!(row.t_s, i as f64 * 0.5);
        }
    }

    #[test]
    fn simulations_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Simulation<Box<dyn Endpoint>, Box<dyn Endpoint>>>();
        assert_send::<Scenario>();
    }

    #[test]
    fn json_escapes_and_nan() {
        let mut s = String::new();
        json_str(&mut s, "a\"b\\c\n");
        assert_eq!(s, "\"a\\\"b\\\\c\\u000a\"");
        let mut f = String::new();
        json_f64(&mut f, f64::NAN);
        assert_eq!(f, "null");
    }
}
