//! Sweep-level guarantees of the fault-injection layer: an impaired
//! matrix must stay bit-identical across thread counts, batching modes,
//! and shard + merge; the per-cell watchdog must convert a wedged cell
//! into a resumable timeout instead of hanging the sweep; and the
//! headline robustness claim — Sprout recovers from link outages faster
//! than a loss-based baseline in the very same cell — must hold in the
//! degradation metrics.
//!
//! These tests mutate the process-global cache override, so they live in
//! their own integration-test binary and serialize on one lock.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use sprout_bench::{
    cell_cache_counters, cell_failure_counters, sweep_to_json, CellCachePolicy, ScenarioMatrix,
    Scheme, ShardSpec, SweepEngine, SweepError, SweepResult, VideoApp, Workload,
};
use sprout_trace::{Duration, Impairment, NetProfile, OutageSpec};

/// Serializes tests (they share the global cache-dir override). A
/// poisoned lock just means a sibling test failed; proceed anyway so its
/// failure is the one reported.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_cache_dir(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let d = std::env::temp_dir().join(format!(
        "sprout-impair-test-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The storm preset with its outage process sped up (1.5 s dark every
/// ~8 s instead of 4 s every ~45 s), so short test cells still see
/// several complete outage/recovery cycles.
fn fast_storm() -> Impairment {
    let mut storm = Impairment::preset("storm").expect("storm preset exists");
    storm.outage = Some(OutageSpec {
        duration: Duration::from_millis(1500),
        spacing: Duration::from_secs(8),
    });
    storm.validate();
    storm
}

/// A small matrix with real fault injection on every cell: two cheap
/// schemes under the flap preset and the sped-up storm.
fn impaired_matrix() -> ScenarioMatrix {
    ScenarioMatrix::builder("impair-identity")
        .schemes([Scheme::Cubic, Scheme::Vegas])
        .links([NetProfile::TmobileUmtsDown])
        .impairments([
            Impairment::preset("flap").expect("flap preset exists"),
            fast_storm(),
        ])
        .timing(Duration::from_secs(20), Duration::from_secs(4))
        .build()
}

#[test]
fn impaired_sweep_is_bit_identical_across_threads_batching_and_shards() {
    let _g = lock();
    let m = impaired_matrix();
    // Every cell must actually exercise the injection machinery.
    for cell in m.cells() {
        assert!(!cell.impairment.is_none(), "{}", cell.label);
    }

    // Unbatched single-threaded reference, fresh cache directory.
    sprout_cache::set_dir(temp_cache_dir("ref"));
    let reference = SweepEngine::new(21)
        .with_threads(1)
        .with_batch(false)
        .run(&m);
    let want = sweep_to_json(m.name(), 21, &reference);
    // The impaired cells genuinely degraded: the storm cells report
    // completed outages with finite recovery times.
    let storms = reference
        .iter()
        .filter(|r| r.scenario.impairment.outage == fast_storm().outage)
        .count();
    assert!(storms > 0, "the sped-up storm cells must be in the matrix");
    for r in &reference {
        let metrics = r.metrics.as_ref().expect("scheme cells carry metrics");
        if r.scenario.impairment.outage == fast_storm().outage {
            assert!(
                metrics.outages >= 2,
                "{}: {} outages",
                r.scenario.label,
                metrics.outages
            );
            assert!(metrics.recovery_ms.is_finite(), "{}", r.scenario.label);
        }
    }

    // Any thread count, batched or not, must reproduce it byte for byte
    // (fresh cache directory each, so every cell truly re-executes).
    for (threads, batch) in [(4, true), (1, true), (4, false)] {
        sprout_cache::set_dir(temp_cache_dir("variant"));
        let got = SweepEngine::new(21)
            .with_threads(threads)
            .with_batch(batch)
            .run(&m);
        assert_eq!(
            sweep_to_json(m.name(), 21, &got),
            want,
            "threads={threads} batch={batch} diverged from the reference"
        );
    }

    // Two shards into one shared directory, then a pure merge.
    sprout_cache::set_dir(temp_cache_dir("shards"));
    SweepEngine::new(21)
        .with_threads(1)
        .with_shard(ShardSpec::new(0, 2))
        .run(&m);
    SweepEngine::new(21)
        .with_threads(4)
        .with_shard(ShardSpec::new(1, 2))
        .run(&m);
    let before = cell_cache_counters();
    let merged = SweepEngine::new(21)
        .with_policy(CellCachePolicy::Merge)
        .run(&m);
    let traffic = cell_cache_counters().since(before);
    assert_eq!(
        sweep_to_json(m.name(), 21, &merged),
        want,
        "2-shard + merge diverged from the single-shot reference"
    );
    assert_eq!(traffic.hits, m.len() as u64, "merge must hit every cell");
    assert_eq!((traffic.misses, traffic.stores), (0, 0));

    sprout_cache::reset_override();
}

/// A single-cell matrix big enough that executing it takes well over a
/// millisecond (trace synthesis alone does), so a 1 ms watchdog always
/// fires first.
fn slow_matrix() -> ScenarioMatrix {
    ScenarioMatrix::builder("impair-watchdog")
        .schemes([Scheme::Cubic])
        .links([NetProfile::TmobileUmtsDown])
        .impairments([Impairment::preset("flap").expect("flap preset exists")])
        .timing(Duration::from_secs(30), Duration::from_secs(4))
        .build()
}

#[test]
fn watchdog_times_out_wedged_cells_and_resume_reexecutes_them() {
    let _g = lock();
    let m = slow_matrix();
    sprout_cache::set_dir(temp_cache_dir("watchdog"));

    let failures_before = cell_failure_counters();
    let traffic_before = cell_cache_counters();
    let err = SweepEngine::new(17)
        .with_threads(1)
        .with_cell_timeout(std::time::Duration::from_millis(1))
        .try_run(&m)
        .expect_err("a 1 ms watchdog must fire before the cell finishes");
    match &err {
        SweepError::CellsPanicked { matrix, failures } => {
            assert_eq!(matrix, "impair-watchdog");
            assert_eq!(failures.len(), 1);
            assert!(
                failures[0].timed_out,
                "the failure is a timeout, not a panic"
            );
            assert!(
                failures[0].message.contains("watchdog"),
                "message should name the watchdog: {}",
                failures[0].message
            );
        }
        other => panic!("expected CellsPanicked, got {other:?}"),
    }
    let failures = cell_failure_counters().since(failures_before);
    assert_eq!(
        (failures.timed_out, failures.failed),
        (1, 0),
        "a timeout counts as timed_out, never as failed"
    );
    assert_eq!(
        cell_cache_counters().since(traffic_before).stores,
        0,
        "a timed-out cell must never be cached"
    );

    // Resume with the default (generous) watchdog: the abandoned cell —
    // and only it — re-executes, completes, and is cached.
    let traffic_before = cell_cache_counters();
    let resumed = SweepEngine::new(17)
        .with_policy(CellCachePolicy::Resume)
        .run(&m);
    let traffic = cell_cache_counters().since(traffic_before);
    assert_eq!(resumed.len(), 1);
    assert_eq!((traffic.misses, traffic.stores), (1, 1));
    let failures = cell_failure_counters().since(failures_before);
    assert_eq!((failures.timed_out, failures.failed), (1, 0));

    sprout_cache::reset_override();
}

/// Pull the one scheme-`s` row out of a sweep.
fn row_for(results: &[SweepResult], s: Scheme) -> &SweepResult {
    results
        .iter()
        .find(|r| r.scenario.workload == Workload::Scheme(s))
        .expect("scheme row present")
}

/// The robustness acceptance check: in one and the same outage-storm
/// cell, Sprout's worst post-outage recovery is finite and tight (tens
/// of milliseconds against its own strict delay envelope), while both
/// baselines — Cubic and Skype-over-Cubic — take several times longer to
/// re-enter even their own (far looser) envelopes. Full-duration (4 s)
/// outages every ~15 s leave Cubic's bloated queue seconds of backlog to
/// drain after every blackout; Sprout's forecast collapses its window
/// during the outage, so it is back inside its envelope almost at once.
/// (The paper-length version of this claim runs in CI's `impair` smoke.)
#[test]
fn sprout_recovers_from_outages_faster_than_the_baselines() {
    let _g = lock();
    sprout_cache::set_dir(temp_cache_dir("acceptance"));

    let mut storm = Impairment::preset("storm").expect("storm preset exists");
    storm.outage = Some(OutageSpec {
        duration: Duration::from_secs(4),
        spacing: Duration::from_secs(15),
    });
    let m = ScenarioMatrix::builder("impair-acceptance")
        .schemes([Scheme::Sprout, Scheme::Cubic])
        .apps([VideoApp::Skype], [Scheme::Cubic])
        .links([NetProfile::VerizonLteDown])
        .impairments([storm])
        .timing(Duration::from_secs(60), Duration::from_secs(5))
        .build();
    let results = SweepEngine::new(20130401).run(&m);

    let sprout = row_for(&results, Scheme::Sprout).metrics.as_ref().unwrap();
    let cubic = row_for(&results, Scheme::Cubic).metrics.as_ref().unwrap();
    let skype = results
        .iter()
        .find(|r| r.scenario.workload.app().is_some())
        .expect("the Skype-over-Cubic row is present")
        .metrics
        .as_ref()
        .unwrap();
    assert!(
        sprout.outages >= 2,
        "storm cell saw {} outages",
        sprout.outages
    );
    assert_eq!(
        sprout.outages, cubic.outages,
        "same cell, same outage schedule"
    );
    assert_eq!(
        sprout.outages, skype.outages,
        "same cell, same outage schedule"
    );

    assert!(
        sprout.recovery_ms.is_finite() && sprout.recovery_ms < 500.0,
        "Sprout must recover within half a second: {} ms",
        sprout.recovery_ms
    );
    for (name, baseline) in [("cubic", cubic), ("skype-over-cubic", skype)] {
        assert!(
            baseline.recovery_ms > 5.0 * sprout.recovery_ms,
            "{name} should recover measurably slower: sprout {} ms vs {name} {} ms",
            sprout.recovery_ms,
            baseline.recovery_ms
        );
    }

    sprout_cache::reset_override();
}
