//! Golden snapshot of every experiment matrix's cache identity.
//!
//! The cell-result cache keys on `Scenario::canonical_bytes` (via the
//! matrix fingerprint and the per-cell encoding), so *any* change to the
//! scenario schema — a new field, a reordered write, a renamed id —
//! silently retires every cached cell, or worse, collides two different
//! cells onto one key. This test pins, for the default configuration of
//! every experiment matrix: the cell count, the matrix fingerprint, the
//! first cell's fingerprint, and the first cell's full canonical byte
//! string (hex).
//!
//! If it fails, you changed cache identity. That is sometimes right —
//! new axes land exactly that way — but it must be deliberate:
//!
//! 1. bump `sprout_bench::ENGINE_VERSION` if execution semantics
//!    changed (see its doc comment),
//! 2. regenerate this snapshot:
//!    `UPDATE_GOLDEN=1 cargo test -p sprout-bench --test fingerprints`,
//! 3. say so in the PR: every warm cache in the world just went cold.

use std::fmt::Write as _;

use sprout_bench::figures::{self, ExperimentConfig};

/// Every distinct experiment matrix (fig8 shares fig7's sweep and is
/// listed to document that identity).
const EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig2",
    "fig7",
    "fig8",
    "fig9",
    "loss",
    "tunnel",
    "contention",
    "soak",
    "impair",
    "serve",
    "replay",
];

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_fingerprints.tsv");

fn snapshot() -> String {
    let cfg = ExperimentConfig::default();
    let mut out = String::from(
        "# experiment\tcells\tmatrix_fp\tcell0_fp\tcell0_canonical_bytes_hex\n\
         # Regenerate deliberately with: UPDATE_GOLDEN=1 cargo test -p sprout-bench --test fingerprints\n",
    );
    for exp in EXPERIMENTS {
        for matrix in figures::matrices_for(&cfg, exp) {
            let cell0 = &matrix.cells()[0];
            let mut w = sprout_cache::ByteWriter::with_capacity(128);
            cell0.canonical_bytes(&mut w);
            let hex: String = w.finish().iter().fold(String::new(), |mut acc, b| {
                let _ = write!(acc, "{b:02x}");
                acc
            });
            let _ = writeln!(
                out,
                "{exp}\t{}\t{:016x}\t{:016x}\t{hex}",
                matrix.len(),
                matrix.fingerprint(),
                cell0.fingerprint(),
            );
        }
    }
    out
}

#[test]
fn matrix_fingerprints_match_the_committed_snapshot() {
    let current = snapshot();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &current).expect("rewrite golden snapshot");
        eprintln!("golden fingerprint snapshot rewritten: {GOLDEN_PATH}");
        return;
    }
    let committed = include_str!("golden_fingerprints.tsv");
    assert_eq!(
        current, committed,
        "scenario cache identity changed: every cached cell is now cold (or colliding). \
         If intentional, bump ENGINE_VERSION as needed and regenerate with \
         UPDATE_GOLDEN=1 cargo test -p sprout-bench --test fingerprints"
    );
}

#[test]
fn fig8_shares_fig7s_matrix_identity() {
    let cfg = ExperimentConfig::default();
    assert_eq!(
        figures::matrices_for(&cfg, "fig7")[0].fingerprint(),
        figures::matrices_for(&cfg, "fig8")[0].fingerprint(),
        "fig8 derives from the fig7 sweep; their cache identity must agree"
    );
}
