//! Argument validation of the `reproduce` binary: every rejected
//! combination must exit 2 via the usage path before any simulation
//! starts, so these tests are instant.

use std::process::Command;

fn reproduce(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("spawn reproduce")
}

fn exit_code(args: &[&str]) -> i32 {
    reproduce(args).status.code().expect("no signal")
}

#[test]
fn help_exits_zero() {
    assert_eq!(exit_code(&["--help"]), 0);
}

#[test]
fn empty_measurement_window_is_rejected() {
    // Straight contradiction.
    assert_eq!(exit_code(&["fig9", "--warmup", "100", "--secs", "50"]), 2);
    // Equality leaves nothing to measure either.
    assert_eq!(exit_code(&["fig9", "--warmup", "90", "--secs", "90"]), 2);
    let out = reproduce(&["fig9", "--warmup", "100", "--secs", "50"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("measurement window"),
        "stderr should explain the rejection: {stderr}"
    );
}

#[test]
fn quick_does_not_clobber_explicit_timing() {
    // --quick defaults secs to 90; an explicit warmup of 100 (in either
    // flag order) now contradicts it instead of being silently reset.
    assert_eq!(exit_code(&["fig9", "--quick", "--warmup", "100"]), 2);
    assert_eq!(exit_code(&["fig9", "--warmup", "100", "--quick"]), 2);
    // An explicit --secs above the explicit warmup resolves it. Keep the
    // run's side effects (out dir, cell cache) in a temp directory.
    let tmp = std::env::temp_dir().join(format!("reproduce-cli-test-{}", std::process::id()));
    let out = reproduce(&[
        "fig9",
        "--warmup",
        "100",
        "--secs",
        "120",
        "--quick",
        "--shard",
        "999999/1000000",
        "--out",
        &tmp.join("out").to_string_lossy(),
        "--cache-dir",
        &tmp.join("cache").to_string_lossy(),
    ]);
    // Shard 999999/1000000 owns none of fig9's five cells, so this
    // parses, runs nothing, and exits 0 — proving validation passed.
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn shard_specs_are_validated() {
    for bad in ["2/2", "0/0", "x/2", "2", "1/2/3", ""] {
        assert_eq!(exit_code(&["fig9", "--shard", bad]), 2, "--shard {bad:?}");
    }
    assert_eq!(exit_code(&["fig9", "--shard"]), 2);
}

#[test]
fn incompatible_flag_combinations_are_rejected() {
    for combo in [
        vec!["fig9", "--merge", "--resume"],
        vec!["fig9", "--merge", "--shard", "0/2"],
        vec!["fig9", "--shard", "0/2", "--no-cache"],
        vec!["fig9", "--merge", "--no-cache"],
        vec!["fig9", "--resume", "--no-cache"],
        vec!["fig9", "--shard", "0/2", "--json"],
        vec!["--bench", "--resume"],
        vec!["--bench", "--merge"],
        vec!["--bench", "--shard", "0/2"],
        vec!["--bench", "fig9"],
        vec!["fig9", "--bench-baseline", "x.json"],
    ] {
        assert_eq!(exit_code(&combo), 2, "{combo:?} must be a usage error");
    }
}

#[test]
fn unknown_experiments_and_flags_are_rejected() {
    assert_eq!(exit_code(&["fig99"]), 2);
    assert_eq!(exit_code(&["fig9", "--frobnicate"]), 2);
    assert_eq!(exit_code(&["fig9", "--secs", "abc"]), 2);
}

#[test]
fn soak_axis_flag_values_are_validated() {
    // --prop-delays: one-way ms, each in 1..=10000, no duplicates
    // (duplicated axis values would cross into identical-label cells).
    for bad in ["0", "abc", "", "10,,20", "10,0", "20000", "-5", "20,20"] {
        assert_eq!(
            exit_code(&["soak", "--prop-delays", bad]),
            2,
            "--prop-delays {bad:?}"
        );
    }
    assert_eq!(exit_code(&["soak", "--prop-delays"]), 2);

    // --queues: auto | droptail | codel | bytes:N.
    for bad in [
        "bogus",
        "bytes:0",
        "bytes:x",
        "bytes:",
        "",
        "auto,,codel",
        "auto,auto",
        "bytes:75000,bytes:75000",
    ] {
        assert_eq!(exit_code(&["soak", "--queues", bad]), 2, "--queues {bad:?}");
    }
    assert_eq!(exit_code(&["soak", "--queues"]), 2);

    // --links: known link ids only.
    for bad in ["nope", "", "vz-lte-down,nope", "vz-lte-down,vz-lte-down"] {
        assert_eq!(exit_code(&["soak", "--links", bad]), 2, "--links {bad:?}");
    }
    assert_eq!(exit_code(&["soak", "--links"]), 2);
}

#[test]
fn soak_axis_flags_require_the_soak_experiment() {
    for combo in [
        vec!["fig7", "--prop-delays", "20"],
        vec!["fig9", "--queues", "auto"],
        vec!["loss", "--links", "vz-lte-down"],
        vec!["--bench", "--queues", "auto"],
        vec!["--prop-delays", "20"], // defaults to `all`, which has no axes
        // --links is shared between soak and contention, but nothing else.
        vec!["contention", "--prop-delays", "20"],
        vec!["contention", "--queues", "auto"],
    ] {
        assert_eq!(exit_code(&combo), 2, "{combo:?} must be a usage error");
    }
}

#[test]
fn contention_flag_values_are_validated() {
    // --flows: 2..=16 contending flows.
    for bad in ["0", "1", "17", "abc", "-3", ""] {
        assert_eq!(
            exit_code(&["contention", "--flows", bad]),
            2,
            "--flows {bad:?}"
        );
    }
    assert_eq!(exit_code(&["contention", "--flows"]), 2);

    // --contend: 2..=16 known flow specs; omniscient cannot contend; app
    // flows must name a tunneling carrier.
    for bad in [
        "cubic",                    // one flow is no contention
        "",
        "cubic,",
        "cubic,,sprout",
        "cubic,frobnicate",         // unknown scheme
        "omniscient,cubic",         // omniscient presumes sole ownership
        "skype-over-cubic,cubic",   // apps only tunnel over Sprout
        "skype-over-nothing,cubic",
        "nothing-over-sprout,cubic",
        "cubic,cubic,cubic,cubic,cubic,cubic,cubic,cubic,cubic,cubic,cubic,cubic,cubic,cubic,cubic,cubic,cubic", // 17 flows
    ] {
        assert_eq!(
            exit_code(&["contention", "--contend", bad]),
            2,
            "--contend {bad:?}"
        );
    }
    assert_eq!(exit_code(&["contention", "--contend"]), 2);
}

#[test]
fn contention_flags_require_the_contention_experiment() {
    for combo in [
        vec!["fig7", "--flows", "3"],
        vec!["soak", "--flows", "3"],
        vec!["fig9", "--contend", "sprout,cubic"],
        vec!["--bench", "--flows", "3"],
        vec!["--contend", "sprout,cubic"], // defaults to `all`
        // --flows sizes the default set, --contend replaces it: pick one.
        vec!["contention", "--flows", "3", "--contend", "sprout,cubic"],
    ] {
        assert_eq!(exit_code(&combo), 2, "{combo:?} must be a usage error");
    }
}

#[test]
fn contention_accepts_valid_flags() {
    // Parse-and-validate proof via the owns-no-cells shard trick: each
    // flag set must get past validation, build the matrix, run nothing,
    // and exit 0.
    let tmp = std::env::temp_dir().join(format!("reproduce-contention-cli-{}", std::process::id()));
    for (tag, extra) in [
        ("flows", vec!["--flows", "4"]),
        (
            "contend",
            vec!["--contend", "sprout,cubic,skype-over-sprout,google-hangout"],
        ),
        ("links", vec!["--links", "vz-lte-down", "--flows", "2"]),
    ] {
        let mut args = vec!["contention", "--quick", "--shard", "999999/1000000"];
        args.extend(extra.iter().copied());
        let out_dir = tmp.join(tag).join("out");
        let cache_dir = tmp.join(tag).join("cache");
        let (out_s, cache_s) = (
            out_dir.to_string_lossy().into_owned(),
            cache_dir.to_string_lossy().into_owned(),
        );
        args.extend(["--out", &out_s, "--cache-dir", &cache_s]);
        let out = reproduce(&args);
        assert_eq!(out.status.code(), Some(0), "{args:?}: {out:?}");
    }
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn soak_accepts_valid_axis_flags() {
    // Parse-and-validate proof via the owns-no-cells shard trick: the
    // full flag set must get past validation, build the (reduced)
    // matrix, run nothing, and exit 0.
    let tmp = std::env::temp_dir().join(format!("reproduce-soak-cli-{}", std::process::id()));
    let out = reproduce(&[
        "soak",
        "--quick",
        "--links",
        "vz-lte-down,tmo-3g-up",
        "--prop-delays",
        "10,25,50,100",
        "--queues",
        "auto,droptail,codel,bytes:75000",
        "--shard",
        "999999/1000000",
        "--out",
        &tmp.join("out").to_string_lossy(),
        "--cache-dir",
        &tmp.join("cache").to_string_lossy(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let _ = std::fs::remove_dir_all(&tmp);
}
