//! Multi-session serve cells, end to end: N sessions behind one
//! SproutServer must produce bit-identical sweeps for any thread count
//! and batch mode, amortize the forecast table across the pool (one
//! build, N−1 reuses per link group), and conserve bytes between the
//! per-session path logs and the server's wire counter.

use std::sync::Mutex;

use sprout_bench::{sweep_to_json, ScenarioMatrix, SweepEngine};
use sprout_core::table_memory_counters;
use sprout_trace::{Duration, NetProfile};

/// Serializes the tests: the table amortization counters are
/// process-global, so concurrent serve sweeps would interleave deltas.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

/// A small serve matrix: two session counts on the slow 3G uplink.
fn tiny_matrix() -> ScenarioMatrix {
    ScenarioMatrix::builder("servetest")
        .serve([1, 4])
        .links([NetProfile::TmobileUmtsUp])
        .timing(Duration::from_secs(12), Duration::from_secs(2))
        .build()
}

#[test]
fn serve_sweeps_are_thread_and_batch_invariant() {
    let _g = COUNTER_LOCK.lock().unwrap();
    let m = tiny_matrix();
    let one = SweepEngine::new(41).with_threads(1).run(&m);
    let four = SweepEngine::new(41).with_threads(4).run(&m);
    let unbatched = SweepEngine::new(41)
        .with_threads(4)
        .with_batch(false)
        .run(&m);
    let want = sweep_to_json(m.name(), 41, &one);
    assert_eq!(
        want,
        sweep_to_json(m.name(), 41, &four),
        "serve cells must be bit-identical for any thread count"
    );
    assert_eq!(
        want,
        sweep_to_json(m.name(), 41, &unbatched),
        "serve cells must be bit-identical with batching off"
    );
    assert!(
        want.contains("\"serve\":{\"sessions\":"),
        "the canonical JSON carries the serve column: {want}"
    );
}

#[test]
fn serve_pool_amortizes_the_forecast_table() {
    let _g = COUNTER_LOCK.lock().unwrap();
    let n = 16u32;
    let m = ScenarioMatrix::builder("serveamort")
        .serve([n])
        .links([NetProfile::TmobileUmtsUp])
        .timing(Duration::from_secs(8), Duration::from_secs(1))
        .build();
    let before = table_memory_counters();
    let results = SweepEngine::new(43).with_threads(1).run(&m);
    let delta = table_memory_counters().since(before);
    assert_eq!(results.len(), 1);
    // The EWMA clients never fetch tables; the pool's N Bayesian
    // receivers perform exactly N lookups over one shared link group:
    // at most one materialization (zero when an earlier test of this
    // binary already built the paper geometry), the rest reuses.
    assert!(
        delta.built <= 1,
        "one table build per link group, got {} builds",
        delta.built
    );
    assert_eq!(
        delta.built + delta.reused,
        u64::from(n),
        "exactly one table lookup per session (got {} built + {} reused)",
        delta.built,
        delta.reused
    );
}

#[test]
fn serve_cells_conserve_bytes_and_report_fairness() {
    let _g = COUNTER_LOCK.lock().unwrap();
    let m = tiny_matrix();
    // run_cell's serve arm asserts the exact conservation equality (sum
    // of per-session full-run path deliveries == the server's wire
    // counter) on every execution, so completing at all is the equality
    // proof; the checks below pin the derived summary.
    let results = SweepEngine::new(47).with_threads(1).run(&m);
    for r in &results {
        let n = r
            .scenario
            .workload
            .serve_sessions()
            .expect("every cell of this matrix is a serve cell");
        let s = r.serve.expect("serve cells produce serve stats");
        assert_eq!(s.sessions, n, "{}: session count", r.scenario.label);
        assert!(
            s.delivered_bytes > 0,
            "{}: sessions must deliver data",
            r.scenario.label
        );
        assert!(
            s.min_session_bytes <= s.max_session_bytes,
            "{}: per-session extremes ordered",
            r.scenario.label
        );
        assert!(
            u64::from(n) * s.min_session_bytes <= s.delivered_bytes
                && s.delivered_bytes <= u64::from(n) * s.max_session_bytes,
            "{}: window sum {} outside [n*min, n*max] = [{}, {}]",
            r.scenario.label,
            s.delivered_bytes,
            u64::from(n) * s.min_session_bytes,
            u64::from(n) * s.max_session_bytes
        );
        assert!(
            s.delivered_bytes <= s.wire_delivered_bytes,
            "{}: the measurement window is a subset of the full run",
            r.scenario.label
        );
        let j = r.fairness.expect("serve cells report fairness");
        assert!(
            (1.0 / f64::from(n) - 1e-12..=1.0 + 1e-12).contains(&j),
            "{}: Jain index {j} outside [1/{n}, 1]",
            r.scenario.label
        );
        assert!(
            r.metrics.is_none() && r.flows.is_empty(),
            "{}: serve cells report the serve column, not direction metrics",
            r.scenario.label
        );
    }
}
