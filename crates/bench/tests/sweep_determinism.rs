//! Determinism guarantees of the scenario-matrix sweep engine, and
//! consistency between the scheme zoo and the matrix builder.

use sprout_bench::{
    sweep_to_json, QueueSpec, ResolvedQueue, ScenarioMatrix, Scheme, ShardSpec, SweepEngine,
    VideoApp, Workload,
};
use sprout_trace::{Duration, NetProfile};

/// A small but representative matrix: two schemes (one needing CoDel),
/// two loss rates, two queue depths, a mux cell, and an
/// app-over-transport cell — every axis the engine seeds. (The
/// prop-delay axis carries no randomness of its own; `axes.rs` pins its
/// exact-shift semantics.)
fn mixed_matrix() -> ScenarioMatrix {
    ScenarioMatrix::builder("determinism")
        .schemes([Scheme::SproutEwma, Scheme::CubicCodel])
        .workloads([Workload::MuxDirect])
        .apps([VideoApp::Skype], [Scheme::Cubic])
        .links([NetProfile::TmobileUmtsDown])
        .queues([QueueSpec::Auto, QueueSpec::DropTailBytes(75_000)])
        .loss_rates([0.0, 0.05])
        .timing(Duration::from_secs(25), Duration::from_secs(5))
        .build()
}

#[test]
fn same_master_seed_gives_identical_results_across_runs() {
    let m = mixed_matrix();
    let a = SweepEngine::new(42).run(&m);
    let b = SweepEngine::new(42).run(&m);
    assert_eq!(
        sweep_to_json(m.name(), 42, &a),
        sweep_to_json(m.name(), 42, &b),
        "two runs with one master seed must be bit-identical"
    );
}

#[test]
fn different_master_seeds_give_different_results() {
    let m = mixed_matrix();
    let a = SweepEngine::new(1).run(&m);
    let b = SweepEngine::new(2).run(&m);
    assert_ne!(
        sweep_to_json(m.name(), 0, &a),
        sweep_to_json(m.name(), 0, &b),
        "the master seed must actually steer the experiment"
    );
}

#[test]
fn thread_count_does_not_change_results() {
    let m = mixed_matrix();
    let one = SweepEngine::new(7).with_threads(1).run(&m);
    for threads in [2, 4, 8] {
        let n = SweepEngine::new(7).with_threads(threads).run(&m);
        assert_eq!(
            sweep_to_json(m.name(), 7, &one),
            sweep_to_json(m.name(), 7, &n),
            "--threads {threads} diverged from --threads 1"
        );
    }
}

#[test]
fn batch_mode_does_not_change_results() {
    // The batched executor regroups cells by shared trace/table key and
    // recycles per-worker scratch arenas; none of that may leak into the
    // canonical output. Batched and unbatched runs must agree byte for
    // byte at every thread count.
    let m = mixed_matrix();
    let reference = SweepEngine::new(7)
        .with_threads(1)
        .with_batch(false)
        .run(&m);
    let want = sweep_to_json(m.name(), 7, &reference);
    for threads in [1, 4] {
        for batch in [true, false] {
            let r = SweepEngine::new(7)
                .with_threads(threads)
                .with_batch(batch)
                .run(&m);
            assert_eq!(
                sweep_to_json(m.name(), 7, &r),
                want,
                "--threads {threads} --batch {} diverged from the unbatched single-thread run",
                if batch { "on" } else { "off" }
            );
        }
    }
}

#[test]
fn shards_partition_the_matrix_and_reassemble_bit_identically() {
    let m = mixed_matrix();
    let full = SweepEngine::new(7).with_threads(1).run(&m);

    // Interleave the two shards' results back into matrix order; the
    // reassembly must be bit-identical to the single-shot run even when
    // the shards use different thread counts.
    let shard0 = SweepEngine::new(7)
        .with_threads(1)
        .with_shard(ShardSpec::new(0, 2))
        .run(&m);
    let shard1 = SweepEngine::new(7)
        .with_threads(4)
        .with_shard(ShardSpec::new(1, 2))
        .run(&m);
    assert_eq!(shard0.len() + shard1.len(), m.len());
    let mut merged = Vec::new();
    let (mut i0, mut i1) = (shard0.into_iter(), shard1.into_iter());
    for cell in m.cells() {
        let next = if ShardSpec::new(0, 2).owns(cell.id) {
            i0.next()
        } else {
            i1.next()
        };
        merged.push(next.expect("every cell owned by exactly one shard"));
    }
    assert_eq!(
        sweep_to_json(m.name(), 7, &full),
        sweep_to_json(m.name(), 7, &merged),
        "sharded execution must reassemble the single-shot sweep"
    );
}

#[test]
fn shard_spec_parses_cli_form() {
    assert_eq!(ShardSpec::parse("0/2"), Some(ShardSpec::new(0, 2)));
    assert_eq!(ShardSpec::parse("3/8"), Some(ShardSpec::new(3, 8)));
    for bad in ["2/2", "0/0", "a/2", "0", "/", "1/", "-1/2", "0/2/3"] {
        assert_eq!(ShardSpec::parse(bad), None, "{bad:?} must not parse");
    }
}

#[test]
fn cells_with_loss_use_distinct_derived_seeds() {
    let m = mixed_matrix();
    let results = SweepEngine::new(3).run(&m);
    let mut seeds: Vec<u64> = results.iter().map(|r| r.cell_seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), results.len(), "cell seeds must not collide");
}

#[test]
fn fig7_scheme_list_matches_paper_legend() {
    let schemes = Scheme::fig7();
    assert_eq!(schemes.len(), 9, "the paper's Figure 7 has nine schemes");
    assert!(!schemes.contains(&Scheme::CubicCodel));
    assert!(!schemes.contains(&Scheme::Omniscient));
    assert!(schemes.contains(&Scheme::Sprout));
    assert!(schemes.contains(&Scheme::SproutEwma));
}

#[test]
fn matrix_builder_queue_resolution_matches_needs_codel() {
    // The full fig7 matrix (nine schemes + Cubic-CoDel over eight links):
    // the builder's Auto queue must agree with Scheme::needs_codel for
    // every cell.
    let mut schemes = Scheme::fig7().to_vec();
    schemes.push(Scheme::CubicCodel);
    let m = ScenarioMatrix::builder("fig7-consistency")
        .schemes(schemes)
        .links(NetProfile::all())
        .build();
    assert_eq!(m.len(), 80);
    for cell in m.cells() {
        let scheme = cell.workload.scheme().expect("scheme matrix");
        let resolved = cell.queue.resolve(&cell.workload);
        assert_eq!(
            resolved == ResolvedQueue::CoDel,
            scheme.needs_codel(),
            "{} queue resolution disagrees with needs_codel",
            scheme.name()
        );
        assert_eq!(cell.queue, QueueSpec::Auto);
    }
}
