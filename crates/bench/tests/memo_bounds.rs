//! In-memory cache boundedness across disjoint-geometry sweeps: a
//! daemon that accepts arbitrary submitted matrices must not accumulate
//! synthesized traces or forecast tables without bound. The trace memo
//! is scoped to one sweep and LRU-bounded within it; the forecast-table
//! cache is process-global but LRU-bounded (its eviction behavior is
//! pinned in `sprout-core`). Here we pin the sweep-facing view: run two
//! sweeps with disjoint `(link, duration)` geometries and assert the
//! memo occupancy reflects only the latest sweep, never the union.

use sprout_bench::{trace_memo_occupancy, ScenarioMatrix, Scheme, SweepEngine};
use sprout_core::{table_cache_occupancy, FORECAST_TABLE_CACHE_CAP};
use sprout_trace::{Duration, NetProfile};

fn matrix(name: &str, links: [NetProfile; 2], secs: u64) -> ScenarioMatrix {
    ScenarioMatrix::builder(name)
        .schemes([Scheme::SproutEwma])
        .links(links)
        .timing(Duration::from_secs(secs), Duration::from_secs(1))
        .build()
}

#[test]
fn disjoint_geometry_sweeps_do_not_accumulate_traces() {
    // Two sweeps, zero shared (link, duration) keys: different links AND
    // different durations.
    let first = matrix(
        "memo-a",
        [NetProfile::VerizonLteDown, NetProfile::Verizon3gUp],
        4,
    );
    let second = matrix(
        "memo-b",
        [NetProfile::AttLteDown, NetProfile::TmobileUmtsUp],
        5,
    );

    let a = SweepEngine::new(23).with_threads(1).run(&first);
    assert_eq!(a.len(), first.len());
    let (after_a, _) = trace_memo_occupancy();

    let b = SweepEngine::new(23).with_threads(1).run(&second);
    assert_eq!(b.len(), second.len());
    let (after_b, _) = trace_memo_occupancy();

    // Each sweep touches at most 4 keys (2 links × 2 directions at one
    // duration). If geometries accumulated across sweeps, the second
    // occupancy would report the union (> 4).
    assert!(
        after_a <= 4,
        "first sweep's memo held {after_a} traces, expected ≤ 4"
    );
    assert!(
        after_b <= 4,
        "second sweep's memo must not retain the first sweep's \
         geometries: {after_b} traces live"
    );

    // The process-global forecast-table cache obeys its own cap.
    let (tables_live, _) = table_cache_occupancy();
    assert!(
        tables_live <= FORECAST_TABLE_CACHE_CAP,
        "forecast-table cache grew to {tables_live} entries past the cap"
    );
}
