//! Sharded, resumable sweeps against the per-cell result cache:
//! shard + merge and kill-mid-sweep + resume must both reassemble JSON
//! bit-identical to a single-shot run, and a panicking cell must not
//! take its siblings (or their cached results) down with it.
//!
//! These tests mutate the process-global cache override, so they live in
//! their own integration-test binary and serialize on one lock.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use sprout_bench::{
    cell_cache_counters, sweep_to_json, CellCachePolicy, QueueSpec, Scenario, ScenarioMatrix,
    Scheme, ShardSpec, SweepEngine, SweepError, Workload,
};
use sprout_cache::CacheCounters;
use sprout_trace::{Duration, NetProfile};

/// Serializes tests (they share the global cache-dir override).
static LOCK: Mutex<()> = Mutex::new(());

fn temp_cache_dir(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let d = std::env::temp_dir().join(format!(
        "sprout-shard-test-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn tiny_matrix() -> ScenarioMatrix {
    ScenarioMatrix::builder("shardtest")
        .schemes([Scheme::Cubic, Scheme::Vegas])
        .links([NetProfile::TmobileUmtsDown])
        .loss_rates([0.0, 0.03])
        .timing(Duration::from_secs(20), Duration::from_secs(4))
        .build()
}

/// Cell-cache traffic since `before`.
fn cell_traffic_since(before: CacheCounters) -> CacheCounters {
    cell_cache_counters().since(before)
}

#[test]
fn two_shards_plus_merge_match_single_shot_with_zero_executions() {
    let _g = LOCK.lock().unwrap();
    let m = tiny_matrix();

    // Single-shot baseline in its own cache directory.
    sprout_cache::set_dir(temp_cache_dir("single"));
    let single = SweepEngine::new(11).with_threads(1).run(&m);
    let want = sweep_to_json(m.name(), 11, &single);

    // Two shard processes' worth of work against one shared directory,
    // at different thread counts.
    sprout_cache::set_dir(temp_cache_dir("shared"));
    SweepEngine::new(11)
        .with_threads(1)
        .with_shard(ShardSpec::new(0, 2))
        .run(&m);
    SweepEngine::new(11)
        .with_threads(4)
        .with_shard(ShardSpec::new(1, 2))
        .run(&m);

    // Merge: every cell served from the cache, nothing executed.
    let before = cell_cache_counters();
    let merged = SweepEngine::new(11)
        .with_threads(4)
        .with_policy(CellCachePolicy::Merge)
        .run(&m);
    let traffic = cell_traffic_since(before);
    assert_eq!(sweep_to_json(m.name(), 11, &merged), want);
    assert_eq!(traffic.hits, m.len() as u64, "merge must hit every cell");
    assert_eq!(traffic.misses, 0);
    assert_eq!(traffic.stores, 0, "merge executes (and stores) nothing");

    sprout_cache::reset_override();
}

#[test]
fn batched_shards_merge_identical_to_unbatched_single_shot() {
    let _g = LOCK.lock().unwrap();
    let m = tiny_matrix();

    // Unbatched single-shot reference in its own cache directory.
    sprout_cache::set_dir(temp_cache_dir("batch-ref"));
    let single = SweepEngine::new(13)
        .with_threads(1)
        .with_batch(false)
        .run(&m);
    let want = sweep_to_json(m.name(), 13, &single);

    // Two batched shards into one shared directory. All four cells share
    // one (link, duration) trace key, so the batched executor must
    // synthesize each shard's traces once — the link plus its paired
    // feedback profile — and serve every cell from memory.
    sprout_cache::set_dir(temp_cache_dir("batch-shared"));
    let (_, stats) = SweepEngine::new(13)
        .with_threads(1)
        .with_shard(ShardSpec::new(0, 2))
        .run_with_stats(&m);
    assert!(stats.batch.enabled, "batching defaults on");
    assert_eq!(stats.batch.batches, 1, "one trace key => one batch");
    assert_eq!(
        stats.batch.traces.built, 2,
        "one synthesis for the link, one for its paired feedback profile"
    );
    assert!(
        stats.batch.traces.reused >= 2,
        "sibling cells reuse the in-memory traces: {:?}",
        stats.batch.traces
    );
    SweepEngine::new(13)
        .with_threads(4)
        .with_shard(ShardSpec::new(1, 2))
        .run(&m);

    // Merge must reassemble the unbatched single-shot sweep byte for byte.
    let merged = SweepEngine::new(13)
        .with_policy(CellCachePolicy::Merge)
        .run(&m);
    assert_eq!(
        sweep_to_json(m.name(), 13, &merged),
        want,
        "batched 2-shard + merge must equal the unbatched single-shot sweep"
    );

    sprout_cache::reset_override();
}

#[test]
fn killed_sweep_resumes_bit_identically_and_only_runs_missing_cells() {
    let _g = LOCK.lock().unwrap();
    let m = tiny_matrix();

    sprout_cache::set_dir(temp_cache_dir("resume-baseline"));
    let single = SweepEngine::new(5).with_threads(1).run(&m);
    let want = sweep_to_json(m.name(), 5, &single);

    // "Kill" a sweep after half its cells: only shard 0 ever ran.
    sprout_cache::set_dir(temp_cache_dir("resume"));
    let done = SweepEngine::new(5)
        .with_shard(ShardSpec::new(0, 2))
        .run(&m)
        .len() as u64;

    let before = cell_cache_counters();
    let resumed = SweepEngine::new(5)
        .with_threads(4)
        .with_policy(CellCachePolicy::Resume)
        .run(&m);
    let traffic = cell_traffic_since(before);
    assert_eq!(sweep_to_json(m.name(), 5, &resumed), want);
    assert_eq!(traffic.hits, done, "finished cells come from the cache");
    assert_eq!(traffic.misses, m.len() as u64 - done);
    assert_eq!(traffic.stores, m.len() as u64 - done, "only misses execute");

    // A second resume serves everything.
    let before = cell_cache_counters();
    let again = SweepEngine::new(5)
        .with_policy(CellCachePolicy::Resume)
        .run(&m);
    let traffic = cell_traffic_since(before);
    assert_eq!(sweep_to_json(m.name(), 5, &again), want);
    assert_eq!((traffic.misses, traffic.stores), (0, 0));

    sprout_cache::reset_override();
}

#[test]
fn merge_without_all_shards_names_the_missing_cells() {
    let _g = LOCK.lock().unwrap();
    let m = tiny_matrix();
    sprout_cache::set_dir(temp_cache_dir("partial-merge"));
    SweepEngine::new(3).with_shard(ShardSpec::new(0, 2)).run(&m);

    let err = SweepEngine::new(3)
        .with_policy(CellCachePolicy::Merge)
        .try_run(&m)
        .expect_err("half the cells are absent");
    match err {
        SweepError::MissingCells { matrix, labels } => {
            assert_eq!(matrix, "shardtest");
            let expect: Vec<&str> = m
                .cells()
                .iter()
                .filter(|c| ShardSpec::new(1, 2).owns(c.id))
                .map(|c| c.label.as_str())
                .collect();
            assert_eq!(labels, expect);
        }
        other => panic!("expected MissingCells, got {other:?}"),
    }

    // A different seed never sees the cached cells either.
    let err = SweepEngine::new(4)
        .with_policy(CellCachePolicy::Merge)
        .try_run(&m)
        .expect_err("other seeds must not be served seed-3 results");
    assert!(matches!(err, SweepError::MissingCells { ref labels, .. } if labels.len() == m.len()));

    sprout_cache::reset_override();
}

/// A matrix whose middle cell panics during setup: a negative confidence
/// override trips `SproutConfig::with_confidence_percent`'s assertion.
fn poisoned_matrix() -> ScenarioMatrix {
    let cell = |id: u64, confidence: Option<f64>| Scenario {
        id,
        label: format!("poison/cell{id}"),
        workload: Workload::Scheme(Scheme::Cubic),
        link: NetProfile::TmobileUmtsDown.into(),
        queue: QueueSpec::Auto,
        prop_delay: Duration::from_millis(20),
        loss_rate: 0.0,
        confidence_pct: confidence,
        duration: Duration::from_secs(12),
        warmup: Duration::from_secs(2),
        series_bin: None,
        impairment: sprout_trace::Impairment::none(),
        cell_series_bin: None,
    };
    ScenarioMatrix::from_cells(
        "poison",
        vec![cell(0, None), cell(1, Some(-5.0)), cell(2, None)],
    )
}

#[test]
fn panicking_cell_is_isolated_and_resume_redoes_only_it() {
    let _g = LOCK.lock().unwrap();
    // Silence the default per-panic backtrace chatter for this test; the
    // engine catches the unwind either way.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    sprout_cache::set_dir(temp_cache_dir("poison"));
    let m = poisoned_matrix();
    let before = cell_cache_counters();
    let err = SweepEngine::new(9)
        .with_threads(2)
        .try_run(&m)
        .expect_err("the poisoned cell must fail the sweep");
    let traffic = cell_traffic_since(before);
    match &err {
        SweepError::CellsPanicked { matrix, failures } => {
            assert_eq!(matrix, "poison", "the error names its matrix");
            assert_eq!(failures.len(), 1, "only the poisoned cell fails");
            assert_eq!(failures[0].scenario_id, 1);
            assert_eq!(failures[0].label, "poison/cell1");
            let shown = err.to_string();
            assert!(shown.contains("scenario 1"), "{shown}");
            assert!(
                shown.contains("\"poison\""),
                "the message must name the experiment: {shown}"
            );
        }
        other => panic!("expected CellsPanicked, got {other:?}"),
    }
    assert_eq!(traffic.stores, 2, "survivors must be cached");

    // Resuming reruns only the failed cell (which fails again — the
    // poison is deterministic — but touches nothing else).
    let before = cell_cache_counters();
    let err = SweepEngine::new(9)
        .with_policy(CellCachePolicy::Resume)
        .try_run(&m)
        .expect_err("still poisoned");
    let traffic = cell_traffic_since(before);
    assert!(matches!(err, SweepError::CellsPanicked { ref failures, .. } if failures.len() == 1));
    assert_eq!(traffic.hits, 2, "survivors served from the cache");
    assert_eq!(traffic.misses, 1, "only the failed cell re-executes");
    assert_eq!(traffic.stores, 0);

    std::panic::set_hook(hook);
    sprout_cache::reset_override();
}
