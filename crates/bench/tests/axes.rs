//! The new scenario axes, end to end: the deep default queue must be
//! behaviorally identical to the unbounded queue it replaced, shallow
//! byte caps must actually bind (and be accounted), the propagation
//! delay must shift the omniscient floor exactly and floor measured
//! RTTs, and app-over-transport cells must run over Sprout and over a
//! baseline scheme.

use sprout_baselines::{Cubic, TcpReceiver, TcpSender};
use sprout_bench::sweep::{run_cell, BULK_FLOW, INTERACTIVE_FLOW};
use sprout_bench::{
    build_endpoints, ResolvedQueue, RunConfig, ScenarioMatrix, Scheme, SchemeResult, SweepEngine,
    VideoApp, Workload,
};
use sprout_sim::{direction_stats, PathConfig, QueueConfig, Simulation};
use sprout_trace::{Duration, NetProfile, Timestamp};

fn quick_rc(link: NetProfile, secs: u64) -> RunConfig {
    let data = link.generate(Duration::from_secs(secs), 7);
    let feedback =
        sprout_bench::figures::paired_profile(link).generate(Duration::from_secs(secs), 7);
    RunConfig {
        duration: Duration::from_secs(secs),
        warmup: Duration::from_secs(secs / 6),
        ..RunConfig::new(data, feedback)
    }
}

/// Run one scheme over paths configured by hand (the pre-axes execution
/// shape), so tests can pin the engine's resolved queues against
/// explicit queue configs.
fn run_with_queues(scheme: Scheme, rc: &RunConfig, queue: &QueueConfig) -> SchemeResult {
    let (a, b) = build_endpoints(scheme, rc);
    let mut data = PathConfig::standard(rc.data_trace.clone()).with_prop_delay(rc.prop_delay);
    let mut feedback =
        PathConfig::standard(rc.feedback_trace.clone()).with_prop_delay(rc.prop_delay);
    data.link.queue = queue.clone();
    feedback.link.queue = queue.clone();
    let mut sim = Simulation::new(a, b, data, feedback);
    let end = Timestamp::ZERO + rc.duration;
    sim.run_until(end);
    SchemeResult::from_stats(&direction_stats(
        sim.ab_path(),
        Timestamp::ZERO + rc.warmup,
        end,
    ))
}

/// Regression for the `QueueSpec` unification: the deep default
/// capacity that `Auto`/`DropTail` now resolve to must reproduce the
/// old unbounded-queue behavior exactly on a Figure-7 cell — Cubic, the
/// sweep's worst queue-builder, on the paper's headline link.
#[test]
fn deep_default_queue_matches_old_unbounded_fig7_behavior() {
    let rc = quick_rc(NetProfile::VerizonLteDown, 60);
    let old = run_with_queues(Scheme::Cubic, &rc, &QueueConfig::DropTailUnbounded);
    let new = run_cell(
        &Workload::Scheme(Scheme::Cubic),
        &rc,
        ResolvedQueue::DropTail,
        None,
        None,
    )
    .metrics
    .expect("scheme cells produce metrics");
    // Compare the Debug renderings: unimpaired cells carry NaN
    // degradation sentinels, and NaN != NaN under derived PartialEq.
    assert_eq!(
        format!("{old:?}"),
        format!("{new:?}"),
        "the explicit deep default capacity must be indistinguishable from unbounded"
    );
    assert!(new.p95_delay_ms > 100.0, "cubic must still bufferbloat");
}

/// The shallow end of the queue-depth axis must actually bind: a small
/// byte cap changes Cubic's results and registers drops at the link.
#[test]
fn shallow_byte_cap_binds_and_is_accounted() {
    let rc = quick_rc(NetProfile::VerizonLteDown, 60);
    let deep = run_cell(
        &Workload::Scheme(Scheme::Cubic),
        &rc,
        ResolvedQueue::DropTail,
        None,
        None,
    )
    .metrics
    .unwrap();
    let shallow = run_cell(
        &Workload::Scheme(Scheme::Cubic),
        &rc,
        ResolvedQueue::DropTailBytes(30_000),
        None,
        None,
    )
    .metrics
    .unwrap();
    assert!(
        shallow.p95_delay_ms < deep.p95_delay_ms,
        "a 20-MTU buffer must curb Cubic's standing-queue delay ({} vs {})",
        shallow.p95_delay_ms,
        deep.p95_delay_ms
    );

    // Same condition at the sim layer: the cap's drops are counted.
    let (a, b) = build_endpoints(Scheme::Cubic, &rc);
    let mut data = PathConfig::standard(rc.data_trace.clone());
    data.link.queue = QueueConfig::DropTailBytes(30_000);
    let mut sim = Simulation::new(a, b, data, PathConfig::standard(rc.feedback_trace.clone()));
    sim.run_until(Timestamp::ZERO + rc.duration);
    assert!(
        sim.ab_path().link().queue_drops() > 0,
        "an overdriven 30 kB cap must tail-drop"
    );
}

/// The prop-delay axis moves the omniscient floor by exactly the
/// configured difference and floors every measured delay.
#[test]
fn prop_delay_shifts_floor_exactly_and_floors_p95() {
    let base = quick_rc(NetProfile::TmobileUmtsDown, 40);
    let run = |d_ms: u64| {
        let rc = RunConfig {
            prop_delay: Duration::from_millis(d_ms),
            ..base.clone()
        };
        run_cell(
            &Workload::Scheme(Scheme::SproutEwma),
            &rc,
            ResolvedQueue::DropTail,
            None,
            None,
        )
        .metrics
        .unwrap()
    };
    let (near, far) = (run(20), run(100));
    assert!(
        (far.omniscient_ms - near.omniscient_ms - 80.0).abs() < 1e-9,
        "omniscient floor must shift by exactly 80 ms ({} -> {})",
        near.omniscient_ms,
        far.omniscient_ms
    );
    assert!(near.p95_delay_ms >= 20.0 && far.p95_delay_ms >= 100.0);
}

/// End-to-end RTT floor: with one-way propagation `d` in each
/// direction, no measured round trip beats 2·d.
#[test]
fn measured_rtt_never_beats_twice_the_one_way_delay() {
    let d = Duration::from_millis(40);
    let down = NetProfile::TmobileUmtsDown.generate(Duration::from_secs(30), 5);
    let up = NetProfile::TmobileUmtsUp.generate(Duration::from_secs(30), 6);
    let mut sim = Simulation::new(
        TcpSender::new(Box::new(Cubic::new())),
        TcpReceiver::new(),
        PathConfig::standard(down).with_prop_delay(d),
        PathConfig::standard(up).with_prop_delay(d),
    );
    sim.run_until(Timestamp::from_millis(30_000));
    let min_rtt = sim.a.rtt().min_rtt().expect("the transfer measured RTTs");
    assert!(
        min_rtt >= Duration::from_millis(80),
        "min RTT {min_rtt} beat the 2x40 ms propagation floor"
    );
}

/// Acceptance: the video apps run as workloads over Sprout (inside a
/// SproutTunnel) and over a baseline transport (sharing the carrier
/// queue with a bulk flow), on the engine's normal execution path.
#[test]
fn app_workloads_run_over_sprout_and_over_cubic() {
    let m = ScenarioMatrix::builder("apps")
        .apps([VideoApp::Skype], [Scheme::Sprout, Scheme::Cubic])
        .links([NetProfile::VerizonLteDown])
        .timing(Duration::from_secs(30), Duration::from_secs(5))
        .build();
    let results = SweepEngine::new(3).run(&m);
    assert_eq!(results.len(), 2);

    let over_sprout = &results[0];
    assert_eq!(
        over_sprout.scenario.workload.app(),
        Some((VideoApp::Skype, Scheme::Sprout))
    );
    assert_eq!(
        over_sprout.flows.len(),
        1,
        "tunneled app cells report the app flow only"
    );
    let app_flow = &over_sprout.flows[0];
    assert_eq!(app_flow.flow, INTERACTIVE_FLOW.0);
    assert!(
        app_flow.throughput_kbps > 0.0,
        "the app's frames got through"
    );
    assert!(app_flow.p95_delay_ms.is_finite());

    let over_cubic = &results[1];
    assert_eq!(
        over_cubic.scenario.workload.app(),
        Some((VideoApp::Skype, Scheme::Cubic))
    );
    let flows: Vec<u32> = over_cubic.flows.iter().map(|f| f.flow).collect();
    assert_eq!(
        flows,
        vec![BULK_FLOW.0, INTERACTIVE_FLOW.0],
        "mux app cells report bulk and app flows"
    );
    assert!(over_cubic.flows.iter().all(|f| f.throughput_kbps > 0.0));
    assert!(
        over_cubic.metrics.unwrap().throughput_kbps > over_sprout.metrics.unwrap().throughput_kbps,
        "cubic bulk saturates the link harder than a lone tunneled app"
    );
}
