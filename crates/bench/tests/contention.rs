//! Multi-flow contention cells, end to end: N flows sharing one
//! bottleneck queue must report per-flow metrics that conserve the
//! aggregate, a Jain's fairness index within its mathematical bounds,
//! bit-identical sweeps for any thread count, and cache round trips that
//! preserve the fairness column (shard + merge reassembly included).

use std::path::PathBuf;
use std::sync::Mutex;

use sprout_bench::{
    sweep_to_json, CellCachePolicy, FlowSpec, ScenarioMatrix, Scheme, ShardSpec, SweepEngine,
    VideoApp,
};
use sprout_trace::{Duration, NetProfile};

/// Serializes the tests that mutate the process-global cache override.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn temp_cache_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "sprout-contention-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A small contention matrix: a homogeneous bulk trio, a lone Sprout
/// flow against bulk, and a tunneled Skype flow against bulk.
fn tiny_matrix() -> ScenarioMatrix {
    ScenarioMatrix::builder("contendtest")
        .contention([
            vec![FlowSpec::Scheme(Scheme::Cubic); 3],
            vec![
                FlowSpec::Scheme(Scheme::Sprout),
                FlowSpec::Scheme(Scheme::Cubic),
            ],
            vec![
                FlowSpec::App {
                    app: VideoApp::Skype,
                    over: Scheme::Sprout,
                },
                FlowSpec::Scheme(Scheme::Cubic),
            ],
        ])
        .links([NetProfile::TmobileUmtsDown])
        .timing(Duration::from_secs(30), Duration::from_secs(6))
        .build()
}

#[test]
fn contention_cells_report_per_flow_metrics_and_fairness() {
    let m = tiny_matrix();
    let results = SweepEngine::new(17).with_threads(1).run(&m);
    assert_eq!(results.len(), m.len());

    for r in &results {
        let specs = r
            .scenario
            .workload
            .contention_flows()
            .expect("every cell of this matrix is a contention cell");
        assert_eq!(
            r.flows.len(),
            specs.len(),
            "{}: one summary per declared flow",
            r.scenario.label
        );
        for (i, flow) in r.flows.iter().enumerate() {
            assert_eq!(
                flow.flow,
                i as u32 + 1,
                "{}: flow ids follow declaration order",
                r.scenario.label
            );
        }

        // Conservation: the per-flow split must sum to the aggregate —
        // every delivered packet belongs to exactly one declared flow.
        let m_all = r.metrics.expect("contention cells produce metrics");
        let flow_sum: f64 = r.flows.iter().map(|f| f.throughput_kbps).sum();
        assert!(
            (flow_sum - m_all.throughput_kbps).abs() <= 1e-9 * m_all.throughput_kbps.max(1.0),
            "{}: per-flow throughputs ({flow_sum}) must sum to the aggregate ({})",
            r.scenario.label,
            m_all.throughput_kbps
        );

        // Jain's index within its bounds, present in every cell.
        let n = specs.len() as f64;
        let j = r.fairness.expect("contention cells report fairness");
        assert!(
            (1.0 / n - 1e-12..=1.0 + 1e-12).contains(&j),
            "{}: Jain index {j} outside [1/{n}, 1]",
            r.scenario.label
        );
    }

    // The homogeneous all-Cubic cell sits well above the one-hog floor
    // (1/3). It does not reach 1.0 in a 30 s window: identical Cubic
    // flows desynchronize over a deep buffer and converge slowly — which
    // is exactly the effect the fairness column exists to expose.
    let homogeneous = &results[0];
    assert!(
        homogeneous.fairness.unwrap() > 0.6,
        "identical bulk flows must share tolerably, got {}",
        homogeneous.fairness.unwrap()
    );
    assert!(homogeneous
        .flows
        .iter()
        .all(|f| f.throughput_kbps > 0.0 && f.p95_delay_ms.is_finite()));

    // The tunneled Skype flow gets through next to a bulk Cubic flow.
    let tunneled = &results[2];
    assert!(
        tunneled.flows[0].throughput_kbps > 0.0,
        "the tunneled app flow must deliver"
    );
    assert!(
        tunneled.flows[1].throughput_kbps > tunneled.flows[0].throughput_kbps,
        "bulk Cubic should out-consume a rate-limited video call"
    );

    // Non-contention cells carry no fairness column.
    let scheme_matrix = ScenarioMatrix::builder("plain")
        .schemes([Scheme::Cubic])
        .links([NetProfile::TmobileUmtsDown])
        .timing(Duration::from_secs(12), Duration::from_secs(2))
        .build();
    let plain = SweepEngine::new(17).run(&scheme_matrix);
    assert_eq!(plain[0].fairness, None);
}

#[test]
fn contention_sweeps_are_thread_count_invariant() {
    let m = tiny_matrix();
    let one = SweepEngine::new(23).with_threads(1).run(&m);
    let four = SweepEngine::new(23).with_threads(4).run(&m);
    assert_eq!(
        sweep_to_json(m.name(), 23, &one),
        sweep_to_json(m.name(), 23, &four),
        "contention cells must be bit-identical for any thread count"
    );
    let json = sweep_to_json(m.name(), 23, &one);
    assert!(
        json.contains("\"fairness\":0.") || json.contains("\"fairness\":1"),
        "the canonical JSON carries the fairness column: {json}"
    );
}

#[test]
fn contention_shard_merge_reassembles_bit_identically_with_fairness() {
    let _g = CACHE_LOCK.lock().unwrap();
    let m = tiny_matrix();

    sprout_cache::set_dir(temp_cache_dir("single"));
    let single = SweepEngine::new(31).with_threads(1).run(&m);
    let want = sweep_to_json(m.name(), 31, &single);

    sprout_cache::set_dir(temp_cache_dir("shared"));
    SweepEngine::new(31)
        .with_shard(ShardSpec::new(0, 2))
        .run(&m);
    SweepEngine::new(31)
        .with_shard(ShardSpec::new(1, 2))
        .run(&m);
    let merged = SweepEngine::new(31)
        .with_policy(CellCachePolicy::Merge)
        .run(&m);
    assert_eq!(
        sweep_to_json(m.name(), 31, &merged),
        want,
        "2-shard + merge must reassemble the single-process sweep"
    );
    assert!(
        merged.iter().all(|r| r.fairness.is_some()),
        "fairness must survive the cell-cache round trip"
    );
    assert_eq!(
        merged[0].fairness, single[0].fairness,
        "cached fairness must be the executed value"
    );

    sprout_cache::reset_override();
}
