//! The watchdog must not leak threads: before cooperative cancellation,
//! a timed-out cell's abandoned thread kept simulating its remaining
//! virtual duration at wall speed (an hour-long cell burned a core for
//! minutes — forever, from a daemon's point of view). These tests pin
//! the new contract: a timed-out cell's thread honors its cancellation
//! token and exits promptly, observable through the
//! [`sprout_bench::abandoned_cell_threads`] gauge.
//!
//! The test mutates the process-global cache override, so it lives in
//! its own integration-test binary and serializes on one lock.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::{Duration as WallDuration, Instant};

use sprout_bench::{
    abandoned_cell_threads, cell_failure_counters, ScenarioMatrix, Scheme, SweepEngine, SweepError,
};
use sprout_trace::{Duration, NetProfile};

/// Serializes tests (they share the global cache-dir override).
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_cache_dir(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let d = std::env::temp_dir().join(format!(
        "sprout-watchdog-test-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// One cell with an hour of virtual time: naturally it needs minutes of
/// wall clock, so if it outruns the watchdog only cancellation can
/// explain a prompt thread exit.
fn hour_long_matrix() -> ScenarioMatrix {
    ScenarioMatrix::builder("watchdog-cancel")
        .schemes([Scheme::Cubic])
        .links([NetProfile::TmobileUmtsDown])
        .timing(Duration::from_secs(3600), Duration::from_secs(4))
        .build()
}

#[test]
fn timed_out_cell_threads_cancel_instead_of_leaking() {
    let _g = lock();
    sprout_cache::set_dir(temp_cache_dir("cancel"));

    let failures_before = cell_failure_counters();
    let err = SweepEngine::new(19)
        .with_threads(1)
        .with_cell_timeout(WallDuration::from_millis(50))
        .try_run(&hour_long_matrix())
        .expect_err("a 50 ms watchdog must fire long before an hour-long cell finishes");
    match &err {
        SweepError::CellsPanicked { failures, .. } => {
            assert_eq!(failures.len(), 1);
            assert!(failures[0].timed_out, "the failure must be a timeout");
        }
        other => panic!("expected CellsPanicked, got {other:?}"),
    }
    let failures = cell_failure_counters().since(failures_before);
    assert_eq!((failures.timed_out, failures.failed), (1, 0));

    // The abandoned thread must exit at its next cancellation checkpoint.
    // Give it generous wall time for slow CI — still two orders of
    // magnitude less than simulating the cell's remaining virtual hour.
    let deadline = Instant::now() + WallDuration::from_secs(30);
    while abandoned_cell_threads() > 0 {
        assert!(
            Instant::now() < deadline,
            "abandoned cell thread did not honor cancellation within 30 s \
             (gauge stuck at {})",
            abandoned_cell_threads()
        );
        std::thread::sleep(WallDuration::from_millis(10));
    }

    // The engine is still fully serviceable afterwards: a short sweep of
    // the same shape completes normally under the default watchdog.
    let quick = ScenarioMatrix::builder("watchdog-after")
        .schemes([Scheme::Cubic])
        .links([NetProfile::TmobileUmtsDown])
        .timing(Duration::from_secs(4), Duration::from_secs(1))
        .build();
    let results = SweepEngine::new(19).with_threads(1).run(&quick);
    assert_eq!(results.len(), 1);
    assert_eq!(abandoned_cell_threads(), 0);

    sprout_cache::reset_override();
}
