//! Sweep-level guarantees of measured-trace replay and the per-cell
//! time-series artifacts: a replay matrix must stay bit-identical across
//! thread counts, batching modes, and shard + merge — including the
//! cell-series TSV renderings, which must survive a cache round trip
//! byte for byte; cell identity must key on a capture's content
//! fingerprint (two paths to the same bytes are one set of cells, an
//! edited byte is a miss); and an unregistered fingerprint must fail
//! loudly, naming the missing capture.
//!
//! These tests mutate the process-global cache override, so they live in
//! their own integration-test binary and serialize on one lock.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use sprout_bench::{
    cell_cache_counters, sweep_to_json, write_cell_series, CellCachePolicy, ExperimentConfig,
    LinkSpec, ScenarioMatrix, Scheme, ShardSpec, SweepEngine, SweepError, SweepResult,
};
use sprout_trace::Duration;

/// Serializes tests (they share the global cache-dir override). A
/// poisoned lock just means a sibling test failed; proceed anyway so its
/// failure is the one reported.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let d = std::env::temp_dir().join(format!(
        "sprout-replay-test-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Path of a committed corpus capture.
fn corpus(file: &str) -> String {
    format!("{}/../trace/tests/data/{file}", env!("CARGO_MANIFEST_DIR"))
}

/// A small measured-link matrix with cell-series collection on: two
/// cheap schemes over the given captures.
fn replay_matrix(fingerprints: &[u64]) -> ScenarioMatrix {
    ScenarioMatrix::builder("replay-identity")
        .schemes([Scheme::Cubic, Scheme::Vegas])
        .links(
            fingerprints
                .iter()
                .map(|&fp| LinkSpec::Measured { fingerprint: fp }),
        )
        .cell_series(Duration::from_millis(500))
        .timing(Duration::from_secs(20), Duration::from_secs(4))
        .build()
}

/// Render every cell's time-series TSVs through the real figures-layer
/// writer and return them as sorted `(filename, bytes)` pairs.
fn rendered_series(results: &[SweepResult], tag: &str) -> Vec<(String, Vec<u8>)> {
    let dir = temp_dir(tag);
    let cfg = ExperimentConfig {
        out_dir: dir.clone(),
        ..ExperimentConfig::default()
    };
    let rendered = write_cell_series(&cfg, results).expect("series TSVs render");
    assert_eq!(
        rendered,
        results.len(),
        "every replay cell carries a series"
    );
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
        .expect("series dir")
        .map(|e| {
            let e = e.expect("dir entry");
            (
                e.file_name().into_string().expect("utf-8 name"),
                std::fs::read(e.path()).expect("series file"),
            )
        })
        .collect();
    files.sort();
    let _ = std::fs::remove_dir_all(&dir);
    files
}

#[test]
fn measured_sweep_and_its_series_tsvs_are_bit_identical_everywhere() {
    let _g = lock();
    let fps = [
        sprout_trace::register_trace_file(corpus("downlink-excerpt.trace")).expect("downlink"),
        sprout_trace::register_trace_file(corpus("uplink-excerpt.trace")).expect("uplink"),
    ];
    let m = replay_matrix(&fps);
    assert_eq!(m.len(), 4, "2 schemes x 2 captures");
    for cell in m.cells() {
        assert!(
            cell.link.profile().is_none(),
            "{}: every cell replays a measured capture",
            cell.label
        );
    }

    // Unbatched single-threaded reference, fresh cache directory.
    sprout_cache::set_dir(temp_dir("ref"));
    let reference = SweepEngine::new(31)
        .with_threads(1)
        .with_batch(false)
        .run(&m);
    let want = sweep_to_json(m.name(), 31, &reference);
    let want_series = rendered_series(&reference, "ref-series");
    // The measured links genuinely carried traffic, and the series see
    // it: every cell has per-delivery delay samples and a bin with
    // nonzero capacity and throughput.
    for r in &reference {
        let s = r.cell_series.as_ref().expect("replay cells carry a series");
        assert!(!s.delays.is_empty(), "{}", r.scenario.label);
        assert!(
            s.bins.iter().any(|b| b.capacity_kbps > 0.0),
            "{}: capacity column is all zero",
            r.scenario.label
        );
        assert!(
            s.bins.iter().any(|b| b.throughput_kbps > 0.0),
            "{}: throughput column is all zero",
            r.scenario.label
        );
        let fp = r.scenario.link.measured_fingerprint().expect("measured");
        assert_eq!(r.scenario.link.id(), format!("m{fp:016x}"));
    }

    // Any thread count, batched or not, must reproduce both the sweep
    // JSON and the series TSVs byte for byte (fresh cache directory
    // each, so every cell truly re-executes).
    for (threads, batch) in [(4, true), (1, true), (4, false)] {
        sprout_cache::set_dir(temp_dir("variant"));
        let got = SweepEngine::new(31)
            .with_threads(threads)
            .with_batch(batch)
            .run(&m);
        assert_eq!(
            sweep_to_json(m.name(), 31, &got),
            want,
            "threads={threads} batch={batch} diverged from the reference"
        );
        assert_eq!(
            rendered_series(&got, "variant-series"),
            want_series,
            "threads={threads} batch={batch}: series TSVs diverged"
        );
    }

    // Two shards into one shared directory, then a pure merge: the
    // JSON *and* the series must reassemble from the cache alone — this
    // is the cell-series artifact's round-trip pin.
    sprout_cache::set_dir(temp_dir("shards"));
    SweepEngine::new(31)
        .with_threads(1)
        .with_shard(ShardSpec::new(0, 2))
        .run(&m);
    SweepEngine::new(31)
        .with_threads(4)
        .with_shard(ShardSpec::new(1, 2))
        .run(&m);
    let before = cell_cache_counters();
    let merged = SweepEngine::new(31)
        .with_policy(CellCachePolicy::Merge)
        .run(&m);
    let traffic = cell_cache_counters().since(before);
    assert_eq!(
        sweep_to_json(m.name(), 31, &merged),
        want,
        "2-shard + merge diverged from the single-shot reference"
    );
    assert_eq!(
        rendered_series(&merged, "merged-series"),
        want_series,
        "cache-served series diverged from the executed ones"
    );
    assert_eq!(traffic.hits, m.len() as u64, "merge must hit every cell");
    assert_eq!((traffic.misses, traffic.stores), (0, 0));

    sprout_cache::reset_override();
}

#[test]
fn cells_key_on_capture_bytes_not_paths_and_resume_runs_only_whats_missing() {
    let _g = lock();
    let bytes = std::fs::read(corpus("downlink-excerpt.trace")).expect("corpus bytes");

    // The same bytes under two different paths are one capture.
    let dir = temp_dir("copies");
    std::fs::create_dir_all(&dir).expect("copy dir");
    let (a, b) = (dir.join("capture.trace"), dir.join("renamed-copy.trace"));
    std::fs::write(&a, &bytes).expect("copy a");
    std::fs::write(&b, &bytes).expect("copy b");
    let fp_a = sprout_trace::register_trace_file(&a).expect("register a");
    let fp_b = sprout_trace::register_trace_file(&b).expect("register b");
    assert_eq!(fp_a, fp_b, "identity keys on bytes, not paths");

    // "Kill" a sweep after one shard, then resume: only the missing
    // cells execute.
    let m = replay_matrix(&[fp_a]);
    sprout_cache::set_dir(temp_dir("resume"));
    let single = SweepEngine::new(7).with_threads(1).run(&m);
    let want = sweep_to_json(m.name(), 7, &single);

    sprout_cache::set_dir(temp_dir("resume-killed"));
    let done = SweepEngine::new(7)
        .with_shard(ShardSpec::new(0, 2))
        .run(&m)
        .len() as u64;
    let before = cell_cache_counters();
    let resumed = SweepEngine::new(7)
        .with_threads(4)
        .with_policy(CellCachePolicy::Resume)
        .run(&m);
    let traffic = cell_cache_counters().since(before);
    assert_eq!(sweep_to_json(m.name(), 7, &resumed), want);
    assert_eq!(traffic.hits, done, "finished cells come from the cache");
    assert_eq!(traffic.misses, m.len() as u64 - done);
    assert_eq!(traffic.stores, m.len() as u64 - done, "only misses execute");

    // A warm re-run through the *other* path's fingerprint is pure
    // cache hits: the path never entered the cell key.
    let m_via_b = replay_matrix(&[fp_b]);
    let before = cell_cache_counters();
    let again = SweepEngine::new(7)
        .with_policy(CellCachePolicy::Resume)
        .run(&m_via_b);
    let traffic = cell_cache_counters().since(before);
    assert_eq!(sweep_to_json(m_via_b.name(), 7, &again), want);
    assert_eq!((traffic.misses, traffic.stores), (0, 0));

    // Editing a single opportunity re-fingerprints the capture, and
    // every dependent cell is a miss — never a stale hit.
    let mut edited = bytes.clone();
    edited.extend_from_slice(b"39999\n");
    let fp_edited = sprout_trace::register_trace_bytes(&edited).expect("edited parses");
    assert_ne!(fp_edited, fp_a);
    let m_edited = replay_matrix(&[fp_edited]);
    let before = cell_cache_counters();
    SweepEngine::new(7)
        .with_policy(CellCachePolicy::Resume)
        .run(&m_edited);
    let traffic = cell_cache_counters().since(before);
    assert_eq!(traffic.hits, 0, "edited bytes must not hit the old cells");
    assert_eq!(traffic.misses, m_edited.len() as u64);

    let _ = std::fs::remove_dir_all(&dir);
    sprout_cache::reset_override();
}

#[test]
fn unregistered_fingerprint_fails_loudly_naming_the_capture() {
    let _g = lock();
    // Silence the default per-panic backtrace chatter; the engine
    // catches the unwind either way.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    sprout_cache::set_dir(temp_dir("unregistered"));
    let m = replay_matrix(&[0xdead_beef_0bad_cafe]);
    let err = SweepEngine::new(3)
        .with_threads(2)
        .with_batch(false)
        .try_run(&m)
        .expect_err("no capture with this fingerprint is registered");
    match &err {
        SweepError::CellsPanicked { failures, .. } => {
            assert_eq!(failures.len() as u64, m.len() as u64);
            assert!(
                failures[0].message.contains("mdeadbeef0badcafe")
                    && failures[0].message.contains("--trace"),
                "the failure must name the capture and the fix: {}",
                failures[0].message
            );
        }
        other => panic!("expected CellsPanicked, got {other:?}"),
    }

    std::panic::set_hook(hook);
    sprout_cache::reset_override();
}
